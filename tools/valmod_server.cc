// valmod_server — long-lived serving front end to the VALMOD suite.
//
// Speaks newline-delimited JSON (one request per line; large results are
// paged as bounded chunk lines — protocol reference in README "Serving")
// over either:
//
//   --stdio        stdin/stdout — the zero-networking mode CI and scripts
//                  drive; exits on EOF or the `shutdown` verb.
//   --port=P       a localhost TCP socket (127.0.0.1 only — the server
//                  executes file loads and unbounded compute on behalf of
//                  clients, so it is strictly a local tool). The default
//                  transport is a single-threaded epoll event loop;
//                  --event-loop=threads selects the legacy blocking
//                  thread-per-connection transport for comparison.
//
// Serving state (dataset registry, shared MASS engines, result cache)
// lives for the process: every request against a loaded dataset reuses
// the engine's cached spectra, repeated identical requests are O(1)
// result-cache hits, and identical *concurrent* misses are coalesced
// into one computation — the whole point versus one-shot valmod_cli runs.
//
// Examples:
//   valmod_server --stdio
//   valmod_server --port=7731 --workers=8 --queue=128 --cache=256
//   valmod_server --port=0 --event-loop=threads --max-inflight=16
//   valmod_server --stdio --preload=ecg --generate=ecg --n=20000
//
//   $ printf '%s\n' \
//       '{"id":1,"verb":"load","dataset":"ecg","params":{"generator":"ecg","n":8192}}' \
//       '{"id":2,"verb":"motifs","dataset":"ecg","params":{"lmin":100,"lmax":110}}' \
//     | valmod_server --stdio

#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "common/fault.h"
#include "common/flags.h"
#include "common/log.h"
#include "common/trace.h"
#include "mass/backend.h"
#include "service/server.h"
#include "service/tcp_server.h"
#include "tool_flags.h"

namespace {

using valmod::Flags;
using valmod::service::Service;

int Usage() {
  std::fprintf(stderr,
               "usage: valmod_server (--stdio | --port=<p, 0=ephemeral>) "
               "[--workers=4] [--queue=64] [--cache=128]\n"
               "       [--event-loop=epoll|threads] [--max-inflight=64] "
               "[--page-bytes=1048576]\n"
               "       [--timeout-s=<default deadline>] [--calibrate] "
               "[--simd=scalar|avx2|avx512|neon]\n"
               "       [--preload=<name> (--input=<csv> [--column=0] "
               "[--allow-nonfinite] | --generate=<gen> [--n] [--seed])]\n"
               "       [--log-level=debug|info|warn|error] [--log-json] "
               "[--slowlog=16] [--no-trace]\n"
               "newline-delimited JSON protocol; see README \"Serving\"\n"
               "fault injection: VALMOD_FAULTS env or the `faults` verb; "
               "see README \"Robustness\"\n");
  return 2;
}

/// Loads the --preload dataset into the registry before serving, through
/// the same source-flag semantics as valmod_cli (tools/tool_flags.h).
bool Preload(Service& service, const Flags& flags) {
  const std::string name = flags.GetString("preload", "");
  if (name.empty()) return true;
  auto series = valmod::tools::LoadSeriesFromFlags(flags);
  if (!series.ok()) {
    valmod::log::Error("preload failed")
        .Field("dataset", name)
        .Field("status", series.status().ToString());
    return false;
  }
  auto loaded = service.registry().LoadSeries(name, std::move(*series));
  if (!loaded.ok()) {
    valmod::log::Error("preload failed")
        .Field("dataset", name)
        .Field("status", loaded.status().ToString());
    return false;
  }
  valmod::log::Info("preloaded dataset")
      .Field("dataset", name)
      .Field("points", (*loaded)->size());
  return true;
}

int RunStdio(Service& service) {
  std::string line;
  while (!service.shutdown_requested() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    // HandleRequest shares the paged-response encoder with the TCP
    // transports; the returned bytes are already '\n'-terminated.
    const std::string response = service.HandleRequest(line);
    std::fputs(response.c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A client disconnecting mid-write must error that one send(), not
  // deliver a process-killing SIGPIPE (the transports' MSG_NOSIGNAL
  // covers the sockets; this covers any stray write to a closed stdio
  // pipe).
  std::signal(SIGPIPE, SIG_IGN);
  // Instantiating the injector up front applies VALMOD_FAULTS directives
  // at startup, so a chaos harness sees its faults listed by the `faults`
  // verb before any fault point has been hit.
  (void)valmod::fault::FaultInjector::Global();

  const Flags flags = Flags::Parse(argc, argv);
  // Configure logging before anything can log — including the unknown-flag
  // rejection below, whose error should already honor --log-json.
  valmod::log::SetJson(flags.GetBool("log-json", false));
  if (flags.Has("log-level")) {
    auto level = valmod::log::ParseLevel(flags.GetString("log-level", ""));
    if (!level.ok()) {
      valmod::log::Error("bad --log-level")
          .Field("status", level.status().ToString());
      return 2;
    }
    valmod::log::SetLevel(*level);
  }
  if (valmod::Status status = flags.RejectUnknown(valmod::tools::kServerFlags);
      !status.ok()) {
    valmod::log::Error("bad flags").Field("status",
                                          std::string(status.message()));
    return 2;
  }
  // Request tracing is on by default (near-zero cost until a request asks
  // for its span tree); --no-trace is the kill switch for overhead-proof
  // benchmarking.
  valmod::trace::SetEnabled(!flags.GetBool("no-trace", false));
  const bool stdio = flags.GetBool("stdio", false);
  const bool has_port = flags.Has("port");
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (!stdio && !has_port) return Usage();
  if (stdio && has_port) {
    valmod::log::Error("--stdio and --port are exclusive");
    return 2;
  }
  if (!stdio && (port < 0 || port > 65535)) {
    valmod::log::Error(
        "--port must be in [0, 65535] (0 = pick an ephemeral port)");
    return 2;
  }
  const std::string event_loop = flags.GetString("event-loop", "epoll");
  if (event_loop != "epoll" && event_loop != "threads") {
    valmod::log::Error("--event-loop must be 'epoll' or 'threads'");
    return 2;
  }
  const int max_inflight = static_cast<int>(flags.GetInt("max-inflight", 64));
  if (max_inflight < 1) {
    valmod::log::Error("--max-inflight must be >= 1");
    return 2;
  }

  // Force the SIMD dispatch target before --calibrate (and before any
  // request computes), so calibration prices the kernels that will
  // actually serve. The env-var spelling (VALMOD_SIMD) only warns on a bad
  // value; the flag is a hard startup error.
  if (valmod::Status status = valmod::tools::ApplySimdFlag(flags);
      !status.ok()) {
    valmod::log::Error("bad --simd").Field("status",
                                           std::string(status.message()));
    return 2;
  }

  if (flags.Has("calibrate")) {
    (void)valmod::mass::CalibrateBackendCostModel();
    valmod::log::Info("calibrated backend cost model")
        .Field("generation", valmod::mass::BackendCostModelGeneration());
  }

  valmod::service::ServiceOptions options;
  options.workers = static_cast<int>(flags.GetInt("workers", 4));
  options.queue_capacity =
      static_cast<std::size_t>(flags.GetInt("queue", 64));
  options.cache_capacity =
      static_cast<std::size_t>(flags.GetInt("cache", 128));
  options.default_timeout_seconds = flags.GetDouble("timeout-s", 0.0);
  options.page_bytes =
      static_cast<std::size_t>(flags.GetInt("page-bytes", 1 << 20));
  options.slowlog_capacity = static_cast<std::size_t>(flags.GetInt(
      "slowlog",
      static_cast<std::int64_t>(valmod::service::SlowLog::kDefaultCapacity)));

  Service service(options);
  if (!Preload(service, flags)) return 1;
  if (stdio) return RunStdio(service);

  valmod::service::TcpServerOptions tcp_options;
  tcp_options.port = port;
  tcp_options.max_inflight = max_inflight;
  auto server =
      event_loop == "threads"
          ? valmod::service::MakeThreadedServer(service, tcp_options)
          : valmod::service::MakeEpollServer(service, tcp_options);
  if (!server.ok()) {
    valmod::log::Error("failed to start server")
        .Field("status", server.status().ToString());
    return 1;
  }
  // --port=0 binds an ephemeral port; report the real one so scripts and
  // tests can parse it from stderr instead of racing for a fixed port.
  // This line is a wire-format contract (the test harnesses regex it), so
  // it stays plain fprintf regardless of --log-json; the structured event
  // below carries the same facts for log shippers.
  std::fprintf(stderr, "valmod_server listening on 127.0.0.1:%d\n",
               (*server)->port());
  std::fflush(stderr);
  valmod::log::Info("serving")
      .Field("port", (*server)->port())
      .Field("event_loop", event_loop)
      .Field("workers", options.workers)
      .Field("tracing", valmod::trace::Enabled());
  return (*server)->Serve();
}
