// valmod_server — long-lived serving front end to the VALMOD suite.
//
// Speaks newline-delimited JSON (one request per line, one response line
// back; protocol reference in README "Serving") over either:
//
//   --stdio        stdin/stdout — the zero-networking mode CI and scripts
//                  drive; exits on EOF or the `shutdown` verb.
//   --port=P       a localhost TCP socket (127.0.0.1 only — the server
//                  executes file loads and unbounded compute on behalf of
//                  clients, so it is strictly a local tool); one thread
//                  per connection, each connection a serial request
//                  stream, concurrency across connections bounded by the
//                  scheduler's admission queue.
//
// Serving state (dataset registry, shared MASS engines, result cache)
// lives for the process: every request against a loaded dataset reuses
// the engine's cached spectra, and repeated identical requests are O(1)
// result-cache hits — the whole point versus one-shot valmod_cli runs.
//
// Examples:
//   valmod_server --stdio
//   valmod_server --port=7731 --workers=8 --queue=128 --cache=256
//   valmod_server --stdio --preload=ecg --generate=ecg --n=20000
//
//   $ printf '%s\n' \
//       '{"id":1,"verb":"load","dataset":"ecg","params":{"generator":"ecg","n":8192}}' \
//       '{"id":2,"verb":"motifs","dataset":"ecg","params":{"lmin":100,"lmax":110}}' \
//     | valmod_server --stdio

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/flags.h"
#include "mass/backend.h"
#include "service/server.h"
#include "tool_flags.h"

namespace {

using valmod::Flags;
using valmod::service::Service;

int Usage() {
  std::fprintf(stderr,
               "usage: valmod_server (--stdio | --port=<p, 0=ephemeral>) "
               "[--workers=4] [--queue=64] [--cache=128]\n"
               "       [--timeout-s=<default deadline>] [--calibrate]\n"
               "       [--preload=<name> (--input=<csv> [--column=0] "
               "[--allow-nonfinite] | --generate=<gen> [--n] [--seed])]\n"
               "newline-delimited JSON protocol; see README \"Serving\"\n"
               "fault injection: VALMOD_FAULTS env or the `faults` verb; "
               "see README \"Robustness\"\n");
  return 2;
}

/// Loads the --preload dataset into the registry before serving, through
/// the same source-flag semantics as valmod_cli (tools/tool_flags.h).
bool Preload(Service& service, const Flags& flags) {
  const std::string name = flags.GetString("preload", "");
  if (name.empty()) return true;
  auto series = valmod::tools::LoadSeriesFromFlags(flags);
  if (!series.ok()) {
    std::fprintf(stderr, "error: preload: %s\n",
                 series.status().ToString().c_str());
    return false;
  }
  auto loaded = service.registry().LoadSeries(name, std::move(*series));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: preload: %s\n",
                 loaded.status().ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "preloaded dataset '%s' (%zu points)\n", name.c_str(),
               (*loaded)->size());
  return true;
}

int RunStdio(Service& service) {
  std::string line;
  while (!service.shutdown_requested() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const std::string response = service.HandleRequestLine(line);
    std::fputs(response.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  return 0;
}

/// Live-connection bookkeeping shared by the accept loop and the
/// per-connection threads. Two jobs:
///  - shutdown: a `shutdown` verb must end the process even while other
///    clients sit idle in read(); Wake() shutdown(2)s every live socket
///    (including the listener — close() alone does not reliably wake a
///    thread blocked in accept()/read() on the same fd, shutdown() does).
///  - reaping: finished connection threads are joined from the accept
///    loop, so a long-lived server does not accumulate one dead
///    std::thread per connection ever served.
class ConnectionSet {
 public:
  explicit ConnectionSet(int listen_fd) : listen_fd_(listen_fd) {}

  void Add(Service& service, int client_fd) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto conn = std::make_unique<Connection>();
    conn->fd = client_fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, &service, raw] {
      ServeConnection(service, raw->fd, *this);
      raw->done.store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(conn));
  }

  /// Joins threads whose connections have finished. Called between
  /// accepts; O(live connections).
  void Reap() {
    std::vector<std::unique_ptr<Connection>> finished;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = connections_.begin();
      while (it != connections_.end()) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& conn : finished) conn->thread.join();  // finished: no block
  }

  /// Forces every blocked accept()/read() to return so the process can
  /// exit. Idempotent.
  void Wake() {
    std::lock_guard<std::mutex> lock(mutex_);
    ::shutdown(listen_fd_, SHUT_RDWR);
    for (const auto& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }

  /// Joins and closes everything still live (listener already closed by
  /// the caller).
  void JoinAll() {
    std::vector<std::unique_ptr<Connection>> remaining;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      remaining.swap(connections_);
    }
    for (auto& conn : remaining) conn->thread.join();
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  static void ServeConnection(Service& service, int fd, ConnectionSet& set);

  const int listen_fd_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

/// Longest accepted request line. Generous (a 1M-point append of
/// full-precision doubles fits), but bounded: a client streaming bytes
/// with no newline must produce a structured error and a dropped
/// connection, not unbounded buffer growth until the process is killed.
constexpr std::size_t kMaxRequestLineBytes = 32u << 20;  // 32 MiB

/// Writes the whole buffer to a client socket. MSG_NOSIGNAL (belt to the
/// SIG_IGN braces in main): a client that closed its socket mid-response
/// must surface as a failed send on this connection, never as a SIGPIPE
/// that kills the process — and with it every other client's datasets.
bool SendAll(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t w = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (w <= 0) return false;
    written += static_cast<std::size_t>(w);
  }
  return true;
}

/// One connection: a serial newline-delimited request stream.
void ConnectionSet::ServeConnection(Service& service, int fd,
                                    ConnectionSet& set) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxRequestLineBytes &&
        buffer.find('\n') == std::string::npos) {
      const char* error =
          "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"InvalidArgument\","
          "\"message\":\"request line exceeds 32 MiB\"}}\n";
      (void)SendAll(fd, error, std::strlen(error));
      break;
    }
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = service.HandleRequestLine(line);
      response.push_back('\n');
      // Chaos hook: a fired "server.write" fault stands in for the client
      // vanishing mid-response — drop the connection exactly as a failed
      // send would.
      if (!VALMOD_FAULT_POINT("server.write").ok() ||
          !SendAll(fd, response.data(), response.size())) {
        ::close(fd);
        return;
      }
      if (service.shutdown_requested()) {
        set.Wake();  // unblocks the accept loop and every idle client
        ::close(fd);
        return;
      }
    }
  }
  ::close(fd);
}

int RunTcp(Service& service, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("bind");
    ::close(fd);
    return 1;
  }
  if (::listen(fd, 16) < 0) {
    std::perror("listen");
    ::close(fd);
    return 1;
  }
  // --port=0 binds an ephemeral port; report the real one so scripts and
  // tests can parse it from stderr instead of racing for a fixed port.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port = static_cast<int>(ntohs(bound.sin_port));
  }
  std::fprintf(stderr, "valmod_server listening on 127.0.0.1:%d\n", port);
  std::fflush(stderr);

  ConnectionSet connections(fd);
  for (;;) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) break;  // listener shut down by the shutdown verb
    connections.Reap();
    connections.Add(service, client);
  }
  connections.Wake();  // shutdown also any clients idle in read()
  connections.JoinAll();
  ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A client disconnecting mid-write must error that one send(), not
  // deliver a process-killing SIGPIPE (SendAll's MSG_NOSIGNAL covers the
  // sockets; this covers any stray write to a closed stdio pipe).
  std::signal(SIGPIPE, SIG_IGN);
  // Instantiating the injector up front applies VALMOD_FAULTS directives
  // at startup, so a chaos harness sees its faults listed by the `faults`
  // verb before any fault point has been hit.
  (void)valmod::fault::FaultInjector::Global();

  const Flags flags = Flags::Parse(argc, argv);
  if (valmod::Status status = flags.RejectUnknown(valmod::tools::kServerFlags);
      !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    return 2;
  }
  const bool stdio = flags.GetBool("stdio", false);
  const bool has_port = flags.Has("port");
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (!stdio && !has_port) return Usage();
  if (stdio && has_port) {
    std::fprintf(stderr, "error: --stdio and --port are exclusive\n");
    return 2;
  }
  if (!stdio && (port < 0 || port > 65535)) {
    std::fprintf(stderr, "error: --port must be in [0, 65535] (0 = pick an "
                         "ephemeral port)\n");
    return 2;
  }

  if (flags.Has("calibrate")) {
    (void)valmod::mass::CalibrateBackendCostModel();
    std::fprintf(stderr, "calibrated backend cost model (generation %llu)\n",
                 static_cast<unsigned long long>(
                     valmod::mass::BackendCostModelGeneration()));
  }

  valmod::service::ServiceOptions options;
  options.workers = static_cast<int>(flags.GetInt("workers", 4));
  options.queue_capacity =
      static_cast<std::size_t>(flags.GetInt("queue", 64));
  options.cache_capacity =
      static_cast<std::size_t>(flags.GetInt("cache", 128));
  options.default_timeout_seconds = flags.GetDouble("timeout-s", 0.0);

  Service service(options);
  if (!Preload(service, flags)) return 1;
  return stdio ? RunStdio(service) : RunTcp(service, port);
}
