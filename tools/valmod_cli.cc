// valmod_cli — command-line front end to the VALMOD suite.
//
// Subcommands (first positional argument):
//   motifs    exact top-k motif pairs per length over [--lmin, --lmax]
//   discords  exact top-k discords per length (variable-length anomalies)
//   valmap    VALMAP meta-data (MPn / IP / LP) to CSV
//   profile   fixed-length matrix profile (--l) to CSV
//   query     best matches of a query file inside the series
//   generate  write a synthetic dataset to CSV
//   version   report results version, SIMD dispatch target, CPU features
//
// Input comes from --input=<csv> (one value per line, or --column=<c>) or a
// synthetic source via --generate=<name> --n=<points> --seed=<s>.
//
// Examples:
//   valmod_cli generate --generate=ecg --n=20000 --output=ecg.csv
//   valmod_cli motifs --input=ecg.csv --lmin=100 --lmax=400 --k=3
//   valmod_cli valmap --input=ecg.csv --lmin=100 --lmax=400 --output=vm.csv
//   valmod_cli query --input=ecg.csv --query=pattern.csv --k=5

#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/flags.h"
#include "tool_flags.h"
#include "core/valmod.h"
#include "core/variable_discords.h"
#include "mass/backend.h"
#include "mass/query_search.h"
#include "mp/motif.h"
#include "mp/profile_io.h"
#include "mp/stomp.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "series/io.h"
#include "series/znorm.h"
#include "simd/dispatch.h"

namespace {

using valmod::Flags;
using valmod::Result;
using valmod::series::DataSeries;

int Fail(const valmod::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: valmod_cli <motifs|discords|valmap|profile|query|"
               "generate|version> [flags]\n"
               "  common: --input=<csv> [--column=0] [--allow-nonfinite] | "
               "--generate=<name> --n=<points> [--seed=1]\n"
               "          (loads reject nan/inf samples unless "
               "--allow-nonfinite drops them)\n"
               "  motifs/valmap/query: [--results-version=%d] (%d = "
               "calibrated cost model,\n"
               "          %d = legacy v1 bit-compat) [--calibrate] (fit "
               "backend weights here)\n"
               "  motifs/valmap: --lmin --lmax [--k=1] [--p=10] "
               "[--threads=1]\n"
               "  discords: --lmin --lmax [--k=1] [--threads=1]\n"
               "  profile: --l [--output=profile.csv]\n"
               "  query: --query=<csv> [--k=1]\n"
               "  generate: --output=<csv>\n"
               "  version: report results version, SIMD dispatch target, "
               "and CPU features\n"
               "  all but generate: [--simd=scalar|avx2|avx512|neon] "
               "(force kernel dispatch;\n"
               "          same values as VALMOD_SIMD, but a bad flag value "
               "is a hard error)\n",
               valmod::mass::kResultsVersion, valmod::mass::kResultsVersion,
               valmod::mass::kLegacyResultsVersion);
  return 2;
}

/// Reads --results-version, failing fast on versions that do not exist so
/// output is never stamped with (or silently computed under) a bogus
/// policy label. Returns < 0 after printing the error.
int ResultsVersion(const Flags& flags) {
  const int version = static_cast<int>(
      flags.GetInt("results-version", valmod::mass::kResultsVersion));
  if (!valmod::mass::IsValidResultsVersion(version)) {
    std::fprintf(stderr,
                 "error: unknown --results-version=%d (valid: %d, %d)\n",
                 version, valmod::mass::kLegacyResultsVersion,
                 valmod::mass::kResultsVersion);
    return -1;
  }
  return version;
}

/// Applies the selection-policy flags shared by every engine-backed
/// subcommand: --calibrate refits the backend cost model on this machine
/// (choice-only: per-backend numerics are unaffected).
void ApplyBackendFlags(const Flags& flags) {
  if (flags.Has("calibrate")) {
    const valmod::mass::BackendCostModel model =
        valmod::mass::CalibrateBackendCostModel();
    std::fprintf(stderr,
                 "calibrated cost model: fft_single=%.2f fft_pair=%.2f "
                 "overlap_save=%.2f overlap_save_chunk=%.2f (direct=1)\n",
                 model.fft_single, model.fft_pair, model.overlap_save,
                 model.overlap_save_chunk);
  }
}

Result<DataSeries> LoadSeries(const Flags& flags) {
  return valmod::tools::LoadSeriesFromFlags(flags);
}

int RunMotifs(const Flags& flags) {
  auto series = LoadSeries(flags);
  if (!series.ok()) return Fail(series.status());

  ApplyBackendFlags(flags);
  valmod::core::ValmodOptions options;
  options.min_length = static_cast<std::size_t>(flags.GetInt("lmin", 0));
  options.max_length = static_cast<std::size_t>(flags.GetInt("lmax", 0));
  options.k = static_cast<std::size_t>(flags.GetInt("k", 1));
  options.p = static_cast<std::size_t>(flags.GetInt("p", 10));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.results_version = ResultsVersion(flags);
  if (options.results_version < 0) return 2;
  auto result = valmod::core::RunValmod(*series, options);
  if (!result.ok()) return Fail(result.status());

  std::printf("# results_version=%d\n", options.results_version);
  std::printf("length,rank,offset_a,offset_b,distance,normalized\n");
  for (const auto& lm : result->per_length) {
    for (std::size_t r = 0; r < lm.motifs.size(); ++r) {
      const auto& m = lm.motifs[r];
      std::printf("%zu,%zu,%lld,%lld,%.10g,%.10g\n", lm.length, r + 1,
                  static_cast<long long>(m.offset_a),
                  static_cast<long long>(m.offset_b), m.distance,
                  m.normalized_distance);
    }
  }
  std::fprintf(stderr, "ranked best: %s (init %.3fs, update %.3fs)\n",
               result->ranked.empty()
                   ? "none"
                   : valmod::mp::ToString(result->ranked[0]).c_str(),
               result->init_seconds, result->update_seconds);
  return 0;
}

int RunDiscords(const Flags& flags) {
  auto series = LoadSeries(flags);
  if (!series.ok()) return Fail(series.status());

  valmod::core::VariableDiscordOptions options;
  options.min_length = static_cast<std::size_t>(flags.GetInt("lmin", 0));
  options.max_length = static_cast<std::size_t>(flags.GetInt("lmax", 0));
  options.k = static_cast<std::size_t>(flags.GetInt("k", 1));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  auto result = valmod::core::FindVariableLengthDiscords(*series, options);
  if (!result.ok()) return Fail(result.status());

  std::printf("length,rank,offset,neighbor,distance,normalized\n");
  for (const auto& ld : result->per_length) {
    for (std::size_t r = 0; r < ld.discords.size(); ++r) {
      const auto& d = ld.discords[r];
      std::printf("%zu,%zu,%lld,%lld,%.10g,%.10g\n", ld.length, r + 1,
                  static_cast<long long>(d.offset),
                  static_cast<long long>(d.nearest_neighbor), d.distance,
                  valmod::series::LengthNormalizedDistance(d.distance,
                                                           d.length));
    }
  }
  return 0;
}

int RunValmapCommand(const Flags& flags) {
  auto series = LoadSeries(flags);
  if (!series.ok()) return Fail(series.status());

  ApplyBackendFlags(flags);
  valmod::core::ValmodOptions options;
  options.min_length = static_cast<std::size_t>(flags.GetInt("lmin", 0));
  options.max_length = static_cast<std::size_t>(flags.GetInt("lmax", 0));
  options.k = static_cast<std::size_t>(flags.GetInt("k", 4));
  options.p = static_cast<std::size_t>(flags.GetInt("p", 10));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.results_version = ResultsVersion(flags);
  if (options.results_version < 0) return 2;
  auto result = valmod::core::RunValmod(*series, options);
  if (!result.ok()) return Fail(result.status());

  const auto& valmap = result->valmap;
  const std::string output = flags.GetString("output", "valmap.csv");
  std::vector<double> lp(valmap.length_profile().begin(),
                         valmap.length_profile().end());
  std::vector<double> ip(valmap.index_profile().begin(),
                         valmap.index_profile().end());
  auto status = valmod::series::WriteColumnsCsv(
      {valmod::series::Column{"mpn", valmap.normalized_profile()},
       valmod::series::Column{"index_profile", ip},
       valmod::series::Column{"length_profile", lp}},
      output);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s (%zu entries, %zu updates beyond lmin, "
              "results_version=%d)\n",
              output.c_str(), valmap.size(), valmap.updates().size(),
              options.results_version);
  return 0;
}

int RunProfile(const Flags& flags) {
  auto series = LoadSeries(flags);
  if (!series.ok()) return Fail(series.status());

  ApplyBackendFlags(flags);
  // The profile subcommand runs STOMP, a pure diagonal sweep that computes
  // no convolutions: there is no backend choice to version, so the flag
  // would be a silent no-op — say so instead of accepting it.
  if (flags.Has("results-version")) {
    std::fprintf(stderr,
                 "note: --results-version has no effect on `profile` "
                 "(STOMP computes no convolutions); it applies to the "
                 "engine-backed subcommands motifs/valmap/query\n");
  }
  const std::size_t length =
      static_cast<std::size_t>(flags.GetInt("l", 0));
  valmod::mp::ProfileOptions options;
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  auto profile = valmod::mp::ComputeStomp(*series, length, options);
  if (!profile.ok()) return Fail(profile.status());

  const std::string output = flags.GetString("output", "profile.csv");
  auto status = valmod::mp::WriteProfileCsv(*profile, output);
  if (!status.ok()) return Fail(status);

  auto motifs = valmod::mp::ExtractTopKMotifs(
      *profile, static_cast<std::size_t>(flags.GetInt("k", 3)));
  if (motifs.ok()) {
    for (std::size_t r = 0; r < motifs->size(); ++r) {
      std::printf("motif %zu: %s\n", r + 1,
                  valmod::mp::ToString((*motifs)[r]).c_str());
    }
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}

int RunQuery(const Flags& flags) {
  auto series = LoadSeries(flags);
  if (!series.ok()) return Fail(series.status());
  auto query_series = valmod::series::ReadDelimited(
      flags.GetString("query", ""),
      static_cast<std::size_t>(flags.GetInt("column", 0)));
  if (!query_series.ok()) return Fail(query_series.status());

  ApplyBackendFlags(flags);
  valmod::mass::QuerySearchOptions options;
  options.k = static_cast<std::size_t>(flags.GetInt("k", 1));
  options.results_version = ResultsVersion(flags);
  if (options.results_version < 0) return 2;
  std::vector<double> query(query_series->values().begin(),
                            query_series->values().end());
  auto matches = valmod::mass::FindQueryMatches(*series, query, options);
  if (!matches.ok()) return Fail(matches.status());

  std::printf("# results_version=%d\n", options.results_version);
  std::printf("rank,offset,distance\n");
  for (std::size_t r = 0; r < matches->size(); ++r) {
    std::printf("%zu,%lld,%.10g\n", r + 1,
                static_cast<long long>((*matches)[r].offset),
                (*matches)[r].distance);
  }
  return 0;
}

/// `valmod_cli version` (also reachable as `valmod_cli --version`): build
/// and runtime facts, one `key: value` per line so scripts — including the
/// CI per-target loop — can `sed` out a field without parsing JSON.
/// `simd_supported` lists every dispatch target this build can run on this
/// machine, best first; `simd_target` is the one currently active (after
/// VALMOD_SIMD / --simd resolution).
int RunVersion(const Flags&) {
  std::printf("results_version: %d\n", valmod::mass::kResultsVersion);
  std::printf("results_versions_supported: %d %d\n",
              valmod::mass::kLegacyResultsVersion,
              valmod::mass::kResultsVersion);
  std::printf("simd_target: %s\n",
              valmod::simd::TargetName(valmod::simd::ActiveTarget()));
  std::string supported;
  for (const valmod::simd::Target target : valmod::simd::SupportedTargets()) {
    if (!supported.empty()) supported += ' ';
    supported += valmod::simd::TargetName(target);
  }
  std::printf("simd_supported: %s\n", supported.c_str());
  std::printf("cpu_features: %s\n",
              valmod::simd::CpuFeatureString().c_str());
  return 0;
}

int RunGenerate(const Flags& flags) {
  auto series = LoadSeries(flags);
  if (!series.ok()) return Fail(series.status());
  const std::string output = flags.GetString("output", "series.csv");
  auto status = valmod::series::WriteDelimited(*series, output);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu points to %s\n", series->size(), output.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  // `valmod_cli --version` is the conventional spelling; it aliases the
  // `version` subcommand.
  if (flags.positional().empty()) {
    if (flags.Has("version")) return RunVersion(flags);
    return Usage();
  }
  const std::string command = flags.positional()[0];

  // Every subcommand has a closed flag table (tools/tool_flags.h, shared
  // with valmod_server): an unrecognized flag is a usage error, so a typo
  // like `--thread=4` fails loudly instead of silently running with the
  // default thread count.
  std::span<const std::string_view> known;
  if (command == "motifs") known = valmod::tools::kMotifsFlags;
  else if (command == "discords") known = valmod::tools::kDiscordsFlags;
  else if (command == "valmap") known = valmod::tools::kValmapFlags;
  else if (command == "profile") known = valmod::tools::kProfileFlags;
  else if (command == "query") known = valmod::tools::kQueryFlags;
  else if (command == "generate") known = valmod::tools::kGenerateFlags;
  else if (command == "version") known = valmod::tools::kVersionFlags;
  else return Usage();
  if (valmod::Status status = flags.RejectUnknown(known); !status.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", command.c_str(),
                 status.message().c_str());
    return 2;
  }

  // Force the SIMD dispatch target before anything computes — in
  // particular before --calibrate, so calibration prices the kernels that
  // will actually run under the forced target.
  if (valmod::Status status = valmod::tools::ApplySimdFlag(flags);
      !status.ok()) {
    std::fprintf(stderr, "error: --simd: %s\n", status.message().c_str());
    return 2;
  }

  if (command == "version") return RunVersion(flags);
  if (command == "motifs") return RunMotifs(flags);
  if (command == "discords") return RunDiscords(flags);
  if (command == "valmap") return RunValmapCommand(flags);
  if (command == "profile") return RunProfile(flags);
  if (command == "query") return RunQuery(flags);
  return RunGenerate(flags);
}
