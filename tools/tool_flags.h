#ifndef VALMOD_TOOLS_TOOL_FLAGS_H_
#define VALMOD_TOOLS_TOOL_FLAGS_H_

// Per-subcommand flag tables shared by the tool front ends (valmod_cli and
// valmod_server). Each tool validates its parsed flags against the table
// with Flags::RejectUnknown, so a typo'd flag (`--thread=4`, `--lmax`
// misspelled) is a hard usage error instead of a silently applied default.
// Keeping the tables next to each other — and shared between the binaries —
// means the CLI and the server cannot drift apart on what a subcommand
// accepts.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/flags.h"
#include "common/result.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "series/io.h"
#include "simd/dispatch.h"

namespace valmod::tools {

/// Dataset-source flags accepted by every series-consuming subcommand.
/// `--allow-nonfinite` is the escape hatch for files carrying nan/inf
/// samples: loads reject them by default (series::ReadOptions).
inline constexpr std::string_view kSourceFlags[] = {
    "input", "column", "generate", "n", "seed", "allow-nonfinite",
};

/// Loads the series the source flags describe — `--input=<csv>
/// [--column=c] [--allow-nonfinite]` or `--generate=<name> [--n] [--seed]`
/// — with one set of defaults shared by valmod_cli and valmod_server
/// (--preload), so the two binaries cannot drift apart on source semantics
/// any more than on flag tables.
inline Result<series::DataSeries> LoadSeriesFromFlags(const Flags& flags) {
  if (flags.Has("input")) {
    series::ReadOptions options;
    options.allow_nonfinite = flags.GetBool("allow-nonfinite", false);
    return series::ReadDelimited(
        flags.GetString("input", ""),
        static_cast<std::size_t>(flags.GetInt("column", 0)), options);
  }
  return synth::ByName(flags.GetString("generate", "ecg"),
                       static_cast<std::size_t>(flags.GetInt("n", 20000)),
                       static_cast<std::uint64_t>(flags.GetInt("seed", 1)));
}

/// Applies the shared `--simd=<scalar|avx2|avx512|neon>` flag: forces the
/// runtime SIMD dispatch target, exactly like the VALMOD_SIMD environment
/// variable (the flag wins over the env var because it is applied after
/// startup resolution). Unlike the env var — which only warns, so a bad
/// ops-side value cannot take down a server — the flag is a hard usage
/// error on unknown or unsupported targets. Apply *before* --calibrate so
/// calibration prices the kernels that will actually run.
inline Status ApplySimdFlag(const Flags& flags) {
  if (!flags.Has("simd")) return Status::Ok();
  VALMOD_ASSIGN_OR_RETURN(simd::Target target,
                          simd::ParseTarget(flags.GetString("simd", "")));
  return simd::SetTarget(target);
}

inline constexpr std::string_view kMotifsFlags[] = {
    "input", "column", "generate", "n", "seed", "allow-nonfinite",
    "lmin", "lmax", "k", "p", "threads", "results-version", "calibrate",
    "simd",
};

inline constexpr std::string_view kDiscordsFlags[] = {
    "input", "column", "generate", "n", "seed", "allow-nonfinite",
    "lmin", "lmax", "k", "threads", "simd",
};

inline constexpr std::string_view kValmapFlags[] = {
    "input", "column", "generate", "n", "seed", "allow-nonfinite",
    "lmin", "lmax", "k", "p", "threads", "results-version", "calibrate",
    "output", "simd",
};

inline constexpr std::string_view kProfileFlags[] = {
    "input", "column", "generate", "n", "seed", "allow-nonfinite",
    "l", "k", "threads", "results-version", "calibrate", "output", "simd",
};

inline constexpr std::string_view kQueryFlags[] = {
    "input", "column", "generate", "n", "seed", "allow-nonfinite",
    "query", "k", "results-version", "calibrate", "simd",
};

inline constexpr std::string_view kGenerateFlags[] = {
    "input", "column", "generate", "n", "seed", "allow-nonfinite", "output",
};

/// The `version` subcommand reports build/runtime facts; it takes no flags
/// but keeps a (closed, empty-but-for-help) table so a typo is still
/// rejected like everywhere else.
inline constexpr std::string_view kVersionFlags[] = {
    "version",
};

/// valmod_server accepts its serving knobs plus the same source flags (for
/// --preload, which loads a dataset before serving).
inline constexpr std::string_view kServerFlags[] = {
    "input", "column", "generate", "n", "seed", "allow-nonfinite",
    "stdio", "port", "workers", "queue", "cache", "timeout-s", "preload",
    "calibrate", "event-loop", "max-inflight", "page-bytes", "simd",
    "log-level", "log-json", "slowlog", "no-trace",
};

}  // namespace valmod::tools

#endif  // VALMOD_TOOLS_TOOL_FLAGS_H_
