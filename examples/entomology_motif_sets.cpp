// Entomology scenario (paper §4): insect EPG probing bursts repeat with
// *different durations*, so a fixed-length search misses part of the
// structure. Compare the fixed-length view with the variable-length ranking
// and expand the best motifs of several lengths into motif sets.
//
//   ./build/examples/entomology_motif_sets [--n=20000] [--lmin=40]
//                                          [--lmax=160]

#include <cstdio>

#include "common/flags.h"
#include "core/motif_set.h"
#include "core/valmod.h"
#include "mp/motif.h"
#include "series/generators.h"

namespace {

int Run(int argc, char** argv) {
  const valmod::Flags flags = valmod::Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 20000));
  const std::size_t lmin = static_cast<std::size_t>(flags.GetInt("lmin", 40));
  const std::size_t lmax = static_cast<std::size_t>(flags.GetInt("lmax", 160));

  valmod::synth::EntomologyOptions epg;
  epg.length = n;
  epg.seed = 21;
  epg.expected_bursts = 14.0;
  auto series = valmod::synth::Entomology(epg);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  std::printf("EPG series: %zu samples, bursts of %.0f-%.0f samples\n",
              series->size(), epg.min_burst_duration, epg.max_burst_duration);

  valmod::core::ValmodOptions options;
  options.min_length = lmin;
  options.max_length = lmax;
  options.k = 3;
  options.num_threads = 4;
  auto result = valmod::core::RunValmod(*series, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // The fixed-length answer a traditional tool would give.
  if (!result->per_length.front().motifs.empty()) {
    std::printf("\nfixed-length answer (l = %zu): %s\n", lmin,
                valmod::mp::ToString(result->per_length.front().motifs[0])
                    .c_str());
  }

  // The variable-length answer: one ranking across all lengths.
  std::printf("\nvariable-length ranking (top 5 across lengths %zu-%zu):\n",
              lmin, lmax);
  for (std::size_t i = 0; i < result->ranked.size() && i < 5; ++i) {
    std::printf("  #%zu %s\n", i + 1,
                valmod::mp::ToString(result->ranked[i]).c_str());
  }

  // Expand the best pair of three well-separated lengths into motif sets:
  // how often does each burst scale recur?
  std::printf("\nmotif sets at three scales:\n");
  std::printf("%8s %12s %12s %10s\n", "length", "pair dist", "radius",
              "members");
  for (std::size_t length : {lmin, (lmin + lmax) / 2, lmax}) {
    const auto& lm = result->per_length[length - lmin];
    if (lm.motifs.empty()) continue;
    valmod::core::MotifSetOptions set_options;
    set_options.radius_factor = 2.0;
    auto set = valmod::core::ExpandMotifSet(*series, lm.motifs[0],
                                            set_options);
    if (!set.ok()) continue;
    std::printf("%8zu %12.4f %12.4f %10zu\n", length, lm.motifs[0].distance,
                set->radius, set->members.size());
  }

  // Pruning statistics: the machinery of paper Figure 2 at work.
  std::size_t recomputed = 0, valid = 0, invalid = 0;
  for (const auto& s : result->stats) {
    recomputed += s.recomputed_rows;
    valid += s.valid_rows;
    invalid += s.invalid_rows;
  }
  std::printf("\npruning: %zu rows certified by partial profiles, %zu not, "
              "%zu recomputed exactly (%.2f%% of row-lengths)\n",
              valid, invalid, recomputed,
              100.0 * static_cast<double>(recomputed) /
                  static_cast<double>(valid + invalid + 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
