// Quickstart: plant a motif in a random walk, run VALMOD over a length
// range, and print the per-length motifs, the cross-length ranking, and the
// VALMAP summary.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--n=8000] [--lmin=80] [--lmax=160] [--k=2]

#include <cstdio>

#include "common/flags.h"
#include "core/valmod.h"
#include "mp/motif.h"
#include "series/generators.h"

namespace {

int Run(int argc, char** argv) {
  const valmod::Flags flags = valmod::Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 8000));
  const std::size_t lmin = static_cast<std::size_t>(flags.GetInt("lmin", 80));
  const std::size_t lmax = static_cast<std::size_t>(flags.GetInt("lmax", 160));
  const std::size_t k = static_cast<std::size_t>(flags.GetInt("k", 2));

  // A series with a known repeated pattern of length ~120.
  valmod::synth::PlantedMotifOptions plant;
  plant.length = n;
  plant.seed = 42;
  plant.motif_length = 120;
  plant.occurrences = 3;
  auto planted = valmod::synth::PlantedMotif(plant);
  if (!planted.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 planted.status().ToString().c_str());
    return 1;
  }
  std::printf("series: %zu points; planted motif of length %zu at offsets",
              planted->series.size(), plant.motif_length);
  for (std::size_t offset : planted->motif_offsets) {
    std::printf(" %zu", offset);
  }
  std::printf("\n\n");

  // The one-call public API: exact top-k motifs for every length in range.
  valmod::core::ValmodOptions options;
  options.min_length = lmin;
  options.max_length = lmax;
  options.k = k;
  options.num_threads = 4;
  auto result = valmod::core::RunValmod(planted->series, options);
  if (!result.ok()) {
    std::fprintf(stderr, "VALMOD failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("top motif per length (every 20th length shown):\n");
  std::printf("%8s %10s %10s %12s %14s\n", "length", "offset_a", "offset_b",
              "distance", "normalized");
  for (std::size_t i = 0; i < result->per_length.size(); i += 20) {
    const auto& lm = result->per_length[i];
    if (lm.motifs.empty()) continue;
    const auto& m = lm.motifs[0];
    std::printf("%8zu %10lld %10lld %12.4f %14.4f\n", lm.length,
                static_cast<long long>(m.offset_a),
                static_cast<long long>(m.offset_b), m.distance,
                m.normalized_distance);
  }

  std::printf("\ncross-length ranking (top 5 by length-normalized distance):\n");
  for (std::size_t i = 0; i < result->ranked.size() && i < 5; ++i) {
    std::printf("  #%zu %s\n", i + 1,
                valmod::mp::ToString(result->ranked[i]).c_str());
  }

  const auto best = result->valmap.BestOffset();
  if (best.ok()) {
    std::printf("\nVALMAP: best entry at offset %zu "
                "(match %lld, length %zu, normalized %.4f)\n",
                *best,
                static_cast<long long>(result->valmap.index_profile()[*best]),
                result->valmap.length_profile()[*best],
                result->valmap.normalized_profile()[*best]);
  }
  std::printf("timing: init %.3fs, variable-length phase %.3fs\n",
              result->init_seconds, result->update_seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
