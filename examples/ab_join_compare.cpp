// Cross-series comparison with an AB-join: find which patterns of one
// recording also occur in another (here: two ECG "patients" sharing beat
// morphology, plus a planted common artifact), and which are unique.
//
//   ./build/examples/ab_join_compare [--n=6000] [--l=80]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "mp/ab_join.h"
#include "series/data_series.h"
#include "series/generators.h"

namespace {

int Run(int argc, char** argv) {
  const valmod::Flags flags = valmod::Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 6000));
  const std::size_t l = static_cast<std::size_t>(flags.GetInt("l", 80));

  // Two "patients": same generator family, different seeds and rates.
  valmod::synth::EcgOptions opts_a;
  opts_a.length = n;
  opts_a.seed = 1;
  opts_a.samples_per_beat = 320.0;
  valmod::synth::EcgOptions opts_b = opts_a;
  opts_b.seed = 2;
  opts_b.samples_per_beat = 410.0;
  auto gen_a = valmod::synth::Ecg(opts_a);
  auto gen_b = valmod::synth::Ecg(opts_b);
  if (!gen_a.ok() || !gen_b.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }

  // Plant one exactly shared artifact in both recordings.
  std::vector<double> va(gen_a->values().begin(), gen_a->values().end());
  std::vector<double> vb(gen_b->values().begin(), gen_b->values().end());
  const std::size_t artifact_a = n / 3, artifact_b = 2 * n / 3;
  for (std::size_t t = 0; t < l; ++t) {
    const double v =
        0.8 * std::sin(static_cast<double>(t) * 0.21) +
        0.3 * std::sin(static_cast<double>(t) * 0.77);
    va[artifact_a + t] = v;
    vb[artifact_b + t] = v;
  }
  auto a = valmod::series::DataSeries::Create(std::move(va));
  auto b = valmod::series::DataSeries::Create(std::move(vb));
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "series creation failed\n");
    return 1;
  }

  auto join = valmod::mp::ComputeAbJoin(*a, *b, l, {});
  if (!join.ok()) {
    std::fprintf(stderr, "%s\n", join.status().ToString().c_str());
    return 1;
  }

  // The join profile's minima are the most-shared patterns; its maxima are
  // what patient A exhibits that patient B never does.
  std::size_t best = 0, worst = 0;
  for (std::size_t i = 0; i < join->size(); ++i) {
    if (join->distances[i] < join->distances[best]) best = i;
    if (join->distances[i] > join->distances[worst] &&
        join->distances[i] != valmod::mp::kInfinity) {
      worst = i;
    }
  }
  std::printf("AB-join of patient A (%zu pts) vs patient B (%zu pts), "
              "l=%zu\n",
              a->size(), b->size(), l);
  std::printf("most shared subsequence: A@%zu -> B@%lld (d=%.4f)\n", best,
              static_cast<long long>(join->indices[best]),
              join->distances[best]);
  std::printf("planted artifact was A@%zu -> B@%zu\n", artifact_a,
              artifact_b);
  std::printf("most unique-to-A subsequence: A@%zu (nearest in B: %.4f)\n",
              worst, join->distances[worst]);

  const bool found_artifact =
      std::llabs(static_cast<long long>(best) -
                 static_cast<long long>(artifact_a)) <= 4 &&
      std::llabs(join->indices[best] -
                 static_cast<long long>(artifact_b)) <= 4;
  std::printf("artifact %s by the join minimum\n",
              found_artifact ? "RECOVERED" : "not recovered");
  return found_artifact ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
