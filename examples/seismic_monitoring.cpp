// Seismology scenario (paper §4, "Need for Variable Length Motifs"):
// repeated earthquake waveforms of unknown duration are motifs. Search a
// length range, expand the best motif into its motif set, and score the
// detections against the generator's ground-truth event onsets.
//
//   ./build/examples/seismic_monitoring [--n=30000] [--events=12]
//                                       [--lmin=120] [--lmax=240]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/flags.h"
#include "core/motif_set.h"
#include "core/valmod.h"
#include "mp/motif.h"
#include "series/generators.h"

namespace {

int Run(int argc, char** argv) {
  const valmod::Flags flags = valmod::Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 30000));
  const double events = flags.GetDouble("events", 12.0);
  const std::size_t lmin = static_cast<std::size_t>(flags.GetInt("lmin", 120));
  const std::size_t lmax = static_cast<std::size_t>(flags.GetInt("lmax", 240));

  valmod::synth::SeismicOptions seismic;
  seismic.length = n;
  seismic.seed = 99;
  seismic.expected_events = events;
  seismic.event_duration = 300.0;
  seismic.event_jitter = 0.08;
  auto generated = valmod::synth::Seismic(seismic);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  std::printf("seismograph: %zu samples, %zu inserted events\n",
              generated->series.size(), generated->event_onsets.size());

  valmod::core::ValmodOptions options;
  options.min_length = lmin;
  options.max_length = lmax;
  options.k = 2;
  options.num_threads = 4;
  auto result = valmod::core::RunValmod(generated->series, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (result->ranked.empty()) {
    std::printf("no motifs found\n");
    return 0;
  }
  const valmod::mp::MotifPair& top = result->ranked[0];
  std::printf("best cross-length motif: %s\n",
              valmod::mp::ToString(top).c_str());

  valmod::core::MotifSetOptions set_options;
  set_options.radius_factor = 2.5;
  auto set =
      valmod::core::ExpandMotifSet(generated->series, top, set_options);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  std::printf("motif set: %zu members within radius %.3f\n",
              set->members.size(), set->radius);

  // Score detections: a member within half an event of a true onset is a hit.
  const int64_t slack = static_cast<int64_t>(seismic.event_duration / 2);
  std::size_t hits = 0;
  std::printf("\n%12s %16s %10s\n", "true onset", "nearest member", "hit");
  for (std::size_t onset : generated->event_onsets) {
    int64_t nearest = -1;
    int64_t best_gap = slack + 1;
    for (const auto& member : set->members) {
      const int64_t gap =
          std::llabs(member.offset - static_cast<int64_t>(onset));
      if (gap < best_gap) {
        best_gap = gap;
        nearest = member.offset;
      }
    }
    const bool hit = nearest >= 0;
    hits += hit ? 1 : 0;
    std::printf("%12zu %16lld %10s\n", onset,
                static_cast<long long>(nearest), hit ? "yes" : "no");
  }
  std::printf("\nrecall: %zu / %zu events detected via one motif expansion\n",
              hits, generated->event_onsets.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
