// Anomaly scanning with variable-length discords (the journal extension of
// VALMOD): corrupt one stretch of a periodic signal, then find the most
// anomalous subsequence without knowing the anomaly's duration.
//
//   ./build/examples/anomaly_scan [--n=4000] [--lmin=40] [--lmax=120]

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "core/variable_discords.h"
#include "series/data_series.h"
#include "series/generators.h"

namespace {

int Run(int argc, char** argv) {
  const valmod::Flags flags = valmod::Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 4000));
  const std::size_t lmin = static_cast<std::size_t>(flags.GetInt("lmin", 40));
  const std::size_t lmax = static_cast<std::size_t>(flags.GetInt("lmax", 120));

  auto clean = valmod::synth::Sine({.length = n,
                                    .seed = 4,
                                    .period = 80.0,
                                    .amplitude = 1.0,
                                    .noise_stddev = 0.03});
  if (!clean.ok()) {
    std::fprintf(stderr, "%s\n", clean.status().ToString().c_str());
    return 1;
  }
  // Inject a structured corruption of ~90 samples.
  const std::size_t anomaly_start = n / 2;
  const std::size_t anomaly_length = 90;
  std::vector<double> data(clean->values().begin(), clean->values().end());
  for (std::size_t i = anomaly_start;
       i < anomaly_start + anomaly_length && i < n; ++i) {
    data[i] += ((i % 13) < 6 ? 1.5 : -1.1);
  }
  auto series = valmod::series::DataSeries::Create(std::move(data));
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  std::printf("periodic series of %zu points, anomaly injected at "
              "[%zu, %zu)\n",
              n, anomaly_start, anomaly_start + anomaly_length);

  valmod::core::VariableDiscordOptions options;
  options.min_length = lmin;
  options.max_length = lmax;
  options.k = 2;
  options.num_threads = 4;
  auto result =
      valmod::core::FindVariableLengthDiscords(*series, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\ntop discords across lengths [%zu, %zu] "
              "(length-normalized score):\n",
              lmin, lmax);
  std::printf("%6s %10s %8s %12s %12s\n", "rank", "offset", "length",
              "distance", "normalized");
  for (std::size_t i = 0; i < result->ranked.size() && i < 8; ++i) {
    const auto& rd = result->ranked[i];
    std::printf("%6zu %10lld %8zu %12.4f %12.4f\n", i + 1,
                static_cast<long long>(rd.discord.offset), rd.discord.length,
                rd.discord.distance, rd.normalized_distance);
  }

  const auto& top = result->ranked.front().discord;
  const bool hit =
      top.offset + static_cast<int64_t>(top.length) >
          static_cast<int64_t>(anomaly_start) &&
      top.offset < static_cast<int64_t>(anomaly_start + anomaly_length);
  std::printf("\ntop discord %s the injected anomaly\n",
              hit ? "OVERLAPS" : "missed");
  return hit ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
