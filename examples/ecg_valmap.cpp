// The paper's Figure 1 walkthrough on a synthetic ECG: a fixed-length matrix
// profile at l = 50 finds only a fragment of the heartbeat, while VALMAP
// over [50, 400] surfaces the full beat. Emits the figure's data as CSVs.
//
//   ./build/examples/ecg_valmap [--n=5000] [--lmin=50] [--lmax=400]
//                               [--out-dir=.]

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "core/valmod.h"
#include "mp/motif.h"
#include "series/generators.h"
#include "series/io.h"

namespace {

using valmod::series::Column;

int Run(int argc, char** argv) {
  const valmod::Flags flags = valmod::Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 5000));
  const std::size_t lmin = static_cast<std::size_t>(flags.GetInt("lmin", 50));
  const std::size_t lmax = static_cast<std::size_t>(flags.GetInt("lmax", 400));
  const std::string out_dir = flags.GetString("out-dir", ".");

  valmod::synth::EcgOptions ecg;
  ecg.length = n;
  ecg.seed = 7;
  ecg.samples_per_beat = 400.0;  // full beat scale, as in Figure 1(d)
  auto series = valmod::synth::Ecg(ecg);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }

  valmod::core::ValmodOptions options;
  options.min_length = lmin;
  options.max_length = lmax;
  options.k = 4;
  options.num_threads = 4;
  auto result = valmod::core::RunValmod(*series, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // --- Figure 1 left: fixed-length view at lmin -----------------------------
  const auto& profile = result->min_length_profile;
  auto fixed_motifs = valmod::mp::ExtractTopKMotifs(profile, 2);
  std::printf("fixed-length matrix profile (l = %zu):\n", lmin);
  if (fixed_motifs.ok()) {
    for (const auto& m : *fixed_motifs) {
      std::printf("  motif %s\n", valmod::mp::ToString(m).c_str());
    }
  }

  // --- Figure 1 right: VALMAP over [lmin, lmax] -----------------------------
  const auto& valmap = result->valmap;
  auto best = valmap.BestOffset();
  if (best.ok()) {
    std::printf("\nVALMAP over [%zu, %zu]:\n", lmin, lmax);
    std::printf("  best normalized motif: offset %zu, match %lld, "
                "length %zu, dn = %.4f\n",
                *best,
                static_cast<long long>(valmap.index_profile()[*best]),
                valmap.length_profile()[*best],
                valmap.normalized_profile()[*best]);
  }

  // Length-profile histogram: where do best matches live on the length axis?
  std::size_t at_min = 0, beyond = 0, full_beat = 0;
  for (std::size_t l : valmap.length_profile()) {
    if (l == lmin) {
      ++at_min;
    } else {
      ++beyond;
      if (l >= 3 * ecg.samples_per_beat / 4) ++full_beat;
    }
  }
  std::printf("  length profile: %zu entries at lmin, %zu updated to longer "
              "lengths (%zu at full-beat scale >= %.0f)\n",
              at_min, beyond, full_beat, 3 * ecg.samples_per_beat / 4);
  std::printf("  VALMAP updates recorded: %zu\n", valmap.updates().size());

  // The paper's key comparison: the best raw-distance motif at lmin vs the
  // best normalized motif across the range.
  std::printf("\ncross-length ranking (top 3):\n");
  for (std::size_t i = 0; i < result->ranked.size() && i < 3; ++i) {
    std::printf("  #%zu %s\n", i + 1,
                valmod::mp::ToString(result->ranked[i]).c_str());
  }

  // --- CSV artifacts ---------------------------------------------------------
  std::vector<double> mp_values(profile.distances);
  std::vector<double> ip_values(profile.indices.begin(),
                                profile.indices.end());
  std::vector<double> raw(series->values().begin(), series->values().end());
  std::vector<double> mpn(valmap.normalized_profile());
  std::vector<double> lp(valmap.length_profile().begin(),
                         valmap.length_profile().end());
  std::vector<double> vip(valmap.index_profile().begin(),
                          valmap.index_profile().end());

  const std::string fixed_path = out_dir + "/fig1_left_fixed_length.csv";
  const std::string valmap_path = out_dir + "/fig1_right_valmap.csv";
  auto status = valmod::series::WriteColumnsCsv(
      {Column{"ecg", raw}, Column{"matrix_profile_l" + std::to_string(lmin),
                                  mp_values},
       Column{"index_profile", ip_values}},
      fixed_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  status = valmod::series::WriteColumnsCsv(
      {Column{"ecg", raw}, Column{"valmap_mpn", mpn},
       Column{"valmap_index_profile", vip},
       Column{"valmap_length_profile", lp}},
      valmap_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s and %s\n", fixed_path.c_str(), valmap_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
