file(REMOVE_RECURSE
  "CMakeFiles/query_search_test.dir/tests/query_search_test.cc.o"
  "CMakeFiles/query_search_test.dir/tests/query_search_test.cc.o.d"
  "query_search_test"
  "query_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
