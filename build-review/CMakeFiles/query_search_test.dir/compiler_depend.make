# Empty compiler generated dependencies file for query_search_test.
# This may be replaced when dependencies are built.
