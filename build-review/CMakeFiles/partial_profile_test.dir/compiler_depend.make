# Empty compiler generated dependencies file for partial_profile_test.
# This may be replaced when dependencies are built.
