file(REMOVE_RECURSE
  "CMakeFiles/partial_profile_test.dir/tests/partial_profile_test.cc.o"
  "CMakeFiles/partial_profile_test.dir/tests/partial_profile_test.cc.o.d"
  "partial_profile_test"
  "partial_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
