file(REMOVE_RECURSE
  "CMakeFiles/profile_consistency_fuzz_test.dir/tests/profile_consistency_fuzz_test.cc.o"
  "CMakeFiles/profile_consistency_fuzz_test.dir/tests/profile_consistency_fuzz_test.cc.o.d"
  "profile_consistency_fuzz_test"
  "profile_consistency_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_consistency_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
