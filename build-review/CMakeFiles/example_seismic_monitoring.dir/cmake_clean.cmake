file(REMOVE_RECURSE
  "CMakeFiles/example_seismic_monitoring.dir/examples/seismic_monitoring.cpp.o"
  "CMakeFiles/example_seismic_monitoring.dir/examples/seismic_monitoring.cpp.o.d"
  "example_seismic_monitoring"
  "example_seismic_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_seismic_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
