# Empty dependencies file for example_seismic_monitoring.
# This may be replaced when dependencies are built.
