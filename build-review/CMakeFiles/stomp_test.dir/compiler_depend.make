# Empty compiler generated dependencies file for stomp_test.
# This may be replaced when dependencies are built.
