file(REMOVE_RECURSE
  "CMakeFiles/stomp_test.dir/tests/stomp_test.cc.o"
  "CMakeFiles/stomp_test.dir/tests/stomp_test.cc.o.d"
  "stomp_test"
  "stomp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
