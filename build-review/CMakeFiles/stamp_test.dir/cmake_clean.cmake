file(REMOVE_RECURSE
  "CMakeFiles/stamp_test.dir/tests/stamp_test.cc.o"
  "CMakeFiles/stamp_test.dir/tests/stamp_test.cc.o.d"
  "stamp_test"
  "stamp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
