# Empty dependencies file for stamp_test.
# This may be replaced when dependencies are built.
