# Empty dependencies file for valmod_cli.
# This may be replaced when dependencies are built.
