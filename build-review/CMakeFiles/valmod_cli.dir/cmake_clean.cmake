file(REMOVE_RECURSE
  "CMakeFiles/valmod_cli.dir/tools/valmod_cli.cc.o"
  "CMakeFiles/valmod_cli.dir/tools/valmod_cli.cc.o.d"
  "valmod_cli"
  "valmod_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valmod_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
