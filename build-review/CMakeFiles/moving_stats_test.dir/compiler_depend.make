# Empty compiler generated dependencies file for moving_stats_test.
# This may be replaced when dependencies are built.
