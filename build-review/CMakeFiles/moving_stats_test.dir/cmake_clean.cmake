file(REMOVE_RECURSE
  "CMakeFiles/moving_stats_test.dir/tests/moving_stats_test.cc.o"
  "CMakeFiles/moving_stats_test.dir/tests/moving_stats_test.cc.o.d"
  "moving_stats_test"
  "moving_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
