# Empty dependencies file for pan_profile_test.
# This may be replaced when dependencies are built.
