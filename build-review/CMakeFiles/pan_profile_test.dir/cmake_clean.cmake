file(REMOVE_RECURSE
  "CMakeFiles/pan_profile_test.dir/tests/pan_profile_test.cc.o"
  "CMakeFiles/pan_profile_test.dir/tests/pan_profile_test.cc.o.d"
  "pan_profile_test"
  "pan_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
