# Empty compiler generated dependencies file for znorm_test.
# This may be replaced when dependencies are built.
