file(REMOVE_RECURSE
  "CMakeFiles/znorm_test.dir/tests/znorm_test.cc.o"
  "CMakeFiles/znorm_test.dir/tests/znorm_test.cc.o.d"
  "znorm_test"
  "znorm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/znorm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
