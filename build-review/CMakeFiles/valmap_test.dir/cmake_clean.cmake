file(REMOVE_RECURSE
  "CMakeFiles/valmap_test.dir/tests/valmap_test.cc.o"
  "CMakeFiles/valmap_test.dir/tests/valmap_test.cc.o.d"
  "valmap_test"
  "valmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
