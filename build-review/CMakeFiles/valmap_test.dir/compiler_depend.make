# Empty compiler generated dependencies file for valmap_test.
# This may be replaced when dependencies are built.
