
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/moen.cc" "CMakeFiles/valmod.dir/src/baselines/moen.cc.o" "gcc" "CMakeFiles/valmod.dir/src/baselines/moen.cc.o.d"
  "/root/repo/src/baselines/quick_motif.cc" "CMakeFiles/valmod.dir/src/baselines/quick_motif.cc.o" "gcc" "CMakeFiles/valmod.dir/src/baselines/quick_motif.cc.o.d"
  "/root/repo/src/baselines/stomp_range.cc" "CMakeFiles/valmod.dir/src/baselines/stomp_range.cc.o" "gcc" "CMakeFiles/valmod.dir/src/baselines/stomp_range.cc.o.d"
  "/root/repo/src/common/flags.cc" "CMakeFiles/valmod.dir/src/common/flags.cc.o" "gcc" "CMakeFiles/valmod.dir/src/common/flags.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/valmod.dir/src/common/status.cc.o" "gcc" "CMakeFiles/valmod.dir/src/common/status.cc.o.d"
  "/root/repo/src/core/lower_bound.cc" "CMakeFiles/valmod.dir/src/core/lower_bound.cc.o" "gcc" "CMakeFiles/valmod.dir/src/core/lower_bound.cc.o.d"
  "/root/repo/src/core/motif_set.cc" "CMakeFiles/valmod.dir/src/core/motif_set.cc.o" "gcc" "CMakeFiles/valmod.dir/src/core/motif_set.cc.o.d"
  "/root/repo/src/core/motif_set_enumeration.cc" "CMakeFiles/valmod.dir/src/core/motif_set_enumeration.cc.o" "gcc" "CMakeFiles/valmod.dir/src/core/motif_set_enumeration.cc.o.d"
  "/root/repo/src/core/partial_profile.cc" "CMakeFiles/valmod.dir/src/core/partial_profile.cc.o" "gcc" "CMakeFiles/valmod.dir/src/core/partial_profile.cc.o.d"
  "/root/repo/src/core/valmap.cc" "CMakeFiles/valmod.dir/src/core/valmap.cc.o" "gcc" "CMakeFiles/valmod.dir/src/core/valmap.cc.o.d"
  "/root/repo/src/core/valmod.cc" "CMakeFiles/valmod.dir/src/core/valmod.cc.o" "gcc" "CMakeFiles/valmod.dir/src/core/valmod.cc.o.d"
  "/root/repo/src/core/variable_discords.cc" "CMakeFiles/valmod.dir/src/core/variable_discords.cc.o" "gcc" "CMakeFiles/valmod.dir/src/core/variable_discords.cc.o.d"
  "/root/repo/src/fft/fft.cc" "CMakeFiles/valmod.dir/src/fft/fft.cc.o" "gcc" "CMakeFiles/valmod.dir/src/fft/fft.cc.o.d"
  "/root/repo/src/fft/plan.cc" "CMakeFiles/valmod.dir/src/fft/plan.cc.o" "gcc" "CMakeFiles/valmod.dir/src/fft/plan.cc.o.d"
  "/root/repo/src/mass/backend.cc" "CMakeFiles/valmod.dir/src/mass/backend.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mass/backend.cc.o.d"
  "/root/repo/src/mass/engine.cc" "CMakeFiles/valmod.dir/src/mass/engine.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mass/engine.cc.o.d"
  "/root/repo/src/mass/mass.cc" "CMakeFiles/valmod.dir/src/mass/mass.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mass/mass.cc.o.d"
  "/root/repo/src/mass/query_search.cc" "CMakeFiles/valmod.dir/src/mass/query_search.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mass/query_search.cc.o.d"
  "/root/repo/src/mp/ab_join.cc" "CMakeFiles/valmod.dir/src/mp/ab_join.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mp/ab_join.cc.o.d"
  "/root/repo/src/mp/brute_force.cc" "CMakeFiles/valmod.dir/src/mp/brute_force.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mp/brute_force.cc.o.d"
  "/root/repo/src/mp/discord.cc" "CMakeFiles/valmod.dir/src/mp/discord.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mp/discord.cc.o.d"
  "/root/repo/src/mp/motif.cc" "CMakeFiles/valmod.dir/src/mp/motif.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mp/motif.cc.o.d"
  "/root/repo/src/mp/pan_profile.cc" "CMakeFiles/valmod.dir/src/mp/pan_profile.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mp/pan_profile.cc.o.d"
  "/root/repo/src/mp/profile_io.cc" "CMakeFiles/valmod.dir/src/mp/profile_io.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mp/profile_io.cc.o.d"
  "/root/repo/src/mp/stamp.cc" "CMakeFiles/valmod.dir/src/mp/stamp.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mp/stamp.cc.o.d"
  "/root/repo/src/mp/stomp.cc" "CMakeFiles/valmod.dir/src/mp/stomp.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mp/stomp.cc.o.d"
  "/root/repo/src/mp/streaming.cc" "CMakeFiles/valmod.dir/src/mp/streaming.cc.o" "gcc" "CMakeFiles/valmod.dir/src/mp/streaming.cc.o.d"
  "/root/repo/src/series/data_series.cc" "CMakeFiles/valmod.dir/src/series/data_series.cc.o" "gcc" "CMakeFiles/valmod.dir/src/series/data_series.cc.o.d"
  "/root/repo/src/series/generators.cc" "CMakeFiles/valmod.dir/src/series/generators.cc.o" "gcc" "CMakeFiles/valmod.dir/src/series/generators.cc.o.d"
  "/root/repo/src/series/io.cc" "CMakeFiles/valmod.dir/src/series/io.cc.o" "gcc" "CMakeFiles/valmod.dir/src/series/io.cc.o.d"
  "/root/repo/src/series/znorm.cc" "CMakeFiles/valmod.dir/src/series/znorm.cc.o" "gcc" "CMakeFiles/valmod.dir/src/series/znorm.cc.o.d"
  "/root/repo/src/stats/moving_stats.cc" "CMakeFiles/valmod.dir/src/stats/moving_stats.cc.o" "gcc" "CMakeFiles/valmod.dir/src/stats/moving_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
