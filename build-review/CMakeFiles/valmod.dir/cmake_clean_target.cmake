file(REMOVE_RECURSE
  "libvalmod.a"
)
