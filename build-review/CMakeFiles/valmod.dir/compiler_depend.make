# Empty compiler generated dependencies file for valmod.
# This may be replaced when dependencies are built.
