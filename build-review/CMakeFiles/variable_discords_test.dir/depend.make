# Empty dependencies file for variable_discords_test.
# This may be replaced when dependencies are built.
