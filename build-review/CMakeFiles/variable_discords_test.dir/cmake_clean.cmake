file(REMOVE_RECURSE
  "CMakeFiles/variable_discords_test.dir/tests/variable_discords_test.cc.o"
  "CMakeFiles/variable_discords_test.dir/tests/variable_discords_test.cc.o.d"
  "variable_discords_test"
  "variable_discords_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variable_discords_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
