# Empty dependencies file for mass_test.
# This may be replaced when dependencies are built.
