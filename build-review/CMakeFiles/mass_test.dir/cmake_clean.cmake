file(REMOVE_RECURSE
  "CMakeFiles/mass_test.dir/tests/mass_test.cc.o"
  "CMakeFiles/mass_test.dir/tests/mass_test.cc.o.d"
  "mass_test"
  "mass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
