file(REMOVE_RECURSE
  "CMakeFiles/example_anomaly_scan.dir/examples/anomaly_scan.cpp.o"
  "CMakeFiles/example_anomaly_scan.dir/examples/anomaly_scan.cpp.o.d"
  "example_anomaly_scan"
  "example_anomaly_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_anomaly_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
