# Empty compiler generated dependencies file for example_anomaly_scan.
# This may be replaced when dependencies are built.
