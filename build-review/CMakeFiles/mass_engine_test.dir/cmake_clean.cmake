file(REMOVE_RECURSE
  "CMakeFiles/mass_engine_test.dir/tests/mass_engine_test.cc.o"
  "CMakeFiles/mass_engine_test.dir/tests/mass_engine_test.cc.o.d"
  "mass_engine_test"
  "mass_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mass_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
