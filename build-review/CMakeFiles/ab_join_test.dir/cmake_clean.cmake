file(REMOVE_RECURSE
  "CMakeFiles/ab_join_test.dir/tests/ab_join_test.cc.o"
  "CMakeFiles/ab_join_test.dir/tests/ab_join_test.cc.o.d"
  "ab_join_test"
  "ab_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
