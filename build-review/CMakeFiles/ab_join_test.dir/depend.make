# Empty dependencies file for ab_join_test.
# This may be replaced when dependencies are built.
