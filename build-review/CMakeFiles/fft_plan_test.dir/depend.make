# Empty dependencies file for fft_plan_test.
# This may be replaced when dependencies are built.
