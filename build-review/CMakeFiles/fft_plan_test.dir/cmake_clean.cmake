file(REMOVE_RECURSE
  "CMakeFiles/fft_plan_test.dir/tests/fft_plan_test.cc.o"
  "CMakeFiles/fft_plan_test.dir/tests/fft_plan_test.cc.o.d"
  "fft_plan_test"
  "fft_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
