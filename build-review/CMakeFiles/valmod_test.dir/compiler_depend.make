# Empty compiler generated dependencies file for valmod_test.
# This may be replaced when dependencies are built.
