file(REMOVE_RECURSE
  "CMakeFiles/valmod_test.dir/tests/valmod_test.cc.o"
  "CMakeFiles/valmod_test.dir/tests/valmod_test.cc.o.d"
  "valmod_test"
  "valmod_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valmod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
