file(REMOVE_RECURSE
  "CMakeFiles/motif_set_test.dir/tests/motif_set_test.cc.o"
  "CMakeFiles/motif_set_test.dir/tests/motif_set_test.cc.o.d"
  "motif_set_test"
  "motif_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
