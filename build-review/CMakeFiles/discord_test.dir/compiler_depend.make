# Empty compiler generated dependencies file for discord_test.
# This may be replaced when dependencies are built.
