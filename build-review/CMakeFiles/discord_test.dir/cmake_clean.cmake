file(REMOVE_RECURSE
  "CMakeFiles/discord_test.dir/tests/discord_test.cc.o"
  "CMakeFiles/discord_test.dir/tests/discord_test.cc.o.d"
  "discord_test"
  "discord_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discord_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
