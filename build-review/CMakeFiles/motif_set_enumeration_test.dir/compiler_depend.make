# Empty compiler generated dependencies file for motif_set_enumeration_test.
# This may be replaced when dependencies are built.
