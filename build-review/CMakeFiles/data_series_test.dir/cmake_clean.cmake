file(REMOVE_RECURSE
  "CMakeFiles/data_series_test.dir/tests/data_series_test.cc.o"
  "CMakeFiles/data_series_test.dir/tests/data_series_test.cc.o.d"
  "data_series_test"
  "data_series_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
