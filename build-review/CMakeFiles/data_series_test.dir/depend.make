# Empty dependencies file for data_series_test.
# This may be replaced when dependencies are built.
