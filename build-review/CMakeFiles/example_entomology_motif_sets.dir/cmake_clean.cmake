file(REMOVE_RECURSE
  "CMakeFiles/example_entomology_motif_sets.dir/examples/entomology_motif_sets.cpp.o"
  "CMakeFiles/example_entomology_motif_sets.dir/examples/entomology_motif_sets.cpp.o.d"
  "example_entomology_motif_sets"
  "example_entomology_motif_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_entomology_motif_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
