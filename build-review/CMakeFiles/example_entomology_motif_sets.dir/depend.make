# Empty dependencies file for example_entomology_motif_sets.
# This may be replaced when dependencies are built.
