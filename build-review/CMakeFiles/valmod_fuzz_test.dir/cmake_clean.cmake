file(REMOVE_RECURSE
  "CMakeFiles/valmod_fuzz_test.dir/tests/valmod_fuzz_test.cc.o"
  "CMakeFiles/valmod_fuzz_test.dir/tests/valmod_fuzz_test.cc.o.d"
  "valmod_fuzz_test"
  "valmod_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valmod_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
