file(REMOVE_RECURSE
  "CMakeFiles/fft_overlap_save_test.dir/tests/fft_overlap_save_test.cc.o"
  "CMakeFiles/fft_overlap_save_test.dir/tests/fft_overlap_save_test.cc.o.d"
  "fft_overlap_save_test"
  "fft_overlap_save_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_overlap_save_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
