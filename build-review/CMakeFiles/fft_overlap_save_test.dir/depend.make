# Empty dependencies file for fft_overlap_save_test.
# This may be replaced when dependencies are built.
