# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_ab_join_compare.
