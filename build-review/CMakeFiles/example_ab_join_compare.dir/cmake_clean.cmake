file(REMOVE_RECURSE
  "CMakeFiles/example_ab_join_compare.dir/examples/ab_join_compare.cpp.o"
  "CMakeFiles/example_ab_join_compare.dir/examples/ab_join_compare.cpp.o.d"
  "example_ab_join_compare"
  "example_ab_join_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ab_join_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
