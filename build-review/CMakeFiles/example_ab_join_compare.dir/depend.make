# Empty dependencies file for example_ab_join_compare.
# This may be replaced when dependencies are built.
