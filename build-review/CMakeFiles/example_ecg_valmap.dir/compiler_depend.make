# Empty compiler generated dependencies file for example_ecg_valmap.
# This may be replaced when dependencies are built.
