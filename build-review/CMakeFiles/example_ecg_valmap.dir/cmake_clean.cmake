file(REMOVE_RECURSE
  "CMakeFiles/example_ecg_valmap.dir/examples/ecg_valmap.cpp.o"
  "CMakeFiles/example_ecg_valmap.dir/examples/ecg_valmap.cpp.o.d"
  "example_ecg_valmap"
  "example_ecg_valmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ecg_valmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
