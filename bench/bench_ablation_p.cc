// Ablation A (research paper [4], parameter study): sensitivity of VALMOD
// to p, the number of entries kept per partial distance profile. Larger p
// certifies more rows without exact recomputation, at O(n p) memory and
// per-length update cost.
//
//   ./build/bench/bench_ablation_p [--n=8192] [--lmin=64] [--lmax=128]
//                                  [--ps=1,2,5,10,20,50]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "core/valmod.h"

namespace {

std::vector<std::size_t> ParseList(const std::string& text) {
  std::vector<std::size_t> values;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    values.push_back(static_cast<std::size_t>(
        std::strtoull(text.substr(start, comma - start).c_str(), nullptr,
                      10)));
    start = comma + 1;
  }
  return values;
}

int Run(int argc, char** argv) {
  const valmod::Flags flags = valmod::Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 8192));
  const std::size_t lmin = static_cast<std::size_t>(flags.GetInt("lmin", 64));
  const std::size_t lmax = static_cast<std::size_t>(flags.GetInt("lmax", 128));
  const std::vector<std::size_t> ps =
      ParseList(flags.GetString("ps", "1,2,5,10,20,50"));

  auto series = valmod::bench::MakeDataset("ecg", n, 1);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }

  std::printf("# Ablation: sensitivity to p (ECG n=%zu, range [%zu, %zu])\n",
              n, lmin, lmax);
  std::printf("%6s %12s %12s %14s %16s\n", "p", "init (s)", "update (s)",
              "total (s)", "rows recomputed");
  for (std::size_t p : ps) {
    valmod::core::ValmodOptions options;
    options.min_length = lmin;
    options.max_length = lmax;
    options.p = p;
    auto result = valmod::core::RunValmod(*series, options);
    if (!result.ok()) {
      std::fprintf(stderr, "p=%zu: %s\n", p,
                   result.status().ToString().c_str());
      continue;
    }
    std::size_t recomputed = 0;
    for (const auto& s : result->stats) recomputed += s.recomputed_rows;
    std::printf("%6zu %12.3f %12.3f %14.3f %16zu\n", p,
                result->init_seconds, result->update_seconds,
                result->init_seconds + result->update_seconds, recomputed);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
