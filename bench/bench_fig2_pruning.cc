// Figure 2: the partial distance-profile machinery in action. Reports, per
// length, how many rows the p stored entries certified (valid partial
// profiles), how many could not be certified, and how many required an
// exact MASS recomputation — plus the LB-pruning ablation: VALMOD's
// variable-length phase vs recomputing every profile at every length.
//
//   ./build/bench/bench_fig2_pruning [--n=8192] [--lmin=64] [--lmax=192]
//                                    [--p=10] [--timeout=30] [--dataset=ecg]

#include <cstdio>
#include <string>

#include "baselines/stomp_range.h"
#include "bench_util.h"
#include "common/flags.h"
#include "core/valmod.h"

namespace {

using valmod::Deadline;
using valmod::bench::FormatSeconds;
using valmod::bench::RunTimed;
using valmod::bench::TimedRun;

int Run(int argc, char** argv) {
  const valmod::Flags flags = valmod::Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 8192));
  const std::size_t lmin = static_cast<std::size_t>(flags.GetInt("lmin", 64));
  const std::size_t lmax = static_cast<std::size_t>(flags.GetInt("lmax", 192));
  const std::size_t p = static_cast<std::size_t>(flags.GetInt("p", 10));
  const double timeout = flags.GetDouble("timeout", 30.0);
  const std::string dataset = flags.GetString("dataset", "ecg");

  auto series = valmod::bench::MakeDataset(dataset, n, 1);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }

  valmod::core::ValmodOptions options;
  options.min_length = lmin;
  options.max_length = lmax;
  options.p = p;
  auto result = valmod::core::RunValmod(*series, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("# Figure 2: partial distance-profile pruning, %s n=%zu "
              "lmin=%zu lmax=%zu p=%zu\n",
              dataset.c_str(), n, lmin, lmax, p);
  std::printf("%8s %12s %12s %12s %12s %8s\n", "length", "valid", "invalid",
              "constant", "recomputed", "passes");
  std::size_t total_recomputed = 0, total_rows = 0;
  const std::size_t step = result->stats.size() > 16
                               ? result->stats.size() / 16
                               : 1;
  for (std::size_t i = 0; i < result->stats.size(); ++i) {
    const auto& s = result->stats[i];
    total_recomputed += s.recomputed_rows;
    total_rows += s.valid_rows + s.invalid_rows + s.constant_rows;
    if (i % step == 0 || i + 1 == result->stats.size()) {
      std::printf("%8zu %12zu %12zu %12zu %12zu %8zu\n", s.length,
                  s.valid_rows, s.invalid_rows, s.constant_rows,
                  s.recomputed_rows, s.passes);
    }
  }
  std::printf("\ntotal: %zu of %zu row-lengths recomputed exactly (%.3f%%); "
              "the rest were answered by p=%zu stored entries per row\n",
              total_recomputed, total_rows,
              100.0 * static_cast<double>(total_recomputed) /
                  static_cast<double>(total_rows ? total_rows : 1),
              p);

  // Ablation C: what the same range costs without the lower-bound pruning
  // (i.e. a full profile per length — the STOMP-adapted baseline).
  const TimedRun no_pruning = RunTimed(timeout, [&](Deadline deadline) {
    valmod::baselines::StompRangeOptions baseline;
    baseline.min_length = lmin;
    baseline.max_length = lmax;
    baseline.deadline = deadline;
    return valmod::baselines::RunStompRange(*series, baseline).status();
  });
  std::printf("\nablation (LB pruning off = full profile per length):\n");
  std::printf("%-28s %12.3f s (init %.3f + updates %.3f)\n",
              "VALMOD with LB pruning",
              result->init_seconds + result->update_seconds,
              result->init_seconds, result->update_seconds);
  std::printf("%-28s %12s s\n", "full recompute per length",
              FormatSeconds(no_pruning, timeout).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
