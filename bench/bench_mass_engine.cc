// Micro-benchmark for the batched MASS engine (emits JSON for the perf
// trajectory; pass an output path as argv[1] to also write the JSON to a
// file — the VALMOD_BENCH_JSON CMake target and CI use this for the
// BENCH_engine.json artifact):
//
//   1. Repeated row profiles at a fixed length on a 2^17-point series:
//      the seed's uncached algorithm (three full-size complex transforms)
//      vs the current uncached free function vs the cached MassEngine
//      single-query path vs the pair-packed batched path vs the
//      overlap-save batched path. A frozen copy of the PR 1 implementation
//      (scalar std::complex radix-2 butterflies, single query per
//      transform) is kept here as the previous-PR baseline — the same role
//      SeedSlidingDots plays for the seed — so the JSON tracks real
//      PR-over-PR gains even though the library paths share the current
//      (restructured, fused radix-2^2) butterfly kernels.
//   2. A backend sweep at 2^15 / 2^17 / 2^19 points: cached single-query
//      vs pair-packed vs overlap-save rows, single-threaded so the
//      speedups isolate the algorithm, plus the backend the cost model
//      actually picks at each size.
//
//   2b. A boundary sweep over the (series_n, length) grid where the retired
//      v1 weight-18 boundary and the calibrated v2 cost model disagree:
//      per-row measured seconds for direct / pair-packed / overlap-save,
//      the model's predicted costs (so the static weights in
//      mass::BackendCostModel stay auditable against real timings), the
//      backend each policy picks, and the realized v2-over-v1 speedup.
//      These are the `boundary_sweep` rows of BENCH_engine.json that
//      mass/backend.h and the cost-model tests refer to.
//   3. ParallelFor dispatch: spawn-per-call std::thread (the seed's
//      implementation) vs the persistent pool, plus the pool's
//      threads-created counter across the timed regions — the observable
//      "no per-batch thread spawn" guarantee.

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "fft/fft.h"
#include "mass/backend.h"
#include "mass/engine.h"
#include "mass/mass.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "simd/dispatch.h"

namespace {

using valmod::WallTimer;
using valmod::series::DataSeries;

/// The seed's sliding-dot algorithm: zero-pad both operands to the full
/// FFT size and run three complex transforms, exactly as the pre-engine
/// fft::Convolve did. Kept here as the uncached baseline.
std::vector<double> SeedSlidingDots(std::span<const double> series,
                                    std::span<const double> query) {
  const std::size_t n = series.size();
  const std::size_t m = query.size();
  const std::size_t fft_size = valmod::fft::NextPowerOfTwo(n + m - 1);
  std::vector<std::complex<double>> fa(fft_size), fb(fft_size);
  for (std::size_t i = 0; i < n; ++i) fa[i] = series[i];
  for (std::size_t i = 0; i < m; ++i) fb[i] = query[m - 1 - i];
  (void)valmod::fft::Transform(fa, valmod::fft::Direction::kForward);
  (void)valmod::fft::Transform(fb, valmod::fft::Direction::kForward);
  for (std::size_t i = 0; i < fft_size; ++i) fa[i] *= fb[i];
  (void)valmod::fft::Transform(fa, valmod::fft::Direction::kInverse);
  std::vector<double> dots(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) dots[i] = fa[m - 1 + i].real();
  return dots;
}

/// Full seed-equivalent row profile (dots + distances) on the baseline.
void SeedRowProfile(const DataSeries& series, std::size_t offset,
                    std::size_t length, std::vector<double>* distances) {
  const auto centered = series.centered();
  const std::vector<double> dots = SeedSlidingDots(
      centered, centered.subspan(offset, length));
  valmod::mass::DistancesFromDots(series, offset, length, dots, distances);
}

/// Frozen copy of the PR 1 FftPlan: scalar radix-2 butterflies over
/// std::complex with per-stage strided twiddle lookups, and the
/// pack-two-reals real-input path. This is the transform the PR 1
/// single-query engine ran on; the library has since moved to fused
/// radix-2^2 passes with the complex arithmetic spelled out on doubles.
class Pr1Plan {
 public:
  explicit Pr1Plan(std::size_t n) : n_(n) {
    bit_reverse_.resize(n_);
    std::size_t j = 0;
    bit_reverse_[0] = 0;
    for (std::size_t i = 1; i < n_; ++i) {
      std::size_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bit_reverse_[i] = static_cast<std::uint32_t>(j);
    }
    twiddles_.resize(n_ / 2);
    for (std::size_t k = 0; k < n_ / 2; ++k) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(n_);
      twiddles_[k] = {std::cos(angle), std::sin(angle)};
    }
    if (n_ >= 4) half_ = std::make_unique<Pr1Plan>(n_ / 2);
  }

  std::size_t half_spectrum_size() const { return n_ / 2 + 1; }

  void Transform(std::span<std::complex<double>> data, bool forward) const {
    if (n_ == 1) return;
    for (std::size_t i = 1; i < n_; ++i) {
      const std::size_t j = bit_reverse_[i];
      if (i < j) std::swap(data[i], data[j]);
    }
    for (std::size_t len = 2; len <= n_; len <<= 1) {
      const std::size_t half = len / 2;
      const std::size_t stride = n_ / len;
      for (std::size_t start = 0; start < n_; start += len) {
        for (std::size_t k = 0; k < half; ++k) {
          const std::complex<double> w =
              forward ? twiddles_[k * stride]
                      : std::conj(twiddles_[k * stride]);
          const std::complex<double> u = data[start + k];
          const std::complex<double> v = data[start + k + half] * w;
          data[start + k] = u + v;
          data[start + k + half] = u - v;
        }
      }
    }
    if (!forward) {
      const double inv_n = 1.0 / static_cast<double>(n_);
      for (auto& x : data) x *= inv_n;
    }
  }

  void RealForward(std::span<const double> input,
                   std::span<std::complex<double>> spectrum) const {
    const std::size_t m = n_ / 2;
    auto packed = spectrum.first(m);
    for (std::size_t k = 0; k < m; ++k) {
      const double re = 2 * k < input.size() ? input[2 * k] : 0.0;
      const double im = 2 * k + 1 < input.size() ? input[2 * k + 1] : 0.0;
      packed[k] = {re, im};
    }
    half_->Transform(packed, /*forward=*/true);
    const std::complex<double> z0 = spectrum[0];
    spectrum[0] = {z0.real() + z0.imag(), 0.0};
    spectrum[m] = {z0.real() - z0.imag(), 0.0};
    for (std::size_t k = 1; k < m - k; ++k) {
      const std::size_t j = m - k;
      const std::complex<double> zk = spectrum[k];
      const std::complex<double> zj = spectrum[j];
      const std::complex<double> ek = 0.5 * (zk + std::conj(zj));
      const std::complex<double> ok =
          (zk - std::conj(zj)) * std::complex<double>(0.0, -0.5);
      const std::complex<double> ej = 0.5 * (zj + std::conj(zk));
      const std::complex<double> oj =
          (zj - std::conj(zk)) * std::complex<double>(0.0, -0.5);
      spectrum[k] = ek + twiddles_[k] * ok;
      spectrum[j] = ej + twiddles_[j] * oj;
    }
    spectrum[m / 2] = std::conj(spectrum[m / 2]);
  }

  void RealInverse(std::span<std::complex<double>> spectrum,
                   std::span<double> output) const {
    const std::size_t m = n_ / 2;
    const std::complex<double> x0 = spectrum[0];
    const std::complex<double> xm = spectrum[m];
    {
      const std::complex<double> e0 = 0.5 * (x0 + std::conj(xm));
      const std::complex<double> o0 = 0.5 * (x0 - std::conj(xm));
      spectrum[0] = e0 + std::complex<double>(0.0, 1.0) * o0;
    }
    for (std::size_t k = 1; k < m - k; ++k) {
      const std::size_t j = m - k;
      const std::complex<double> xk = spectrum[k];
      const std::complex<double> xj = spectrum[j];
      const std::complex<double> ek = 0.5 * (xk + std::conj(xj));
      const std::complex<double> ok =
          0.5 * (xk - std::conj(xj)) * std::conj(twiddles_[k]);
      const std::complex<double> ej = 0.5 * (xj + std::conj(xk));
      const std::complex<double> oj =
          0.5 * (xj - std::conj(xk)) * std::conj(twiddles_[j]);
      spectrum[k] = ek + std::complex<double>(0.0, 1.0) * ok;
      spectrum[j] = ej + std::complex<double>(0.0, 1.0) * oj;
    }
    spectrum[m / 2] = std::conj(spectrum[m / 2]);
    auto packed = spectrum.first(m);
    half_->Transform(packed, /*forward=*/false);
    for (std::size_t k = 0; k < m; ++k) {
      output[2 * k] = packed[k].real();
      output[2 * k + 1] = packed[k].imag();
    }
  }

 private:
  std::size_t n_;
  std::vector<std::uint32_t> bit_reverse_;
  std::vector<std::complex<double>> twiddles_;
  std::unique_ptr<Pr1Plan> half_;
};

/// Frozen copy of the PR 1 cached single-query scheme: series spectrum
/// computed once, then one real forward + pointwise product + one real
/// inverse per row — on the PR 1 transform above.
class Pr1SingleQueryEngine {
 public:
  Pr1SingleQueryEngine(const DataSeries& series, std::size_t length)
      : series_(series),
        fft_size_(valmod::fft::NextPowerOfTwo(series.size() + length - 1)),
        plan_(fft_size_),
        series_bins_(plan_.half_spectrum_size()) {
    plan_.RealForward(series_.centered(), series_bins_);
  }

  void ComputeRow(std::size_t offset, std::size_t length,
                  std::vector<double>* distances) {
    const auto centered = series_.centered();
    const auto query = centered.subspan(offset, length);
    reversed_query_.assign(query.rbegin(), query.rend());
    bins_.resize(plan_.half_spectrum_size());
    plan_.RealForward(reversed_query_, bins_);
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      bins_[i] = series_bins_[i] * bins_[i];
    }
    conv_.resize(fft_size_);
    plan_.RealInverse(bins_, conv_);
    const std::size_t count = series_.NumSubsequences(length);
    dots_.resize(count);
    for (std::size_t i = 0; i < count; ++i) dots_[i] = conv_[length - 1 + i];
    valmod::mass::DistancesFromDots(series_, offset, length, dots_,
                                    distances);
  }

 private:
  const DataSeries& series_;
  std::size_t fft_size_;
  Pr1Plan plan_;
  std::vector<std::complex<double>> series_bins_;
  std::vector<double> reversed_query_;
  std::vector<std::complex<double>> bins_;
  std::vector<double> conv_;
  std::vector<double> dots_;
};

/// The seed's ParallelFor: spawn and join std::threads on every call.
void SpawnParallelFor(std::size_t begin, std::size_t end, int threads,
                      const std::function<void(std::size_t)>& fn) {
  const std::size_t count = end > begin ? end - begin : 0;
  const std::size_t workers = std::min<std::size_t>(
      threads > 1 ? static_cast<std::size_t>(threads) : 1, count);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn]() {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& t : pool) t.join();
}

double Checksum(const std::vector<double>& values) {
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc;
}

/// One backend-sweep configuration: single-threaded row-profile timings for
/// the cached single-query, pair-packed, and overlap-save paths at one
/// series size.
struct SweepResult {
  std::size_t series_n = 0;
  std::size_t repetitions = 0;
  double single_seconds = 0.0;
  double pair_seconds = 0.0;
  double overlap_save_seconds = 0.0;
  const char* auto_backend = "";
};

SweepResult RunBackendSweep(std::size_t n, std::size_t length,
                            std::size_t repetitions, double* checksum) {
  auto series_result = valmod::synth::ByName("ecg", n, 11);
  if (!series_result.ok()) {
    std::fprintf(stderr, "series generation failed: %s\n",
                 series_result.status().ToString().c_str());
    std::exit(1);
  }
  const DataSeries& series = *series_result;
  const std::size_t count = series.NumSubsequences(length);
  const std::size_t stride = count / repetitions;
  std::vector<std::size_t> rows(repetitions);
  for (std::size_t r = 0; r < repetitions; ++r) rows[r] = r * stride;

  using valmod::mass::ConvolutionBackend;
  valmod::mass::MassEngine engine(series);
  WallTimer timer;
  SweepResult result;
  result.series_n = n;
  result.repetitions = repetitions;
  result.auto_backend = valmod::mass::ConvolutionBackendName(
      valmod::mass::ChooseConvolutionBackend(n, length, count));

  // Untimed warmup per backend: plans, the cached series spectra, and the
  // overlap-save chunk spectra are one-time costs amortized over thousands
  // of rows in real runs, so every path gets the same warm treatment.
  const std::vector<std::size_t> warm_rows = {0, stride};
  (void)engine.ComputeRowProfile(0, length, ConvolutionBackend::kFftSingle);
  (void)engine.ComputeRowProfiles(warm_rows, length, 1,
                                  ConvolutionBackend::kFftPair);
  (void)engine.ComputeRowProfiles(warm_rows, length, 1,
                                  ConvolutionBackend::kOverlapSave);

  timer.Restart();
  for (std::size_t r = 0; r < repetitions; ++r) {
    auto row =
        engine.ComputeRowProfile(rows[r], length, ConvolutionBackend::kFftSingle);
    *checksum += Checksum(row->distances);
  }
  result.single_seconds = timer.ElapsedSeconds();

  // Checksums run inside every timed region (the single-query loop
  // checksums per iteration), so the reported ratios compare backend
  // against backend, not backend against backend-plus-checksum.
  timer.Restart();
  auto pair = engine.ComputeRowProfiles(rows, length, /*num_threads=*/1,
                                        ConvolutionBackend::kFftPair);
  for (const auto& row : *pair) *checksum += Checksum(row.distances);
  result.pair_seconds = timer.ElapsedSeconds();

  timer.Restart();
  auto ols = engine.ComputeRowProfiles(rows, length, /*num_threads=*/1,
                                       ConvolutionBackend::kOverlapSave);
  for (const auto& row : *ols) *checksum += Checksum(row.distances);
  result.overlap_save_seconds = timer.ElapsedSeconds();
  return result;
}

/// One boundary-sweep configuration: batched single-threaded per-row
/// timings for each backend family, the per-policy choices, and the
/// realized v2-over-v1 speedup.
struct BoundaryResult {
  std::size_t series_n = 0;
  std::size_t length = 0;
  std::size_t repetitions = 0;
  double direct_seconds = 0.0;        // per row
  double fft_pair_seconds = 0.0;      // per row
  double overlap_save_seconds = 0.0;  // per row
  valmod::mass::ConvolutionBackend v1 = valmod::mass::ConvolutionBackend::kAuto;
  valmod::mass::ConvolutionBackend v2 = valmod::mass::ConvolutionBackend::kAuto;
  double speedup_v2_vs_v1 = 1.0;
};

double TimePerRow(valmod::mass::MassEngine& engine,
                  const std::vector<std::size_t>& rows, std::size_t length,
                  valmod::mass::ConvolutionBackend backend,
                  double* checksum) {
  // Warm the plans and cached spectra, then keep the fastest of three
  // batched single-threaded runs (the sweep compares kernels, not scheduler
  // noise).
  (void)engine.ComputeRowProfiles({rows.data(), 2}, length, 1, backend);
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer timer;
    auto batch = engine.ComputeRowProfiles(rows, length, 1, backend);
    const double elapsed = timer.ElapsedSeconds();
    for (const auto& row : *batch) *checksum += Checksum(row.distances);
    best = std::min(best, elapsed / static_cast<double>(rows.size()));
  }
  return best;
}

BoundaryResult RunBoundaryPoint(std::size_t n, std::size_t length,
                                double* checksum) {
  using valmod::mass::ConvolutionBackend;
  auto series_result = valmod::synth::ByName("ecg", n, 11);
  if (!series_result.ok()) {
    std::fprintf(stderr, "series generation failed: %s\n",
                 series_result.status().ToString().c_str());
    std::exit(1);
  }
  const DataSeries& series = *series_result;
  const std::size_t count = series.NumSubsequences(length);
  const std::size_t repetitions = 16;  // even: pair paths pack 2 per FFT
  const std::size_t stride = count / repetitions;
  std::vector<std::size_t> rows(repetitions);
  for (std::size_t r = 0; r < repetitions; ++r) rows[r] = r * stride;

  valmod::mass::MassEngine engine(series);
  BoundaryResult result;
  result.series_n = n;
  result.length = length;
  result.repetitions = repetitions;
  result.direct_seconds =
      TimePerRow(engine, rows, length, ConvolutionBackend::kDirect, checksum);
  result.fft_pair_seconds =
      TimePerRow(engine, rows, length, ConvolutionBackend::kFftPair, checksum);
  result.overlap_save_seconds = TimePerRow(
      engine, rows, length, ConvolutionBackend::kOverlapSave, checksum);

  result.v1 = valmod::mass::ChooseConvolutionBackendV1(n, length, count);
  result.v2 = valmod::mass::ChooseConvolutionBackend(n, length, count,
                                                     /*batched=*/true);
  const auto measured = [&](ConvolutionBackend b) {
    switch (b) {
      case ConvolutionBackend::kDirect:
        return result.direct_seconds;
      case ConvolutionBackend::kOverlapSave:
        return result.overlap_save_seconds;
      default:  // both full-FFT members run pair-packed in a batch
        return result.fft_pair_seconds;
    }
  };
  result.speedup_v2_vs_v1 = measured(result.v1) / measured(result.v2);
  return result;
}

/// One SIMD dispatch target's timings over the engine hot paths. The
/// kernels are bit-identical across targets (checksums must agree), so
/// these rows measure pure instruction-level speedup.
struct SimdSweepResult {
  valmod::simd::Target target = valmod::simd::Target::kScalar;
  double overlap_save_seconds = 0.0;  // chunk FFTs + spectrum products
  double direct_seconds = 0.0;        // sliding-dot four-accumulator loop
  double total_seconds = 0.0;
};

/// Times the overlap-save chunk pipeline and the direct sliding-dot path
/// under every supported SIMD target (forced via simd::SetTarget), then
/// restores the entry target. Plans and cached spectra are warmed before
/// the loop — they are byte-identical across targets, so sharing them is
/// sound and keeps the comparison about the kernels.
std::vector<SimdSweepResult> RunSimdTargetSweep(double* checksum) {
  using valmod::mass::ConvolutionBackend;
  auto series_result = valmod::synth::ByName("ecg", std::size_t{1} << 16, 11);
  if (!series_result.ok()) {
    std::fprintf(stderr, "series generation failed: %s\n",
                 series_result.status().ToString().c_str());
    std::exit(1);
  }
  const DataSeries& series = *series_result;
  const std::size_t ols_length = 512;   // FFT-dominated configuration
  const std::size_t direct_length = 128;  // dot-product-dominated
  const std::size_t repetitions = 8;    // even: pair paths pack 2 per FFT
  const auto make_rows = [&](std::size_t length) {
    const std::size_t count = series.NumSubsequences(length);
    const std::size_t stride = count / repetitions;
    std::vector<std::size_t> rows(repetitions);
    for (std::size_t r = 0; r < repetitions; ++r) rows[r] = r * stride;
    return rows;
  };
  const std::vector<std::size_t> ols_rows = make_rows(ols_length);
  const std::vector<std::size_t> direct_rows = make_rows(direct_length);

  valmod::mass::MassEngine engine(series);
  (void)engine.ComputeRowProfiles({ols_rows.data(), 2}, ols_length, 1,
                                  ConvolutionBackend::kOverlapSave);
  (void)engine.ComputeRowProfiles({direct_rows.data(), 2}, direct_length, 1,
                                  ConvolutionBackend::kDirect);

  const valmod::simd::Target entry_target = valmod::simd::ActiveTarget();
  std::vector<SimdSweepResult> results;
  for (const valmod::simd::Target target : valmod::simd::SupportedTargets()) {
    if (!valmod::simd::SetTarget(target).ok()) continue;
    SimdSweepResult r;
    r.target = target;
    r.overlap_save_seconds = std::numeric_limits<double>::infinity();
    r.direct_seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {  // keep the fastest of three
      WallTimer timer;
      auto ols = engine.ComputeRowProfiles(ols_rows, ols_length, 1,
                                           ConvolutionBackend::kOverlapSave);
      const double ols_elapsed = timer.ElapsedSeconds();
      for (const auto& row : *ols) *checksum += Checksum(row.distances);
      timer.Restart();
      auto direct = engine.ComputeRowProfiles(direct_rows, direct_length, 1,
                                              ConvolutionBackend::kDirect);
      const double direct_elapsed = timer.ElapsedSeconds();
      for (const auto& row : *direct) *checksum += Checksum(row.distances);
      r.overlap_save_seconds = std::min(r.overlap_save_seconds, ols_elapsed);
      r.direct_seconds = std::min(r.direct_seconds, direct_elapsed);
    }
    r.total_seconds = r.overlap_save_seconds + r.direct_seconds;
    results.push_back(r);
  }
  (void)valmod::simd::SetTarget(entry_target);
  return results;
}

void AppendFormat(std::string* out, const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, format, measure);
  va_end(measure);
  if (needed > 0) {
    const std::size_t offset = out->size();
    out->resize(offset + static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out->data() + offset, static_cast<std::size_t>(needed) + 1,
                   format, args);
    out->resize(offset + static_cast<std::size_t>(needed));
  }
  va_end(args);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = std::size_t{1} << 17;
  const std::size_t length = 1024;  // past the cost-model crossover: FFT path
  const std::size_t repetitions = 20;  // even: the pair path packs 2 per FFT

  auto series_result = valmod::synth::ByName("ecg", n, 11);
  if (!series_result.ok()) {
    std::fprintf(stderr, "series generation failed: %s\n",
                 series_result.status().ToString().c_str());
    return 1;
  }
  const DataSeries& series = *series_result;
  const std::size_t count = series.NumSubsequences(length);
  const std::size_t stride = count / repetitions;
  std::vector<std::size_t> rows(repetitions);
  for (std::size_t r = 0; r < repetitions; ++r) rows[r] = r * stride;

  valmod::mass::MassEngine engine(series);
  Pr1SingleQueryEngine pr1_engine(series, length);
  std::vector<double> scratch;
  double checksum = 0.0;

  // Untimed warmup: builds FFT plans for every variant and the engines'
  // cached series spectra (the one-time cost is deliberately excluded — it
  // is amortized over thousands of calls in real runs, and every path gets
  // the same plan-warm treatment).
  SeedRowProfile(series, 0, length, &scratch);
  (void)valmod::mass::ComputeRowProfile(series, 0, length);
  (void)engine.ComputeRowProfile(0, length);
  pr1_engine.ComputeRow(0, length, &scratch);

  WallTimer timer;
  for (std::size_t r = 0; r < repetitions; ++r) {
    SeedRowProfile(series, rows[r], length, &scratch);
    checksum += Checksum(scratch);
  }
  const double seed_seconds = timer.ElapsedSeconds();

  timer.Restart();
  for (std::size_t r = 0; r < repetitions; ++r) {
    auto row = valmod::mass::ComputeRowProfile(series, rows[r], length);
    checksum += Checksum(row->distances);
  }
  const double uncached_seconds = timer.ElapsedSeconds();

  timer.Restart();
  for (std::size_t r = 0; r < repetitions; ++r) {
    pr1_engine.ComputeRow(rows[r], length, &scratch);
    checksum += Checksum(scratch);
  }
  const double pr1_single_seconds = timer.ElapsedSeconds();

  timer.Restart();
  for (std::size_t r = 0; r < repetitions; ++r) {
    auto row = engine.ComputeRowProfile(rows[r], length);
    checksum += Checksum(row->distances);
  }
  const double cached_seconds = timer.ElapsedSeconds();

  // The batched pair-packed and overlap-save paths, single-threaded so the
  // speedups isolate the algorithmic change rather than core count. The
  // backends are forced: at this size the cost model itself picks
  // overlap-save, and the JSON should keep tracking both.
  using valmod::mass::ConvolutionBackend;
  (void)engine.ComputeRowProfiles({rows.data(), 2}, length, 1,
                                  ConvolutionBackend::kOverlapSave);  // warm
  timer.Restart();
  auto batched = engine.ComputeRowProfiles(rows, length, /*num_threads=*/1,
                                           ConvolutionBackend::kFftPair);
  for (const auto& row : *batched) checksum += Checksum(row.distances);
  const double pair_batched_seconds = timer.ElapsedSeconds();

  timer.Restart();
  auto overlap_batched = engine.ComputeRowProfiles(
      rows, length, /*num_threads=*/1, ConvolutionBackend::kOverlapSave);
  for (const auto& row : *overlap_batched) {
    checksum += Checksum(row.distances);
  }
  const double overlap_save_batched_seconds = timer.ElapsedSeconds();

  // Backend sweep across series sizes (fewer repetitions at 2^19 to keep
  // the bench quick; still even so every row pairs up).
  std::vector<SweepResult> sweep;
  sweep.push_back(
      RunBackendSweep(std::size_t{1} << 15, length, 20, &checksum));
  sweep.push_back(
      RunBackendSweep(std::size_t{1} << 17, length, 20, &checksum));
  sweep.push_back(
      RunBackendSweep(std::size_t{1} << 19, length, 8, &checksum));

  // Boundary sweep: the (series_n, length) grid where the v1 weight-18
  // boundary kept rows on direct dots. Every row reports the measured
  // per-backend timings next to the cost model's predictions so the static
  // weights stay auditable.
  std::vector<BoundaryResult> boundary;
  for (std::size_t bn : {std::size_t{1} << 12, std::size_t{1} << 13,
                         std::size_t{1} << 14}) {
    for (std::size_t bl :
         {std::size_t{64}, std::size_t{128}, std::size_t{256},
          std::size_t{512}}) {
      boundary.push_back(RunBoundaryPoint(bn, bl, &checksum));
    }
  }
  double speedup_boundary_8192_128 = 0.0;
  for (const BoundaryResult& b : boundary) {
    if (b.series_n == 8192 && b.length == 128) {
      speedup_boundary_8192_128 = b.speedup_v2_vs_v1;
    }
  }

  // SIMD target sweep: the same engine hot paths under every dispatch
  // target this build+machine supports, so the JSON records the measured
  // vector speedup (speedup_simd_vs_scalar_* rows).
  const std::vector<SimdSweepResult> simd_sweep =
      RunSimdTargetSweep(&checksum);
  double simd_scalar_total = 0.0;
  for (const SimdSweepResult& r : simd_sweep) {
    if (r.target == valmod::simd::Target::kScalar) {
      simd_scalar_total = r.total_seconds;
    }
  }

  // --- ParallelFor dispatch: spawn-per-call vs persistent pool ----------
  const int threads = 4;
  const std::size_t rounds = 200;
  const std::size_t range = 4096;
  std::vector<double> sink(range, 0.0);
  const auto body = [&](std::size_t i) { sink[i] += 1.0; };

  timer.Restart();
  for (std::size_t round = 0; round < rounds; ++round) {
    SpawnParallelFor(0, range, threads, body);
  }
  const double spawn_seconds = timer.ElapsedSeconds();

  valmod::ParallelFor(0, range, threads, body);  // warm the pool
  const std::uint64_t created_before =
      valmod::ThreadPool::Shared().threads_created();
  timer.Restart();
  for (std::size_t round = 0; round < rounds; ++round) {
    valmod::ParallelFor(0, range, threads, body);
  }
  const double pool_seconds = timer.ElapsedSeconds();
  const std::uint64_t created_during =
      valmod::ThreadPool::Shared().threads_created() - created_before;
  checksum += Checksum(sink);

  std::string sweep_json;
  for (std::size_t s = 0; s < sweep.size(); ++s) {
    const SweepResult& r = sweep[s];
    AppendFormat(
        &sweep_json,
        "%s{\"series_n\":%zu,\"repetitions\":%zu,"
        "\"cached_single_seconds\":%.6f,\"pair_batched_seconds\":%.6f,"
        "\"overlap_save_batched_seconds\":%.6f,"
        "\"speedup_overlap_save_vs_pair\":%.3f,"
        "\"speedup_overlap_save_vs_single\":%.3f,"
        "\"auto_backend\":\"%s\"}",
        s == 0 ? "" : ",", r.series_n, r.repetitions, r.single_seconds,
        r.pair_seconds, r.overlap_save_seconds,
        r.pair_seconds / r.overlap_save_seconds,
        r.single_seconds / r.overlap_save_seconds, r.auto_backend);
  }

  const valmod::mass::BackendCostModel model =
      valmod::mass::ActiveBackendCostModel();
  std::string boundary_json;
  for (std::size_t b = 0; b < boundary.size(); ++b) {
    const BoundaryResult& r = boundary[b];
    const std::size_t count = r.series_n - r.length + 1;
    AppendFormat(
        &boundary_json,
        "%s{\"series_n\":%zu,\"length\":%zu,\"repetitions\":%zu,"
        "\"direct_seconds_per_row\":%.3e,"
        "\"fft_pair_seconds_per_row\":%.3e,"
        "\"overlap_save_seconds_per_row\":%.3e,"
        "\"predicted_direct\":%.4g,\"predicted_fft_pair\":%.4g,"
        "\"predicted_overlap_save\":%.4g,"
        "\"v1_backend\":\"%s\",\"v2_backend\":\"%s\","
        "\"speedup_v2_vs_v1\":%.3f}",
        b == 0 ? "" : ",", r.series_n, r.length, r.repetitions,
        r.direct_seconds, r.fft_pair_seconds, r.overlap_save_seconds,
        valmod::mass::DirectSlidingDotsCost(model, r.length, count),
        valmod::mass::FftSlidingDotsCost(model, r.series_n, r.length,
                                         /*pair=*/true),
        valmod::mass::OverlapSaveSlidingDotsCost(model, r.length, count,
                                                 /*pair=*/true),
        valmod::mass::ConvolutionBackendName(r.v1),
        valmod::mass::ConvolutionBackendName(r.v2), r.speedup_v2_vs_v1);
  }

  std::string json;
  AppendFormat(
      &json,
      "{%s,\"bench\":\"mass_engine\",\"series_n\":%zu,\"length\":%zu,"
      "\"repetitions\":%zu,"
      "\"seed_uncached_seconds\":%.6f,\"uncached_seconds\":%.6f,"
      "\"pr1_single_seconds\":%.6f,\"cached_seconds\":%.6f,"
      "\"pair_batched_seconds\":%.6f,"
      "\"overlap_save_batched_seconds\":%.6f,"
      "\"speedup_cached_vs_seed_uncached\":%.3f,"
      "\"speedup_cached_vs_uncached\":%.3f,"
      "\"speedup_pair_batched_vs_pr1_single\":%.3f,"
      "\"speedup_pair_batched_vs_cached_single\":%.3f,"
      "\"speedup_overlap_save_vs_pair\":%.3f,"
      "\"sweep\":[%s],",
      valmod::bench::RunMetadataJsonFragment().c_str(),
      n, length, repetitions, seed_seconds, uncached_seconds,
      pr1_single_seconds, cached_seconds, pair_batched_seconds,
      overlap_save_batched_seconds,
      seed_seconds / cached_seconds, uncached_seconds / cached_seconds,
      pr1_single_seconds / pair_batched_seconds,
      cached_seconds / pair_batched_seconds,
      pair_batched_seconds / overlap_save_batched_seconds,
      sweep_json.c_str());
  std::string simd_json;
  for (std::size_t s = 0; s < simd_sweep.size(); ++s) {
    const SimdSweepResult& r = simd_sweep[s];
    AppendFormat(&simd_json,
                 "%s{\"target\":\"%s\",\"overlap_save_seconds\":%.6f,"
                 "\"direct_seconds\":%.6f,\"total_seconds\":%.6f,"
                 "\"speedup_vs_scalar\":%.3f}",
                 s == 0 ? "" : ",", valmod::simd::TargetName(r.target),
                 r.overlap_save_seconds, r.direct_seconds, r.total_seconds,
                 simd_scalar_total / r.total_seconds);
  }
  AppendFormat(&json,
               "\"simd_target\":\"%s\",\"cpu_features\":\"%s\","
               "\"simd_sweep\":[%s],",
               valmod::simd::TargetName(valmod::simd::ActiveTarget()),
               valmod::simd::CpuFeatureString().c_str(), simd_json.c_str());
  for (const SimdSweepResult& r : simd_sweep) {
    if (r.target == valmod::simd::Target::kScalar) continue;
    AppendFormat(&json, "\"speedup_simd_vs_scalar_%s\":%.3f,",
                 valmod::simd::TargetName(r.target),
                 simd_scalar_total / r.total_seconds);
  }
  AppendFormat(
      &json,
      "\"results_version\":%d,"
      "\"cost_model\":{\"source\":\"static\",\"direct\":%.3f,"
      "\"fft_single\":%.3f,\"fft_pair\":%.3f,\"overlap_save\":%.3f,"
      "\"overlap_save_chunk\":%.3f},"
      "\"boundary_sweep\":[%s],"
      "\"speedup_v2_vs_v1_boundary_8192_128\":%.3f,",
      valmod::mass::kResultsVersion, model.direct, model.fft_single,
      model.fft_pair, model.overlap_save, model.overlap_save_chunk,
      boundary_json.c_str(), speedup_boundary_8192_128);
  AppendFormat(
      &json,
      "\"parallel_for\":{\"rounds\":%zu,\"range\":%zu,\"threads\":%d,"
      "\"spawn_seconds\":%.6f,\"pool_seconds\":%.6f,"
      "\"pool_threads_created_during_timed_rounds\":%llu},"
      "\"checksum\":%.6e}\n",
      rounds, range, threads, spawn_seconds, pool_seconds,
      static_cast<unsigned long long>(created_during), checksum);
  std::fputs(json.c_str(), stdout);
  if (argc > 1) {
    std::FILE* out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", argv[1]);
      return 1;
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
  }
  return 0;
}
