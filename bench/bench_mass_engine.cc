// Micro-benchmark for the batched MASS engine (emits JSON for the perf
// trajectory):
//
//   1. Repeated ComputeRowProfile at a fixed length on a 2^17-point series:
//      the seed's uncached algorithm (three full-size complex transforms,
//      trig recomputed per call) vs the current uncached free function
//      (plan-cached real-input FFT) vs the cached MassEngine (series
//      spectrum computed once; one query transform + one inverse per call).
//   2. ParallelFor dispatch: spawn-per-call std::thread (the seed's
//      implementation) vs the persistent pool, plus the pool's
//      threads-created counter across the timed regions — the observable
//      "no per-batch thread spawn" guarantee.

#include <complex>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/timer.h"
#include "fft/fft.h"
#include "mass/engine.h"
#include "mass/mass.h"
#include "series/data_series.h"
#include "series/generators.h"

namespace {

using valmod::WallTimer;
using valmod::series::DataSeries;

/// The seed's sliding-dot algorithm: zero-pad both operands to the full
/// FFT size and run three complex transforms, exactly as the pre-engine
/// fft::Convolve did. Kept here as the uncached baseline.
std::vector<double> SeedSlidingDots(std::span<const double> series,
                                    std::span<const double> query) {
  const std::size_t n = series.size();
  const std::size_t m = query.size();
  const std::size_t fft_size = valmod::fft::NextPowerOfTwo(n + m - 1);
  std::vector<std::complex<double>> fa(fft_size), fb(fft_size);
  for (std::size_t i = 0; i < n; ++i) fa[i] = series[i];
  for (std::size_t i = 0; i < m; ++i) fb[i] = query[m - 1 - i];
  (void)valmod::fft::Transform(fa, valmod::fft::Direction::kForward);
  (void)valmod::fft::Transform(fb, valmod::fft::Direction::kForward);
  for (std::size_t i = 0; i < fft_size; ++i) fa[i] *= fb[i];
  (void)valmod::fft::Transform(fa, valmod::fft::Direction::kInverse);
  std::vector<double> dots(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) dots[i] = fa[m - 1 + i].real();
  return dots;
}

/// Full seed-equivalent row profile (dots + distances) on the baseline.
void SeedRowProfile(const DataSeries& series, std::size_t offset,
                    std::size_t length, std::vector<double>* distances) {
  const auto centered = series.centered();
  const std::vector<double> dots = SeedSlidingDots(
      centered, centered.subspan(offset, length));
  valmod::mass::DistancesFromDots(series, offset, length, dots, distances);
}

/// The seed's ParallelFor: spawn and join std::threads on every call.
void SpawnParallelFor(std::size_t begin, std::size_t end, int threads,
                      const std::function<void(std::size_t)>& fn) {
  const std::size_t count = end > begin ? end - begin : 0;
  const std::size_t workers = std::min<std::size_t>(
      threads > 1 ? static_cast<std::size_t>(threads) : 1, count);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn]() {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& t : pool) t.join();
}

double Checksum(const std::vector<double>& values) {
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc;
}

}  // namespace

int main() {
  const std::size_t n = std::size_t{1} << 17;
  const std::size_t length = 1024;  // past the cost-model crossover: FFT path
  const std::size_t repetitions = 20;

  auto series_result = valmod::synth::ByName("ecg", n, 11);
  if (!series_result.ok()) {
    std::fprintf(stderr, "series generation failed: %s\n",
                 series_result.status().ToString().c_str());
    return 1;
  }
  const DataSeries& series = *series_result;
  const std::size_t count = series.NumSubsequences(length);
  const std::size_t stride = count / repetitions;

  valmod::mass::MassEngine engine(series);
  std::vector<double> scratch;
  double checksum = 0.0;

  // Untimed warmup: builds FFT plans for every variant and the engine's
  // cached series spectrum (the engine's one-time cost is deliberately
  // excluded — it is amortized over thousands of calls in real runs, and
  // the uncached paths get the same plan-warm treatment).
  SeedRowProfile(series, 0, length, &scratch);
  (void)valmod::mass::ComputeRowProfile(series, 0, length);
  (void)engine.ComputeRowProfile(0, length);

  WallTimer timer;
  for (std::size_t r = 0; r < repetitions; ++r) {
    SeedRowProfile(series, r * stride, length, &scratch);
    checksum += Checksum(scratch);
  }
  const double seed_seconds = timer.ElapsedSeconds();

  timer.Restart();
  for (std::size_t r = 0; r < repetitions; ++r) {
    auto row = valmod::mass::ComputeRowProfile(series, r * stride, length);
    checksum += Checksum(row->distances);
  }
  const double uncached_seconds = timer.ElapsedSeconds();

  timer.Restart();
  for (std::size_t r = 0; r < repetitions; ++r) {
    auto row = engine.ComputeRowProfile(r * stride, length);
    checksum += Checksum(row->distances);
  }
  const double cached_seconds = timer.ElapsedSeconds();

  // --- ParallelFor dispatch: spawn-per-call vs persistent pool ----------
  const int threads = 4;
  const std::size_t rounds = 200;
  const std::size_t range = 4096;
  std::vector<double> sink(range, 0.0);
  const auto body = [&](std::size_t i) { sink[i] += 1.0; };

  timer.Restart();
  for (std::size_t round = 0; round < rounds; ++round) {
    SpawnParallelFor(0, range, threads, body);
  }
  const double spawn_seconds = timer.ElapsedSeconds();

  valmod::ParallelFor(0, range, threads, body);  // warm the pool
  const std::uint64_t created_before =
      valmod::ThreadPool::Shared().threads_created();
  timer.Restart();
  for (std::size_t round = 0; round < rounds; ++round) {
    valmod::ParallelFor(0, range, threads, body);
  }
  const double pool_seconds = timer.ElapsedSeconds();
  const std::uint64_t created_during =
      valmod::ThreadPool::Shared().threads_created() - created_before;
  checksum += Checksum(sink);

  std::printf(
      "{\"bench\":\"mass_engine\",\"series_n\":%zu,\"length\":%zu,"
      "\"repetitions\":%zu,"
      "\"seed_uncached_seconds\":%.6f,\"uncached_seconds\":%.6f,"
      "\"cached_seconds\":%.6f,"
      "\"speedup_cached_vs_seed_uncached\":%.3f,"
      "\"speedup_cached_vs_uncached\":%.3f,"
      "\"parallel_for\":{\"rounds\":%zu,\"range\":%zu,\"threads\":%d,"
      "\"spawn_seconds\":%.6f,\"pool_seconds\":%.6f,"
      "\"pool_threads_created_during_timed_rounds\":%llu},"
      "\"checksum\":%.6e}\n",
      n, length, repetitions, seed_seconds, uncached_seconds, cached_seconds,
      seed_seconds / cached_seconds, uncached_seconds / cached_seconds,
      rounds, range, threads, spawn_seconds, pool_seconds,
      static_cast<unsigned long long>(created_during), checksum);
  return 0;
}
