// Serving-layer benchmark: throughput and latency percentiles for a mixed
// request stream against the valmod service, comparing
//
//   cold  — the one-shot per-request path (what valmod_cli does): every
//           request gets a fresh registry + engine and an empty result
//           cache, so nothing amortizes;
//   warm  — one long-lived Service: the registry holds the dataset and its
//           shared MassEngine across requests, and the result cache
//           memoizes repeated queries.
//
// The stream mixes motifs / valmap / profile / query requests over a small
// set of parameter shapes (each shape repeats, as an analyst's interactive
// session does), at 1..N concurrent clients. Emits JSON (stdout, plus
// --json=<path>) -> BENCH_service.json in CI, next to BENCH_engine.json.
//
// The headline number is speedup_warm_vs_cold_1client: the serving stack's
// acceptance bar is >= 3x (caches must actually amortize).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/timer.h"
#include "common/trace.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "service/client.h"
#include "service/server.h"
#include "service/tcp_server.h"
#include "simd/dispatch.h"

namespace {

using valmod::Flags;
using valmod::WallTimer;
using valmod::json::Value;
using valmod::series::DataSeries;
using valmod::service::Service;
using valmod::service::ServiceOptions;

/// The mixed request stream: `distinct` parameter shapes per verb family,
/// cycled `requests` times. Deterministic, so cold and warm runs execute
/// the byte-identical stream.
std::vector<std::string> BuildRequestStream(const DataSeries& series,
                                            std::size_t requests,
                                            std::size_t length) {
  std::vector<std::string> templates;
  // Motifs at a few adjacent ranges (VALMOD proper, engine-backed).
  for (std::size_t i = 0; i < 2; ++i) {
    templates.push_back(
        "{\"verb\":\"motifs\",\"dataset\":\"bench\",\"params\":{\"lmin\":" +
        std::to_string(length + 8 * i) +
        ",\"lmax\":" + std::to_string(length + 8 * i + 6) +
        ",\"k\":2}}");
  }
  // Fixed-length profile (STOMP).
  templates.push_back(
      "{\"verb\":\"profile\",\"dataset\":\"bench\",\"params\":{\"l\":" +
      std::to_string(length) + "}}");
  // Query-by-content: two query windows cut from the series itself.
  for (const std::size_t offset : {std::size_t{100}, series.size() / 2}) {
    std::string values = "[";
    const auto raw = series.values();
    for (std::size_t i = 0; i < length; ++i) {
      if (i > 0) values += ',';
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", raw[offset + i]);
      values += buffer;
    }
    values += "]";
    templates.push_back(
        "{\"verb\":\"query\",\"dataset\":\"bench\",\"params\":{\"k\":3,"
        "\"values\":" + values + "}}");
  }
  std::vector<std::string> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    stream.push_back(templates[i % templates.size()]);
  }
  return stream;
}

struct RunResult {
  double seconds = 0.0;
  double throughput = 0.0;  // requests / second
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t errors = 0;
};

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted_ms.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_ms.size())));
  return sorted_ms[index];
}

RunResult Finish(double seconds, std::vector<double> latencies_ms,
                 std::size_t errors) {
  RunResult result;
  result.seconds = seconds;
  result.throughput =
      seconds > 0.0 ? static_cast<double>(latencies_ms.size()) / seconds : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  result.errors = errors;
  return result;
}

bool ResponseOk(const std::string& response) {
  return response.find("\"ok\":true") != std::string::npos;
}

/// Cold: every request runs against a fresh Service (fresh registry, fresh
/// engine, cache disabled) — the per-request cost of the one-shot path.
RunResult RunCold(const DataSeries& series,
                  const std::vector<std::string>& stream) {
  std::vector<double> latencies_ms;
  latencies_ms.reserve(stream.size());
  std::size_t errors = 0;
  WallTimer total;
  for (const std::string& request : stream) {
    WallTimer timer;
    ServiceOptions options;
    options.workers = 1;
    options.cache_capacity = 0;
    Service service(options);
    auto loaded = service.registry().LoadSeries("bench", series.Clone());
    if (!loaded.ok() || !ResponseOk(service.HandleRequestLine(request))) {
      ++errors;
    }
    latencies_ms.push_back(timer.ElapsedMillis());
  }
  return Finish(total.ElapsedSeconds(), std::move(latencies_ms), errors);
}

/// Warm: one Service for the whole stream, `clients` threads issuing
/// disjoint slices of it concurrently.
RunResult RunWarm(Service& service, const std::vector<std::string>& stream,
                  std::size_t clients) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::size_t> errors(clients, 0);
  WallTimer total;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = c; i < stream.size(); i += clients) {
        WallTimer timer;
        if (!ResponseOk(service.HandleRequestLine(stream[i]))) ++errors[c];
        latencies[c].push_back(timer.ElapsedMillis());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = total.ElapsedSeconds();
  std::vector<double> all;
  std::size_t total_errors = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    total_errors += errors[c];
  }
  return Finish(seconds, std::move(all), total_errors);
}

/// Overload: a miss-storm against a deliberately undersized service (2
/// workers, 8 queue slots, cache off, every request a distinct shape) from
/// twice as many clients as the queue can absorb — half at priority 5,
/// half at the default 0 — each speaking through the RetryClient, so the
/// documented retry/backoff contract (ResourceExhausted + retry_after_ms)
/// is what keeps the storm sustainable. Reports per-class outcomes plus
/// the scheduler's shed/rejected counters: under pressure, capacity must
/// go to the high-priority class, and its p99 must stay bounded by
/// queue-depth x service-time rather than growing with the storm.
Value RunOverload(const DataSeries& series, std::size_t length) {
  ServiceOptions options;
  options.workers = 2;
  // 8 clients against 2 workers + 4 slots: up to 6 requests are waiting at
  // once, so the queue genuinely overflows and the shed/retry machinery is
  // what every client's progress actually rides on.
  options.queue_capacity = 4;
  options.cache_capacity = 0;  // every request computes: a pure miss-storm
  Service service(options);
  auto loaded = service.registry().LoadSeries("bench", series.Clone());
  if (!loaded.ok()) {
    std::fprintf(stderr, "overload load failed: %s\n",
                 loaded.status().ToString().c_str());
    return Value();
  }

  constexpr std::size_t kClientsPerClass = 4;
  constexpr std::size_t kRequestsPerClient = 4;
  struct ClassOutcome {
    std::vector<double> latencies_ms;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::uint64_t retries = 0;
    std::uint64_t gave_up = 0;
  };
  std::vector<ClassOutcome> outcomes(2 * kClientsPerClass);

  WallTimer total;
  std::vector<std::thread> clients;
  for (std::size_t idx = 0; idx < outcomes.size(); ++idx) {
    clients.emplace_back([&, idx] {
      const bool high = idx < kClientsPerClass;
      const int priority = high ? 5 : 0;
      valmod::service::CallbackTransport transport(
          [&service](const std::string& line) {
            return service.HandleRequestLine(line);
          });
      valmod::service::RetryOptions retry;
      retry.max_attempts = 4;
      retry.initial_backoff_ms = 5;
      retry.max_backoff_ms = 200;
      retry.jitter_seed = idx + 1;  // desynchronize, deterministically
      valmod::service::RetryClient client(transport, retry);
      ClassOutcome& outcome = outcomes[idx];
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        // Every (client, i) pair is a distinct motifs shape: no request
        // ever hits the (disabled) cache or another client's work.
        const std::size_t lmin = length + 4 * (idx * kRequestsPerClient + i);
        const std::string request =
            "{\"verb\":\"motifs\",\"dataset\":\"bench\",\"params\":{\"lmin\":" +
            std::to_string(lmin) + ",\"lmax\":" + std::to_string(lmin + 2) +
            ",\"k\":1},\"priority\":" + std::to_string(priority) + "}";
        WallTimer timer;
        auto response = client.Call(request);
        outcome.latencies_ms.push_back(timer.ElapsedMillis());
        if (response.ok() && response->GetBool("ok", false)) {
          ++outcome.ok;
        } else {
          ++outcome.failed;
        }
      }
      outcome.retries = client.stats().retries;
      outcome.gave_up = client.stats().gave_up;
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = total.ElapsedSeconds();

  const auto class_value = [&](std::size_t begin) {
    ClassOutcome merged;
    for (std::size_t c = begin; c < begin + kClientsPerClass; ++c) {
      const ClassOutcome& o = outcomes[c];
      merged.latencies_ms.insert(merged.latencies_ms.end(),
                                 o.latencies_ms.begin(), o.latencies_ms.end());
      merged.ok += o.ok;
      merged.failed += o.failed;
      merged.retries += o.retries;
      merged.gave_up += o.gave_up;
    }
    std::sort(merged.latencies_ms.begin(), merged.latencies_ms.end());
    Value::Object o;
    o.emplace("ok", Value(merged.ok));
    o.emplace("failed", Value(merged.failed));
    o.emplace("retries", Value(merged.retries));
    o.emplace("gave_up", Value(merged.gave_up));
    o.emplace("p50_ms", Value(Percentile(merged.latencies_ms, 0.50)));
    o.emplace("p99_ms", Value(Percentile(merged.latencies_ms, 0.99)));
    return std::make_pair(Value(std::move(o)), merged);
  };
  auto [high_value, high] = class_value(0);
  auto [low_value, low] = class_value(kClientsPerClass);
  const valmod::service::SchedulerStats sched = service.scheduler().stats();

  std::fprintf(stderr,
               "overload      : %5.2f s  high %zu/%zu ok (p99 %7.2f ms)  "
               "low %zu/%zu ok (p99 %7.2f ms)  shed %llu  rejected %llu  "
               "retries %llu\n",
               seconds, high.ok, high.ok + high.failed,
               Percentile(high.latencies_ms, 0.99), low.ok,
               low.ok + low.failed, Percentile(low.latencies_ms, 0.99),
               static_cast<unsigned long long>(sched.shed),
               static_cast<unsigned long long>(sched.rejected),
               static_cast<unsigned long long>(high.retries + low.retries));

  Value::Object overload;
  overload.emplace("seconds", Value(seconds));
  overload.emplace("workers", Value(options.workers));
  overload.emplace("queue_capacity", Value(options.queue_capacity));
  overload.emplace("high_priority", std::move(high_value));
  overload.emplace("low_priority", std::move(low_value));
  overload.emplace("shed", Value(sched.shed));
  overload.emplace("rejected", Value(sched.rejected));
  overload.emplace("mean_service_ms", Value(sched.mean_service_ms));
  return Value(std::move(overload));
}

Value RunValue(const RunResult& run);

/// TCP front-end sweep: one warm Service behind either transport, hammered
/// by `client_counts` concurrent connections each issuing round trips from
/// the (cache-hot) stream. Requests are hits, so the number measures the
/// transport — accept/read/dispatch/write — not the compute behind it.
/// That is exactly the epoll-vs-threads comparison: at 256 connections the
/// threaded transport pays one blocked thread per client, the event loop
/// one fd per client.
Value RunTcpSweep(const DataSeries& series,
                  const std::vector<std::string>& stream, bool threaded,
                  const std::vector<std::size_t>& client_counts,
                  std::size_t requests_per_client) {
  ServiceOptions options;
  options.workers = 4;
  options.cache_capacity = 256;
  Service service(options);
  auto loaded = service.registry().LoadSeries("bench", series.Clone());
  if (!loaded.ok()) {
    std::fprintf(stderr, "tcp sweep load failed: %s\n",
                 loaded.status().ToString().c_str());
    return Value();
  }
  valmod::service::TcpServerOptions tcp_options;
  tcp_options.port = 0;
  auto server = threaded
                    ? valmod::service::MakeThreadedServer(service, tcp_options)
                    : valmod::service::MakeEpollServer(service, tcp_options);
  if (!server.ok()) {
    std::fprintf(stderr, "tcp sweep bind failed: %s\n",
                 server.status().ToString().c_str());
    return Value();
  }
  const int port = (*server)->port();
  std::thread serve_thread([&server] { (void)(*server)->Serve(); });

  // Warm every cache entry in-process so the sweep measures the wire.
  for (const std::string& request : stream) {
    (void)service.HandleRequestLine(request);
  }

  const char* label = threaded ? "tcp threads" : "tcp epoll  ";
  Value::Object runs;
  for (const std::size_t clients : client_counts) {
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::size_t> errors(clients, 0);
    WallTimer total;
    std::vector<std::thread> client_threads;
    client_threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        valmod::service::TcpTransport transport(port);
        valmod::service::RetryClient client(transport);
        for (std::size_t i = 0; i < requests_per_client; ++i) {
          const std::string& request =
              stream[(c * requests_per_client + i) % stream.size()];
          WallTimer timer;
          auto response = client.Call(request);
          latencies[c].push_back(timer.ElapsedMillis());
          if (!response.ok() || !response->GetBool("ok", false)) ++errors[c];
        }
      });
    }
    for (std::thread& t : client_threads) t.join();
    const double seconds = total.ElapsedSeconds();
    std::vector<double> all;
    std::size_t total_errors = 0;
    for (std::size_t c = 0; c < clients; ++c) {
      all.insert(all.end(), latencies[c].begin(), latencies[c].end());
      total_errors += errors[c];
    }
    const RunResult run = Finish(seconds, std::move(all), total_errors);
    std::fprintf(
        stderr,
        "%s %3zu clients: %8.2f req/s (p50 %6.2f ms, p99 %6.2f ms)%s\n",
        label, clients, run.throughput, run.p50_ms, run.p99_ms,
        run.errors > 0 ? "  [errors!]" : "");
    Value::Object entry = RunValue(run).AsObject();
    entry.emplace("clients", Value(clients));
    runs.emplace(std::to_string(clients) + "_clients",
                 Value(std::move(entry)));
  }

  {
    valmod::service::TcpTransport transport(port);
    (void)transport.RoundTrip("{\"verb\":\"shutdown\"}");
  }
  serve_thread.join();
  return Value(std::move(runs));
}

/// Miss coalescing under a storm: 64 clients issue the *same* cold-key
/// request at once. The flight machinery must collapse them to ONE
/// computation (observed through the scheduler's completed counter), so
/// the storm's wall time stays ~1x a single miss, not 64x (or queue-full
/// errors, which capacity 64 could not absorb uncoalesced).
Value RunMissStorm(const DataSeries& series, std::size_t length) {
  constexpr std::size_t kClients = 64;
  ServiceOptions options;
  options.workers = 4;
  options.cache_capacity = 64;
  options.queue_capacity = 8;  // far fewer slots than storm clients
  Service service(options);
  auto loaded = service.registry().LoadSeries("bench", series.Clone());
  if (!loaded.ok()) {
    std::fprintf(stderr, "miss storm load failed: %s\n",
                 loaded.status().ToString().c_str());
    return Value();
  }
  const auto profile_request = [&](std::size_t l) {
    return "{\"verb\":\"profile\",\"dataset\":\"bench\",\"params\":{\"l\":" +
           std::to_string(l) + "}}";
  };

  // Baseline: one cold miss, alone.
  WallTimer baseline_timer;
  const bool baseline_ok =
      ResponseOk(service.HandleRequestLine(profile_request(length + 5)));
  const double baseline_ms = baseline_timer.ElapsedMillis();

  // Storm: a different cold key, hit by every client at once.
  const std::string storm_request = profile_request(length + 7);
  const std::uint64_t completed_before = service.scheduler().stats().completed;
  std::vector<std::size_t> errors(kClients, 0);
  WallTimer storm_timer;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      if (!ResponseOk(service.HandleRequestLine(storm_request))) ++errors[c];
    });
  }
  for (std::thread& t : clients) t.join();
  const double storm_ms = storm_timer.ElapsedMillis();
  const std::uint64_t computations =
      service.scheduler().stats().completed - completed_before;
  std::size_t storm_errors = 0;
  for (const std::size_t e : errors) storm_errors += e;
  const double ratio = baseline_ms > 0.0 ? storm_ms / baseline_ms : 0.0;

  std::uint64_t coalesced = 0;
  auto stats = valmod::json::Parse(
      service.HandleRequestLine("{\"verb\":\"stats\"}"));
  if (stats.ok()) {
    if (const Value* cache = stats->Find("result")->Find("cache")) {
      coalesced = static_cast<std::uint64_t>(cache->GetNumber("coalesced", 0));
    }
  }

  std::fprintf(stderr,
               "miss storm    : %zu clients, 1 key: %llu computation%s, "
               "%llu coalesced, %.2f ms vs %.2f ms single miss (%.2fx)%s\n",
               kClients, static_cast<unsigned long long>(computations),
               computations == 1 ? "" : "s",
               static_cast<unsigned long long>(coalesced), storm_ms,
               baseline_ms, ratio,
               (storm_errors > 0 || !baseline_ok) ? "  [errors!]" : "");

  Value::Object o;
  o.emplace("clients", Value(kClients));
  o.emplace("single_miss_ms", Value(baseline_ms));
  o.emplace("storm_ms", Value(storm_ms));
  o.emplace("storm_vs_single_miss", Value(ratio));
  o.emplace("computations", Value(computations));
  o.emplace("coalesced", Value(coalesced));
  o.emplace("errors", Value(storm_errors + (baseline_ok ? 0u : 1u)));
  return Value(std::move(o));
}

/// Tracing-overhead probe at 64 clients over a cache-hot stream (every
/// request is a result-cache hit, so the measured path is exactly the
/// request machinery tracing instruments). Three p50s: tracing globally
/// disabled (--no-trace), enabled-but-unrequested (the default serving
/// configuration — this is the one with the <1% overhead acceptance bar),
/// and per-request "trace":true (span tree rendered into every response).
Value RunTraceOverhead(const DataSeries& series,
                       const std::vector<std::string>& stream) {
  constexpr std::size_t kClients = 64;
  ServiceOptions options;
  options.workers = 4;
  options.cache_capacity = 256;
  Service service(options);
  auto loaded = service.registry().LoadSeries("bench", series.Clone());
  if (!loaded.ok()) {
    std::fprintf(stderr, "trace overhead load failed: %s\n",
                 loaded.status().ToString().c_str());
    return Value();
  }
  // Warm every cache entry so all three runs measure pure hits.
  for (const std::string& request : stream) {
    (void)service.HandleRequestLine(request);
  }
  // Same shapes, each asking for its span tree back.
  std::vector<std::string> traced;
  traced.reserve(stream.size());
  for (const std::string& request : stream) {
    traced.push_back("{\"trace\":true," + request.substr(1));
  }

  // Each client replays the full stream, so the sample count is
  // kClients * stream.size() regardless of the stream length.
  const auto run = [&](const std::vector<std::string>& requests) {
    std::vector<std::vector<double>> latencies(kClients);
    std::vector<std::size_t> errors(kClients, 0);
    WallTimer total;
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        for (const std::string& request : requests) {
          WallTimer timer;
          if (!ResponseOk(service.HandleRequestLine(request))) ++errors[c];
          latencies[c].push_back(timer.ElapsedMillis());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds = total.ElapsedSeconds();
    std::vector<double> all;
    std::size_t total_errors = 0;
    for (std::size_t c = 0; c < kClients; ++c) {
      all.insert(all.end(), latencies[c].begin(), latencies[c].end());
      total_errors += errors[c];
    }
    return Finish(seconds, std::move(all), total_errors);
  };

  const bool was_enabled = valmod::trace::Enabled();
  valmod::trace::SetEnabled(false);
  const RunResult disabled = run(stream);
  valmod::trace::SetEnabled(true);
  const RunResult enabled = run(stream);
  const RunResult requested = run(traced);
  valmod::trace::SetEnabled(was_enabled);

  // Two views of the same delta. The hit-ratio divides by this probe's
  // pure-cache-hit p50 (microseconds), which makes ~1-2 us of context
  // setup look enormous; the absolute delta is what scales to real
  // traffic, and main() divides it by the 64-client TCP sweep's p50 to
  // report the overhead a real client actually sees.
  const double overhead_fraction =
      disabled.p50_ms > 0.0 ? enabled.p50_ms / disabled.p50_ms - 1.0 : 0.0;
  const double overhead_us = (enabled.p50_ms - disabled.p50_ms) * 1000.0;
  std::fprintf(stderr,
               "trace overhead: %zu clients p50 off %.4f ms, on %.4f ms "
               "(%+.3f us, %+.2f%% of a pure hit), trace=true %.4f ms%s\n",
               kClients, disabled.p50_ms, enabled.p50_ms, overhead_us,
               overhead_fraction * 100.0, requested.p50_ms,
               (disabled.errors + enabled.errors + requested.errors) > 0
                   ? "  [errors!]"
                   : "");

  Value::Object o;
  o.emplace("clients", Value(kClients));
  o.emplace("requests_per_run", Value(kClients * stream.size()));
  o.emplace("disabled", RunValue(disabled));
  o.emplace("enabled_unrequested", RunValue(enabled));
  o.emplace("trace_requested", RunValue(requested));
  o.emplace("p50_overhead_us", Value(overhead_us));
  o.emplace("p50_overhead_enabled_vs_disabled_pure_hits",
            Value(overhead_fraction));
  return Value(std::move(o));
}

std::string AppendRequest(const double* values, std::size_t count) {
  std::string request =
      "{\"verb\":\"append\",\"dataset\":\"stream\",\"params\":{\"values\":[";
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0) request += ',';
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", values[i]);
    request += buffer;
  }
  request += "]}}";
  return request;
}

/// Windowed streaming ingestion through the serving stack. Two claims:
///
///   flatness — per-append latency must not grow with total history. The
///              window bounds the maintained state, so a batch appended
///              after 100x-window of churn must cost what a batch at
///              2x-window cost. Reported as p50(late epoch)/p50(mid
///              epoch); a leaky O(history) implementation grows ~50x here.
///   memory   — a 1M-point append-then-query run must end with the
///              dataset's `stats`-reported footprint reflecting the
///              window, not the million points.
///
/// Requests are built before each timer starts, so the measured cost is
/// the serving stack (parse, registry, maintained profile), not snprintf.
Value RunStreamingIngest(std::size_t length) {
  Value::Object doc;

  // --- Flatness sweep: history grows to 100x the window. ---
  // Window sizes here trade CI wall time against realism: per-append cost
  // is O(window) (the update pass plus the occasional repair rescan after
  // an eviction), so 2048/1024 keep the whole section under ~1 minute
  // while still streaming 100x the window / a million points.
  {
    const std::size_t window = 2048;
    const std::size_t batch = 128;
    const std::size_t total_points = 100 * window;
    auto source = valmod::synth::ByName("random_walk", total_points, 77);
    if (!source.ok()) return Value(std::move(doc));
    const auto raw = source->values();

    ServiceOptions options;
    options.workers = 2;
    Service service(options);
    if (!ResponseOk(service.HandleRequestLine(
            "{\"verb\":\"load\",\"dataset\":\"stream\",\"params\":{"
            "\"streaming_length\":" + std::to_string(length) +
            ",\"window\":" + std::to_string(window) + "}}"))) {
      return Value(std::move(doc));
    }

    const std::size_t batches = total_points / batch;
    std::vector<double> batch_ms;
    batch_ms.reserve(batches);
    std::size_t errors = 0;
    WallTimer total;
    for (std::size_t b = 0; b < batches; ++b) {
      const std::string request = AppendRequest(raw.data() + b * batch, batch);
      WallTimer timer;
      if (!ResponseOk(service.HandleRequestLine(request))) ++errors;
      batch_ms.push_back(timer.ElapsedMillis());
    }
    const double seconds = total.ElapsedSeconds();

    // Mid epoch: steady state just after the window first filled (history
    // 2x..3x window). Late epoch: the last window's worth of batches, with
    // history at 100x. Flat means late/mid ~= 1.
    const std::size_t per_epoch = window / batch;
    std::vector<double> mid(batch_ms.begin() + 2 * per_epoch,
                            batch_ms.begin() + 3 * per_epoch);
    std::vector<double> late(batch_ms.end() - per_epoch, batch_ms.end());
    std::sort(mid.begin(), mid.end());
    std::sort(late.begin(), late.end());
    std::sort(batch_ms.begin(), batch_ms.end());
    const double mid_p50 = Percentile(mid, 0.50);
    const double late_p50 = Percentile(late, 0.50);
    const double flatness = mid_p50 > 0.0 ? late_p50 / mid_p50 : 0.0;
    const double appends_per_sec =
        seconds > 0.0 ? static_cast<double>(total_points) / seconds : 0.0;
    const double p99_us = Percentile(batch_ms, 0.99) * 1000.0;

    std::fprintf(stderr,
                 "stream ingest : %8.0f points/s  batch p50 %6.3f ms  "
                 "p99 %8.1f us  flatness(100x/2x) %.2fx%s\n",
                 appends_per_sec, Percentile(batch_ms, 0.50), p99_us, flatness,
                 errors > 0 ? "  [errors!]" : "");

    Value::Object o;
    o.emplace("window", Value(window));
    o.emplace("length", Value(length));
    o.emplace("batch_points", Value(batch));
    o.emplace("total_points", Value(total_points));
    o.emplace("seconds", Value(seconds));
    o.emplace("appends_per_sec", Value(appends_per_sec));
    o.emplace("p50_append_latency_ms", Value(Percentile(batch_ms, 0.50)));
    o.emplace("p99_append_latency_us", Value(p99_us));
    o.emplace("append_latency_flatness_100x_vs_2x", Value(flatness));
    o.emplace("errors", Value(errors));
    doc.emplace("flatness", Value(std::move(o)));
  }

  // --- 1M-point append-then-query within the window memory bound. ---
  {
    const std::size_t window = 1024;
    const std::size_t length = 32;  // shadows the sweep length: see above
    const std::size_t total_points = 1'000'000;
    const std::size_t batch = 1024;
    auto source = valmod::synth::ByName("random_walk", total_points, 79);
    if (!source.ok()) return Value(std::move(doc));
    const auto raw = source->values();

    ServiceOptions options;
    options.workers = 2;
    Service service(options);
    if (!ResponseOk(service.HandleRequestLine(
            "{\"verb\":\"load\",\"dataset\":\"stream\",\"params\":{"
            "\"streaming_length\":" + std::to_string(length) +
            ",\"max_points\":" + std::to_string(window) + "}}"))) {
      return Value(std::move(doc));
    }

    std::size_t errors = 0;
    WallTimer ingest_timer;
    for (std::size_t begin = 0; begin < total_points; begin += batch) {
      const std::size_t count = std::min(batch, total_points - begin);
      const std::string request = AppendRequest(raw.data() + begin, count);
      if (!ResponseOk(service.HandleRequestLine(request))) ++errors;
    }
    const double ingest_seconds = ingest_timer.ElapsedSeconds();

    WallTimer profile_timer;
    const bool profile_ok = ResponseOk(service.HandleRequestLine(
        "{\"verb\":\"profile\",\"dataset\":\"stream\"}"));
    const double profile_ms = profile_timer.ElapsedMillis();
    WallTimer motifs_timer;
    const bool motifs_ok = ResponseOk(service.HandleRequestLine(
        "{\"verb\":\"motifs\",\"dataset\":\"stream\",\"params\":{\"k\":3}}"));
    const double motifs_ms = motifs_timer.ElapsedMillis();

    double memory_bytes = 0.0;
    auto stats = valmod::json::Parse(
        service.HandleRequestLine("{\"verb\":\"stats\"}"));
    if (stats.ok()) {
      if (const Value* datasets = stats->Find("result")->Find("datasets")) {
        if (!datasets->AsArray().empty()) {
          memory_bytes = datasets->AsArray()[0].GetNumber("memory_bytes", 0);
        }
      }
    }

    std::fprintf(stderr,
                 "stream 1M     : ingest %5.2f s (%8.0f points/s)  "
                 "profile %6.2f ms  motifs %6.2f ms  memory %.2f MiB%s\n",
                 ingest_seconds,
                 ingest_seconds > 0.0 ? total_points / ingest_seconds : 0.0,
                 profile_ms, motifs_ms, memory_bytes / (1024.0 * 1024.0),
                 (errors > 0 || !profile_ok || !motifs_ok) ? "  [errors!]"
                                                           : "");

    Value::Object o;
    o.emplace("window", Value(window));
    o.emplace("length", Value(length));
    o.emplace("total_points", Value(total_points));
    o.emplace("ingest_seconds", Value(ingest_seconds));
    o.emplace("appends_per_sec",
              Value(ingest_seconds > 0.0 ? total_points / ingest_seconds
                                         : 0.0));
    o.emplace("profile_ms", Value(profile_ms));
    o.emplace("motifs_ms", Value(motifs_ms));
    o.emplace("memory_bytes", Value(memory_bytes));
    o.emplace("errors",
              Value(errors + (profile_ok ? 0u : 1u) + (motifs_ok ? 0u : 1u)));
    doc.emplace("million_point", Value(std::move(o)));
  }

  return Value(std::move(doc));
}

Value RunValue(const RunResult& run) {
  Value::Object o;
  o.emplace("seconds", Value(run.seconds));
  o.emplace("requests_per_second", Value(run.throughput));
  o.emplace("p50_ms", Value(run.p50_ms));
  o.emplace("p99_ms", Value(run.p99_ms));
  o.emplace("errors", Value(run.errors));
  return Value(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 8192));
  const std::size_t requests =
      static_cast<std::size_t>(flags.GetInt("requests", 30));
  const std::size_t length =
      static_cast<std::size_t>(flags.GetInt("length", 128));
  const std::size_t max_clients =
      static_cast<std::size_t>(flags.GetInt("clients", 4));

  auto series = valmod::synth::ByName("ecg", n, 1);
  if (!series.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 series.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> stream =
      BuildRequestStream(*series, requests, length);

  std::fprintf(stderr, "bench_service: n=%zu requests=%zu length=%zu\n", n,
               requests, length);

  const RunResult cold = RunCold(*series, stream);
  std::fprintf(stderr, "cold  1 client : %6.2f req/s (p50 %7.2f ms, p99 %7.2f ms)\n",
               cold.throughput, cold.p50_ms, cold.p99_ms);

  Value::Object doc;
  doc.emplace("bench", Value("service"));
  doc.emplace("git_sha", Value(std::string(valmod::bench::GitSha())));
  doc.emplace("run_results_version", Value(valmod::mass::kResultsVersion));
  doc.emplace("simd_target",
              Value(std::string(valmod::simd::TargetName(
                  valmod::simd::ActiveTarget()))));
  doc.emplace("cpu_features", Value(valmod::simd::CpuFeatureString()));
  doc.emplace("n", Value(n));
  doc.emplace("requests", Value(requests));
  doc.emplace("length", Value(length));
  doc.emplace("cold_1client", RunValue(cold));

  double warm_1client_throughput = 0.0;
  Value::Object warm_runs;
  {
    // One service across every client count: later rounds see the caches
    // the earlier rounds built, exactly as a long-lived server would. The
    // first (1-client) round starts cold-engine but warms within the run.
    ServiceOptions options;
    options.workers = static_cast<int>(max_clients);
    options.cache_capacity = 256;
    Service service(options);
    auto loaded = service.registry().LoadSeries("bench", series->Clone());
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    for (std::size_t clients = 1; clients <= max_clients; clients *= 2) {
      const RunResult warm = RunWarm(service, stream, clients);
      std::fprintf(
          stderr,
          "warm %2zu client%s: %6.2f req/s (p50 %7.2f ms, p99 %7.2f ms)\n",
          clients, clients == 1 ? " " : "s", warm.throughput, warm.p50_ms,
          warm.p99_ms);
      if (clients == 1) warm_1client_throughput = warm.throughput;
      warm_runs.emplace(std::to_string(clients) + "_clients",
                        RunValue(warm));
    }
    // The per-verb latency panel the `stats` verb serves (Welford mean +
    // histogram p50/p99), as observed after the whole warm sweep.
    auto stats = valmod::json::Parse(
        service.HandleRequestLine("{\"verb\":\"stats\"}"));
    if (stats.ok()) {
      if (const Value* verbs = stats->Find("result")->Find("verbs")) {
        doc.emplace("verb_latency", *verbs);
      }
    }
  }
  doc.emplace("warm", Value(std::move(warm_runs)));

  const double speedup =
      cold.throughput > 0.0 ? warm_1client_throughput / cold.throughput : 0.0;
  doc.emplace("speedup_warm_vs_cold_1client", Value(speedup));
  std::fprintf(stderr, "speedup warm/cold (1 client): %.2fx\n", speedup);

  Value trace_overhead = RunTraceOverhead(*series, stream);
  doc.emplace("overload", RunOverload(*series, length));
  doc.emplace("miss_storm", RunMissStorm(*series, length));
  doc.emplace("streaming_ingest",
              RunStreamingIngest(static_cast<std::size_t>(
                  flags.GetInt("stream-length", 64))));

  // TCP transport sweep at 64..tcp-clients connections, epoll vs the
  // legacy thread-per-connection transport, over cache-hot requests.
  const std::size_t tcp_max =
      static_cast<std::size_t>(flags.GetInt("tcp-clients", 256));
  std::vector<std::size_t> client_counts;
  for (std::size_t c = 64; c <= tcp_max; c *= 2) client_counts.push_back(c);
  if (!client_counts.empty()) {
    const std::size_t per_client =
        static_cast<std::size_t>(flags.GetInt("tcp-requests", 16));
    Value epoll_sweep = RunTcpSweep(*series, stream, /*threaded=*/false,
                                    client_counts, per_client);
    // The acceptance-facing overhead number: the probe's absolute per-hit
    // tracing delta as a fraction of what a 64-client TCP request really
    // costs end to end. (The probe's own ratio divides by a microsecond
    // pure-hit p50 and so wildly overstates the impact on live traffic.)
    if (trace_overhead.is_object()) {
      const Value* sixty_four = epoll_sweep.Find("64_clients");
      const double overhead_us =
          trace_overhead.GetNumber("p50_overhead_us", 0.0);
      const double sweep_p50_ms =
          sixty_four != nullptr ? sixty_four->GetNumber("p50_ms", 0.0) : 0.0;
      const double fraction =
          sweep_p50_ms > 0.0 ? (overhead_us / 1000.0) / sweep_p50_ms : 0.0;
      trace_overhead.AsObject().emplace("p50_overhead_vs_tcp64_sweep",
                                        Value(fraction));
      std::fprintf(stderr,
                   "trace overhead vs 64-client sweep p50: %+.4f%%\n",
                   fraction * 100.0);
    }
    doc.emplace("tcp_event_loop", std::move(epoll_sweep));
    doc.emplace("tcp_threaded",
                RunTcpSweep(*series, stream, /*threaded=*/true,
                            client_counts, per_client));
  }
  doc.emplace("trace_overhead", std::move(trace_overhead));

  const std::string json = Value(std::move(doc)).Serialize();
  std::fputs(json.c_str(), stdout);
  std::fputc('\n', stdout);
  const std::string path = flags.GetString("json", "");
  if (!path.empty()) {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), out);
    std::fputc('\n', out);
    std::fclose(out);
  }
  return 0;
}
