// Figure 3 (bottom): wall-clock time vs data series length (prefix
// snippets) on ECG and ASTRO at a fixed length-range width.
//
// Paper configuration: prefixes {0.1M, 0.2M, 0.5M, 0.8M, 1M} of each
// series, range width 100, lmin = 1024, 24-hour timeout.
//
//   ./build/bench/bench_fig3_series_length                 # CI scale
//   ./build/bench/bench_fig3_series_length --paper-scale
//   flags: --sizes=4096,8192,16384,32768 --lmin=64 --range=25 --timeout=40

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/moen.h"
#include "baselines/quick_motif.h"
#include "baselines/stomp_range.h"
#include "bench_util.h"
#include "common/flags.h"
#include "core/valmod.h"

namespace {

using valmod::Deadline;
using valmod::Flags;
using valmod::bench::FormatSeconds;
using valmod::bench::RunTimed;
using valmod::bench::TimedRun;

std::vector<std::size_t> ParseSizes(const std::string& text) {
  std::vector<std::size_t> sizes;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    sizes.push_back(static_cast<std::size_t>(
        std::strtoull(text.substr(start, comma - start).c_str(), nullptr,
                      10)));
    start = comma + 1;
  }
  return sizes;
}

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const bool paper_scale = flags.GetBool("paper-scale", false);
  const std::size_t lmin =
      static_cast<std::size_t>(flags.GetInt("lmin", paper_scale ? 1024 : 64));
  const std::size_t range =
      static_cast<std::size_t>(flags.GetInt("range", paper_scale ? 100 : 25));
  const double timeout =
      flags.GetDouble("timeout", paper_scale ? 86400.0 : 40.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::vector<std::size_t> sizes = ParseSizes(flags.GetString(
      "sizes", paper_scale ? "100000,200000,500000,800000,1000000"
                           : "4096,8192,16384,32768"));

  std::printf("# Figure 3 (bottom): time vs data series length\n");
  std::printf("# lmin=%zu range=%zu timeout=%.0fs seed=%llu\n", lmin, range,
              timeout, static_cast<unsigned long long>(seed));
  std::printf("%-8s %10s | %12s %14s %14s %14s\n", "dataset", "points",
              "VALMOD", "STOMP-range", "MOEN", "QuickMotif");

  for (const std::string dataset : {"ecg", "astro"}) {
    // Generate once at the largest size; prefixes mirror the paper's use of
    // prefix snippets of one recording.
    auto full = valmod::bench::MakeDataset(dataset, sizes.back(), seed);
    if (!full.ok()) {
      std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
      return 1;
    }
    for (std::size_t size : sizes) {
      auto prefix = full->Prefix(size);
      if (!prefix.ok()) continue;
      const std::size_t lmax = lmin + range;
      if (lmax + 1 > size) continue;

      const TimedRun valmod_run = RunTimed(timeout, [&](Deadline deadline) {
        valmod::core::ValmodOptions options;
        options.min_length = lmin;
        options.max_length = lmax;
        options.deadline = deadline;
        return valmod::core::RunValmod(*prefix, options).status();
      });
      const TimedRun stomp_run = RunTimed(timeout, [&](Deadline deadline) {
        valmod::baselines::StompRangeOptions options;
        options.min_length = lmin;
        options.max_length = lmax;
        options.deadline = deadline;
        return valmod::baselines::RunStompRange(*prefix, options).status();
      });
      const TimedRun moen_run = RunTimed(timeout, [&](Deadline deadline) {
        valmod::baselines::MoenOptions options;
        options.min_length = lmin;
        options.max_length = lmax;
        options.deadline = deadline;
        return valmod::baselines::RunMoen(*prefix, options).status();
      });
      const TimedRun quick_run = RunTimed(timeout, [&](Deadline deadline) {
        valmod::baselines::QuickMotifRangeOptions options;
        options.min_length = lmin;
        options.max_length = lmax;
        options.deadline = deadline;
        return valmod::baselines::RunQuickMotifRange(*prefix, options)
            .status();
      });

      std::printf("%-8s %10zu | %12s %14s %14s %14s\n", dataset.c_str(), size,
                  FormatSeconds(valmod_run, timeout).c_str(),
                  FormatSeconds(stomp_run, timeout).c_str(),
                  FormatSeconds(moen_run, timeout).c_str(),
                  FormatSeconds(quick_run, timeout).c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
