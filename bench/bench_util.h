#ifndef VALMOD_BENCH_BENCH_UTIL_H_
#define VALMOD_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction harnesses: dataset factory,
// timed runs with the paper's timeout semantics, and aligned table output.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"
#include "mass/backend.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "simd/dispatch.h"

namespace valmod::bench {

// Build provenance: CMake injects VALMOD_GIT_SHA (git rev-parse at
// configure time) into the bench targets; "unknown" outside a checkout.
#ifndef VALMOD_GIT_SHA
#define VALMOD_GIT_SHA "unknown"
#endif

inline const char* GitSha() { return VALMOD_GIT_SHA; }

/// Run-metadata fields every BENCH_*.json document carries, so a stored
/// row is attributable to the exact build that produced it:
///   "git_sha":"<sha>","run_simd_target":"<target>","run_results_version":N
/// Returned as a raw JSON fragment (no surrounding braces, no trailing
/// comma) so both the printf-style writers (bench_mass_engine) and the
/// Value-based ones (bench_service) can embed it verbatim.
inline std::string RunMetadataJsonFragment() {
  std::string out = "\"git_sha\":\"";
  out += GitSha();
  out += "\",\"run_simd_target\":\"";
  out += simd::TargetName(simd::ActiveTarget());
  out += "\",\"run_results_version\":";
  out += std::to_string(mass::kResultsVersion);
  return out;
}

/// Result of one timed algorithm run.
struct TimedRun {
  double seconds = 0.0;
  bool timed_out = false;
  bool failed = false;
  std::string error;
};

/// Runs `body` under a cooperative deadline of `timeout_seconds` and
/// measures wall-clock. `body` receives the deadline and must propagate it
/// into the algorithm options.
inline TimedRun RunTimed(double timeout_seconds,
                         const std::function<Status(Deadline)>& body) {
  TimedRun run;
  WallTimer timer;
  const Status status = body(timeout_seconds > 0.0
                                 ? Deadline::After(timeout_seconds)
                                 : Deadline::Infinite());
  run.seconds = timer.ElapsedSeconds();
  if (status.code() == StatusCode::kDeadlineExceeded) {
    run.timed_out = true;
  } else if (!status.ok()) {
    run.failed = true;
    run.error = status.ToString();
  }
  return run;
}

/// "1.234" or "TIMEOUT(>10s)" / "ERROR", padded by the caller's printf.
inline std::string FormatSeconds(const TimedRun& run,
                                 double timeout_seconds) {
  char buffer[64];
  if (run.timed_out) {
    std::snprintf(buffer, sizeof(buffer), "TIMEOUT(>%.0fs)", timeout_seconds);
  } else if (run.failed) {
    std::snprintf(buffer, sizeof(buffer), "ERROR");
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", run.seconds);
  }
  return buffer;
}

/// The two evaluation datasets of the paper's Figure 3, by name.
inline Result<series::DataSeries> MakeDataset(const std::string& name,
                                              std::size_t n, uint64_t seed) {
  return synth::ByName(name, n, seed);
}

}  // namespace valmod::bench

#endif  // VALMOD_BENCH_BENCH_UTIL_H_
