#ifndef VALMOD_BENCH_BENCH_UTIL_H_
#define VALMOD_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction harnesses: dataset factory,
// timed runs with the paper's timeout semantics, and aligned table output.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"
#include "series/data_series.h"
#include "series/generators.h"

namespace valmod::bench {

/// Result of one timed algorithm run.
struct TimedRun {
  double seconds = 0.0;
  bool timed_out = false;
  bool failed = false;
  std::string error;
};

/// Runs `body` under a cooperative deadline of `timeout_seconds` and
/// measures wall-clock. `body` receives the deadline and must propagate it
/// into the algorithm options.
inline TimedRun RunTimed(double timeout_seconds,
                         const std::function<Status(Deadline)>& body) {
  TimedRun run;
  WallTimer timer;
  const Status status = body(timeout_seconds > 0.0
                                 ? Deadline::After(timeout_seconds)
                                 : Deadline::Infinite());
  run.seconds = timer.ElapsedSeconds();
  if (status.code() == StatusCode::kDeadlineExceeded) {
    run.timed_out = true;
  } else if (!status.ok()) {
    run.failed = true;
    run.error = status.ToString();
  }
  return run;
}

/// "1.234" or "TIMEOUT(>10s)" / "ERROR", padded by the caller's printf.
inline std::string FormatSeconds(const TimedRun& run,
                                 double timeout_seconds) {
  char buffer[64];
  if (run.timed_out) {
    std::snprintf(buffer, sizeof(buffer), "TIMEOUT(>%.0fs)", timeout_seconds);
  } else if (run.failed) {
    std::snprintf(buffer, sizeof(buffer), "ERROR");
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", run.seconds);
  }
  return buffer;
}

/// The two evaluation datasets of the paper's Figure 3, by name.
inline Result<series::DataSeries> MakeDataset(const std::string& name,
                                              std::size_t n, uint64_t seed) {
  return synth::ByName(name, n, seed);
}

}  // namespace valmod::bench

#endif  // VALMOD_BENCH_BENCH_UTIL_H_
