// Micro-benchmarks (google-benchmark) for the computational kernels: FFT,
// sliding dot products, MASS row profiles, window statistics, STOMP
// (serial/parallel), the base-LB heap, and end-to-end VALMOD at small scale.

#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "core/partial_profile.h"
#include "core/valmod.h"
#include "fft/fft.h"
#include "mass/mass.h"
#include "mp/ab_join.h"
#include "mp/stomp.h"
#include "mp/streaming.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "stats/moving_stats.h"

namespace {

using valmod::series::DataSeries;

DataSeries MakeSeries(std::size_t n) {
  auto series = valmod::synth::ByName("ecg", n, 11);
  return std::move(series).value();
}

void BM_FftTransform(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::complex<double>> data(n, {1.0, -0.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.data());
    (void)valmod::fft::Transform(data, valmod::fft::Direction::kForward);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftTransform)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_SlidingDotProducts(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const DataSeries series = MakeSeries(n);
  const auto centered = series.centered();
  for (auto _ : state) {
    auto result = valmod::fft::SlidingDotProducts(
        centered, centered.subspan(0, 256));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SlidingDotProducts)->Arg(1 << 12)->Arg(1 << 15);

void BM_MassRowProfile(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const DataSeries series = MakeSeries(n);
  for (auto _ : state) {
    auto row = valmod::mass::ComputeRowProfile(series, n / 2, 256);
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_MassRowProfile)->Arg(1 << 12)->Arg(1 << 15);

void BM_WindowStats(benchmark::State& state) {
  const DataSeries series = MakeSeries(1 << 15);
  std::vector<double> means, stds;
  for (auto _ : state) {
    (void)series.stats().CenteredWindowStats(256, &means, &stds);
    benchmark::DoNotOptimize(means.data());
  }
}
BENCHMARK(BM_WindowStats);

void BM_Stomp(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const DataSeries series = MakeSeries(n);
  for (auto _ : state) {
    auto profile = valmod::mp::ComputeStomp(series, 128, {});
    benchmark::DoNotOptimize(profile);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * static_cast<int64_t>(n));
}
BENCHMARK(BM_Stomp)->Arg(1 << 11)->Arg(1 << 12)->Arg(1 << 13)
    ->Unit(benchmark::kMillisecond);

void BM_StompParallel(benchmark::State& state) {
  const DataSeries series = MakeSeries(1 << 13);
  valmod::mp::ProfileOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto profile = valmod::mp::ComputeStomp(series, 128, options);
    benchmark::DoNotOptimize(profile);
  }
}
BENCHMARK(BM_StompParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PartialProfileOffer(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    valmod::core::PartialProfileSet set(1, p, 64);
    for (int i = 0; i < 4096; ++i) {
      set.Offer(0, i, 0.0, static_cast<double>((i * 2654435761u) % 10007));
    }
    set.FinishSeeding(0);
    benchmark::DoNotOptimize(set.max_base_lb(0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_PartialProfileOffer)->Arg(5)->Arg(10)->Arg(50);

void BM_AbJoin(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const DataSeries a = MakeSeries(n);
  auto b = valmod::synth::ByName("astro", n, 12);
  for (auto _ : state) {
    auto join = valmod::mp::ComputeAbJoin(a, *b, 128, {});
    benchmark::DoNotOptimize(join);
  }
}
BENCHMARK(BM_AbJoin)->Arg(1 << 11)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);

void BM_StreamingAppend(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const DataSeries series = MakeSeries(n);
  for (auto _ : state) {
    auto stream = valmod::mp::StreamingProfile::Create(64);
    (void)stream->AppendAll(series.values());
    benchmark::DoNotOptimize(stream->ProfileSnapshot().distances.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_StreamingAppend)->Arg(1 << 11)->Arg(1 << 13)
    ->Unit(benchmark::kMillisecond);

// Per-point Append over the same stream: the baseline BM_StreamingAppend's
// AppendAll amortizes validation and reserves capacity for the whole batch
// up front, so items/s here vs there is the batch-path delta.
void BM_StreamingAppendPerPoint(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const DataSeries series = MakeSeries(n);
  for (auto _ : state) {
    auto stream = valmod::mp::StreamingProfile::Create(64);
    for (const double value : series.values()) {
      (void)stream->Append(value);
    }
    benchmark::DoNotOptimize(stream->ProfileSnapshot().distances.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_StreamingAppendPerPoint)->Arg(1 << 11)->Arg(1 << 13)
    ->Unit(benchmark::kMillisecond);

// Windowed maintenance at steady state: the window is full, so every
// appended point also evicts one and occasionally repairs rows whose
// nearest neighbor fell out. items/s is the sustained bounded-memory
// ingest rate at that window size.
void BM_StreamingWindowedSteadyState(benchmark::State& state) {
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  const DataSeries series = MakeSeries(4 * window);
  valmod::mp::StreamingOptions options;
  options.max_points = window;
  auto stream = valmod::mp::StreamingProfile::Create(64, options);
  (void)stream->AppendAll(series.values().subspan(0, window));
  std::size_t cursor = window;
  std::int64_t points = 0;
  for (auto _ : state) {
    if (cursor + 256 > series.size()) cursor = 0;  // re-feed, stays steady
    (void)stream->AppendAll(series.values().subspan(cursor, 256));
    cursor += 256;
    points += 256;
  }
  benchmark::DoNotOptimize(stream->ProfileSnapshot().distances.data());
  state.SetItemsProcessed(points);
}
BENCHMARK(BM_StreamingWindowedSteadyState)->Arg(1 << 10)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);

void BM_ValmodEndToEnd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const DataSeries series = MakeSeries(n);
  valmod::core::ValmodOptions options;
  options.min_length = 64;
  options.max_length = 96;
  for (auto _ : state) {
    auto result = valmod::core::RunValmod(series, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ValmodEndToEnd)->Arg(1 << 11)->Arg(1 << 12)->Arg(1 << 13)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
