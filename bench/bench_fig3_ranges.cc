// Figure 3 (top): wall-clock time vs motif length-range width on ECG and
// ASTRO, comparing VALMOD with STOMP-adapted, MOEN, and QuickMotif.
//
// Paper configuration: series length 0.5M, lmin = 1024, range widths
// {100, 150, 200, 400, 600}, 24-hour timeout. CI-scale defaults reproduce
// the *shape* (VALMOD flat and fast; per-length baselines growing linearly
// in the width until they hit the timeout) in under two minutes:
//
//   ./build/bench/bench_fig3_ranges                 # CI scale
//   ./build/bench/bench_fig3_ranges --paper-scale   # paper parameters
//   flags: --n=8192 --lmin=64 --ranges=16,32,64,128 --timeout=15 --seed=1

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/moen.h"
#include "baselines/quick_motif.h"
#include "baselines/stomp_range.h"
#include "bench_util.h"
#include "common/flags.h"
#include "core/valmod.h"

namespace {

using valmod::Deadline;
using valmod::Flags;
using valmod::Status;
using valmod::bench::FormatSeconds;
using valmod::bench::RunTimed;
using valmod::bench::TimedRun;

std::vector<std::size_t> ParseRanges(const std::string& text) {
  std::vector<std::size_t> ranges;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    ranges.push_back(static_cast<std::size_t>(
        std::strtoull(text.substr(start, comma - start).c_str(), nullptr,
                      10)));
    start = comma + 1;
  }
  return ranges;
}

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const bool paper_scale = flags.GetBool("paper-scale", false);
  const std::size_t n =
      static_cast<std::size_t>(flags.GetInt("n", paper_scale ? 500000 : 8192));
  const std::size_t lmin =
      static_cast<std::size_t>(flags.GetInt("lmin", paper_scale ? 1024 : 64));
  const double timeout =
      flags.GetDouble("timeout", paper_scale ? 86400.0 : 15.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::vector<std::size_t> ranges = ParseRanges(flags.GetString(
      "ranges", paper_scale ? "100,150,200,400,600" : "16,32,64,128"));

  std::printf("# Figure 3 (top): time vs subsequence length range\n");
  std::printf("# n=%zu lmin=%zu timeout=%.0fs seed=%llu\n", n, lmin, timeout,
              static_cast<unsigned long long>(seed));
  std::printf("%-8s %8s | %12s %14s %14s %14s\n", "dataset", "range",
              "VALMOD", "STOMP-range", "MOEN", "QuickMotif");

  for (const std::string dataset : {"ecg", "astro"}) {
    auto series = valmod::bench::MakeDataset(dataset, n, seed);
    if (!series.ok()) {
      std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
      return 1;
    }
    for (std::size_t range : ranges) {
      const std::size_t lmax = lmin + range;
      if (lmax + 1 > n) {
        std::fprintf(stderr, "skipping range %zu: lmax too large\n", range);
        continue;
      }

      const TimedRun valmod_run = RunTimed(timeout, [&](Deadline deadline) {
        valmod::core::ValmodOptions options;
        options.min_length = lmin;
        options.max_length = lmax;
        options.deadline = deadline;
        return valmod::core::RunValmod(*series, options).status();
      });
      const TimedRun stomp_run = RunTimed(timeout, [&](Deadline deadline) {
        valmod::baselines::StompRangeOptions options;
        options.min_length = lmin;
        options.max_length = lmax;
        options.deadline = deadline;
        return valmod::baselines::RunStompRange(*series, options).status();
      });
      const TimedRun moen_run = RunTimed(timeout, [&](Deadline deadline) {
        valmod::baselines::MoenOptions options;
        options.min_length = lmin;
        options.max_length = lmax;
        options.deadline = deadline;
        return valmod::baselines::RunMoen(*series, options).status();
      });
      const TimedRun quick_run = RunTimed(timeout, [&](Deadline deadline) {
        valmod::baselines::QuickMotifRangeOptions options;
        options.min_length = lmin;
        options.max_length = lmax;
        options.deadline = deadline;
        return valmod::baselines::RunQuickMotifRange(*series, options)
            .status();
      });

      std::printf("%-8s %8zu | %12s %14s %14s %14s\n", dataset.c_str(), range,
                  FormatSeconds(valmod_run, timeout).c_str(),
                  FormatSeconds(stomp_run, timeout).c_str(),
                  FormatSeconds(moen_run, timeout).c_str(),
                  FormatSeconds(quick_run, timeout).c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
