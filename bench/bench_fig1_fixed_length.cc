// Figure 1 (left): matrix profile and index profile of an ECG snippet at a
// fixed subsequence length. Prints the top motifs (the "partial heartbeat"
// of the paper) and emits the profile data as CSV.
//
//   ./build/bench/bench_fig1_fixed_length [--n=5000] [--l=50]
//                                         [--out=fig1_left.csv]

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/timer.h"
#include "mp/motif.h"
#include "mp/stomp.h"
#include "series/generators.h"
#include "series/io.h"

namespace {

int Run(int argc, char** argv) {
  const valmod::Flags flags = valmod::Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 5000));
  const std::size_t l = static_cast<std::size_t>(flags.GetInt("l", 50));
  const std::string out = flags.GetString("out", "fig1_left.csv");

  valmod::synth::EcgOptions ecg;
  ecg.length = n;
  ecg.seed = 7;
  ecg.samples_per_beat = 400.0;
  auto series = valmod::synth::Ecg(ecg);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }

  valmod::WallTimer timer;
  auto profile = valmod::mp::ComputeStomp(*series, l, {});
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::printf("# Figure 1 (left): ECG matrix profile, l=%zu, n=%zu\n", l, n);
  std::printf("matrix profile computed in %.3fs\n", timer.ElapsedSeconds());

  auto motifs = valmod::mp::ExtractTopKMotifs(*profile, 4);
  if (!motifs.ok()) {
    std::fprintf(stderr, "%s\n", motifs.status().ToString().c_str());
    return 1;
  }
  std::printf("top fixed-length motifs (partial heartbeats at this scale):\n");
  std::printf("%6s %10s %10s %12s\n", "rank", "offset_a", "offset_b",
              "distance");
  for (std::size_t i = 0; i < motifs->size(); ++i) {
    std::printf("%6zu %10lld %10lld %12.4f\n", i + 1,
                static_cast<long long>((*motifs)[i].offset_a),
                static_cast<long long>((*motifs)[i].offset_b),
                (*motifs)[i].distance);
  }

  std::vector<double> raw(series->values().begin(), series->values().end());
  std::vector<double> indices(profile->indices.begin(),
                              profile->indices.end());
  auto status = valmod::series::WriteColumnsCsv(
      {valmod::series::Column{"ecg", raw},
       valmod::series::Column{"matrix_profile", profile->distances},
       valmod::series::Column{"index_profile", indices}},
      out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
