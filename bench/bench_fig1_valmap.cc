// Figure 1 (right): VALMAP (length-normalized matrix profile + length
// profile) of the same ECG snippet over a length range. Reports where
// best matches move to longer lengths — the paper's full-heartbeat signal —
// and emits the VALMAP as CSV.
//
//   ./build/bench/bench_fig1_valmap [--n=5000] [--lmin=50] [--lmax=400]
//                                   [--out=fig1_right.csv]

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/valmod.h"
#include "mp/motif.h"
#include "series/generators.h"
#include "series/io.h"

namespace {

int Run(int argc, char** argv) {
  const valmod::Flags flags = valmod::Flags::Parse(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 5000));
  const std::size_t lmin = static_cast<std::size_t>(flags.GetInt("lmin", 50));
  const std::size_t lmax = static_cast<std::size_t>(flags.GetInt("lmax", 400));
  const std::string out = flags.GetString("out", "fig1_right.csv");

  valmod::synth::EcgOptions ecg;
  ecg.length = n;
  ecg.seed = 7;
  ecg.samples_per_beat = 400.0;
  auto series = valmod::synth::Ecg(ecg);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }

  valmod::core::ValmodOptions options;
  options.min_length = lmin;
  options.max_length = lmax;
  options.k = 4;
  options.num_threads = 4;
  auto result = valmod::core::RunValmod(*series, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("# Figure 1 (right): VALMAP over [%zu, %zu], n=%zu\n", lmin,
              lmax, n);
  std::printf("total time %.3fs (init %.3fs + update %.3fs)\n",
              result->init_seconds + result->update_seconds,
              result->init_seconds, result->update_seconds);

  const auto& valmap = result->valmap;
  auto best = valmap.BestOffset();
  if (best.ok()) {
    std::printf("best normalized motif: offset=%zu match=%lld length=%zu "
                "dn=%.4f\n",
                *best,
                static_cast<long long>(valmap.index_profile()[*best]),
                valmap.length_profile()[*best],
                valmap.normalized_profile()[*best]);
  }

  // Length-profile distribution (the paper's Fig. 1f updates): count of
  // entries whose best match lives at each length decile of the range.
  std::printf("length-profile distribution (deciles of [%zu, %zu]):\n", lmin,
              lmax);
  const std::size_t width = lmax - lmin + 1;
  std::vector<std::size_t> buckets(10, 0);
  for (std::size_t l : valmap.length_profile()) {
    std::size_t b = (l - lmin) * 10 / width;
    if (b > 9) b = 9;
    ++buckets[b];
  }
  for (std::size_t b = 0; b < 10; ++b) {
    std::printf("  [%4zu,%4zu) %8zu\n", lmin + b * width / 10,
                lmin + (b + 1) * width / 10, buckets[b]);
  }

  // Update counts per length (the demo GUI's checkpoint slider data).
  std::size_t lengths_with_updates = 0;
  for (std::size_t l = lmin + 1; l <= lmax; ++l) {
    if (!valmap.UpdatesForLength(l).empty()) ++lengths_with_updates;
  }
  std::printf("updates: %zu total across %zu lengths\n",
              valmap.updates().size(), lengths_with_updates);

  std::vector<double> raw(series->values().begin(), series->values().end());
  std::vector<double> lp(valmap.length_profile().begin(),
                         valmap.length_profile().end());
  std::vector<double> ip(valmap.index_profile().begin(),
                         valmap.index_profile().end());
  auto status = valmod::series::WriteColumnsCsv(
      {valmod::series::Column{"ecg", raw},
       valmod::series::Column{"valmap_mpn", valmap.normalized_profile()},
       valmod::series::Column{"valmap_index_profile", ip},
       valmod::series::Column{"valmap_length_profile", lp}},
      out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
