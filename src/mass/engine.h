#ifndef VALMOD_MASS_ENGINE_H_
#define VALMOD_MASS_ENGINE_H_

#include <complex>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "fft/plan.h"
#include "mass/mass.h"
#include "series/data_series.h"

namespace valmod::mass {

/// A MASS engine bound to one series: amortizes everything that does not
/// depend on the query across calls.
///
/// The uncached `ComputeRowProfile` pays three FFT-sized transforms per
/// call, one of which — the forward transform of the zero-padded series —
/// is identical every time. The engine computes that series spectrum once
/// per FFT size (VALMOD's sweep over lengths touches at most two sizes),
/// reuses the cached `FftPlan` tables, and keeps per-call scratch buffers in
/// a free list, so a cached row profile costs one query transform plus one
/// inverse with zero steady-state allocation of transform buffers.
///
/// The batched `ComputeRowProfiles` additionally packs rows two at a time
/// through `fft::FftPlan`'s pair transforms (two real queries per complex
/// FFT), so a pair of rows costs one forward and one inverse transform plus
/// one pointwise product instead of two of each — and skips all four of the
/// single-query path's even/odd recombination sweeps. Pair packing changes
/// the floating-point evaluation order, so batched results agree with the
/// single-query path to ~1e-9 relative rather than bit-for-bit (the
/// single-query path itself remains bit-identical to the
/// `mass::ComputeRowProfile` free function, which is a thin wrapper over an
/// engine).
///
/// Thread-safety: all public methods are safe to call concurrently (the
/// VALMOD certification loop recomputes batches of rows in parallel). The
/// series must outlive the engine.
class MassEngine {
 public:
  explicit MassEngine(const series::DataSeries& series) : series_(series) {}

  MassEngine(const MassEngine&) = delete;
  MassEngine& operator=(const MassEngine&) = delete;

  const series::DataSeries& series() const { return series_; }

  /// Same contract (and numerics) as mass::ComputeRowProfile.
  Result<RowProfile> ComputeRowProfile(std::size_t query_offset,
                                       std::size_t length);

  /// Batched form: row profiles for every offset in `rows` at one length,
  /// in input order. Builds the series spectrum once up front, packs rows
  /// pairwise through the dual-query FFT path (see class comment), and fans
  /// the per-pair work across `num_threads` pool workers. The row pairing —
  /// and therefore the numeric result — depends only on the order of `rows`,
  /// never on `num_threads`.
  Result<std::vector<RowProfile>> ComputeRowProfiles(
      std::span<const std::size_t> rows, std::size_t length,
      int num_threads = 1);

  /// Same contract (and numerics) as mass::DistanceProfile: z-normalized
  /// distances of an external query against every window of the series.
  /// Uses the same cost model as ComputeRowProfile, so short queries on
  /// short series take the direct-product path instead of the FFT.
  Result<std::vector<double>> DistanceProfile(std::span<const double> query);

 private:
  /// The forward spectra of the series zero-padded to one FFT size: the
  /// half spectrum driving the single-query path, plus (built lazily, only
  /// when the batched pair path runs) the full-size bit-reversed spectrum
  /// driving the pair-packed path.
  struct SeriesSpectrum {
    std::shared_ptr<const fft::FftPlan> plan;
    std::vector<std::complex<double>> bins;  // plan->half_spectrum_size()
    std::vector<std::complex<double>> pair_bins;  // plan->size(), bit-rev
  };

  /// Reusable per-call transform buffers, recycled through a free list.
  struct Scratch {
    std::vector<double> reversed_query;
    std::vector<std::complex<double>> bins;
    std::vector<double> conv;
    // Pair path: the packed full-size spectrum (also holds both
    // convolutions after the in-place inverse — the dots are read straight
    // from its real/imaginary lanes) and the second reversed query.
    std::vector<std::complex<double>> pair_bins;
    std::vector<double> reversed_query_b;
  };

  /// Spectrum for `fft_size`, built on first use. The returned reference is
  /// stable: spectra are heap-allocated and never evicted.
  const SeriesSpectrum& SpectrumFor(std::size_t fft_size);

  /// Like SpectrumFor, but additionally guarantees `pair_bins` is built.
  /// Kept separate so single-query workloads (the VALMOD recompute loop)
  /// never pay for the full-size spectrum.
  const SeriesSpectrum& PairSpectrumFor(std::size_t fft_size);

  std::unique_ptr<Scratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<Scratch> scratch);

  /// Sliding dot products of the centered window `[query_offset,
  /// query_offset + length)` against the whole centered series, via the
  /// cached spectrum. `query` overrides the window for external queries.
  void CachedSlidingDots(std::span<const double> query, std::size_t length,
                         std::vector<double>* dots);

  /// Pair-packed variant: sliding dot products of two centered queries of
  /// the same length in one forward + one inverse transform (the two
  /// queries ride the real and imaginary lanes of a single complex FFT).
  void CachedSlidingDotsPair(std::span<const double> query_a,
                             std::span<const double> query_b,
                             std::size_t length, std::vector<double>* dots_a,
                             std::vector<double>* dots_b);

  /// FFT-path row pair: profiles for the windows at `offset_a` / `offset_b`
  /// through the pair-packed transform.
  void ComputeRowPairFft(std::size_t offset_a, std::size_t offset_b,
                         std::size_t length, RowProfile* row_a,
                         RowProfile* row_b);

  const series::DataSeries& series_;

  std::mutex mutex_;
  std::map<std::size_t, std::unique_ptr<SeriesSpectrum>> spectra_;
  std::vector<std::unique_ptr<Scratch>> free_scratch_;
};

}  // namespace valmod::mass

#endif  // VALMOD_MASS_ENGINE_H_
