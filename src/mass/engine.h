#ifndef VALMOD_MASS_ENGINE_H_
#define VALMOD_MASS_ENGINE_H_

#include <complex>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "fft/plan.h"
#include "mass/backend.h"
#include "mass/mass.h"
#include "series/data_series.h"

namespace valmod::mass {

/// A MASS engine bound to one series: amortizes everything that does not
/// depend on the query across calls.
///
/// The engine is the single place the library computes sliding dot
/// products, behind a `ConvolutionBackend` selection (see mass/backend.h):
///
///  - kDirect: O(count * length) multiply-adds; short windows.
///  - kFftSingle: one query transform + pointwise product + inverse against
///    the cached full-size series spectrum (the spectrum, the `FftPlan`
///    tables, and the scratch buffers are all reused across calls).
///  - kFftPair: the batched form packs rows two at a time through
///    `fft::FftPlan`'s pair transforms (two real queries per complex FFT),
///    so a pair of rows costs one forward and one inverse transform plus one
///    pointwise product instead of two of each.
///  - kOverlapSave: the series is pre-transformed in overlapping chunks of
///    ~4x the query length (cached per chunk size, ~32 bytes per series
///    point), and each row runs one small filter transform plus one cached
///    chunk product + small inverse per chunk. This replaces the full-size
///    transform's n*log(n) per-row work with n*log(m), with every transform
///    cache resident; pairs of rows share the chunk pipeline the same way
///    the full-size pair path does.
///
/// `ConvolutionBackend::kAuto` (the default everywhere) applies the
/// calibrated cost model in `ChooseConvolutionBackend` — batched calls are
/// priced pair-packed, exactly as they execute; `kAutoV1` applies the frozen
/// v1 (PR 3) policy for results_version = 1 bit-compat; forcing a specific
/// backend exists for tests and benches. Backends agree to ~1e-9 relative,
/// not bit-for-bit (the
/// evaluation order differs); within one backend, batched results depend
/// only on the row order, never on `num_threads`. The auto single-query
/// path remains bit-identical to the `mass::ComputeRowProfile` free
/// function, which is a thin wrapper over an engine.
///
/// Thread-safety: all public methods are safe to call concurrently (the
/// VALMOD certification loop recomputes batches of rows in parallel). The
/// series must outlive the engine.
class MassEngine {
 public:
  explicit MassEngine(const series::DataSeries& series) : series_(series) {}

  MassEngine(const MassEngine&) = delete;
  MassEngine& operator=(const MassEngine&) = delete;

  const series::DataSeries& series() const { return series_; }

  /// Same contract (and, under kAuto, numerics) as mass::ComputeRowProfile.
  /// A forced backend must still satisfy the window validation; kFftPair
  /// runs the pair machinery with an empty second lane.
  Result<RowProfile> ComputeRowProfile(
      std::size_t query_offset, std::size_t length,
      ConvolutionBackend backend = ConvolutionBackend::kAuto);

  /// Batched form: row profiles for every offset in `rows` at one length,
  /// in input order. Under kAuto this resolves the backend once for the
  /// whole batch with the FFT family priced pair-packed (kAutoV1 replays
  /// the v1 resolve-then-upgrade sequence instead);
  /// adjacent rows share one transform, and an odd tail row runs the
  /// historical single-query path under kAuto but stays on the forced
  /// backend (empty second lane) when one was given, matching the
  /// single-row forced semantics. The row pairing — and therefore the
  /// numeric result — depends only on the order of `rows`, never on
  /// `num_threads`, which only controls how pairs fan out over the pool.
  Result<std::vector<RowProfile>> ComputeRowProfiles(
      std::span<const std::size_t> rows, std::size_t length,
      int num_threads = 1,
      ConvolutionBackend backend = ConvolutionBackend::kAuto);

  /// Same contract (and numerics) as mass::DistanceProfile: z-normalized
  /// distances of an external query against every window of the series,
  /// through the same backend selection as ComputeRowProfile.
  Result<std::vector<double>> DistanceProfile(
      std::span<const double> query,
      ConvolutionBackend backend = ConvolutionBackend::kAuto);

  /// Streaming-append cache carry-over: seeds this engine's overlap-save
  /// chunk-spectra cache from `previous` (the engine of the prior snapshot
  /// generation of the same growing series), given that the first
  /// `unchanged_prefix` *centered* values of both series are bit-identical.
  /// For every chunk size `previous` had cached, chunks lying entirely
  /// inside the unchanged prefix are copied verbatim (they are bit-identical
  /// to what a fresh build would produce — same input, same plan) and only
  /// the suffix chunks the appended points touch (including the previously
  /// zero-padded tail chunk) are recomputed. Returns the number of chunks
  /// copied; 0 — and no cache changes — when the prefix check fails.
  ///
  /// The full-size series spectra are deliberately *not* carried over:
  /// appending changes the padded FFT size and every bin, so there is
  /// nothing reusable there.
  ///
  /// Thread-safe against concurrent use of both engines, but intended to be
  /// called once, right after construction, before this engine is hot.
  std::size_t AdoptChunkSpectraFrom(MassEngine& previous,
                                    std::size_t unchanged_prefix);

  /// Approximate heap footprint of the engine's caches (spectra, chunk
  /// spectra, scratch free list), for the `stats` verb's per-dataset
  /// memory reporting.
  std::size_t CacheMemoryBytes();

 private:
  /// The forward spectra of the series zero-padded to one FFT size: the
  /// half spectrum driving the single-query path, plus (built lazily, only
  /// when the batched pair path runs) the full-size bit-reversed spectrum
  /// driving the pair-packed path.
  struct SeriesSpectrum {
    std::shared_ptr<const fft::FftPlan> plan;
    std::vector<std::complex<double>> bins;  // plan->half_spectrum_size()
    std::vector<std::complex<double>> pair_bins;  // plan->size(), bit-rev
  };

  /// Overlap-save state for one chunk FFT size: the bit-reversed spectra of
  /// the centered series cut into chunks of `plan->size()` points starting
  /// every `hop = size / 2` points. Chunk starts depend only on the chunk
  /// size — never on the query length — so one cache entry serves every
  /// length that maps to this size. Memory: 2 * 16 bytes per series point,
  /// which is why the cache is bounded (kMaxChunkSpectraSizes entries, LRU)
  /// unlike the two-entry-in-practice full-size spectra: a wide length
  /// sweep crosses one chunk size per power-of-two band of lengths.
  struct ChunkSpectra {
    std::shared_ptr<const fft::FftPlan> plan;
    std::size_t hop = 0;
    std::vector<std::vector<std::complex<double>>> chunks;
    std::uint64_t last_used = 0;  // LRU stamp; guarded by mutex_
  };

  /// Reusable per-call transform buffers, recycled through a free list.
  struct Scratch {
    std::vector<double> reversed_query;
    std::vector<std::complex<double>> bins;
    std::vector<double> conv;
    // Pair path: the packed full-size spectrum (also holds both
    // convolutions after the in-place inverse — the dots are read straight
    // from its real/imaginary lanes) and the second reversed query.
    std::vector<std::complex<double>> pair_bins;
    std::vector<double> reversed_query_b;
    // Overlap-save path: the (persistent across chunks) packed filter
    // spectrum and the per-chunk product/inverse buffer.
    std::vector<std::complex<double>> ols_filter;
    std::vector<std::complex<double>> ols_work;
  };

  /// Spectrum for `fft_size`, built on first use. The returned reference is
  /// stable: spectra are heap-allocated and never evicted.
  const SeriesSpectrum& SpectrumFor(std::size_t fft_size);

  /// Like SpectrumFor, but additionally guarantees `pair_bins` is built.
  /// Kept separate so single-query workloads never pay for the full-size
  /// spectrum.
  const SeriesSpectrum& PairSpectrumFor(std::size_t fft_size);

  /// Overlap-save chunk spectra for `chunk_fft_size`, built on first use
  /// (one small transform per chunk — amortized across every row computed
  /// at this size). Returned as a shared handle: the cache evicts the
  /// least-recently-used size beyond kMaxChunkSpectraSizes, and the handle
  /// keeps an evicted entry alive for callers mid-computation.
  std::shared_ptr<const ChunkSpectra> ChunkSpectraFor(
      std::size_t chunk_fft_size);

  /// Evicts least-recently-used chunk-spectra entries beyond the cap.
  /// Caller holds mutex_.
  void TrimChunkSpectraLocked();

  std::unique_ptr<Scratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<Scratch> scratch);

  /// Sliding dot products of the centered window `[query_offset,
  /// query_offset + length)` against the whole centered series, via the
  /// cached spectrum. `query` overrides the window for external queries.
  void CachedSlidingDots(std::span<const double> query, std::size_t length,
                         std::vector<double>* dots);

  /// Pair-packed variant: sliding dot products of two centered queries of
  /// the same length in one forward + one inverse transform (the two
  /// queries ride the real and imaginary lanes of a single complex FFT).
  /// `query_b` may be empty (single-lane use); `dots_b` is then cleared.
  void CachedSlidingDotsPair(std::span<const double> query_a,
                             std::span<const double> query_b,
                             std::size_t length, std::vector<double>* dots_a,
                             std::vector<double>* dots_b);

  /// Overlap-save sliding dot products: both queries (the second optional,
  /// as in CachedSlidingDotsPair — pass an empty span and null `dots_b`)
  /// ride one chunk-size pair transform, multiplied against every cached
  /// chunk spectrum in turn.
  void OverlapSaveDotsPair(std::span<const double> query_a,
                           std::span<const double> query_b,
                           std::size_t length, std::vector<double>* dots_a,
                           std::vector<double>* dots_b);

  /// FFT-path row pair: profiles for the windows at `offset_a` / `offset_b`
  /// through the full-size pair-packed transform.
  void ComputeRowPairFft(std::size_t offset_a, std::size_t offset_b,
                         std::size_t length, RowProfile* row_a,
                         RowProfile* row_b);

  /// Overlap-save row pair: same contract through the chunked pipeline.
  void ComputeRowPairOverlapSave(std::size_t offset_a, std::size_t offset_b,
                                 std::size_t length, RowProfile* row_a,
                                 RowProfile* row_b);

  const series::DataSeries& series_;

  /// Most chunk-spectra sizes a single engine retains (a VALMOD length
  /// sweep touches one per power-of-two band of lengths, so two is
  /// typical; four gives headroom before the ~32 bytes/point entries of a
  /// wide pan-profile sweep start piling up).
  static constexpr std::size_t kMaxChunkSpectraSizes = 4;

  std::mutex mutex_;
  std::map<std::size_t, std::unique_ptr<SeriesSpectrum>> spectra_;
  std::map<std::size_t, std::shared_ptr<ChunkSpectra>> chunk_spectra_;
  std::uint64_t chunk_spectra_clock_ = 0;
  std::vector<std::unique_ptr<Scratch>> free_scratch_;

 public:
  /// Number of chunk-spectra sizes currently cached (for eviction tests).
  std::size_t ChunkSpectraCacheSizeForTesting();
};

/// Process-wide engine telemetry, summed over every MassEngine instance.
///
/// Counters are global rather than per-engine because engines are
/// per-snapshot and ephemeral — the serving stack rebuilds one per append
/// generation — while the `metrics` verb needs monotone process totals that
/// survive those rebuilds. All increments are relaxed atomics; a process
/// that never queries pays nothing beyond the idle counters themselves.
struct EngineCounters {
  // Full-size series-spectra cache (SpectrumFor).
  std::uint64_t series_spectra_hits = 0;
  std::uint64_t series_spectra_misses = 0;
  // Lazily-built pair spectra (PairSpectrumFor upgrade builds).
  std::uint64_t pair_spectra_builds = 0;
  // Overlap-save chunk-spectra cache (ChunkSpectraFor).
  std::uint64_t chunk_spectra_hits = 0;
  std::uint64_t chunk_spectra_misses = 0;
  std::uint64_t chunk_spectra_evictions = 0;
  // Chunks copied across append generations (AdoptChunkSpectraFrom).
  std::uint64_t chunk_spectra_adopted = 0;
  // Rows of sliding-dot work per executed backend (kAuto/kAutoV1 resolve
  // before counting, so every row lands on a concrete backend).
  std::uint64_t rows_direct = 0;
  std::uint64_t rows_fft_single = 0;
  std::uint64_t rows_fft_pair = 0;
  std::uint64_t rows_overlap_save = 0;
};
EngineCounters EngineCountersSnapshot();

/// Adds `rows` to the counter for concrete backend `backend` (must not be
/// kAuto/kAutoV1). Exposed for the engine internals; relaxed atomics.
void NoteEngineRows(ConvolutionBackend backend, std::uint64_t rows);

}  // namespace valmod::mass

#endif  // VALMOD_MASS_ENGINE_H_
