#ifndef VALMOD_MASS_ENGINE_H_
#define VALMOD_MASS_ENGINE_H_

#include <complex>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "fft/plan.h"
#include "mass/mass.h"
#include "series/data_series.h"

namespace valmod::mass {

/// A MASS engine bound to one series: amortizes everything that does not
/// depend on the query across calls.
///
/// The uncached `ComputeRowProfile` pays three FFT-sized transforms per
/// call, one of which — the forward transform of the zero-padded series —
/// is identical every time. The engine computes that series spectrum once
/// per FFT size (VALMOD's sweep over lengths touches at most two sizes),
/// reuses the cached `FftPlan` tables, and keeps per-call scratch buffers in
/// a free list, so a cached row profile costs one query transform plus one
/// inverse with zero steady-state allocation of transform buffers.
///
/// Outputs are bit-identical to the uncached `mass::ComputeRowProfile` /
/// `mass::DistanceProfile` free functions: both paths share the same cost
/// model, the same direct-dot fallback for short windows, and the same FFT
/// primitive applied in the same order.
///
/// Thread-safety: all public methods are safe to call concurrently (the
/// VALMOD certification loop recomputes batches of rows in parallel). The
/// series must outlive the engine.
class MassEngine {
 public:
  explicit MassEngine(const series::DataSeries& series) : series_(series) {}

  MassEngine(const MassEngine&) = delete;
  MassEngine& operator=(const MassEngine&) = delete;

  const series::DataSeries& series() const { return series_; }

  /// Same contract (and numerics) as mass::ComputeRowProfile.
  Result<RowProfile> ComputeRowProfile(std::size_t query_offset,
                                       std::size_t length);

  /// Batched form: row profiles for every offset in `rows` at one length,
  /// in input order. Builds the series spectrum once up front and fans the
  /// per-row work across `num_threads` pool workers.
  Result<std::vector<RowProfile>> ComputeRowProfiles(
      std::span<const std::size_t> rows, std::size_t length,
      int num_threads = 1);

  /// Same contract (and numerics) as mass::DistanceProfile: z-normalized
  /// distances of an external query against every window of the series.
  Result<std::vector<double>> DistanceProfile(std::span<const double> query);

 private:
  /// The forward half-spectrum of the series zero-padded to one FFT size.
  struct SeriesSpectrum {
    std::shared_ptr<const fft::FftPlan> plan;
    std::vector<std::complex<double>> bins;  // plan->half_spectrum_size()
  };

  /// Reusable per-call transform buffers, recycled through a free list.
  struct Scratch {
    std::vector<double> reversed_query;
    std::vector<std::complex<double>> bins;
    std::vector<double> conv;
  };

  /// Spectrum for `fft_size`, built on first use. The returned reference is
  /// stable: spectra are heap-allocated and never evicted.
  const SeriesSpectrum& SpectrumFor(std::size_t fft_size);

  std::unique_ptr<Scratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<Scratch> scratch);

  /// Sliding dot products of the centered window `[query_offset,
  /// query_offset + length)` against the whole centered series, via the
  /// cached spectrum. `query` overrides the window for external queries.
  void CachedSlidingDots(std::span<const double> query, std::size_t length,
                         std::vector<double>* dots);

  const series::DataSeries& series_;

  std::mutex mutex_;
  std::map<std::size_t, std::unique_ptr<SeriesSpectrum>> spectra_;
  std::vector<std::unique_ptr<Scratch>> free_scratch_;
};

}  // namespace valmod::mass

#endif  // VALMOD_MASS_ENGINE_H_
