#ifndef VALMOD_MASS_QUERY_SEARCH_H_
#define VALMOD_MASS_QUERY_SEARCH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "mass/engine.h"
#include "series/data_series.h"

namespace valmod::mass {

/// One query match: where and how close.
struct QueryMatch {
  int64_t offset = -1;
  double distance = 0.0;
};

/// Options for query-by-content search.
struct QuerySearchOptions {
  /// Number of matches to return.
  std::size_t k = 1;
  /// Matches must be mutually separated by this fraction of the query
  /// length (0 disables separation entirely).
  double exclusion_fraction = 0.5;
  /// Convolution backend for the distance profile; kAuto applies the
  /// engine's cost-model crossover.
  ConvolutionBackend backend = ConvolutionBackend::kAuto;
  /// Which automatic selection policy resolves kAuto (see kResultsVersion):
  /// 2 (default) is the calibrated cost model, 1 the frozen v1 boundary.
  int results_version = kResultsVersion;
  /// Cooperative timeout / cancellation, checked before the distance
  /// profile is computed (one profile is the whole cost of a query search,
  /// so there is no finer-grained checkpoint to poll). The service
  /// scheduler threads per-request deadlines through here.
  Deadline deadline;
};

/// Finds the k best z-normalized matches of `query` inside `series`
/// (query-by-content over an external pattern — the "similarity search" use
/// of MASS). Matches are returned in ascending distance and are mutually
/// non-overlapping under the exclusion fraction. Returns fewer than k when
/// the series runs out of separated windows. O(n log n + n log k).
Result<std::vector<QueryMatch>> FindQueryMatches(
    const series::DataSeries& series, std::span<const double> query,
    const QuerySearchOptions& options = {});

/// Engine form: reuses `engine`'s cached series spectrum, so a stream of
/// queries against one series pays the series transform once in total. The
/// series-taking overload above is a convenience wrapper around this one.
Result<std::vector<QueryMatch>> FindQueryMatches(
    MassEngine& engine, std::span<const double> query,
    const QuerySearchOptions& options = {});

}  // namespace valmod::mass

#endif  // VALMOD_MASS_QUERY_SEARCH_H_
