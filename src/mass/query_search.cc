#include "mass/query_search.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "common/status.h"
#include "common/trace.h"
#include "mass/mass.h"
#include "mp/matrix_profile.h"

namespace valmod::mass {

Result<std::vector<QueryMatch>> FindQueryMatches(
    const series::DataSeries& series, std::span<const double> query,
    const QuerySearchOptions& options) {
  MassEngine engine(series);
  return FindQueryMatches(engine, query, options);
}

Result<std::vector<QueryMatch>> FindQueryMatches(
    MassEngine& engine, std::span<const double> query,
    const QuerySearchOptions& options) {
  const trace::TraceSpan span("query_search");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.deadline.Expired()) {
    return Status::DeadlineExceeded("query search deadline expired");
  }
  if (!IsValidResultsVersion(options.results_version)) {
    return Status::InvalidArgument(
        "unknown results_version " +
        std::to_string(options.results_version));
  }
  VALMOD_ASSIGN_OR_RETURN(
      std::vector<double> distances,
      engine.DistanceProfile(
          query,
          EffectiveBackend(options.backend, options.results_version)));

  const std::size_t exclusion =
      options.exclusion_fraction <= 0.0
          ? 0
          : mp::ExclusionZoneFor(query.size(), options.exclusion_fraction);

  std::vector<std::size_t> order(distances.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (distances[a] != distances[b]) return distances[a] < distances[b];
    return a < b;
  });

  std::vector<QueryMatch> matches;
  for (std::size_t offset : order) {
    if (matches.size() >= options.k) break;
    bool overlapping = false;
    for (const QueryMatch& m : matches) {
      if (std::llabs(m.offset - static_cast<int64_t>(offset)) <
          static_cast<int64_t>(exclusion)) {
        overlapping = true;
        break;
      }
    }
    if (!overlapping) {
      matches.push_back(
          QueryMatch{static_cast<int64_t>(offset), distances[offset]});
    }
  }
  return matches;
}

}  // namespace valmod::mass
