#include "mass/mass.h"

#include <cmath>
#include <limits>
#include <string>

#include "fft/fft.h"
#include "mass/engine.h"
#include "series/znorm.h"
#include "simd/dispatch.h"
#include "stats/moving_stats.h"

namespace valmod::mass {

Status ValidateWindow(const series::DataSeries& series, std::size_t offset,
                      std::size_t length) {
  if (length == 0) {
    return Status::InvalidArgument("subsequence length must be positive");
  }
  if (offset + length > series.size()) {
    return Status::OutOfRange(
        "window (offset=" + std::to_string(offset) +
        ", length=" + std::to_string(length) + ") outside series of size " +
        std::to_string(series.size()));
  }
  return Status::Ok();
}

Result<CenteredQuery> CenterQuery(std::span<const double> query) {
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  VALMOD_ASSIGN_OR_RETURN(stats::MovingStats query_stats,
                          stats::MovingStats::Create(query));
  CenteredQuery centered;
  centered.values.assign(query.begin(), query.end());
  const double mean = query_stats.Mean(0, query.size());
  for (double& v : centered.values) v -= mean;
  centered.std_dev = query_stats.StdDev(0, query.size());
  centered.constant = query_stats.IsConstant(0, query.size());
  return centered;
}

void DistancesFromExternalQueryDots(const series::DataSeries& series,
                                    double query_std, bool query_constant,
                                    std::size_t length,
                                    std::span<const double> dots,
                                    std::vector<double>* distances) {
  const stats::MovingStats& stats = series.stats();
  const double const_threshold = stats.constant_std_threshold();
  distances->resize(dots.size());
  for (std::size_t j = 0; j < dots.size(); ++j) {
    const double mean_j = stats.CenteredMean(j, length);
    const double std_j = stats.StdDev(j, length);
    (*distances)[j] = series::PairDistanceFromDot(
        dots[j], /*mean_a=*/0.0, mean_j, query_std, std_j, length,
        query_constant, std_j <= const_threshold);
  }
}

std::vector<double> DirectSlidingDots(std::span<const double> centered,
                                      std::size_t query_offset,
                                      std::size_t length, std::size_t count) {
  return DirectExternalSlidingDots(centered,
                                   centered.subspan(query_offset, length),
                                   count);
}

std::vector<double> DirectExternalSlidingDots(
    std::span<const double> centered_series,
    std::span<const double> centered_query, std::size_t count) {
  std::vector<double> dots(count);
  // Hoist the dispatched kernel out of the loop: one atomic load for the
  // whole sweep instead of one per window.
  const auto dot = simd::ActiveKernels().dot_product;
  for (std::size_t j = 0; j < count; ++j) {
    dots[j] = dot(centered_query.data(), centered_series.data() + j,
                  centered_query.size());
  }
  simd::NoteKernelCalls(simd::KernelKind::kDotProduct, count);
  return dots;
}

bool PreferFftSlidingDots(std::size_t series_size, std::size_t length,
                          std::size_t count) {
  // The v1 cost test, frozen: the FFT path priced as a few transforms of
  // the padded size (the convolution needs series_size + length - 1
  // points) against count * length direct multiply-adds, with the constant
  // 18 approximating the butterfly-to-FMA weight. The constant was tuned
  // for the full-size transform and overprices the overlap-save path the
  // engine usually runs since PR 3 — which is why the default selection
  // moved to the calibrated BackendCostModel (mass/backend.h). This
  // function must not be retuned: ChooseConvolutionBackendV1 builds on it
  // to keep results_version = 1 bit-identical to the v1 goldens.
  const std::size_t fft_size =
      fft::NextPowerOfTwo(series_size + length - 1);
  const double fft_cost = 18.0 * static_cast<double>(fft_size) *
                          std::log2(static_cast<double>(fft_size));
  const double direct_cost =
      static_cast<double>(count) * static_cast<double>(length);
  return direct_cost > fft_cost;
}

void DistancesFromDots(const series::DataSeries& series,
                       std::size_t query_offset, std::size_t length,
                       std::span<const double> dots,
                       std::vector<double>* distances) {
  const stats::MovingStats& stats = series.stats();
  const double mean_q = stats.CenteredMean(query_offset, length);
  const double std_q = stats.StdDev(query_offset, length);
  const double const_threshold = stats.constant_std_threshold();
  const bool const_q = std_q <= const_threshold;

  distances->resize(dots.size());
  for (std::size_t j = 0; j < dots.size(); ++j) {
    const double mean_j = stats.CenteredMean(j, length);
    const double std_j = stats.StdDev(j, length);
    (*distances)[j] = series::PairDistanceFromDot(
        dots[j], mean_q, mean_j, std_q, std_j, length, const_q,
        std_j <= const_threshold);
  }
}

Result<RowProfile> ComputeRowProfile(const series::DataSeries& series,
                                     std::size_t query_offset,
                                     std::size_t length) {
  // A throwaway engine re-derives nothing the uncached path didn't already
  // pay for (the series spectrum is built once either way); routing through
  // it keeps the kernels and the cost model in exactly one place.
  MassEngine engine(series);
  return engine.ComputeRowProfile(query_offset, length);
}

Result<std::vector<double>> DistanceProfile(const series::DataSeries& series,
                                            std::span<const double> query) {
  MassEngine engine(series);
  return engine.DistanceProfile(query);
}

Result<std::vector<double>> BruteDistanceProfile(
    const series::DataSeries& series, std::span<const double> query) {
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  if (query.size() > series.size()) {
    return Status::InvalidArgument("query longer than series");
  }
  const std::size_t count = series.NumSubsequences(query.size());
  std::vector<double> distances(count);
  for (std::size_t j = 0; j < count; ++j) {
    VALMOD_ASSIGN_OR_RETURN(
        std::vector<double> window, series.Subsequence(j, query.size()));
    VALMOD_ASSIGN_OR_RETURN(double d,
                            series::ZNormalizedDistance(query, window));
    distances[j] = d;
  }
  return distances;
}

void ApplyExclusionZone(std::vector<double>* distances, std::size_t center,
                        std::size_t exclusion) {
  if (exclusion == 0) return;
  const std::size_t lo = center >= exclusion - 1 ? center - (exclusion - 1)
                                                 : 0;
  const std::size_t hi =
      std::min(distances->size(), center + exclusion);  // exclusive
  for (std::size_t j = lo; j < hi; ++j) {
    (*distances)[j] = std::numeric_limits<double>::infinity();
  }
}

}  // namespace valmod::mass
