#include "mass/mass.h"

#include <cmath>
#include <limits>
#include <string>

#include "fft/fft.h"
#include "series/znorm.h"
#include "stats/moving_stats.h"

namespace valmod::mass {

Status ValidateWindow(const series::DataSeries& series, std::size_t offset,
                      std::size_t length) {
  if (length == 0) {
    return Status::InvalidArgument("subsequence length must be positive");
  }
  if (offset + length > series.size()) {
    return Status::OutOfRange(
        "window (offset=" + std::to_string(offset) +
        ", length=" + std::to_string(length) + ") outside series of size " +
        std::to_string(series.size()));
  }
  return Status::Ok();
}

Result<CenteredQuery> CenterQuery(std::span<const double> query) {
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  VALMOD_ASSIGN_OR_RETURN(stats::MovingStats query_stats,
                          stats::MovingStats::Create(query));
  CenteredQuery centered;
  centered.values.assign(query.begin(), query.end());
  const double mean = query_stats.Mean(0, query.size());
  for (double& v : centered.values) v -= mean;
  centered.std_dev = query_stats.StdDev(0, query.size());
  centered.constant = query_stats.IsConstant(0, query.size());
  return centered;
}

void DistancesFromExternalQueryDots(const series::DataSeries& series,
                                    double query_std, bool query_constant,
                                    std::size_t length,
                                    std::span<const double> dots,
                                    std::vector<double>* distances) {
  const stats::MovingStats& stats = series.stats();
  const double const_threshold = stats.constant_std_threshold();
  distances->resize(dots.size());
  for (std::size_t j = 0; j < dots.size(); ++j) {
    const double mean_j = stats.CenteredMean(j, length);
    const double std_j = stats.StdDev(j, length);
    (*distances)[j] = series::PairDistanceFromDot(
        dots[j], /*mean_a=*/0.0, mean_j, query_std, std_j, length,
        query_constant, std_j <= const_threshold);
  }
}

std::vector<double> DirectSlidingDots(std::span<const double> centered,
                                      std::size_t query_offset,
                                      std::size_t length, std::size_t count) {
  std::vector<double> dots(count);
  const double* query = centered.data() + query_offset;
  for (std::size_t j = 0; j < count; ++j) {
    dots[j] = series::DotProduct(query, centered.data() + j, length);
  }
  return dots;
}

bool PreferFftSlidingDots(std::size_t series_size, std::size_t length,
                          std::size_t count) {
  // Cost-based path selection: the FFT path costs a few transforms of the
  // padded size (the convolution needs series_size + length - 1 points);
  // the direct path costs count * length multiply-adds. The constant 18
  // approximates the per-element weight of a complex butterfly pass
  // relative to one fused multiply-add.
  const std::size_t fft_size =
      fft::NextPowerOfTwo(series_size + length - 1);
  const double fft_cost = 18.0 * static_cast<double>(fft_size) *
                          std::log2(static_cast<double>(fft_size));
  const double direct_cost =
      static_cast<double>(count) * static_cast<double>(length);
  return direct_cost > fft_cost;
}

void DistancesFromDots(const series::DataSeries& series,
                       std::size_t query_offset, std::size_t length,
                       std::span<const double> dots,
                       std::vector<double>* distances) {
  const stats::MovingStats& stats = series.stats();
  const double mean_q = stats.CenteredMean(query_offset, length);
  const double std_q = stats.StdDev(query_offset, length);
  const double const_threshold = stats.constant_std_threshold();
  const bool const_q = std_q <= const_threshold;

  distances->resize(dots.size());
  for (std::size_t j = 0; j < dots.size(); ++j) {
    const double mean_j = stats.CenteredMean(j, length);
    const double std_j = stats.StdDev(j, length);
    (*distances)[j] = series::PairDistanceFromDot(
        dots[j], mean_q, mean_j, std_q, std_j, length, const_q,
        std_j <= const_threshold);
  }
}

Result<RowProfile> ComputeRowProfile(const series::DataSeries& series,
                                     std::size_t query_offset,
                                     std::size_t length) {
  VALMOD_RETURN_IF_ERROR(ValidateWindow(series, query_offset, length));

  const auto centered = series.centered();
  const std::size_t count = series.NumSubsequences(length);

  RowProfile row;
  if (!PreferFftSlidingDots(series.size(), length, count)) {
    row.dots = DirectSlidingDots(centered, query_offset, length, count);
  } else {
    VALMOD_ASSIGN_OR_RETURN(
        row.dots, fft::SlidingDotProducts(
                      centered, centered.subspan(query_offset, length)));
  }
  DistancesFromDots(series, query_offset, length, row.dots, &row.distances);
  return row;
}

Result<std::vector<double>> DistanceProfile(const series::DataSeries& series,
                                            std::span<const double> query) {
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  if (query.size() > series.size()) {
    return Status::InvalidArgument("query longer than series");
  }
  const std::size_t length = query.size();

  VALMOD_ASSIGN_OR_RETURN(CenteredQuery centered, CenterQuery(query));
  VALMOD_ASSIGN_OR_RETURN(
      std::vector<double> dots,
      fft::SlidingDotProducts(series.centered(), centered.values));

  std::vector<double> distances;
  DistancesFromExternalQueryDots(series, centered.std_dev, centered.constant,
                                 length, dots, &distances);
  return distances;
}

Result<std::vector<double>> BruteDistanceProfile(
    const series::DataSeries& series, std::span<const double> query) {
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  if (query.size() > series.size()) {
    return Status::InvalidArgument("query longer than series");
  }
  const std::size_t count = series.NumSubsequences(query.size());
  std::vector<double> distances(count);
  for (std::size_t j = 0; j < count; ++j) {
    VALMOD_ASSIGN_OR_RETURN(
        std::vector<double> window, series.Subsequence(j, query.size()));
    VALMOD_ASSIGN_OR_RETURN(double d,
                            series::ZNormalizedDistance(query, window));
    distances[j] = d;
  }
  return distances;
}

void ApplyExclusionZone(std::vector<double>* distances, std::size_t center,
                        std::size_t exclusion) {
  if (exclusion == 0) return;
  const std::size_t lo = center >= exclusion - 1 ? center - (exclusion - 1)
                                                 : 0;
  const std::size_t hi =
      std::min(distances->size(), center + exclusion);  // exclusive
  for (std::size_t j = lo; j < hi; ++j) {
    (*distances)[j] = std::numeric_limits<double>::infinity();
  }
}

}  // namespace valmod::mass
