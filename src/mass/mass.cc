#include "mass/mass.h"

#include <cmath>
#include <limits>
#include <string>

#include "fft/fft.h"
#include "series/znorm.h"
#include "stats/moving_stats.h"

namespace valmod::mass {

namespace {

Status ValidateWindow(const series::DataSeries& series, std::size_t offset,
                      std::size_t length) {
  if (length == 0) {
    return Status::InvalidArgument("subsequence length must be positive");
  }
  if (offset + length > series.size()) {
    return Status::OutOfRange(
        "window (offset=" + std::to_string(offset) +
        ", length=" + std::to_string(length) + ") outside series of size " +
        std::to_string(series.size()));
  }
  return Status::Ok();
}

}  // namespace

namespace {

/// Direct O(count * length) sliding dot products. For short windows this
/// beats the FFT path (three size-2^k transforms) by a wide margin, and the
/// VALMOD recompute loop calls ComputeRowProfile with short windows at high
/// frequency; the caller picks the path on a flop estimate.
std::vector<double> DirectSlidingDots(std::span<const double> centered,
                                      std::size_t query_offset,
                                      std::size_t length, std::size_t count) {
  std::vector<double> dots(count);
  const double* query = centered.data() + query_offset;
  for (std::size_t j = 0; j < count; ++j) {
    dots[j] = series::DotProduct(query, centered.data() + j, length);
  }
  return dots;
}

}  // namespace

Result<RowProfile> ComputeRowProfile(const series::DataSeries& series,
                                     std::size_t query_offset,
                                     std::size_t length) {
  VALMOD_RETURN_IF_ERROR(ValidateWindow(series, query_offset, length));

  const auto centered = series.centered();
  const stats::MovingStats& stats = series.stats();
  const std::size_t count = series.NumSubsequences(length);

  RowProfile row;
  // Cost-based path selection: the FFT path costs three transforms of the
  // padded size; the direct path costs count * length multiply-adds. The
  // constant 18 approximates the per-element weight of a complex butterfly
  // pass relative to one fused multiply-add.
  const std::size_t fft_size = fft::NextPowerOfTwo(series.size() + length);
  const double fft_cost = 18.0 * static_cast<double>(fft_size) *
                          std::log2(static_cast<double>(fft_size));
  const double direct_cost =
      static_cast<double>(count) * static_cast<double>(length);
  if (direct_cost <= fft_cost) {
    row.dots = DirectSlidingDots(centered, query_offset, length, count);
  } else {
    VALMOD_ASSIGN_OR_RETURN(
        row.dots, fft::SlidingDotProducts(
                      centered, centered.subspan(query_offset, length)));
  }

  const double mean_q = stats.CenteredMean(query_offset, length);
  const double std_q = stats.StdDev(query_offset, length);
  const double const_threshold = stats.constant_std_threshold();
  const bool const_q = std_q <= const_threshold;

  row.distances.resize(count);
  for (std::size_t j = 0; j < count; ++j) {
    const double mean_j = stats.CenteredMean(j, length);
    const double std_j = stats.StdDev(j, length);
    row.distances[j] = series::PairDistanceFromDot(
        row.dots[j], mean_q, mean_j, std_q, std_j, length, const_q,
        std_j <= const_threshold);
  }
  return row;
}

Result<std::vector<double>> DistanceProfile(const series::DataSeries& series,
                                            std::span<const double> query) {
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  if (query.size() > series.size()) {
    return Status::InvalidArgument("query longer than series");
  }
  const std::size_t length = query.size();

  // Center the query by its own mean; the covariance against each (globally
  // centered) window then reduces to dot / l - 0 * mean_window, so the same
  // correlation kernel applies with mean_q = 0.
  VALMOD_ASSIGN_OR_RETURN(stats::MovingStats query_stats,
                          stats::MovingStats::Create(query));
  std::vector<double> centered_query(query.begin(), query.end());
  const double query_mean = query_stats.Mean(0, length);
  for (double& v : centered_query) v -= query_mean;
  const double std_q = query_stats.StdDev(0, length);
  const bool const_q = query_stats.IsConstant(0, length);

  VALMOD_ASSIGN_OR_RETURN(
      std::vector<double> dots,
      fft::SlidingDotProducts(series.centered(), centered_query));

  const stats::MovingStats& stats = series.stats();
  const double const_threshold = stats.constant_std_threshold();
  const std::size_t count = series.NumSubsequences(length);
  std::vector<double> distances(count);
  for (std::size_t j = 0; j < count; ++j) {
    const double mean_j = stats.CenteredMean(j, length);
    const double std_j = stats.StdDev(j, length);
    distances[j] = series::PairDistanceFromDot(
        dots[j], /*mean_a=*/0.0, mean_j, std_q, std_j, length, const_q,
        std_j <= const_threshold);
  }
  return distances;
}

Result<std::vector<double>> BruteDistanceProfile(
    const series::DataSeries& series, std::span<const double> query) {
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  if (query.size() > series.size()) {
    return Status::InvalidArgument("query longer than series");
  }
  const std::size_t count = series.NumSubsequences(query.size());
  std::vector<double> distances(count);
  for (std::size_t j = 0; j < count; ++j) {
    VALMOD_ASSIGN_OR_RETURN(
        std::vector<double> window, series.Subsequence(j, query.size()));
    VALMOD_ASSIGN_OR_RETURN(double d,
                            series::ZNormalizedDistance(query, window));
    distances[j] = d;
  }
  return distances;
}

void ApplyExclusionZone(std::vector<double>* distances, std::size_t center,
                        std::size_t exclusion) {
  if (exclusion == 0) return;
  const std::size_t lo = center >= exclusion - 1 ? center - (exclusion - 1)
                                                 : 0;
  const std::size_t hi =
      std::min(distances->size(), center + exclusion);  // exclusive
  for (std::size_t j = lo; j < hi; ++j) {
    (*distances)[j] = std::numeric_limits<double>::infinity();
  }
}

}  // namespace valmod::mass
