#include "mass/engine.h"

#include <string>
#include <utility>

#include "common/parallel.h"
#include "fft/fft.h"
#include "series/znorm.h"
#include "stats/moving_stats.h"

namespace valmod::mass {

const MassEngine::SeriesSpectrum& MassEngine::SpectrumFor(
    std::size_t fft_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spectra_.find(fft_size);
  if (it == spectra_.end()) {
    auto spectrum = std::make_unique<SeriesSpectrum>();
    spectrum->plan = fft::GetPlan(fft_size);
    spectrum->bins.resize(spectrum->plan->half_spectrum_size());
    spectrum->plan->RealForward(series_.centered(), spectrum->bins);
    it = spectra_.emplace(fft_size, std::move(spectrum)).first;
  }
  // References stay valid: spectra are heap-allocated, and map nodes are
  // never erased, so concurrent inserts cannot move this entry.
  return *it->second;
}

const MassEngine::SeriesSpectrum& MassEngine::PairSpectrumFor(
    std::size_t fft_size) {
  SpectrumFor(fft_size);
  std::lock_guard<std::mutex> lock(mutex_);
  SeriesSpectrum& spectrum = *spectra_.find(fft_size)->second;
  if (spectrum.pair_bins.empty()) {
    spectrum.pair_bins.resize(fft_size);
    // The full-size bit-reversed spectrum: RealForwardPair with an empty
    // second lane is exactly "spectrum of one real signal" in the pair
    // pipeline's layout.
    spectrum.plan->RealForwardPair(series_.centered(), {},
                                   spectrum.pair_bins);
  }
  return spectrum;
}

std::unique_ptr<MassEngine::Scratch> MassEngine::AcquireScratch() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_scratch_.empty()) {
      std::unique_ptr<Scratch> scratch = std::move(free_scratch_.back());
      free_scratch_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<Scratch>();
}

void MassEngine::ReleaseScratch(std::unique_ptr<Scratch> scratch) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_scratch_.push_back(std::move(scratch));
}

void MassEngine::CachedSlidingDots(std::span<const double> query,
                                   std::size_t length,
                                   std::vector<double>* dots) {
  const auto centered = series_.centered();
  const std::size_t n = centered.size();
  const std::size_t m = length;
  const std::size_t out_size = n + m - 1;
  const std::size_t fft_size = fft::NextPowerOfTwo(out_size);
  const std::size_t count = n - m + 1;

  if (fft_size < 2) {  // single-point series and query
    dots->assign(1, query[0] * centered[0]);
    return;
  }

  const SeriesSpectrum& spectrum = SpectrumFor(fft_size);
  std::unique_ptr<Scratch> scratch = AcquireScratch();

  // One forward transform of the reversed query, a pointwise product
  // against the cached series spectrum, one inverse — versus the uncached
  // path's extra forward transform of the full padded series. Operand
  // order in the product matches fft::Convolve (series spectrum first) so
  // the two paths stay bit-identical.
  scratch->reversed_query.assign(query.rbegin(), query.rend());
  const std::size_t bins = spectrum.plan->half_spectrum_size();
  scratch->bins.resize(bins);
  spectrum.plan->RealForward(scratch->reversed_query, scratch->bins);
  for (std::size_t i = 0; i < bins; ++i) {
    scratch->bins[i] = spectrum.bins[i] * scratch->bins[i];
  }
  scratch->conv.resize(fft_size);
  spectrum.plan->RealInverse(scratch->bins, scratch->conv);

  dots->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    (*dots)[i] = scratch->conv[m - 1 + i];
  }
  ReleaseScratch(std::move(scratch));
}

void MassEngine::CachedSlidingDotsPair(std::span<const double> query_a,
                                       std::span<const double> query_b,
                                       std::size_t length,
                                       std::vector<double>* dots_a,
                                       std::vector<double>* dots_b) {
  const auto centered = series_.centered();
  const std::size_t n = centered.size();
  const std::size_t m = length;
  const std::size_t out_size = n + m - 1;
  const std::size_t fft_size = fft::NextPowerOfTwo(out_size);
  const std::size_t count = n - m + 1;

  if (fft_size < 2) {  // single-point series and queries
    dots_a->assign(1, query_a[0] * centered[0]);
    dots_b->assign(1, query_b[0] * centered[0]);
    return;
  }

  const SeriesSpectrum& spectrum = PairSpectrumFor(fft_size);
  std::unique_ptr<Scratch> scratch = AcquireScratch();

  // Both reversed queries ride one full-size complex transform (real and
  // imaginary lanes), the packed spectrum is multiplied elementwise by the
  // cached bit-reversed series spectrum — legal because multiplying by a
  // shared real spectrum commutes with the packing, and order-agnostic
  // because a pointwise product doesn't care how bins are permuted — and
  // one inverse separates both convolutions. Two rows therefore cost one
  // forward + one inverse + one product, with none of the single-query
  // path's even/odd recombination sweeps and (running DIF -> DIT) no
  // bit-reversal permutation passes at all.
  scratch->reversed_query.assign(query_a.rbegin(), query_a.rend());
  scratch->reversed_query_b.assign(query_b.rbegin(), query_b.rend());
  scratch->pair_bins.resize(fft_size);
  spectrum.plan->RealForwardPair(scratch->reversed_query,
                                 scratch->reversed_query_b,
                                 scratch->pair_bins);
  spectrum.plan->MultiplyPairByRealSpectrum(spectrum.pair_bins,
                                            scratch->pair_bins);
  // Instead of RealInversePair (which would materialize two full-size real
  // arrays only for `count` entries of each to survive), run the inverse in
  // place and read the two convolutions straight out of the packed buffer's
  // real/imaginary lanes — at large sizes the two skipped full-size unpack
  // sweeps are a measurable share of the pair cost.
  spectrum.plan->InverseBitrev(scratch->pair_bins);

  dots_a->resize(count);
  dots_b->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    (*dots_a)[i] = scratch->pair_bins[m - 1 + i].real();
    (*dots_b)[i] = scratch->pair_bins[m - 1 + i].imag();
  }
  ReleaseScratch(std::move(scratch));
}

void MassEngine::ComputeRowPairFft(std::size_t offset_a, std::size_t offset_b,
                                   std::size_t length, RowProfile* row_a,
                                   RowProfile* row_b) {
  const auto centered = series_.centered();
  CachedSlidingDotsPair(centered.subspan(offset_a, length),
                        centered.subspan(offset_b, length), length,
                        &row_a->dots, &row_b->dots);
  DistancesFromDots(series_, offset_a, length, row_a->dots,
                    &row_a->distances);
  DistancesFromDots(series_, offset_b, length, row_b->dots,
                    &row_b->distances);
}

Result<RowProfile> MassEngine::ComputeRowProfile(std::size_t query_offset,
                                                 std::size_t length) {
  VALMOD_RETURN_IF_ERROR(ValidateWindow(series_, query_offset, length));
  const std::size_t count = series_.NumSubsequences(length);

  RowProfile row;
  if (!PreferFftSlidingDots(series_.size(), length, count)) {
    row.dots =
        DirectSlidingDots(series_.centered(), query_offset, length, count);
  } else {
    CachedSlidingDots(series_.centered().subspan(query_offset, length),
                      length, &row.dots);
  }
  DistancesFromDots(series_, query_offset, length, row.dots, &row.distances);
  return row;
}

Result<std::vector<RowProfile>> MassEngine::ComputeRowProfiles(
    std::span<const std::size_t> rows, std::size_t length, int num_threads) {
  for (std::size_t row : rows) {
    VALMOD_RETURN_IF_ERROR(ValidateWindow(series_, row, length));
  }
  const std::size_t count = series_.NumSubsequences(length);
  std::vector<RowProfile> profiles(rows.size());
  if (rows.empty()) return profiles;

  if (!PreferFftSlidingDots(series_.size(), length, count)) {
    // Short windows: the direct product beats any transform; rows stay
    // independent, so just fan them out.
    VALMOD_RETURN_IF_ERROR(ParallelForWithStatus(
        0, rows.size(), num_threads, [&](std::size_t i) -> Status {
          VALMOD_ASSIGN_OR_RETURN(profiles[i],
                                  ComputeRowProfile(rows[i], length));
          return Status::Ok();
        }));
    return profiles;
  }

  // Adjacent rows share one pair-packed transform; an odd tail row falls
  // back to the single-query path. The pairing depends only on the order of
  // `rows`, so results are independent of num_threads.
  const std::size_t pairs = rows.size() / 2;
  const std::size_t tasks = pairs + rows.size() % 2;

  // Warm the spectra serially so pool workers never contend on their
  // one-time construction — only the ones this batch will touch (the
  // full-size pair spectrum costs a full-size transform and ~fft_size * 16
  // bytes, so a single-row batch sticks to the half spectrum).
  const std::size_t fft_size =
      fft::NextPowerOfTwo(series_.size() + length - 1);
  if (pairs > 0) {
    PairSpectrumFor(fft_size);
  }
  if (rows.size() % 2 != 0) {
    SpectrumFor(fft_size);
  }
  VALMOD_RETURN_IF_ERROR(ParallelForWithStatus(
      0, tasks, num_threads, [&](std::size_t t) -> Status {
        if (t < pairs) {
          ComputeRowPairFft(rows[2 * t], rows[2 * t + 1], length,
                            &profiles[2 * t], &profiles[2 * t + 1]);
          return Status::Ok();
        }
        VALMOD_ASSIGN_OR_RETURN(profiles.back(),
                                ComputeRowProfile(rows.back(), length));
        return Status::Ok();
      }));
  return profiles;
}

Result<std::vector<double>> MassEngine::DistanceProfile(
    std::span<const double> query) {
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  if (query.size() > series_.size()) {
    return Status::InvalidArgument("query longer than series");
  }
  const std::size_t length = query.size();
  const std::size_t count = series_.NumSubsequences(length);

  VALMOD_ASSIGN_OR_RETURN(CenteredQuery centered, CenterQuery(query));
  // Same cost-based path selection as ComputeRowProfile: for short queries
  // (or short series) the direct products beat the transforms by a wide
  // margin, and unconditionally taking the FFT path would also pay the
  // engine's one-time series-spectrum build for a single cheap call.
  std::vector<double> dots;
  if (!PreferFftSlidingDots(series_.size(), length, count)) {
    dots = DirectExternalSlidingDots(series_.centered(), centered.values,
                                     count);
  } else {
    CachedSlidingDots(centered.values, length, &dots);
  }

  std::vector<double> distances;
  DistancesFromExternalQueryDots(series_, centered.std_dev,
                                 centered.constant, length, dots, &distances);
  return distances;
}

}  // namespace valmod::mass
