#include "mass/engine.h"

#include <string>
#include <utility>

#include "common/parallel.h"
#include "fft/fft.h"
#include "series/znorm.h"
#include "stats/moving_stats.h"

namespace valmod::mass {

const MassEngine::SeriesSpectrum& MassEngine::SpectrumFor(
    std::size_t fft_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spectra_.find(fft_size);
  if (it == spectra_.end()) {
    auto spectrum = std::make_unique<SeriesSpectrum>();
    spectrum->plan = fft::GetPlan(fft_size);
    spectrum->bins.resize(spectrum->plan->half_spectrum_size());
    spectrum->plan->RealForward(series_.centered(), spectrum->bins);
    it = spectra_.emplace(fft_size, std::move(spectrum)).first;
  }
  // References stay valid: spectra are heap-allocated, and map nodes are
  // never erased, so concurrent inserts cannot move this entry.
  return *it->second;
}

std::unique_ptr<MassEngine::Scratch> MassEngine::AcquireScratch() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_scratch_.empty()) {
      std::unique_ptr<Scratch> scratch = std::move(free_scratch_.back());
      free_scratch_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<Scratch>();
}

void MassEngine::ReleaseScratch(std::unique_ptr<Scratch> scratch) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_scratch_.push_back(std::move(scratch));
}

void MassEngine::CachedSlidingDots(std::span<const double> query,
                                   std::size_t length,
                                   std::vector<double>* dots) {
  const auto centered = series_.centered();
  const std::size_t n = centered.size();
  const std::size_t m = length;
  const std::size_t out_size = n + m - 1;
  const std::size_t fft_size = fft::NextPowerOfTwo(out_size);
  const std::size_t count = n - m + 1;

  if (fft_size < 2) {  // single-point series and query
    dots->assign(1, query[0] * centered[0]);
    return;
  }

  const SeriesSpectrum& spectrum = SpectrumFor(fft_size);
  std::unique_ptr<Scratch> scratch = AcquireScratch();

  // One forward transform of the reversed query, a pointwise product
  // against the cached series spectrum, one inverse — versus the uncached
  // path's extra forward transform of the full padded series. Operand
  // order in the product matches fft::Convolve (series spectrum first) so
  // the two paths stay bit-identical.
  scratch->reversed_query.assign(query.rbegin(), query.rend());
  const std::size_t bins = spectrum.plan->half_spectrum_size();
  scratch->bins.resize(bins);
  spectrum.plan->RealForward(scratch->reversed_query, scratch->bins);
  for (std::size_t i = 0; i < bins; ++i) {
    scratch->bins[i] = spectrum.bins[i] * scratch->bins[i];
  }
  scratch->conv.resize(fft_size);
  spectrum.plan->RealInverse(scratch->bins, scratch->conv);

  dots->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    (*dots)[i] = scratch->conv[m - 1 + i];
  }
  ReleaseScratch(std::move(scratch));
}

Result<RowProfile> MassEngine::ComputeRowProfile(std::size_t query_offset,
                                                 std::size_t length) {
  VALMOD_RETURN_IF_ERROR(ValidateWindow(series_, query_offset, length));
  const std::size_t count = series_.NumSubsequences(length);

  RowProfile row;
  if (!PreferFftSlidingDots(series_.size(), length, count)) {
    row.dots =
        DirectSlidingDots(series_.centered(), query_offset, length, count);
  } else {
    CachedSlidingDots(series_.centered().subspan(query_offset, length),
                      length, &row.dots);
  }
  DistancesFromDots(series_, query_offset, length, row.dots, &row.distances);
  return row;
}

Result<std::vector<RowProfile>> MassEngine::ComputeRowProfiles(
    std::span<const std::size_t> rows, std::size_t length, int num_threads) {
  for (std::size_t row : rows) {
    VALMOD_RETURN_IF_ERROR(ValidateWindow(series_, row, length));
  }
  const std::size_t count = series_.NumSubsequences(length);
  if (!rows.empty() && PreferFftSlidingDots(series_.size(), length, count)) {
    // Warm the spectrum serially so pool workers never contend on its
    // one-time construction.
    SpectrumFor(fft::NextPowerOfTwo(series_.size() + length - 1));
  }

  std::vector<RowProfile> profiles(rows.size());
  VALMOD_RETURN_IF_ERROR(ParallelForWithStatus(
      0, rows.size(), num_threads, [&](std::size_t i) -> Status {
        VALMOD_ASSIGN_OR_RETURN(profiles[i],
                                ComputeRowProfile(rows[i], length));
        return Status::Ok();
      }));
  return profiles;
}

Result<std::vector<double>> MassEngine::DistanceProfile(
    std::span<const double> query) {
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  if (query.size() > series_.size()) {
    return Status::InvalidArgument("query longer than series");
  }
  const std::size_t length = query.size();

  VALMOD_ASSIGN_OR_RETURN(CenteredQuery centered, CenterQuery(query));
  std::vector<double> dots;
  CachedSlidingDots(centered.values, length, &dots);

  std::vector<double> distances;
  DistancesFromExternalQueryDots(series_, centered.std_dev,
                                 centered.constant, length, dots, &distances);
  return distances;
}

}  // namespace valmod::mass
