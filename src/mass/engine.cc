#include "mass/engine.h"

#include <atomic>
#include <cstring>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "fft/fft.h"
#include "series/znorm.h"
#include "simd/dispatch.h"
#include "stats/moving_stats.h"

namespace valmod::mass {

namespace {

struct EngineCounterStorage {
  std::atomic<std::uint64_t> series_spectra_hits{0};
  std::atomic<std::uint64_t> series_spectra_misses{0};
  std::atomic<std::uint64_t> pair_spectra_builds{0};
  std::atomic<std::uint64_t> chunk_spectra_hits{0};
  std::atomic<std::uint64_t> chunk_spectra_misses{0};
  std::atomic<std::uint64_t> chunk_spectra_evictions{0};
  std::atomic<std::uint64_t> chunk_spectra_adopted{0};
  std::atomic<std::uint64_t> rows_direct{0};
  std::atomic<std::uint64_t> rows_fft_single{0};
  std::atomic<std::uint64_t> rows_fft_pair{0};
  std::atomic<std::uint64_t> rows_overlap_save{0};
};

EngineCounterStorage g_engine_counters;

void Bump(std::atomic<std::uint64_t>& counter, std::uint64_t by = 1) {
  counter.fetch_add(by, std::memory_order_relaxed);
}

}  // namespace

EngineCounters EngineCountersSnapshot() {
  const EngineCounterStorage& c = g_engine_counters;
  EngineCounters out;
  out.series_spectra_hits = c.series_spectra_hits.load(std::memory_order_relaxed);
  out.series_spectra_misses =
      c.series_spectra_misses.load(std::memory_order_relaxed);
  out.pair_spectra_builds =
      c.pair_spectra_builds.load(std::memory_order_relaxed);
  out.chunk_spectra_hits = c.chunk_spectra_hits.load(std::memory_order_relaxed);
  out.chunk_spectra_misses =
      c.chunk_spectra_misses.load(std::memory_order_relaxed);
  out.chunk_spectra_evictions =
      c.chunk_spectra_evictions.load(std::memory_order_relaxed);
  out.chunk_spectra_adopted =
      c.chunk_spectra_adopted.load(std::memory_order_relaxed);
  out.rows_direct = c.rows_direct.load(std::memory_order_relaxed);
  out.rows_fft_single = c.rows_fft_single.load(std::memory_order_relaxed);
  out.rows_fft_pair = c.rows_fft_pair.load(std::memory_order_relaxed);
  out.rows_overlap_save = c.rows_overlap_save.load(std::memory_order_relaxed);
  return out;
}

void NoteEngineRows(ConvolutionBackend backend, std::uint64_t rows) {
  if (rows == 0) return;
  switch (backend) {
    case ConvolutionBackend::kDirect:
      Bump(g_engine_counters.rows_direct, rows);
      return;
    case ConvolutionBackend::kFftSingle:
      Bump(g_engine_counters.rows_fft_single, rows);
      return;
    case ConvolutionBackend::kFftPair:
      Bump(g_engine_counters.rows_fft_pair, rows);
      return;
    case ConvolutionBackend::kOverlapSave:
      Bump(g_engine_counters.rows_overlap_save, rows);
      return;
    case ConvolutionBackend::kAuto:
    case ConvolutionBackend::kAutoV1:
      // Callers count after resolution; an unresolved backend here is a
      // programming error, but telemetry must never crash the engine.
      return;
  }
}

const MassEngine::SeriesSpectrum& MassEngine::SpectrumFor(
    std::size_t fft_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spectra_.find(fft_size);
  if (it == spectra_.end()) {
    Bump(g_engine_counters.series_spectra_misses);
    auto spectrum = std::make_unique<SeriesSpectrum>();
    spectrum->plan = fft::GetPlan(fft_size);
    spectrum->bins.resize(spectrum->plan->half_spectrum_size());
    spectrum->plan->RealForward(series_.centered(), spectrum->bins);
    it = spectra_.emplace(fft_size, std::move(spectrum)).first;
  } else {
    Bump(g_engine_counters.series_spectra_hits);
  }
  // References stay valid: spectra are heap-allocated, and map nodes are
  // never erased, so concurrent inserts cannot move this entry.
  return *it->second;
}

const MassEngine::SeriesSpectrum& MassEngine::PairSpectrumFor(
    std::size_t fft_size) {
  SpectrumFor(fft_size);
  std::lock_guard<std::mutex> lock(mutex_);
  SeriesSpectrum& spectrum = *spectra_.find(fft_size)->second;
  if (spectrum.pair_bins.empty()) {
    Bump(g_engine_counters.pair_spectra_builds);
    spectrum.pair_bins.resize(fft_size);
    // The full-size bit-reversed spectrum: RealForwardPair with an empty
    // second lane is exactly "spectrum of one real signal" in the pair
    // pipeline's layout.
    spectrum.plan->RealForwardPair(series_.centered(), {},
                                   spectrum.pair_bins);
  }
  return spectrum;
}

std::shared_ptr<const MassEngine::ChunkSpectra> MassEngine::ChunkSpectraFor(
    std::size_t chunk_fft_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chunk_spectra_.find(chunk_fft_size);
  if (it == chunk_spectra_.end()) {
    Bump(g_engine_counters.chunk_spectra_misses);
    auto spectra = std::make_shared<ChunkSpectra>();
    spectra->plan = fft::GetPlan(chunk_fft_size);
    spectra->hop = chunk_fft_size / 2;
    const auto centered = series_.centered();
    const std::size_t n = centered.size();
    // Chunks start every `hop` points and read `chunk_fft_size` points
    // (zero-padded past the series end), so chunk c serves dot products at
    // offsets [c * hop, (c + 1) * hop) for any query length with
    // length - 1 <= hop — guaranteed by OverlapSaveFftSize >= 4 * length.
    const std::size_t num_chunks = (n + spectra->hop - 1) / spectra->hop;
    spectra->chunks.resize(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * spectra->hop;
      const std::size_t len = std::min(chunk_fft_size, n - begin);
      std::vector<std::complex<double>>& bins = spectra->chunks[c];
      bins.resize(chunk_fft_size);
      spectra->plan->RealForwardPair(centered.subspan(begin, len), {}, bins);
    }
    // Stamped before eviction so the entry being inserted is never its own
    // victim.
    spectra->last_used = ++chunk_spectra_clock_;
    std::shared_ptr<const ChunkSpectra> handle = spectra;
    chunk_spectra_.emplace(chunk_fft_size, std::move(spectra));
    TrimChunkSpectraLocked();
    return handle;
  }
  Bump(g_engine_counters.chunk_spectra_hits);
  it->second->last_used = ++chunk_spectra_clock_;
  return it->second;
}

void MassEngine::TrimChunkSpectraLocked() {
  // At ~32 bytes per series point per entry, stale sizes from a wide
  // length sweep are too big to keep forever: evict least-recently-used
  // beyond the cap. In-flight callers hold shared_ptrs, so eviction only
  // drops the cache's reference.
  while (chunk_spectra_.size() > kMaxChunkSpectraSizes) {
    auto victim = chunk_spectra_.begin();
    for (auto cand = chunk_spectra_.begin(); cand != chunk_spectra_.end();
         ++cand) {
      if (cand->second->last_used < victim->second->last_used) {
        victim = cand;
      }
    }
    chunk_spectra_.erase(victim);
    Bump(g_engine_counters.chunk_spectra_evictions);
  }
}

std::size_t MassEngine::AdoptChunkSpectraFrom(MassEngine& previous,
                                              std::size_t unchanged_prefix) {
  const auto centered = series_.centered();
  const auto prev_centered = previous.series_.centered();
  if (unchanged_prefix == 0 || unchanged_prefix > centered.size() ||
      unchanged_prefix > prev_centered.size()) {
    return 0;
  }
  // Adoption is only sound when a fresh build would transform the exact
  // same chunk bytes, so verify the prefix bitwise. One O(prefix) memcmp
  // per snapshot generation is noise next to the O(n) stats build that
  // accompanies it, and it turns a subtle caller mistake (re-anchored or
  // slid values) into a clean "nothing adopted".
  if (std::memcmp(centered.data(), prev_centered.data(),
                  unchanged_prefix * sizeof(double)) != 0) {
    return 0;
  }

  // Snapshot the previous engine's entries under its lock; the shared_ptr
  // handles keep them alive even if that engine concurrently evicts.
  std::vector<std::shared_ptr<const ChunkSpectra>> sources;
  {
    std::lock_guard<std::mutex> lock(previous.mutex_);
    sources.reserve(previous.chunk_spectra_.size());
    for (const auto& entry : previous.chunk_spectra_) {
      sources.push_back(entry.second);
    }
  }

  const std::size_t n = centered.size();
  std::size_t copied = 0;
  for (const std::shared_ptr<const ChunkSpectra>& source : sources) {
    const std::size_t chunk_fft_size = source->plan->size();
    const std::size_t hop = source->hop;
    auto spectra = std::make_shared<ChunkSpectra>();
    spectra->plan = source->plan;
    spectra->hop = hop;
    const std::size_t num_chunks = (n + hop - 1) / hop;
    spectra->chunks.resize(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * hop;
      // A chunk is copyable only when the previous build read a full,
      // unpadded chunk entirely inside the unchanged prefix; a chunk that
      // was zero-padded at the old series end now reads appended data and
      // must be recomputed.
      if (begin + chunk_fft_size <= unchanged_prefix &&
          c < source->chunks.size()) {
        spectra->chunks[c] = source->chunks[c];
        ++copied;
        continue;
      }
      const std::size_t len = std::min(chunk_fft_size, n - begin);
      std::vector<std::complex<double>>& bins = spectra->chunks[c];
      bins.resize(chunk_fft_size);
      spectra->plan->RealForwardPair(centered.subspan(begin, len), {}, bins);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (chunk_spectra_.count(chunk_fft_size) > 0) continue;  // lost the race
    spectra->last_used = ++chunk_spectra_clock_;
    chunk_spectra_.emplace(chunk_fft_size, std::move(spectra));
    TrimChunkSpectraLocked();
  }
  Bump(g_engine_counters.chunk_spectra_adopted, copied);
  return copied;
}

std::size_t MassEngine::CacheMemoryBytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  constexpr std::size_t kComplexBytes = sizeof(std::complex<double>);
  std::size_t bytes = 0;
  for (const auto& entry : spectra_) {
    bytes += entry.second->bins.capacity() * kComplexBytes;
    bytes += entry.second->pair_bins.capacity() * kComplexBytes;
  }
  for (const auto& entry : chunk_spectra_) {
    for (const auto& chunk : entry.second->chunks) {
      bytes += chunk.capacity() * kComplexBytes;
    }
  }
  for (const auto& scratch : free_scratch_) {
    bytes += scratch->reversed_query.capacity() * sizeof(double);
    bytes += scratch->bins.capacity() * kComplexBytes;
    bytes += scratch->conv.capacity() * sizeof(double);
    bytes += scratch->pair_bins.capacity() * kComplexBytes;
    bytes += scratch->reversed_query_b.capacity() * sizeof(double);
    bytes += scratch->ols_filter.capacity() * kComplexBytes;
    bytes += scratch->ols_work.capacity() * kComplexBytes;
  }
  return bytes;
}

std::size_t MassEngine::ChunkSpectraCacheSizeForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  return chunk_spectra_.size();
}

std::unique_ptr<MassEngine::Scratch> MassEngine::AcquireScratch() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_scratch_.empty()) {
      std::unique_ptr<Scratch> scratch = std::move(free_scratch_.back());
      free_scratch_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<Scratch>();
}

void MassEngine::ReleaseScratch(std::unique_ptr<Scratch> scratch) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_scratch_.push_back(std::move(scratch));
}

void MassEngine::CachedSlidingDots(std::span<const double> query,
                                   std::size_t length,
                                   std::vector<double>* dots) {
  const auto centered = series_.centered();
  const std::size_t n = centered.size();
  const std::size_t m = length;
  const std::size_t out_size = n + m - 1;
  const std::size_t fft_size = fft::NextPowerOfTwo(out_size);
  const std::size_t count = n - m + 1;

  if (fft_size < 2) {  // single-point series and query
    dots->assign(1, query[0] * centered[0]);
    return;
  }

  const SeriesSpectrum& spectrum = SpectrumFor(fft_size);
  std::unique_ptr<Scratch> scratch = AcquireScratch();

  // One forward transform of the reversed query, a pointwise product
  // against the cached series spectrum, one inverse — versus the uncached
  // path's extra forward transform of the full padded series. Operand
  // order in the product matches fft::Convolve (series spectrum first) so
  // the two paths stay bit-identical.
  scratch->reversed_query.assign(query.rbegin(), query.rend());
  const std::size_t bins = spectrum.plan->half_spectrum_size();
  scratch->bins.resize(bins);
  spectrum.plan->RealForward(scratch->reversed_query, scratch->bins);
  simd::ActiveKernels().complex_multiply(
      reinterpret_cast<const double*>(spectrum.bins.data()),
      reinterpret_cast<const double*>(scratch->bins.data()),
      reinterpret_cast<double*>(scratch->bins.data()), bins);
  simd::NoteKernelCalls(simd::KernelKind::kComplexMultiply, 1);
  scratch->conv.resize(fft_size);
  spectrum.plan->RealInverse(scratch->bins, scratch->conv);

  dots->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    (*dots)[i] = scratch->conv[m - 1 + i];
  }
  ReleaseScratch(std::move(scratch));
}

void MassEngine::CachedSlidingDotsPair(std::span<const double> query_a,
                                       std::span<const double> query_b,
                                       std::size_t length,
                                       std::vector<double>* dots_a,
                                       std::vector<double>* dots_b) {
  const auto centered = series_.centered();
  const std::size_t n = centered.size();
  const std::size_t m = length;
  const std::size_t out_size = n + m - 1;
  const std::size_t fft_size = fft::NextPowerOfTwo(out_size);
  const std::size_t count = n - m + 1;

  if (fft_size < 2) {  // single-point series and queries
    dots_a->assign(1, query_a[0] * centered[0]);
    if (query_b.empty()) {
      dots_b->clear();
    } else {
      dots_b->assign(1, query_b[0] * centered[0]);
    }
    return;
  }

  const SeriesSpectrum& spectrum = PairSpectrumFor(fft_size);
  std::unique_ptr<Scratch> scratch = AcquireScratch();

  // Both reversed queries ride one full-size complex transform (real and
  // imaginary lanes), the packed spectrum is multiplied elementwise by the
  // cached bit-reversed series spectrum — legal because multiplying by a
  // shared real spectrum commutes with the packing, and order-agnostic
  // because a pointwise product doesn't care how bins are permuted — and
  // one inverse separates both convolutions. Two rows therefore cost one
  // forward + one inverse + one product, with none of the single-query
  // path's even/odd recombination sweeps and (running DIF -> DIT) no
  // bit-reversal permutation passes at all.
  scratch->reversed_query.assign(query_a.rbegin(), query_a.rend());
  scratch->reversed_query_b.assign(query_b.rbegin(), query_b.rend());
  scratch->pair_bins.resize(fft_size);
  spectrum.plan->RealForwardPair(scratch->reversed_query,
                                 scratch->reversed_query_b,
                                 scratch->pair_bins);
  spectrum.plan->MultiplyPairByRealSpectrum(spectrum.pair_bins,
                                            scratch->pair_bins);
  // Instead of RealInversePair (which would materialize two full-size real
  // arrays only for `count` entries of each to survive), run the inverse in
  // place and read the two convolutions straight out of the packed buffer's
  // real/imaginary lanes — at large sizes the two skipped full-size unpack
  // sweeps are a measurable share of the pair cost.
  spectrum.plan->InverseBitrev(scratch->pair_bins);

  dots_a->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    (*dots_a)[i] = scratch->pair_bins[m - 1 + i].real();
  }
  if (query_b.empty()) {
    dots_b->clear();
  } else {
    dots_b->resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      (*dots_b)[i] = scratch->pair_bins[m - 1 + i].imag();
    }
  }
  ReleaseScratch(std::move(scratch));
}

void MassEngine::OverlapSaveDotsPair(std::span<const double> query_a,
                                     std::span<const double> query_b,
                                     std::size_t length,
                                     std::vector<double>* dots_a,
                                     std::vector<double>* dots_b) {
  const auto centered = series_.centered();
  const std::size_t n = centered.size();
  const std::size_t m = length;
  const std::size_t count = n - m + 1;
  const std::size_t chunk_size = fft::OverlapSaveFftSize(m);

  const std::shared_ptr<const ChunkSpectra> spectra_handle =
      ChunkSpectraFor(chunk_size);
  const ChunkSpectra& spectra = *spectra_handle;
  std::unique_ptr<Scratch> scratch = AcquireScratch();

  // One small pair transform of the reversed queries serves every chunk:
  // the packed filter spectrum is multiplied (non-destructively) against
  // each cached chunk spectrum, and one chunk-size inverse per chunk yields
  // `hop` fresh dot products per lane. Everything after the filter
  // transform touches only chunk_size-sized buffers, so the whole per-row
  // pipeline stays cache resident no matter how long the series is.
  scratch->reversed_query.assign(query_a.rbegin(), query_a.rend());
  scratch->reversed_query_b.assign(query_b.rbegin(), query_b.rend());
  scratch->ols_filter.resize(chunk_size);
  spectra.plan->RealForwardPair(scratch->reversed_query,
                                scratch->reversed_query_b,
                                scratch->ols_filter);

  dots_a->resize(count);
  if (dots_b != nullptr) dots_b->resize(count);
  scratch->ols_work.resize(chunk_size);
  const std::size_t hop = spectra.hop;
  for (std::size_t begin = 0; begin < count; begin += hop) {
    const std::vector<std::complex<double>>& chunk =
        spectra.chunks[begin / hop];
    spectra.plan->MultiplyPairByRealSpectrumInto(chunk, scratch->ols_filter,
                                                 scratch->ols_work);
    spectra.plan->InverseBitrev(scratch->ols_work);
    // Circular-convolution positions m-1 .. m-1+hop-1 of the chunk starting
    // at series offset `begin` are alias-free (m - 1 <= hop) and equal the
    // linear dot products at offsets begin .. begin+hop-1.
    const std::size_t end = std::min(count, begin + hop);
    for (std::size_t i = begin; i < end; ++i) {
      const std::complex<double>& v = scratch->ols_work[m - 1 + (i - begin)];
      (*dots_a)[i] = v.real();
      if (dots_b != nullptr) (*dots_b)[i] = v.imag();
    }
  }
  ReleaseScratch(std::move(scratch));
}

void MassEngine::ComputeRowPairFft(std::size_t offset_a, std::size_t offset_b,
                                   std::size_t length, RowProfile* row_a,
                                   RowProfile* row_b) {
  const auto centered = series_.centered();
  CachedSlidingDotsPair(centered.subspan(offset_a, length),
                        centered.subspan(offset_b, length), length,
                        &row_a->dots, &row_b->dots);
  DistancesFromDots(series_, offset_a, length, row_a->dots,
                    &row_a->distances);
  DistancesFromDots(series_, offset_b, length, row_b->dots,
                    &row_b->distances);
}

void MassEngine::ComputeRowPairOverlapSave(std::size_t offset_a,
                                           std::size_t offset_b,
                                           std::size_t length,
                                           RowProfile* row_a,
                                           RowProfile* row_b) {
  const auto centered = series_.centered();
  OverlapSaveDotsPair(centered.subspan(offset_a, length),
                      centered.subspan(offset_b, length), length,
                      &row_a->dots, &row_b->dots);
  DistancesFromDots(series_, offset_a, length, row_a->dots,
                    &row_a->distances);
  DistancesFromDots(series_, offset_b, length, row_b->dots,
                    &row_b->distances);
}

Result<RowProfile> MassEngine::ComputeRowProfile(std::size_t query_offset,
                                                 std::size_t length,
                                                 ConvolutionBackend backend) {
  VALMOD_RETURN_IF_ERROR(ValidateWindow(series_, query_offset, length));
  const std::size_t count = series_.NumSubsequences(length);
  if (backend == ConvolutionBackend::kAuto) {
    backend = ChooseConvolutionBackend(series_.size(), length, count);
  } else if (backend == ConvolutionBackend::kAutoV1) {
    backend = ChooseConvolutionBackendV1(series_.size(), length, count);
  }

  RowProfile row;
  const auto query = series_.centered().subspan(query_offset, length);
  switch (backend) {
    case ConvolutionBackend::kDirect:
      row.dots =
          DirectSlidingDots(series_.centered(), query_offset, length, count);
      break;
    case ConvolutionBackend::kFftSingle:
      CachedSlidingDots(query, length, &row.dots);
      break;
    case ConvolutionBackend::kFftPair: {
      // Forced single-row use of the pair machinery: the second lane stays
      // empty, so the numerics match what this row would see inside a
      // batched pair.
      std::vector<double> unused;
      CachedSlidingDotsPair(query, {}, length, &row.dots, &unused);
      break;
    }
    case ConvolutionBackend::kOverlapSave:
      OverlapSaveDotsPair(query, {}, length, &row.dots, nullptr);
      break;
    case ConvolutionBackend::kAuto:
    case ConvolutionBackend::kAutoV1:
      return Status::Internal("unresolved convolution backend");
  }
  NoteEngineRows(backend, 1);
  DistancesFromDots(series_, query_offset, length, row.dots, &row.distances);
  return row;
}

Result<std::vector<RowProfile>> MassEngine::ComputeRowProfiles(
    std::span<const std::size_t> rows, std::size_t length, int num_threads,
    ConvolutionBackend backend) {
  for (std::size_t row : rows) {
    VALMOD_RETURN_IF_ERROR(ValidateWindow(series_, row, length));
  }
  const std::size_t count = series_.NumSubsequences(length);
  std::vector<RowProfile> profiles(rows.size());
  if (rows.empty()) return profiles;

  const bool auto_resolved = backend == ConvolutionBackend::kAuto ||
                             backend == ConvolutionBackend::kAutoV1;
  if (backend == ConvolutionBackend::kAuto) {
    // The cost model prices the batch as the engine will execute it:
    // adjacent rows share one pair-packed (or overlap-save) transform, so a
    // multi-row batch competes the pair flavors against the direct dots. (A
    // forced kFftSingle stays single-query so callers can demand
    // bit-identity with ComputeRowProfile.)
    backend = ChooseConvolutionBackend(series_.size(), length, count,
                                       /*batched=*/rows.size() > 1);
  } else if (backend == ConvolutionBackend::kAutoV1) {
    // The v1 policy resolved once, then upgraded a full-FFT choice to pair
    // packing — replicated verbatim for results_version = 1 bit-compat.
    backend = ChooseConvolutionBackendV1(series_.size(), length, count);
    if (backend == ConvolutionBackend::kFftSingle) {
      backend = ConvolutionBackend::kFftPair;
    }
  }

  if (backend == ConvolutionBackend::kDirect ||
      backend == ConvolutionBackend::kFftSingle) {
    // Row-independent single-query kernels: just fan the rows out. Results
    // are bit-identical to per-row ComputeRowProfile calls.
    if (backend == ConvolutionBackend::kFftSingle) {
      SpectrumFor(fft::NextPowerOfTwo(series_.size() + length - 1));
    }
    VALMOD_RETURN_IF_ERROR(ParallelForWithStatus(
        0, rows.size(), num_threads, [&](std::size_t i) -> Status {
          VALMOD_ASSIGN_OR_RETURN(
              profiles[i], ComputeRowProfile(rows[i], length, backend));
          return Status::Ok();
        }));
    return profiles;
  }

  // Pair families: adjacent rows share one packed transform; an odd tail
  // row falls back to the family's single-lane path. The pairing depends
  // only on the order of `rows`, so results are independent of num_threads.
  const bool overlap_save = backend == ConvolutionBackend::kOverlapSave;
  const std::size_t pairs = rows.size() / 2;
  const std::size_t tasks = pairs + rows.size() % 2;

  // Warm the spectra serially so pool workers never contend on their
  // one-time construction — only the ones this batch will touch (the
  // full-size pair spectrum costs a full-size transform and ~fft_size * 16
  // bytes, so a single-row batch sticks to the half spectrum).
  const bool odd_tail = rows.size() % 2 != 0;
  if (overlap_save) {
    ChunkSpectraFor(fft::OverlapSaveFftSize(length));
  } else {
    const std::size_t fft_size =
        fft::NextPowerOfTwo(series_.size() + length - 1);
    if (pairs > 0 || (odd_tail && !auto_resolved)) {
      PairSpectrumFor(fft_size);  // forced-kFftPair tails pair-pack too
    }
    if (odd_tail && auto_resolved) {
      SpectrumFor(fft_size);
    }
  }
  VALMOD_RETURN_IF_ERROR(ParallelForWithStatus(
      0, tasks, num_threads, [&](std::size_t t) -> Status {
        if (t < pairs) {
          if (overlap_save) {
            ComputeRowPairOverlapSave(rows[2 * t], rows[2 * t + 1], length,
                                      &profiles[2 * t], &profiles[2 * t + 1]);
          } else {
            ComputeRowPairFft(rows[2 * t], rows[2 * t + 1], length,
                              &profiles[2 * t], &profiles[2 * t + 1]);
          }
          // The tail (and the single-query fan-outs above) count inside
          // ComputeRowProfile; the pair paths bypass it, so count here.
          NoteEngineRows(backend, 2);
          return Status::Ok();
        }
        // Tail backend: overlap-save stays in its family; an auto-upgraded
        // pair batch keeps the historical single-query tail (bit-identical
        // to per-row calls); a caller who *forced* kFftPair gets the pair
        // machinery (empty second lane) for the tail too, matching the
        // single-row forced semantics.
        ConvolutionBackend tail = ConvolutionBackend::kFftPair;
        if (overlap_save) {
          tail = ConvolutionBackend::kOverlapSave;
        } else if (auto_resolved) {
          tail = ConvolutionBackend::kFftSingle;
        }
        VALMOD_ASSIGN_OR_RETURN(profiles.back(),
                                ComputeRowProfile(rows.back(), length, tail));
        return Status::Ok();
      }));
  return profiles;
}

Result<std::vector<double>> MassEngine::DistanceProfile(
    std::span<const double> query, ConvolutionBackend backend) {
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  if (query.size() > series_.size()) {
    return Status::InvalidArgument("query longer than series");
  }
  const std::size_t length = query.size();
  const std::size_t count = series_.NumSubsequences(length);
  if (backend == ConvolutionBackend::kAuto) {
    // Same cost-based selection as ComputeRowProfile: for short queries
    // (or short series) the direct products beat any transform by a wide
    // margin, and unconditionally taking an FFT path would also pay the
    // engine's one-time spectrum build for a single cheap call.
    backend = ChooseConvolutionBackend(series_.size(), length, count);
  } else if (backend == ConvolutionBackend::kAutoV1) {
    backend = ChooseConvolutionBackendV1(series_.size(), length, count);
  }

  VALMOD_ASSIGN_OR_RETURN(CenteredQuery centered, CenterQuery(query));
  std::vector<double> dots;
  switch (backend) {
    case ConvolutionBackend::kDirect:
      dots = DirectExternalSlidingDots(series_.centered(), centered.values,
                                       count);
      break;
    case ConvolutionBackend::kFftSingle:
      CachedSlidingDots(centered.values, length, &dots);
      break;
    case ConvolutionBackend::kFftPair: {
      std::vector<double> unused;
      CachedSlidingDotsPair(centered.values, {}, length, &dots, &unused);
      break;
    }
    case ConvolutionBackend::kOverlapSave:
      OverlapSaveDotsPair(centered.values, {}, length, &dots, nullptr);
      break;
    case ConvolutionBackend::kAuto:
    case ConvolutionBackend::kAutoV1:
      return Status::Internal("unresolved convolution backend");
  }
  NoteEngineRows(backend, 1);

  std::vector<double> distances;
  DistancesFromExternalQueryDots(series_, centered.std_dev,
                                 centered.constant, length, dots, &distances);
  return distances;
}

}  // namespace valmod::mass
