#ifndef VALMOD_MASS_MASS_H_
#define VALMOD_MASS_MASS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "series/data_series.h"

namespace valmod::mass {

/// A full distance-profile row for a subsequence of the series: both the
/// centered sliding dot products and the z-normalized distances.
///
/// VALMOD consumes the dot products, not just the distances: when a row is
/// recomputed at a longer length, its partial distance profile is re-seeded
/// from these dots so they can keep being updated incrementally (one
/// multiply-add per further length).
struct RowProfile {
  /// `dots[j] = sum_t centered[i + t] * centered[j + t]`, t in [0, length).
  std::vector<double> dots;
  /// z-normalized distance between subsequences i and j (conventions of
  /// series/znorm.h); no exclusion zone applied.
  std::vector<double> distances;
};

/// MASS (Mueen's Algorithm for Similarity Search), self-join form: distance
/// profile of the subsequence of `series` at `query_offset` with `length`
/// points against every subsequence of the same series. O(n log n).
///
/// Thin wrapper over a throwaway `MassEngine` (see mass/engine.h), so the
/// kernels exist exactly once; callers issuing more than one query against
/// the same series should hold an engine instead to reuse its cached series
/// spectrum.
Result<RowProfile> ComputeRowProfile(const series::DataSeries& series,
                                     std::size_t query_offset,
                                     std::size_t length);

/// MASS against an external query: z-normalized distances between `query`
/// and every subsequence of `series` of `query.size()` points. O(n log n).
/// Thin wrapper over a throwaway `MassEngine`, like ComputeRowProfile.
Result<std::vector<double>> DistanceProfile(const series::DataSeries& series,
                                            std::span<const double> query);

/// O(n * l) reference implementation of DistanceProfile, used to validate
/// the FFT path in tests and as a dependency-free fallback for tiny inputs.
Result<std::vector<double>> BruteDistanceProfile(
    const series::DataSeries& series, std::span<const double> query);

/// Overwrites `(*distances)[j]` with +infinity for all j with
/// `|j - center| < exclusion`, the standard trivial-match mask.
void ApplyExclusionZone(std::vector<double>* distances, std::size_t center,
                        std::size_t exclusion);

/// -- Shared kernels (used by ComputeRowProfile and mass::MassEngine) -------

/// Validates that `[offset, offset + length)` is a window of `series`.
Status ValidateWindow(const series::DataSeries& series, std::size_t offset,
                      std::size_t length);

/// An external query centered by its own mean, plus the statistics the
/// distance kernel needs (with the centering, the correlation kernel
/// applies with mean_q = 0).
struct CenteredQuery {
  std::vector<double> values;
  double std_dev = 0.0;
  bool constant = false;
};

/// Centers `query` by its mean. Fails on an empty query.
Result<CenteredQuery> CenterQuery(std::span<const double> query);

/// Fills `distances` with the z-normalized distances of a centered external
/// query (std `query_std`, constancy `query_constant`) against every window
/// of `series`, given the query's sliding dot products.
void DistancesFromExternalQueryDots(const series::DataSeries& series,
                                    double query_std, bool query_constant,
                                    std::size_t length,
                                    std::span<const double> dots,
                                    std::vector<double>* distances);

/// Direct O(count * length) sliding dot products over the centered series;
/// the short-window fallback of the row-profile paths (for short windows it
/// beats the FFT path by a wide margin, and the VALMOD recompute loop calls
/// it at high frequency).
std::vector<double> DirectSlidingDots(std::span<const double> centered,
                                      std::size_t query_offset,
                                      std::size_t length, std::size_t count);

/// Direct sliding dot products of an external centered query against the
/// centered series; the short-query fallback of the distance-profile paths.
std::vector<double> DirectExternalSlidingDots(
    std::span<const double> centered_series,
    std::span<const double> centered_query, std::size_t count);

/// True when an FFT path is estimated cheaper than `count * length` direct
/// multiply-adds under the fixed weight-18 butterfly constant. This is the
/// *v1* direct-vs-FFT boundary, kept verbatim as the backbone of
/// `ChooseConvolutionBackendV1` (mass/backend.h) so `results_version = 1`
/// runs stay bit-identical to historical output; the default (v2) policy
/// prices every backend with the calibrated `BackendCostModel` instead.
bool PreferFftSlidingDots(std::size_t series_size, std::size_t length,
                          std::size_t count);

/// Fills `distances` (resized to `dots.size()`) with the z-normalized pair
/// distances of the window at `query_offset` against every window, given
/// the centered sliding dot products of that row.
void DistancesFromDots(const series::DataSeries& series,
                       std::size_t query_offset, std::size_t length,
                       std::span<const double> dots,
                       std::vector<double>* distances);

}  // namespace valmod::mass

#endif  // VALMOD_MASS_MASS_H_
