#ifndef VALMOD_MASS_MASS_H_
#define VALMOD_MASS_MASS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "series/data_series.h"

namespace valmod::mass {

/// A full distance-profile row for a subsequence of the series: both the
/// centered sliding dot products and the z-normalized distances.
///
/// VALMOD consumes the dot products, not just the distances: when a row is
/// recomputed at a longer length, its partial distance profile is re-seeded
/// from these dots so they can keep being updated incrementally (one
/// multiply-add per further length).
struct RowProfile {
  /// `dots[j] = sum_t centered[i + t] * centered[j + t]`, t in [0, length).
  std::vector<double> dots;
  /// z-normalized distance between subsequences i and j (conventions of
  /// series/znorm.h); no exclusion zone applied.
  std::vector<double> distances;
};

/// MASS (Mueen's Algorithm for Similarity Search), self-join form: distance
/// profile of the subsequence of `series` at `query_offset` with `length`
/// points against every subsequence of the same series. O(n log n).
Result<RowProfile> ComputeRowProfile(const series::DataSeries& series,
                                     std::size_t query_offset,
                                     std::size_t length);

/// MASS against an external query: z-normalized distances between `query`
/// and every subsequence of `series` of `query.size()` points. O(n log n).
Result<std::vector<double>> DistanceProfile(const series::DataSeries& series,
                                            std::span<const double> query);

/// O(n * l) reference implementation of DistanceProfile, used to validate
/// the FFT path in tests and as a dependency-free fallback for tiny inputs.
Result<std::vector<double>> BruteDistanceProfile(
    const series::DataSeries& series, std::span<const double> query);

/// Overwrites `(*distances)[j]` with +infinity for all j with
/// `|j - center| < exclusion`, the standard trivial-match mask.
void ApplyExclusionZone(std::vector<double>* distances, std::size_t center,
                        std::size_t exclusion);

}  // namespace valmod::mass

#endif  // VALMOD_MASS_MASS_H_
