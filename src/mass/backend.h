#ifndef VALMOD_MASS_BACKEND_H_
#define VALMOD_MASS_BACKEND_H_

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.h"

namespace valmod::mass {

/// Version of the numerical results the library produces under automatic
/// backend selection. Backends are numerically equivalent to ~1e-9 relative
/// but not bit-identical, so *which* backend the cost model picks determines
/// the exact ulps of every downstream motif distance. Whenever the
/// selection policy changes, this constant is bumped and the golden outputs
/// under tests/goldens/ are regenerated for the new version; the previous
/// policy stays reachable so old goldens remain reproducible bit-for-bit.
///
///  - v1 (kLegacyResultsVersion): the PR 3 policy — the direct-vs-FFT
///    boundary is the fixed weight-18 `PreferFftSlidingDots` test, and the
///    FFT family prefers overlap-save whenever its chunk is smaller than
///    the full transform. Reachable via `ConvolutionBackend::kAutoV1` (or
///    `results_version = 1` on the option structs that thread it through).
///  - v2 (kResultsVersion, the default): the calibrated backend-aware cost
///    model below — every backend is priced by the work its kernel actually
///    does, so e.g. 2^13 points / length 128 now runs overlap-save (≥1.3x
///    measured) where the v1 boundary kept it on direct dots.
inline constexpr int kResultsVersion = 2;
inline constexpr int kLegacyResultsVersion = 1;

/// True for the versions a `results_version` option may carry. Every
/// intake point (ValmodOptions, ProfileOptions, QuerySearchOptions, the
/// CLI flag) validates with this so an unknown version fails loudly
/// instead of silently running the current policy under a wrong label.
inline constexpr bool IsValidResultsVersion(int version) {
  return version == kResultsVersion || version == kLegacyResultsVersion;
}

/// How a MASS engine turns queries into sliding dot products. The backends
/// are numerically equivalent (every one computes the same dot products to
/// ~1e-9 relative) but differ in evaluation order, so results are not
/// bit-identical across backends; within one backend, results depend only on
/// the inputs and — for the batched entry point — the row order, never on
/// the thread count.
enum class ConvolutionBackend {
  /// Cost-model selection (see ChooseConvolutionBackend). The default
  /// everywhere; forcing a specific backend exists for tests and benches.
  kAuto,
  /// The v1 (PR 3) automatic selection, kept so `results_version = 1` runs
  /// reproduce historical outputs bit-for-bit: the weight-18 direct-vs-FFT
  /// boundary, then overlap-save whenever its chunk is below the full
  /// transform size. See kLegacyResultsVersion.
  kAutoV1,
  /// O(count * length) direct multiply-adds. Wins for short windows.
  kDirect,
  /// One full-size real FFT per query against the cached padded-series
  /// spectrum (the half-spectrum path). Bit-identical to the historical
  /// always-FFT engine path.
  kFftSingle,
  /// Full-size pair-packed FFT: two queries ride the real/imaginary lanes
  /// of one complex transform, so a pair of rows costs one forward + one
  /// inverse. Batched calls pack rows pairwise; a forced single-row call
  /// runs the pair machinery with an empty second lane.
  kFftPair,
  /// Overlap-save: chunked FFTs of ~4x the query length against per-chunk
  /// series spectra cached in the engine. Cuts the per-row flop count from
  /// O(n log n) to O(n log m) and keeps the transform working set cache
  /// resident; batched calls pair-pack the chunk pipeline too.
  kOverlapSave,
};

/// Human-readable backend name for logs / bench JSON.
const char* ConvolutionBackendName(ConvolutionBackend backend);

/// The backend to hand a MassEngine for (`backend`, `results_version`): a
/// forced backend wins outright; otherwise kAuto under the default
/// version, or kAutoV1 under the legacy one. Callers must have validated
/// `results_version` (IsValidResultsVersion) first.
inline ConvolutionBackend EffectiveBackend(ConvolutionBackend backend,
                                           int results_version) {
  if (backend == ConvolutionBackend::kAuto &&
      results_version == kLegacyResultsVersion) {
    return ConvolutionBackend::kAutoV1;
  }
  return backend;
}

/// Per-backend cost weights, in units of one direct multiply-add (so
/// `direct` is 1.0 by construction). A backend's predicted per-row cost is
/// its kernel's dominant operation count scaled by these weights — see the
/// cost functions below for the exact formulas. The static defaults were
/// fitted offline from the boundary sweep in bench_mass_engine (the
/// `boundary_sweep` rows of BENCH_engine.json hold the measurements the fit
/// is audited against); `CalibrateBackendCostModel()` refits them on the
/// running machine.
struct BackendCostModel {
  /// Cost of one direct sliding-dot multiply-add. The unit of the model.
  double direct = 1.0;
  /// Cost per butterfly unit (`F * log2(F)`, F the padded full transform
  /// size) of a single-query row: one real forward + product + real inverse.
  /// Butterfly weights land well above 1 because the direct path is a dense
  /// auto-vectorized FMA loop while a butterfly pass is strided and
  /// latency-bound — the weight-18 v1 constant overpriced this gap, which
  /// is exactly why it kept short-window configurations off the (faster)
  /// overlap-save path.
  double fft_single = 5.5;
  /// Per-row cost per butterfly unit of the pair-packed full-size path (two
  /// rows share one forward + product + inverse).
  double fft_pair = 4.0;
  /// Cost per butterfly unit (`C * log2(C)`, C the overlap-save chunk size)
  /// per chunk-size transform of the overlap-save pipeline.
  double overlap_save = 4.0;
  /// Cost per chunk point of the per-chunk pointwise product + unload sweep
  /// (the O(C) work between the cached chunk spectrum and the output dots).
  double overlap_save_chunk = 2.0;
  /// The SIMD dispatch target the weights apply to. Calibrated weights are
  /// keyed by the target that was active when they were measured: the
  /// relative price of a butterfly unit versus a direct multiply-add shifts
  /// with the vector width, so weights fitted under avx512 must not steer
  /// the chooser after a switch to scalar (VALMOD_SIMD / --simd). When
  /// ActiveBackendCostModel() detects a target change it resets to the
  /// static fit and bumps the model generation (invalidating memoized kAuto
  /// results). For the static fit this field reports the currently active
  /// target.
  simd::Target simd_target = simd::Target::kScalar;
};

/// Predicted cost of one row of sliding dot products, per backend family.
/// `count = series_size - length + 1` rows of `length`-point dots. The
/// `pair` flavors price a row inside a pair-packed batch (two rows per
/// transform); the overlap-save formula amortizes the filter transform and
/// the per-chunk inverse over `hop = C/2` outputs per chunk and assumes the
/// chunk spectra themselves are cached by the engine (they are built once
/// per (series, chunk size) and reused by every row).
double DirectSlidingDotsCost(const BackendCostModel& model, std::size_t length,
                             std::size_t count);
double FftSlidingDotsCost(const BackendCostModel& model,
                          std::size_t series_size, std::size_t length,
                          bool pair);
double OverlapSaveSlidingDotsCost(const BackendCostModel& model,
                                  std::size_t length, std::size_t count,
                                  bool pair);

/// The process-wide model used by `ChooseConvolutionBackend`. Defaults to
/// the (deterministic) static fit above; `SetBackendCostModel` installs a
/// replacement — typically the result of `CalibrateBackendCostModel()`.
/// Thread-safe.
BackendCostModel ActiveBackendCostModel();
void SetBackendCostModel(const BackendCostModel& model);

/// Monotone generation counter of the active cost model: bumped by every
/// SetBackendCostModel call — and therefore by CalibrateBackendCostModel,
/// which installs its fit. Calibration changes which backend kAuto picks,
/// which changes result ulps, so anything that memoizes kAuto results
/// (the service result cache) folds this generation into its keys; a
/// recalibration then invalidates the memoized responses instead of
/// serving output computed under the retired model.
std::uint64_t BackendCostModelGeneration();

/// One-shot runtime calibration (~100 ms): microbenchmarks the direct,
/// full-size FFT, and overlap-save kernels on this machine, fits the
/// per-backend weights, installs the fitted model as the active one, and
/// returns it. Calibration changes only which backend `kAuto` *chooses* —
/// never the numerics a given backend produces — so it is safe for
/// throughput but makes the choice machine-dependent; CI and the golden
/// tests stay on the static fit for determinism.
BackendCostModel CalibrateBackendCostModel();

/// Number of CalibrateBackendCostModel runs this process has completed
/// (telemetry for the `metrics` verb; distinct from the generation counter,
/// which also counts SetBackendCostModel calls and stale-target resets).
std::uint64_t CalibrationRefitCount();

/// Resolves kAuto for one row profile: picks the backend with the smallest
/// predicted cost under `model` (or the active model). With `batched` set
/// the FFT family is priced pair-packed — two rows per transform, as the
/// batched entry point executes it — and a full-FFT winner is reported as
/// kFftPair; otherwise the single-row flavors compete and the full-FFT
/// winner is kFftSingle. Overlap-save is excluded when its chunk would not
/// be smaller than the full transform (chunking degenerates to one
/// full-size block plus overhead). Never returns kAuto/kAutoV1.
ConvolutionBackend ChooseConvolutionBackend(std::size_t series_size,
                                            std::size_t length,
                                            std::size_t count,
                                            bool batched,
                                            const BackendCostModel& model);
ConvolutionBackend ChooseConvolutionBackend(std::size_t series_size,
                                            std::size_t length,
                                            std::size_t count,
                                            bool batched = false);

/// The v1 (PR 3) selection, verbatim: direct iff the weight-18
/// `PreferFftSlidingDots` boundary says so, else overlap-save when its
/// chunk is below the full transform size, else the full-size single-query
/// path. `ConvolutionBackend::kAutoV1` resolves through this, which is what
/// keeps `results_version = 1` runs bit-identical to PR 3 output (see the
/// v1 goldens under tests/goldens/).
ConvolutionBackend ChooseConvolutionBackendV1(std::size_t series_size,
                                              std::size_t length,
                                              std::size_t count);

}  // namespace valmod::mass

#endif  // VALMOD_MASS_BACKEND_H_
