#ifndef VALMOD_MASS_BACKEND_H_
#define VALMOD_MASS_BACKEND_H_

#include <cstddef>

namespace valmod::mass {

/// How a MASS engine turns queries into sliding dot products. The backends
/// are numerically equivalent (every one computes the same dot products to
/// ~1e-9 relative) but differ in evaluation order, so results are not
/// bit-identical across backends; within one backend, results depend only on
/// the inputs and — for the batched entry point — the row order, never on
/// the thread count.
enum class ConvolutionBackend {
  /// Cost-model selection (see ChooseConvolutionBackend). The default
  /// everywhere; forcing a specific backend exists for tests and benches.
  kAuto,
  /// O(count * length) direct multiply-adds. Wins for short windows.
  kDirect,
  /// One full-size real FFT per query against the cached padded-series
  /// spectrum (the half-spectrum path). Bit-identical to the historical
  /// always-FFT engine path.
  kFftSingle,
  /// Full-size pair-packed FFT: two queries ride the real/imaginary lanes
  /// of one complex transform, so a pair of rows costs one forward + one
  /// inverse. Batched calls pack rows pairwise; a forced single-row call
  /// runs the pair machinery with an empty second lane.
  kFftPair,
  /// Overlap-save: chunked FFTs of ~4x the query length against per-chunk
  /// series spectra cached in the engine. Cuts the per-row flop count from
  /// O(n log n) to O(n log m) and keeps the transform working set cache
  /// resident; batched calls pair-pack the chunk pipeline too.
  kOverlapSave,
};

/// Human-readable backend name for logs / bench JSON.
const char* ConvolutionBackendName(ConvolutionBackend backend);

/// Resolves kAuto for one row profile: the three-way crossover over
/// (series length, query length) generalizing the old direct-vs-FFT test.
/// Returns kDirect, kFftSingle, or kOverlapSave — never kAuto, and never
/// kFftPair (pair packing is a batching concern: the batched entry point
/// upgrades a full-FFT family choice to kFftPair on its own).
///
/// Model: the direct-vs-FFT boundary is PreferFftSlidingDots, unchanged,
/// so historical direct-path configurations stay on (and bit-identical to)
/// the direct path. Within the FFT family, overlap-save is chosen whenever
/// OverlapSaveFftSize(length) is smaller than the full FFT size — measured
/// to win at every such configuration (numbers in ROADMAP.md) — and the
/// full-size transform is kept for queries long enough that chunking
/// degenerates.
ConvolutionBackend ChooseConvolutionBackend(std::size_t series_size,
                                            std::size_t length,
                                            std::size_t count);

}  // namespace valmod::mass

#endif  // VALMOD_MASS_BACKEND_H_
