#include "mass/backend.h"

#include "fft/fft.h"
#include "mass/mass.h"

namespace valmod::mass {

const char* ConvolutionBackendName(ConvolutionBackend backend) {
  switch (backend) {
    case ConvolutionBackend::kAuto:
      return "auto";
    case ConvolutionBackend::kDirect:
      return "direct";
    case ConvolutionBackend::kFftSingle:
      return "fft_single";
    case ConvolutionBackend::kFftPair:
      return "fft_pair";
    case ConvolutionBackend::kOverlapSave:
      return "overlap_save";
  }
  return "unknown";
}

ConvolutionBackend ChooseConvolutionBackend(std::size_t series_size,
                                            std::size_t length,
                                            std::size_t count) {
  // The direct-vs-FFT boundary is PreferFftSlidingDots, unchanged, so every
  // configuration that used to take the direct path still does (and stays
  // bit-identical to it).
  if (!PreferFftSlidingDots(series_size, length, count)) {
    return ConvolutionBackend::kDirect;
  }

  // Within the FFT family, overlap-save wins whenever the chunking is
  // non-degenerate. Per row the full-size path does ~2n log2(full_size)
  // butterfly work with a full_size-sized working set; the chunked path
  // does ~2n log2(chunk_size) with a cache-resident working set, and the
  // gap widens with the size ratio. Measured single-core row profiles at
  // length 1024 (see ROADMAP): overlap-save beats the full-size pair path
  // 1.2x at 2^12 points, 1.7x at 2^15, 2.6x at 2^17, 2.8x at 2^19 — ahead
  // at every configuration where chunk_size < full_size, so no finer cost
  // comparison is warranted.
  const std::size_t full_size =
      fft::NextPowerOfTwo(series_size + length - 1);
  const std::size_t chunk_size = fft::OverlapSaveFftSize(length);
  if (chunk_size >= full_size) {
    // The query is a sizable fraction of the series: chunking degenerates
    // to one full-size block plus overhead.
    return ConvolutionBackend::kFftSingle;
  }
  return ConvolutionBackend::kOverlapSave;
}

}  // namespace valmod::mass
