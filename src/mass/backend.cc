#include "mass/backend.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "fft/fft.h"
#include "fft/plan.h"
#include "mass/mass.h"

namespace valmod::mass {

namespace {

double ButterflyUnits(std::size_t fft_size) {
  return static_cast<double>(fft_size) *
         std::log2(static_cast<double>(std::max<std::size_t>(2, fft_size)));
}

std::mutex& ModelMutex() {
  static std::mutex mutex;
  return mutex;
}

/// The active model plus the key that scopes it: `installed` marks a model
/// set through SetBackendCostModel (calibration or tests), and
/// `fitted_target` records the SIMD dispatch target that was active when it
/// was installed. A model is only trusted while that target stays active.
struct ModelState {
  BackendCostModel model;  // defaults to the static fit
  bool installed = false;
  simd::Target fitted_target = simd::Target::kScalar;
};

ModelState& ModelStorage() {
  static ModelState state;
  return state;
}

std::atomic<std::uint64_t>& ModelGenerationStorage() {
  static std::atomic<std::uint64_t> generation{0};
  return generation;
}

std::atomic<std::uint64_t>& CalibrationRefitStorage() {
  static std::atomic<std::uint64_t> refits{0};
  return refits;
}

}  // namespace

const char* ConvolutionBackendName(ConvolutionBackend backend) {
  switch (backend) {
    case ConvolutionBackend::kAuto:
      return "auto";
    case ConvolutionBackend::kAutoV1:
      return "auto_v1";
    case ConvolutionBackend::kDirect:
      return "direct";
    case ConvolutionBackend::kFftSingle:
      return "fft_single";
    case ConvolutionBackend::kFftPair:
      return "fft_pair";
    case ConvolutionBackend::kOverlapSave:
      return "overlap_save";
  }
  return "unknown";
}

double DirectSlidingDotsCost(const BackendCostModel& model, std::size_t length,
                             std::size_t count) {
  return model.direct * static_cast<double>(count) *
         static_cast<double>(length);
}

double FftSlidingDotsCost(const BackendCostModel& model,
                          std::size_t series_size, std::size_t length,
                          bool pair) {
  const std::size_t fft_size =
      fft::NextPowerOfTwo(series_size + length - 1);
  const double weight = pair ? model.fft_pair : model.fft_single;
  return weight * ButterflyUnits(fft_size);
}

double OverlapSaveSlidingDotsCost(const BackendCostModel& model,
                                  std::size_t length, std::size_t count,
                                  bool pair) {
  const std::size_t chunk_size = fft::OverlapSaveFftSize(length);
  const std::size_t hop = chunk_size / 2;
  const double chunks =
      static_cast<double>((count + hop - 1) / std::max<std::size_t>(1, hop));
  // One filter transform plus one inverse per chunk, plus the O(C) product
  // and unload sweep per chunk. The chunk spectra themselves are cached per
  // (series, chunk size) in MassEngine and reused by every row at that
  // size, so their construction is not part of the per-row price.
  const double pipeline =
      model.overlap_save * ButterflyUnits(chunk_size) * (1.0 + chunks) +
      model.overlap_save_chunk * static_cast<double>(chunk_size) * chunks;
  // A pair-packed batch pushes two rows through one pipeline pass.
  return pair ? pipeline / 2.0 : pipeline;
}

BackendCostModel ActiveBackendCostModel() {
  const simd::Target current = simd::ActiveTarget();
  std::lock_guard<std::mutex> lock(ModelMutex());
  ModelState& state = ModelStorage();
  if (state.installed && state.fitted_target != current) {
    // The dispatch target changed under an installed (calibrated) model:
    // its weights priced kernels that are no longer running, so fall back
    // to the static fit and bump the generation so memoized kAuto results
    // are invalidated rather than served under stale weights.
    state.model = BackendCostModel{};
    state.installed = false;
    ModelGenerationStorage().fetch_add(1, std::memory_order_relaxed);
  }
  BackendCostModel model = state.model;
  model.simd_target = current;
  return model;
}

void SetBackendCostModel(const BackendCostModel& model) {
  const simd::Target current = simd::ActiveTarget();
  std::lock_guard<std::mutex> lock(ModelMutex());
  ModelState& state = ModelStorage();
  state.model = model;
  state.model.simd_target = current;
  state.installed = true;
  state.fitted_target = current;
  ModelGenerationStorage().fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t BackendCostModelGeneration() {
  return ModelGenerationStorage().load(std::memory_order_relaxed);
}

ConvolutionBackend ChooseConvolutionBackend(std::size_t series_size,
                                            std::size_t length,
                                            std::size_t count, bool batched,
                                            const BackendCostModel& model) {
  const std::size_t full_size =
      fft::NextPowerOfTwo(series_size + length - 1);
  const std::size_t chunk_size = fft::OverlapSaveFftSize(length);

  const double direct_cost = DirectSlidingDotsCost(model, length, count);
  const double fft_cost =
      FftSlidingDotsCost(model, series_size, length, batched);
  // When the chunk is not smaller than the full transform, chunking
  // degenerates to one full-size block plus overhead; the full-size path
  // strictly dominates, so overlap-save leaves the auction.
  const double ols_cost =
      chunk_size < full_size
          ? OverlapSaveSlidingDotsCost(model, length, count, batched)
          : std::numeric_limits<double>::infinity();

  if (direct_cost <= fft_cost && direct_cost <= ols_cost) {
    return ConvolutionBackend::kDirect;
  }
  if (ols_cost < fft_cost) {
    return ConvolutionBackend::kOverlapSave;
  }
  return batched ? ConvolutionBackend::kFftPair
                 : ConvolutionBackend::kFftSingle;
}

ConvolutionBackend ChooseConvolutionBackend(std::size_t series_size,
                                            std::size_t length,
                                            std::size_t count, bool batched) {
  return ChooseConvolutionBackend(series_size, length, count, batched,
                                  ActiveBackendCostModel());
}

ConvolutionBackend ChooseConvolutionBackendV1(std::size_t series_size,
                                              std::size_t length,
                                              std::size_t count) {
  // The PR 3 policy, frozen: every configuration the weight-18 boundary
  // sent down the direct path stays there (and stays bit-identical to it),
  // and the FFT family prefers overlap-save whenever the chunking is
  // non-degenerate. Kept verbatim so results_version = 1 reproduces the v1
  // goldens byte-for-byte; the default policy lives in the calibrated
  // chooser above, with its measurements in the boundary_sweep rows of
  // BENCH_engine.json.
  if (!PreferFftSlidingDots(series_size, length, count)) {
    return ConvolutionBackend::kDirect;
  }
  const std::size_t full_size =
      fft::NextPowerOfTwo(series_size + length - 1);
  const std::size_t chunk_size = fft::OverlapSaveFftSize(length);
  if (chunk_size >= full_size) {
    return ConvolutionBackend::kFftSingle;
  }
  return ConvolutionBackend::kOverlapSave;
}

namespace {

/// Median-of-three timed repetitions of `body` (seconds for one execution).
/// The microbench favors the median over the min: calibration runs on live
/// machines, and a single quiet-core minimum overstates sustained speed.
template <typename Body>
double TimeSeconds(std::size_t reps, const Body& body) {
  double samples[3];
  for (double& sample : samples) {
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r) body();
    sample = timer.ElapsedSeconds() / static_cast<double>(reps);
  }
  std::sort(std::begin(samples), std::end(samples));
  return samples[1];
}

}  // namespace

BackendCostModel CalibrateBackendCostModel() {
  // Shapes mirror the kernels the engine actually runs: a mid-size series
  // for the direct dots, the matching full transform for the FFT paths, and
  // the overlap-save pipeline at two chunk counts so its two weights can be
  // separated. Everything below is a few milliseconds per kernel — the
  // whole calibration stays around 100 ms.
  constexpr std::size_t kSeriesSize = 16384;
  constexpr std::size_t kLength = 128;
  const std::size_t count = kSeriesSize - kLength + 1;
  const std::size_t full_size = fft::NextPowerOfTwo(kSeriesSize + kLength - 1);

  Rng rng(12345);
  std::vector<double> series(kSeriesSize);
  for (double& v : series) v = rng.Gaussian();
  std::vector<double> query(series.begin(), series.begin() + kLength);
  std::vector<double> reversed(query.rbegin(), query.rend());

  // Direct: seconds per multiply-add — the unit everything is expressed in.
  const double direct_seconds = TimeSeconds(4, [&] {
    volatile double sink =
        DirectExternalSlidingDots(series, query, count)[0];
    (void)sink;
  });
  const double sec_per_fma =
      direct_seconds /
      (static_cast<double>(count) * static_cast<double>(kLength));

  // Full-size single-query row: forward + half-spectrum product + inverse,
  // exactly the CachedSlidingDots pipeline minus the cached series forward.
  const auto full_plan = fft::GetPlan(full_size);
  std::vector<std::complex<double>> series_bins(
      full_plan->half_spectrum_size());
  full_plan->RealForward(series, series_bins);
  std::vector<std::complex<double>> bins(full_plan->half_spectrum_size());
  std::vector<double> conv(full_size);
  const double fft_single_seconds = TimeSeconds(8, [&] {
    full_plan->RealForward(reversed, bins);
    for (std::size_t i = 0; i < bins.size(); ++i) {
      bins[i] = series_bins[i] * bins[i];
    }
    full_plan->RealInverse(bins, conv);
  });

  // Full-size pair row: two rows per forward + product + inverse.
  std::vector<std::complex<double>> series_pair_bins(full_size);
  full_plan->RealForwardPair(series, {}, series_pair_bins);
  std::vector<std::complex<double>> pair_bins(full_size);
  const double fft_pair_seconds = TimeSeconds(8, [&] {
    full_plan->RealForwardPair(reversed, reversed, pair_bins);
    full_plan->MultiplyPairByRealSpectrum(series_pair_bins, pair_bins);
    full_plan->InverseBitrev(pair_bins);
  }) / 2.0;

  // Overlap-save pipeline at two chunk counts: t(K) is linear in K with an
  // intercept, t(K) = a * units * (1 + K) + b * C * K, so two measurements
  // separate the transform weight `a` from the per-chunk sweep weight `b`.
  const std::size_t chunk_size = fft::OverlapSaveFftSize(kLength);
  const std::size_t hop = chunk_size / 2;
  const auto chunk_plan = fft::GetPlan(chunk_size);
  std::vector<std::complex<double>> chunk_bins(chunk_size);
  chunk_plan->RealForwardPair({series.data(), chunk_size}, {}, chunk_bins);
  std::vector<std::complex<double>> filter(chunk_size);
  std::vector<std::complex<double>> work(chunk_size);
  std::vector<double> dots(chunk_size);
  const auto ols_pipeline = [&](std::size_t chunks) {
    chunk_plan->RealForwardPair(reversed, {}, filter);
    for (std::size_t c = 0; c < chunks; ++c) {
      chunk_plan->MultiplyPairByRealSpectrumInto(chunk_bins, filter, work);
      chunk_plan->InverseBitrev(work);
      for (std::size_t i = 0; i < hop; ++i) {
        dots[i] = work[kLength - 1 + i].real();
      }
    }
    volatile double sink = dots[0];
    (void)sink;
  };
  const std::size_t k_small = 8;
  const std::size_t k_large = 64;
  // The K = 0 run is the lone filter transform, a * units_chunk, measured
  // directly. (An earlier version extrapolated it as the intercept of the
  // two chunked runs; with vectorized butterflies the transform term is
  // small enough that measurement noise routinely drove the extrapolated
  // intercept — and with it the overlap_save weight — to zero.)
  const double ols_filter = TimeSeconds(32, [&] { ols_pipeline(0); });
  const double ols_small = TimeSeconds(16, [&] { ols_pipeline(k_small); });
  const double ols_large = TimeSeconds(4, [&] { ols_pipeline(k_large); });

  const double units_full = ButterflyUnits(full_size);
  const double units_chunk = ButterflyUnits(chunk_size);
  // Per-chunk increment: a*units + b*C. Two chunked runs give the slope,
  // the measured filter transform gives `a` on its own.
  const double dk = static_cast<double>(k_large - k_small);
  const double slope = (ols_large - ols_small) / dk;  // a*units + b*C
  double a = ols_filter / units_chunk;
  double b =
      (slope - a * units_chunk) / static_cast<double>(chunk_size);
  if (b < 0.0) {
    // Degenerate fit (noise): fall back to pricing everything into the
    // transform weight.
    a = slope / units_chunk;
    b = 0.0;
  }

  BackendCostModel model;
  model.direct = 1.0;
  model.fft_single = fft_single_seconds / units_full / sec_per_fma;
  model.fft_pair = fft_pair_seconds / units_full / sec_per_fma;
  model.overlap_save = a / sec_per_fma;
  model.overlap_save_chunk = b / sec_per_fma;
  SetBackendCostModel(model);
  CalibrationRefitStorage().fetch_add(1, std::memory_order_relaxed);
  return model;
}

std::uint64_t CalibrationRefitCount() {
  return CalibrationRefitStorage().load(std::memory_order_relaxed);
}

}  // namespace valmod::mass
