#include "common/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace valmod::fault {
namespace {

/// splitmix64 — a well-mixed 64-bit hash. Feeding it seed^hit gives each
/// hit of an armed point an independent, reproducible coin flip.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Maps a hash to [0, 1) with 53 bits of precision.
double HashToUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool ParseUint64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDoubleUnit(std::string_view text, double* out) {
  const std::string owned(text);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || *end != '\0') return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  *out = value;
  return true;
}

/// Parses one `point=kind[:key=value]*` directive into (point, spec).
/// `armed=false` means the directive was `point=off`.
Status ParseDirective(std::string_view directive, std::string* point,
                      FaultSpec* spec, bool* armed) {
  const std::size_t eq = directive.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("fault directive '" +
                                   std::string(directive) +
                                   "' is not of the form point=kind[:k=v]*");
  }
  *point = std::string(directive.substr(0, eq));
  std::string_view rest = directive.substr(eq + 1);

  std::vector<std::string_view> parts;
  while (!rest.empty()) {
    const std::size_t colon = rest.find(':');
    parts.push_back(rest.substr(0, colon));
    if (colon == std::string_view::npos) break;
    rest.remove_prefix(colon + 1);
  }
  if (parts.empty() || parts[0].empty()) {
    return Status::InvalidArgument("fault directive for '" + *point +
                                   "' is missing a kind");
  }

  *armed = true;
  const std::string_view kind = parts[0];
  if (kind == "off") {
    *armed = false;
    if (parts.size() > 1) {
      return Status::InvalidArgument("'" + *point +
                                     "=off' takes no options");
    }
    return Status::Ok();
  }
  if (kind == "error") {
    spec->kind = FaultKind::kError;
  } else if (kind == "delay") {
    spec->kind = FaultKind::kDelay;
  } else if (kind == "alloc") {
    spec->kind = FaultKind::kAllocFail;
  } else {
    return Status::InvalidArgument("unknown fault kind '" +
                                   std::string(kind) + "' for '" + *point +
                                   "' (want error|delay|alloc|off)");
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string_view part = parts[i];
    const std::size_t kv = part.find('=');
    if (kv == std::string_view::npos) {
      return Status::InvalidArgument("fault option '" + std::string(part) +
                                     "' for '" + *point +
                                     "' is not key=value");
    }
    const std::string_view key = part.substr(0, kv);
    const std::string_view value = part.substr(kv + 1);
    bool ok = true;
    if (key == "code") {
      ok = StatusCodeFromName(value, &spec->code) &&
           spec->code != StatusCode::kOk;
    } else if (key == "nth") {
      ok = ParseUint64(value, &spec->nth);
    } else if (key == "p") {
      ok = ParseDoubleUnit(value, &spec->probability);
    } else if (key == "seed") {
      ok = ParseUint64(value, &spec->seed);
    } else if (key == "max_fires") {
      ok = ParseUint64(value, &spec->max_fires);
    } else if (key == "delay_ms") {
      std::uint64_t ms = 0;
      ok = ParseUint64(value, &ms) && ms <= 600000;  // cap at 10 minutes
      spec->delay_ms = static_cast<int>(ms);
    } else {
      return Status::InvalidArgument("unknown fault option '" +
                                     std::string(key) + "' for '" + *point +
                                     "'");
    }
    if (!ok) {
      return Status::InvalidArgument("bad value '" + std::string(value) +
                                     "' for fault option '" +
                                     std::string(key) + "' on '" + *point +
                                     "'");
    }
  }
  return Status::Ok();
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();
    if (const char* env = std::getenv("VALMOD_FAULTS");
        env != nullptr && *env != '\0') {
      if (Status status = injector->ArmFromString(env); !status.ok()) {
        std::fprintf(stderr, "warning: VALMOD_FAULTS ignored: %s\n",
                     status.message().c_str());
      }
    }
    return injector;
  }();
  return *instance;
}

void FaultInjector::Arm(std::string_view point, FaultSpec spec) {
  if (spec.message.empty()) {
    spec.message = "injected fault at '" + std::string(point) + "'";
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = points_.insert_or_assign(std::string(point),
                                                 ArmedPoint{std::move(spec)});
  (void)it;
  if (inserted) armed_.fetch_add(1, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromString(std::string_view directives) {
  // Parse everything first so a bad trailing directive does not leave half
  // the list armed.
  struct Parsed {
    std::string point;
    FaultSpec spec;
    bool armed = true;
  };
  std::vector<Parsed> parsed;
  std::string_view rest = directives;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view directive = rest.substr(0, semi);
    if (!directive.empty()) {
      Parsed p;
      VALMOD_RETURN_IF_ERROR(
          ParseDirective(directive, &p.point, &p.spec, &p.armed));
      parsed.push_back(std::move(p));
    }
    if (semi == std::string_view::npos) break;
    rest.remove_prefix(semi + 1);
  }
  for (auto& p : parsed) {
    if (p.armed) {
      Arm(p.point, std::move(p.spec));
    } else {
      Disarm(p.point);
    }
  }
  return Status::Ok();
}

bool FaultInjector::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  if (it == points_.end()) return false;
  points_.erase(it);
  armed_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.fetch_sub(static_cast<int>(points_.size()),
                   std::memory_order_relaxed);
  points_.clear();
}

std::vector<FaultPointInfo> FaultInjector::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultPointInfo> out;
  out.reserve(points_.size());
  for (const auto& [point, state] : points_) {
    out.push_back(FaultPointInfo{point, state.spec, state.hits, state.fires});
  }
  return out;
}

Status FaultInjector::Check(std::string_view point) {
  // Fast path: nothing armed anywhere. One relaxed load.
  if (armed_.load(std::memory_order_relaxed) == 0) return Status::Ok();
  return CheckSlow(point);
}

Status FaultInjector::CheckSlow(std::string_view point) {
  FaultSpec fired;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(point);
    if (it == points_.end()) return Status::Ok();
    ArmedPoint& state = it->second;
    ++state.hits;
    const FaultSpec& spec = state.spec;
    if (spec.max_fires != 0 && state.fires >= spec.max_fires) {
      return Status::Ok();
    }
    if (spec.nth != 0 && state.hits != spec.nth) return Status::Ok();
    if (spec.probability < 1.0 &&
        HashToUnit(Mix64(spec.seed ^ state.hits)) >= spec.probability) {
      return Status::Ok();
    }
    ++state.fires;
    fired = spec;
    fire = true;
  }
  if (!fire) return Status::Ok();
  switch (fired.kind) {
    case FaultKind::kDelay:
      if (fired.delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
      }
      return Status::Ok();
    case FaultKind::kAllocFail:
      return Status::ResourceExhausted("injected allocation failure at '" +
                                       std::string(point) + "'");
    case FaultKind::kError:
      return Status(fired.code, fired.message);
  }
  return Status::Ok();
}

}  // namespace valmod::fault
