#ifndef VALMOD_COMMON_TRACE_H_
#define VALMOD_COMMON_TRACE_H_

// Lightweight end-to-end request tracing.
//
// A TraceContext is created per request at the service boundary and carries
// a 64-bit trace id plus a bounded tree of timed spans. The context travels
// with the request object across threads (the scheduler worker executing
// the job is not the thread that admitted it), and a *thread-local binding*
// makes it reachable from deep library code without threading a parameter
// through every signature: the serving layer binds the context on whichever
// thread is currently executing the request (ScopedBinding), library code
// opens RAII spans against whatever is bound (TraceSpan), and the thread
// pool forwards the dispatching thread's binding to its workers so spans
// opened inside a fork-join region attach to the right request.
//
// Cost model: an unbound TraceSpan is one thread-local read and two dead
// stores — no clock, no lock, no allocation — so library code can be
// instrumented unconditionally. A bound span is two steady_clock reads and
// one short mutex-protected append. The span tree is capped (kMaxSpans);
// past the cap BeginSpan records nothing and counts the drop, so a
// pathological per-row caller cannot bloat a request. SetEnabled(false) is
// a process-wide kill switch that stops contexts from being handed out at
// the service boundary (the bench uses it to measure the zero-tracing
// baseline).

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace valmod::trace {

/// Process-wide tracing switch. Defaults to enabled. When disabled the
/// serving layer stops creating per-request contexts entirely (TraceSpan
/// instances everywhere degrade to the unbound no-op).
bool Enabled();
void SetEnabled(bool enabled);

/// One request's span tree. Thread-safe: spans may be opened and closed
/// from any thread the request visits (admission thread, scheduler worker,
/// pool workers inside a parallel region).
class TraceContext {
 public:
  /// Upper bound on recorded spans per request. Generous for the intended
  /// granularity (service stages + per-batch engine spans); a sweep that
  /// would exceed it drops the excess instead of growing without bound.
  static constexpr int kMaxSpans = 256;

  struct Span {
    std::string name;
    int parent = -1;               // index into the span vector; -1 = root
    std::uint64_t start_ns = 0;    // relative to the context's origin
    std::uint64_t duration_ns = 0; // 0 while the span is open
  };

  TraceContext();

  std::uint64_t trace_id() const { return trace_id_; }

  /// Opens a span under `parent` (-1 for a root span) and returns its
  /// index, or -1 when the context is at capacity (the caller passes -1 to
  /// EndSpan, which ignores it).
  int BeginSpan(std::string_view name, int parent);

  /// Closes the span opened by BeginSpan. Ignores index < 0. Closing an
  /// already-closed span keeps the first duration.
  void EndSpan(int index);

  /// Nanoseconds since the context was created.
  std::uint64_t ElapsedNs() const;

  /// Copy of the span tree (open spans have duration_ns == 0).
  std::vector<Span> Snapshot() const;

  /// Spans BeginSpan refused because the context was at capacity.
  std::uint64_t dropped() const;

 private:
  const std::uint64_t trace_id_;
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::uint64_t dropped_ = 0;
};

/// Canonical wire spelling of a trace id: 16 lowercase hex digits.
std::string TraceIdHex(std::uint64_t trace_id);

/// What TraceSpan attaches to: the context bound to this thread and the
/// span new children should parent under.
struct Binding {
  TraceContext* context = nullptr;
  int parent = -1;
};

/// The calling thread's current binding ({nullptr, -1} when unbound).
Binding CurrentBinding();

/// Installs `binding` on this thread for the scope's lifetime, restoring
/// the previous binding on destruction. Used at the points where a request
/// changes threads: the service boundary, the scheduler worker about to
/// run a job, and the thread pool's region hand-off.
class ScopedBinding {
 public:
  explicit ScopedBinding(Binding binding);
  ~ScopedBinding();

  ScopedBinding(const ScopedBinding&) = delete;
  ScopedBinding& operator=(const ScopedBinding&) = delete;

 private:
  Binding previous_;
};

/// RAII span under the thread's current binding. Unbound instances are
/// no-ops. While alive, the thread's binding parents nested spans under
/// this one, so plain lexical nesting produces the span tree.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceContext* context_;
  int index_ = -1;
  int saved_parent_ = -1;
};

}  // namespace valmod::trace

#endif  // VALMOD_COMMON_TRACE_H_
