#ifndef VALMOD_COMMON_RESULT_H_
#define VALMOD_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace valmod {

/// Value-or-error holder, the library's replacement for exceptions.
///
/// A `Result<T>` holds either a `T` or a non-OK `Status`. Accessing the value
/// of an error result aborts the process with a diagnostic (programming
/// error), mirroring absl::StatusOr semantics.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error status keeps call sites
  /// terse (`return my_vector;` / `return Status::InvalidArgument(...)`).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      Fail("Result constructed from OK status without a value");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Status of the result: OK when a value is present.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(state_);
  }

  /// Value accessors. Aborts if the result holds an error.
  const T& value() const& {
    CheckOk();
    return std::get<T>(state_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(state_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) Fail(std::get<Status>(state_).ToString().c_str());
  }
  [[noreturn]] static void Fail(const char* what) {
    std::cerr << "Result<T>: value() called on error result: " << what
              << std::endl;
    std::abort();
  }

  std::variant<T, Status> state_;
};

}  // namespace valmod

/// Evaluates `rexpr` (a Result<T>), propagates the error, otherwise moves the
/// value into `lhs`. `lhs` may be a declaration (`auto x`) or an lvalue.
#define VALMOD_ASSIGN_OR_RETURN(lhs, rexpr)               \
  VALMOD_ASSIGN_OR_RETURN_IMPL_(                          \
      VALMOD_RESULT_CONCAT_(_valmod_result, __LINE__), lhs, rexpr)

#define VALMOD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define VALMOD_RESULT_CONCAT_INNER_(a, b) a##b
#define VALMOD_RESULT_CONCAT_(a, b) VALMOD_RESULT_CONCAT_INNER_(a, b)

#endif  // VALMOD_COMMON_RESULT_H_
