#ifndef VALMOD_COMMON_TIMER_H_
#define VALMOD_COMMON_TIMER_H_

#include <chrono>
#include <optional>

namespace valmod {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Cooperative deadline passed into long-running algorithms. Algorithms check
/// `Expired()` at coarse granularity (per length / per diagonal block) and
/// return StatusCode::kDeadlineExceeded when it fires — this mirrors the
/// paper's "time out after 24h" treatment of slow competitors.
class Deadline {
 public:
  /// A deadline that never expires.
  Deadline() = default;

  /// A deadline `seconds` from now. Non-positive values expire immediately.
  static Deadline After(double seconds) {
    Deadline d;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  /// An infinite deadline (same as default construction; reads clearly at
  /// call sites).
  static Deadline Infinite() { return Deadline(); }

  bool Expired() const {
    return at_.has_value() && std::chrono::steady_clock::now() >= *at_;
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
};

}  // namespace valmod

#endif  // VALMOD_COMMON_TIMER_H_
