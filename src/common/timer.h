#ifndef VALMOD_COMMON_TIMER_H_
#define VALMOD_COMMON_TIMER_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <optional>

namespace valmod {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Cooperative deadline passed into long-running algorithms. Algorithms check
/// `Expired()` at coarse granularity (per length / per diagonal block) and
/// return StatusCode::kDeadlineExceeded when it fires — this mirrors the
/// paper's "time out after 24h" treatment of slow competitors.
class Deadline {
 public:
  /// A deadline that never expires.
  Deadline() = default;

  /// A deadline `seconds` from now. Non-positive values expire immediately.
  static Deadline After(double seconds) {
    Deadline d;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  /// An infinite deadline (same as default construction; reads clearly at
  /// call sites).
  static Deadline Infinite() { return Deadline(); }

  /// Returns a copy of this deadline that additionally expires as soon as
  /// `*flag` becomes true. Because every long-running algorithm already
  /// polls `Expired()` at coarse granularity, an attached flag turns those
  /// same checkpoints into cooperative cancellation points: the service
  /// scheduler cancels an in-flight request by setting the flag, and the
  /// algorithm unwinds with kDeadlineExceeded at its next check.
  Deadline WithCancelFlag(
      std::shared_ptr<const std::atomic<bool>> flag) const {
    Deadline d = *this;
    d.cancel_ = std::move(flag);
    return d;
  }

  bool Expired() const {
    if (cancel_ && cancel_->load(std::memory_order_relaxed)) return true;
    return at_.has_value() && std::chrono::steady_clock::now() >= *at_;
  }

  /// Seconds until the time limit fires (negative once past it), or
  /// +infinity for a deadline with no time limit. Ignores the cancel flag:
  /// this reports the configured budget, which the scheduler's watchdog
  /// uses to decide when a running request counts as stalled.
  double SecondsRemaining() const {
    if (!at_.has_value()) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double>(*at_ -
                                         std::chrono::steady_clock::now())
        .count();
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
  std::shared_ptr<const std::atomic<bool>> cancel_;
};

}  // namespace valmod

#endif  // VALMOD_COMMON_TIMER_H_
