#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/json.h"

namespace valmod::log {

namespace {

std::atomic<int> g_level{static_cast<int>(Level::kInfo)};
std::atomic<bool> g_json{false};

std::mutex& EmitMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

void AppendDouble(double value, std::string* out) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  *out += buffer;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
  }
  return "unknown";
}

Result<Level> ParseLevel(std::string_view name) {
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  return Status::InvalidArgument("unknown log level '" + std::string(name) +
                                 "' (want debug|info|warn|error)");
}

void SetLevel(Level level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level GetLevel() {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void SetJson(bool json) { g_json.store(json, std::memory_order_relaxed); }

bool GetJson() { return g_json.load(std::memory_order_relaxed); }

Event::Event(Level level, std::string_view message)
    : enabled_(static_cast<int>(level) >=
               g_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (!enabled_) return;
  if (GetJson()) {
    line_ = "{\"level\":\"";
    line_ += LevelName(level);
    line_ += "\",\"msg\":";
    json::AppendQuoted(message, &line_);
  } else {
    line_ = "[";
    line_ += LevelName(level);
    line_ += "] ";
    line_.append(message);
  }
}

Event::~Event() {
  if (!enabled_) return;
  if (GetJson()) line_ += '}';
  line_ += '\n';
  // One locked write per event: concurrent events interleave by whole
  // lines, which is what log shippers (and humans tailing stderr) need.
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fputs(line_.c_str(), stderr);
  std::fflush(stderr);
}

void Event::AppendKey(std::string_view key) {
  if (GetJson()) {
    line_ += ',';
    json::AppendQuoted(key, &line_);
    line_ += ':';
  } else {
    line_ += ' ';
    line_.append(key);
    line_ += '=';
  }
}

Event& Event::Field(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  AppendKey(key);
  if (GetJson()) {
    json::AppendQuoted(value, &line_);
  } else {
    line_.append(value);
  }
  return *this;
}

Event& Event::Field(std::string_view key, const char* value) {
  return Field(key, std::string_view(value));
}

Event& Event::Field(std::string_view key, const std::string& value) {
  return Field(key, std::string_view(value));
}

Event& Event::Field(std::string_view key, double value) {
  if (!enabled_) return *this;
  AppendKey(key);
  AppendDouble(value, &line_);
  return *this;
}

Event& Event::Field(std::string_view key, std::uint64_t value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += std::to_string(value);
  return *this;
}

Event& Event::Field(std::string_view key, std::int64_t value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += std::to_string(value);
  return *this;
}

Event& Event::Field(std::string_view key, int value) {
  return Field(key, static_cast<std::int64_t>(value));
}

Event& Event::Field(std::string_view key, bool value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += value ? "true" : "false";
  return *this;
}

}  // namespace valmod::log
