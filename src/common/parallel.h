#ifndef VALMOD_COMMON_PARALLEL_H_
#define VALMOD_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/trace.h"

namespace valmod {

/// A persistent pool of worker threads for the library's fork-join regions.
///
/// The VALMOD certification loop dispatches many small recompute batches per
/// length; spawning and joining `std::thread`s for each batch costs tens of
/// microseconds per thread — comparable to the batch's useful work. The pool
/// keeps workers parked on a condition variable between regions, so a region
/// dispatch is one notify instead of N thread creations.
///
/// Work is expressed as `chunks`: `Run(num_chunks, fn)` invokes
/// `fn(chunk_index)` exactly once for every index in [0, num_chunks),
/// spread over the pool workers plus the calling thread, and returns when
/// all chunks are done. Chunks are claimed dynamically from a shared
/// counter, so which thread runs which chunk is unspecified; `fn` must be
/// safe to call concurrently for distinct indices and must not throw.
///
/// The pool grows on demand up to `kMaxThreads` (a region with N chunks
/// wants N - 1 helpers; the caller executes chunks too) and never shrinks;
/// threads are created at most once per slot for the lifetime of the pool.
/// A `Run` issued from inside a pool worker executes inline, so nested
/// parallel regions cannot deadlock. Only one region is dispatched to the
/// pool at a time; a concurrent top-level caller executes its chunks
/// inline on its own thread instead of waiting.
class ThreadPool {
 public:
  /// Upper bound on pool threads; far above any sensible num_threads and
  /// small enough that the parked threads cost nothing measurable.
  static constexpr std::size_t kMaxThreads = 64;

  ThreadPool() = default;
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool used by ParallelFor. Created on first use.
  static ThreadPool& Shared() {
    static ThreadPool pool;
    return pool;
  }

  /// Number of worker threads currently parked in or running on the pool.
  std::size_t worker_count() {
    std::lock_guard<std::mutex> lock(mutex_);
    return workers_.size();
  }

  /// Total threads this pool has ever created. Monotone; stable across
  /// regions once the pool has warmed up to the requested width — the
  /// observable guarantee that regions reuse threads instead of spawning.
  std::uint64_t threads_created() const {
    return threads_created_.load(std::memory_order_relaxed);
  }

  /// Runs `fn(c)` once for every c in [0, num_chunks), blocking until all
  /// chunks complete. The calling thread participates.
  void Run(std::size_t num_chunks, const std::function<void(std::size_t)>& fn) {
    if (num_chunks == 0) return;
    if (num_chunks == 1 || InParallelRegion()) {
      for (std::size_t c = 0; c < num_chunks; ++c) fn(c);
      return;
    }

    // One dispatched region at a time. A caller arriving while another
    // region is in flight runs its chunks inline instead of blocking: a
    // concurrent library caller keeps making progress on its own thread
    // rather than stalling for the whole duration of the other region.
    std::unique_lock<std::mutex> region_lock(region_mutex_, std::try_to_lock);
    if (!region_lock.owns_lock()) {
      for (std::size_t c = 0; c < num_chunks; ++c) fn(c);
      return;
    }
    auto region = std::make_shared<Region>();
    region->fn = &fn;
    region->chunks = num_chunks;
    region->binding = trace::CurrentBinding();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      EnsureWorkersLocked(std::min(num_chunks - 1, kMaxThreads));
      current_ = region;
      ++generation_;
    }
    work_cv_.notify_all();

    // The caller executes chunks too, and is flagged as inside the region
    // while it does: a chunk that itself calls Run (nested ParallelFor)
    // must execute inline — re-entering the dispatch path would deadlock
    // on region_mutex_, which this thread already holds.
    InParallelRegion() = true;
    Drain(*region);
    InParallelRegion() = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return region->completed.load(std::memory_order_acquire) ==
             region->chunks;
    });
    current_.reset();
  }

 private:
  /// One fork-join dispatch. Workers hold a shared_ptr, so a straggler that
  /// wakes after the region completed only touches the (monotone) claim
  /// counter of its own region — it can never claim chunks of, or call the
  /// function of, a later region.
  struct Region {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t chunks = 0;
    /// The dispatching thread's trace binding, re-installed on each worker
    /// while it drains this region: spans opened inside the chunks attach
    /// to the request that forked the region, not to whatever the worker
    /// last ran. Safe because Run() blocks the dispatcher until the region
    /// completes, so the bound context outlives every worker's use of it.
    trace::Binding binding;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
  };

  /// True while this thread is executing chunks of some region — pool
  /// workers always, the dispatching caller while it participates.
  static bool& InParallelRegion() {
    thread_local bool in_region = false;
    return in_region;
  }

  void EnsureWorkersLocked(std::size_t want) {
    while (workers_.size() < want) {
      workers_.emplace_back([this] { WorkerLoop(); });
      threads_created_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void Drain(Region& region) {
    for (;;) {
      const std::size_t c =
          region.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= region.chunks) return;
      (*region.fn)(c);
      if (region.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          region.chunks) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  void WorkerLoop() {
    InParallelRegion() = true;
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Region> region;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stop_ || (generation_ != seen_generation && current_);
        });
        if (stop_) return;
        seen_generation = generation_;
        region = current_;
      }
      const trace::ScopedBinding bind(region->binding);
      Drain(*region);
    }
  }

  std::mutex region_mutex_;  // serializes concurrent top-level regions

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Region> current_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::atomic<std::uint64_t> threads_created_{0};
};

/// Runs `fn(index)` for every index in [begin, end), statically partitioned
/// into contiguous chunks across up to `threads` workers of the shared
/// persistent pool (the partitioning — and therefore which indices share a
/// chunk — is identical to the historical spawn-per-call implementation).
/// `fn` must be safe to call concurrently for distinct indices. With
/// `threads <= 1` (or a tiny range) the loop runs inline.
inline void ParallelFor(std::size_t begin, std::size_t end, int threads,
                        const std::function<void(std::size_t)>& fn) {
  const std::size_t count = end > begin ? end - begin : 0;
  const std::size_t workers = std::min<std::size_t>(
      threads > 1 ? static_cast<std::size_t>(threads) : 1, count);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (count + workers - 1) / workers;
  ThreadPool::Shared().Run(workers, [&](std::size_t w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Status-returning variant: runs every index (no early abort across
/// workers) and reports the error of the lowest failing index, so the
/// outcome is deterministic regardless of thread interleaving.
inline Status ParallelForWithStatus(
    std::size_t begin, std::size_t end, int threads,
    const std::function<Status(std::size_t)>& fn) {
  std::mutex mutex;
  std::size_t first_bad = end;
  Status first_error;
  ParallelFor(begin, end, threads, [&](std::size_t i) {
    Status status = fn(i);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mutex);
      if (i < first_bad) {
        first_bad = i;
        first_error = std::move(status);
      }
    }
  });
  return first_error;
}

}  // namespace valmod

#endif  // VALMOD_COMMON_PARALLEL_H_
