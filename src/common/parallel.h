#ifndef VALMOD_COMMON_PARALLEL_H_
#define VALMOD_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace valmod {

/// Runs `fn(index)` for every index in [begin, end), statically partitioned
/// into contiguous chunks across up to `threads` workers. `fn` must be safe
/// to call concurrently for distinct indices. With `threads <= 1` (or a
/// tiny range) the loop runs inline.
inline void ParallelFor(std::size_t begin, std::size_t end, int threads,
                        const std::function<void(std::size_t)>& fn) {
  const std::size_t count = end > begin ? end - begin : 0;
  const std::size_t workers = std::min<std::size_t>(
      threads > 1 ? static_cast<std::size_t>(threads) : 1, count);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn]() {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& t : pool) t.join();
}

/// Status-returning variant: runs every index (no early abort across
/// workers) and reports the error of the lowest failing index, so the
/// outcome is deterministic regardless of thread interleaving.
inline Status ParallelForWithStatus(
    std::size_t begin, std::size_t end, int threads,
    const std::function<Status(std::size_t)>& fn) {
  std::mutex mutex;
  std::size_t first_bad = end;
  Status first_error;
  ParallelFor(begin, end, threads, [&](std::size_t i) {
    Status status = fn(i);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mutex);
      if (i < first_bad) {
        first_bad = i;
        first_error = std::move(status);
      }
    }
  });
  return first_error;
}

}  // namespace valmod

#endif  // VALMOD_COMMON_PARALLEL_H_
