#include "common/trace.h"

#include <atomic>

namespace valmod::trace {

namespace {

std::atomic<bool> g_enabled{true};

/// splitmix64 finalizer: spreads a sequential counter over the full 64-bit
/// space so concurrently issued ids differ in every hex digit, not just the
/// low ones (operators eyeball-diff these in logs).
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t NextTraceId() {
  // Seeded from the steady clock at first use so two runs of the same
  // binary do not reuse ids; sequenced by an atomic so two concurrent
  // requests never share one.
  static const std::uint64_t seed = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t id =
      Mix(seed + counter.fetch_add(1, std::memory_order_relaxed));
  if (id == 0) id = 1;  // 0 is reserved for "no trace"
  return id;
}

Binding& ThreadBinding() {
  thread_local Binding binding;
  return binding;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

TraceContext::TraceContext()
    : trace_id_(NextTraceId()), origin_(std::chrono::steady_clock::now()) {
  spans_.reserve(16);
}

int TraceContext::BeginSpan(std::string_view name, int parent) {
  const std::uint64_t start = ElapsedNs();
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= static_cast<std::size_t>(kMaxSpans)) {
    ++dropped_;
    return -1;
  }
  Span span;
  span.name.assign(name);
  span.parent = parent;
  span.start_ns = start;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void TraceContext::EndSpan(int index) {
  if (index < 0) return;
  const std::uint64_t now = ElapsedNs();
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<std::size_t>(index) >= spans_.size()) return;
  Span& span = spans_[static_cast<std::size_t>(index)];
  if (span.duration_ns == 0) {
    // A zero-length span would also store 0; recording max(delta, 1) keeps
    // "closed" distinguishable from "still open" at nanosecond cost.
    const std::uint64_t delta = now - span.start_ns;
    span.duration_ns = delta > 0 ? delta : 1;
  }
}

std::uint64_t TraceContext::ElapsedNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

std::vector<TraceContext::Span> TraceContext::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::uint64_t TraceContext::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceIdHex(std::uint64_t trace_id) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[trace_id & 0xF];
    trace_id >>= 4;
  }
  return out;
}

Binding CurrentBinding() { return ThreadBinding(); }

ScopedBinding::ScopedBinding(Binding binding) : previous_(ThreadBinding()) {
  ThreadBinding() = binding;
}

ScopedBinding::~ScopedBinding() { ThreadBinding() = previous_; }

TraceSpan::TraceSpan(const char* name) {
  Binding& binding = ThreadBinding();
  context_ = binding.context;
  if (context_ == nullptr) return;
  saved_parent_ = binding.parent;
  index_ = context_->BeginSpan(name, binding.parent);
  // Even a dropped span (-1) re-parents children to the dropped slot's
  // parent rather than to itself; keeping the saved parent is correct for
  // both outcomes.
  if (index_ >= 0) binding.parent = index_;
}

TraceSpan::~TraceSpan() {
  if (context_ == nullptr) return;
  ThreadBinding().parent = saved_parent_;
  context_->EndSpan(index_);
}

}  // namespace valmod::trace
