#include "common/status.h"

namespace valmod {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool StatusCodeFromName(std::string_view name, StatusCode* code) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,
      StatusCode::kNotFound,
      StatusCode::kFailedPrecondition,
      StatusCode::kIoError,
      StatusCode::kDeadlineExceeded,
      StatusCode::kInternal,
      StatusCode::kResourceExhausted,
      StatusCode::kUnavailable,
  };
  for (StatusCode candidate : kAll) {
    if (StatusCodeName(candidate) == name) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace valmod
