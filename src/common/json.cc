#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace valmod::json {

namespace {

/// Recursive-descent parser over a string_view with explicit position.
/// Depth is bounded so hostile input (the server parses untrusted request
/// lines) cannot overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    VALMOD_ASSIGN_OR_RETURN(Value value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      VALMOD_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value(std::move(s));
    }
    if (ConsumeLiteral("true")) return Value(true);
    if (ConsumeLiteral("false")) return Value(false);
    if (ConsumeLiteral("null")) return Value(nullptr);
    return ParseNumber();
  }

  Result<Value> ParseObject(int depth) {
    Consume('{');
    Value::Object object;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(object));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      VALMOD_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      VALMOD_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      object.insert_or_assign(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(object));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray(int depth) {
    Consume('[');
    Value::Array array;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(array));
    for (;;) {
      VALMOD_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(array));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are rejected:
          // the protocol is ASCII-centric and the serializer never emits
          // them; accepting lone surrogates would round-trip garbage).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      return Error("invalid number '" + token + "'");
    }
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void AppendNumber(double value, std::string* out) {
  // Integral doubles (the protocol's counts, offsets, ids) print without
  // an exponent or fraction so they re-parse as the same value everywhere.
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.0e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    out->append(buffer);
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

}  // namespace

void AppendQuoted(std::string_view text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& object = AsObject();
  auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

double Value::GetNumber(std::string_view key, double default_value) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : default_value;
}

bool Value::GetBool(std::string_view key, bool default_value) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : default_value;
}

std::string Value::GetString(std::string_view key,
                             const std::string& default_value) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : default_value;
}

void Value::SerializeTo(std::string* out) const {
  if (is_null()) {
    out->append("null");
  } else if (is_bool()) {
    out->append(AsBool() ? "true" : "false");
  } else if (is_number()) {
    AppendNumber(AsDouble(), out);
  } else if (is_string()) {
    AppendQuoted(AsString(), out);
  } else if (is_array()) {
    out->push_back('[');
    bool first = true;
    for (const Value& v : AsArray()) {
      if (!first) out->push_back(',');
      first = false;
      v.SerializeTo(out);
    }
    out->push_back(']');
  } else {
    out->push_back('{');
    bool first = true;
    for (const auto& [key, v] : AsObject()) {
      if (!first) out->push_back(',');
      first = false;
      AppendQuoted(key, out);
      out->push_back(':');
      v.SerializeTo(out);
    }
    out->push_back('}');
  }
}

std::string Value::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace valmod::json
