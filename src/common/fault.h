#ifndef VALMOD_COMMON_FAULT_H_
#define VALMOD_COMMON_FAULT_H_

// Fault-injection framework for chaos testing the serving stack.
//
// Production code declares *fault points* — named places where a failure
// could plausibly happen — with the VALMOD_FAULT_POINT macro:
//
//   VALMOD_RETURN_IF_ERROR(VALMOD_FAULT_POINT("registry.load.alloc"));
//
// A disarmed fault point costs one relaxed atomic load (the global armed
// counter), so points stay in release builds by default. Tests, the
// VALMOD_FAULTS environment variable, or the server's `faults` verb arm a
// point with a FaultSpec describing *when* it fires (every hit, the Nth
// hit, or with probability p under a deterministic seed) and *what* it does
// (return an error Status, sleep, or simulate an allocation failure).
//
// Directive syntax (env var and `faults` verb):
//
//   point=kind[:key=value]*  joined by ';'
//
//   kinds: error | delay | alloc | off
//   keys:  code=<StatusCodeName>  nth=<1-based hit>  p=<probability>
//          seed=<u64>  max_fires=<count, 0=unlimited>  delay_ms=<ms>
//
//   VALMOD_FAULTS='registry.load.alloc=alloc:nth=1;server.write=error:p=0.5:seed=7'
//
// Probability decisions are a pure hash of (seed, hit index) — rerunning a
// chaos test with the same seed replays the exact same fire pattern.
//
// Building with -DVALMOD_FAULT_INJECTION=OFF compiles every fault point to
// a constant-Ok expression with zero runtime cost.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace valmod::fault {

#ifdef VALMOD_DISABLE_FAULT_INJECTION
inline constexpr bool kFaultInjectionEnabled = false;
#else
inline constexpr bool kFaultInjectionEnabled = true;
#endif

enum class FaultKind {
  kError,      // return spec.code / spec.message from the fault point
  kDelay,      // sleep delay_ms, then continue (point returns Ok)
  kAllocFail,  // return kResourceExhausted, phrased as an allocation failure
};

/// What an armed fault point does and when it triggers. Trigger gates
/// compose: a hit fires only if it passes the nth gate AND the probability
/// gate AND the max_fires budget.
struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  /// For kError: the status code to return.
  StatusCode code = StatusCode::kUnavailable;
  /// For kError: the message; defaults to "injected fault at '<point>'".
  std::string message;
  /// Fire only on the nth hit (1-based). 0 = every hit passes this gate.
  std::uint64_t nth = 0;
  /// Fire with this probability per hit, decided by hashing (seed, hit).
  double probability = 1.0;
  std::uint64_t seed = 0;
  /// Stop firing after this many fires. 0 = unlimited.
  std::uint64_t max_fires = 0;
  /// For kDelay: how long to sleep.
  int delay_ms = 0;
};

/// Observed state of an armed fault point, for the `faults` verb and tests.
struct FaultPointInfo {
  std::string point;
  FaultSpec spec;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

/// Registry of armed fault points. Thread-safe. Use Global() in production
/// code; tests may construct private instances.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Process-wide instance. On first use, arms any directives found in the
  /// VALMOD_FAULTS environment variable (malformed directives are ignored
  /// with a note on stderr — a chaos harness typo must not change server
  /// behavior silently, but must not take the process down either).
  static FaultInjector& Global();

  /// Arms (or re-arms, resetting counters) a fault point.
  void Arm(std::string_view point, FaultSpec spec);

  /// Parses and applies one or more `point=kind[:k=v]*` directives joined
  /// by ';'. Returns InvalidArgument naming the first bad directive.
  Status ArmFromString(std::string_view directives);

  /// Disarms one point. Returns false if it was not armed.
  bool Disarm(std::string_view point);
  void DisarmAll();

  /// Snapshot of every armed point with hit/fire counters.
  std::vector<FaultPointInfo> List() const;

  /// Number of currently armed points (relaxed; the fast-path gate).
  int armed_count() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// The hook production code calls through VALMOD_FAULT_POINT. Returns
  /// Ok() unless `point` is armed and its trigger gates pass.
  Status Check(std::string_view point);

 private:
  struct ArmedPoint {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  Status CheckSlow(std::string_view point);

  std::atomic<int> armed_{0};
  mutable std::mutex mutex_;
  std::map<std::string, ArmedPoint, std::less<>> points_;
};

}  // namespace valmod::fault

#ifdef VALMOD_DISABLE_FAULT_INJECTION
#define VALMOD_FAULT_POINT(point) ::valmod::Status::Ok()
#else
#define VALMOD_FAULT_POINT(point) \
  ::valmod::fault::FaultInjector::Global().Check(point)
#endif

#endif  // VALMOD_COMMON_FAULT_H_
