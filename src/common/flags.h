#ifndef VALMOD_COMMON_FLAGS_H_
#define VALMOD_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace valmod {

/// Minimal command-line flag parser for the bench and example binaries.
///
/// Accepts `--name=value` and bare `--name` (boolean true). Anything not
/// starting with `--` is collected as a positional argument. The space form
/// `--name value` is intentionally not supported (ambiguous with
/// positionals).
/// The parser is intentionally tiny: benches need a handful of numeric knobs
/// (sizes, lengths, seeds), not a full flags library.
class Flags {
 public:
  /// Parses argv. Unknown flags are kept (benches print what they received).
  static Flags Parse(int argc, char** argv);

  /// Typed getters with defaults.
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

  bool Has(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present in argv but absent from `known`, in sorted order. The
  /// tool front ends validate each subcommand's flag table with this so a
  /// typo'd flag (`--thread=4` for `--threads=4`) fails loudly instead of
  /// silently running with the default.
  std::vector<std::string> UnknownFlags(
      std::span<const std::string_view> known) const;

  /// InvalidArgument naming every unknown flag (and the accepted set), or
  /// OK when every parsed flag appears in `known`.
  Status RejectUnknown(std::span<const std::string_view> known) const;

  /// "name=value name=value ..." for run-configuration logging.
  std::string ToString() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace valmod

#endif  // VALMOD_COMMON_FLAGS_H_
