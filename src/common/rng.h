#ifndef VALMOD_COMMON_RNG_H_
#define VALMOD_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace valmod {

/// Deterministic random number generator used by all synthetic data
/// generators and tests. Wrapping std::mt19937_64 in one place guarantees
/// that a (generator, seed) pair always produces the same series across
/// platforms and library versions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Standard normal draw.
  double Gaussian() { return normal_(engine_); }

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * normal_(engine_);
  }

  /// Uniform draw in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * unit_(engine_);
  }

  /// Uniform integer draw in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Exponential draw with the given rate (events per unit).
  double Exponential(double rate) {
    std::exponential_distribution<double> dist(rate);
    return dist(engine_);
  }

  /// Bernoulli draw.
  bool Flip(double probability_true) {
    return unit_(engine_) < probability_true;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace valmod

#endif  // VALMOD_COMMON_RNG_H_
