#ifndef VALMOD_COMMON_JSON_H_
#define VALMOD_COMMON_JSON_H_

#include <cstddef>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace valmod::json {

/// Minimal JSON value used by the serving protocol (valmod_server speaks
/// newline-delimited JSON) and the bench JSON emitters. Self-contained on
/// purpose: the build may not install a JSON library, and the protocol
/// needs only the core data model — null, bool, double, string, array,
/// object. Numbers are always doubles (the protocol's integral fields are
/// small enough for exact double representation); object keys keep sorted
/// (std::map) order, which makes serialized forms canonical — the result
/// cache relies on that to use serialized params as cache-key material.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() : state_(nullptr) {}
  Value(std::nullptr_t) : state_(nullptr) {}           // NOLINT
  Value(bool b) : state_(b) {}                         // NOLINT
  Value(double d) : state_(d) {}                       // NOLINT
  Value(int i) : state_(static_cast<double>(i)) {}     // NOLINT
  Value(long long i) : state_(static_cast<double>(i)) {}        // NOLINT
  Value(unsigned long long i) : state_(static_cast<double>(i)) {}  // NOLINT
  Value(std::size_t i) : state_(static_cast<double>(i)) {}  // NOLINT
  Value(const char* s) : state_(std::string(s)) {}     // NOLINT
  Value(std::string s) : state_(std::move(s)) {}       // NOLINT
  Value(Array a) : state_(std::move(a)) {}             // NOLINT
  Value(Object o) : state_(std::move(o)) {}            // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(state_); }
  bool is_bool() const { return std::holds_alternative<bool>(state_); }
  bool is_number() const { return std::holds_alternative<double>(state_); }
  bool is_string() const { return std::holds_alternative<std::string>(state_); }
  bool is_array() const { return std::holds_alternative<Array>(state_); }
  bool is_object() const { return std::holds_alternative<Object>(state_); }

  /// Typed accessors; calling the wrong one aborts (programming error),
  /// mirroring Result<T>. Use the is_*() predicates or the Get* helpers.
  bool AsBool() const { return std::get<bool>(state_); }
  double AsDouble() const { return std::get<double>(state_); }
  const std::string& AsString() const { return std::get<std::string>(state_); }
  const Array& AsArray() const { return std::get<Array>(state_); }
  Array& AsArray() { return std::get<Array>(state_); }
  const Object& AsObject() const { return std::get<Object>(state_); }
  Object& AsObject() { return std::get<Object>(state_); }

  /// Object field lookup: nullptr when this is not an object or the key is
  /// absent.
  const Value* Find(std::string_view key) const;

  /// Typed object-field getters with defaults (missing key or wrong type
  /// yields the default) — the shape the protocol's optional params take.
  double GetNumber(std::string_view key, double default_value) const;
  bool GetBool(std::string_view key, bool default_value) const;
  std::string GetString(std::string_view key,
                        const std::string& default_value) const;

  /// Compact single-line serialization (no insignificant whitespace).
  /// Doubles that hold integral values in the int64 range print without a
  /// fractional part; others use %.17g so values round-trip.
  std::string Serialize() const;
  void SerializeTo(std::string* out) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      state_;
};

/// Parses one JSON document, requiring it to span the whole input (trailing
/// whitespace allowed). Errors carry a byte offset.
Result<Value> Parse(std::string_view text);

/// Serializes `text` as a JSON string literal (quotes + escapes) into `out`.
void AppendQuoted(std::string_view text, std::string* out);

}  // namespace valmod::json

#endif  // VALMOD_COMMON_JSON_H_
