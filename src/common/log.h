#ifndef VALMOD_COMMON_LOG_H_
#define VALMOD_COMMON_LOG_H_

// Leveled structured logging to stderr.
//
// The server binaries historically logged with ad-hoc fprintf calls: no
// levels (a preload note and a bind failure looked the same to a log
// shipper), and free-form text a collector cannot parse. This is the
// replacement: events carry a level, a message, and typed key/value
// fields, and render either as human-oriented text
//
//   [info] preloaded dataset dataset=ecg points=20000
//
// or, with SetJson(true) (--log-json), as one JSON object per line
//
//   {"level":"info","msg":"preloaded dataset","dataset":"ecg","points":20000}
//
// Events below the threshold level (SetLevel / --log-level) are dropped at
// the call site for the cost of one relaxed atomic load. Emission takes a
// process-wide mutex so concurrent events interleave by line, never by
// byte. This is operator logging, not request tracing — per-request timing
// lives in common/trace.h.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace valmod::log {

enum class Level {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

const char* LevelName(Level level);

/// Parses "debug" | "info" | "warn" | "error" (the --log-level values).
Result<Level> ParseLevel(std::string_view name);

/// Threshold below which events are dropped. Default kInfo.
void SetLevel(Level level);
Level GetLevel();

/// Switches emission to one-JSON-object-per-line. Default off (text).
void SetJson(bool json);
bool GetJson();

/// One log event, built fluently and emitted on destruction:
///
///   log::Event(log::Level::kInfo, "preloaded dataset")
///       .Field("dataset", name).Field("points", n);
///
/// Suppressed events (below threshold) skip all field formatting.
class Event {
 public:
  Event(Level level, std::string_view message);
  ~Event();

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  Event& Field(std::string_view key, std::string_view value);
  Event& Field(std::string_view key, const char* value);
  Event& Field(std::string_view key, const std::string& value);
  Event& Field(std::string_view key, double value);
  Event& Field(std::string_view key, std::uint64_t value);
  Event& Field(std::string_view key, std::int64_t value);
  Event& Field(std::string_view key, int value);
  Event& Field(std::string_view key, bool value);

 private:
  void AppendKey(std::string_view key);

  bool enabled_;
  Level level_;
  std::string line_;
};

inline Event Debug(std::string_view message) {
  return Event(Level::kDebug, message);
}
inline Event Info(std::string_view message) {
  return Event(Level::kInfo, message);
}
inline Event Warn(std::string_view message) {
  return Event(Level::kWarn, message);
}
inline Event Error(std::string_view message) {
  return Event(Level::kError, message);
}

}  // namespace valmod::log

#endif  // VALMOD_COMMON_LOG_H_
