#include "common/flags.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

namespace valmod {

namespace {

bool LooksLikeFlag(std::string_view arg) {
  return arg.size() > 2 && arg.substr(0, 2) == "--";
}

}  // namespace

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!LooksLikeFlag(arg)) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
    } else {
      // Bare `--name` is boolean true. The `--name value` space form is
      // deliberately unsupported: it is ambiguous with positionals.
      flags.values_[std::string(body)] = "true";
    }
  }
  return flags;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second;
}

std::vector<std::string> Flags::UnknownFlags(
    std::span<const std::string_view> known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      unknown.push_back(name);
    }
  }
  return unknown;  // values_ is an ordered map, so this is sorted
}

Status Flags::RejectUnknown(std::span<const std::string_view> known) const {
  const std::vector<std::string> unknown = UnknownFlags(known);
  if (unknown.empty()) return Status::Ok();
  std::string message = "unknown flag";
  if (unknown.size() > 1) message += 's';
  for (const std::string& name : unknown) message += " --" + name;
  message += " (accepted:";
  for (std::string_view name : known) {
    message += " --";
    message += name;
  }
  message += ")";
  return Status::InvalidArgument(std::move(message));
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::ToString() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    if (!out.empty()) out += ' ';
    out += name + "=" + value;
  }
  return out;
}

}  // namespace valmod
