#ifndef VALMOD_COMMON_STATUS_H_
#define VALMOD_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace valmod {

/// Error categories used across the library. The library never throws; all
/// fallible operations return a Status or a Result<T> (see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kFailedPrecondition = 4,
  kIoError = 5,
  kDeadlineExceeded = 6,
  kInternal = 7,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Lightweight status object carrying a code and, for errors, a message.
///
/// Conventions follow the Google style guide: functions that can fail return
/// `Status` (or `Result<T>`); `Status::Ok()` signals success. Statuses are
/// cheap to copy for the OK case and carry a heap-allocated message only on
/// error paths.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace valmod

/// Propagates an error status from an expression that yields a Status.
#define VALMOD_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::valmod::Status _valmod_status = (expr);        \
    if (!_valmod_status.ok()) return _valmod_status; \
  } while (0)

#endif  // VALMOD_COMMON_STATUS_H_
