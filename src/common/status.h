#ifndef VALMOD_COMMON_STATUS_H_
#define VALMOD_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace valmod {

/// Error categories used across the library. The library never throws; all
/// fallible operations return a Status or a Result<T> (see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kFailedPrecondition = 4,
  kIoError = 5,
  kDeadlineExceeded = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kUnavailable = 9,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: parses "ResourceExhausted" back into its code.
/// Returns false for unknown names. Used by the fault injector (which arms
/// fault points from text directives) and by clients mapping wire errors
/// back onto StatusCode.
bool StatusCodeFromName(std::string_view name, StatusCode* code);

/// Lightweight status object carrying a code and, for errors, a message.
///
/// Conventions follow the Google style guide: functions that can fail return
/// `Status` (or `Result<T>`); `Status::Ok()` signals success. Statuses are
/// cheap to copy for the OK case and carry a heap-allocated message only on
/// error paths.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Optional machine-readable backoff hint, in milliseconds. Zero means
  /// "no hint". Set on overload errors (kResourceExhausted) by the query
  /// scheduler from observed service rates; serialized as `retry_after_ms`
  /// in wire errors and honored by service::RetryClient.
  int retry_after_ms() const { return retry_after_ms_; }
  Status& SetRetryAfterMs(int ms) & {
    retry_after_ms_ = ms > 0 ? ms : 0;
    return *this;
  }
  Status&& SetRetryAfterMs(int ms) && {
    retry_after_ms_ = ms > 0 ? ms : 0;
    return std::move(*this);
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  /// Advisory only — deliberately excluded from operator== so tests that
  /// compare statuses are not sensitive to load-dependent hints.
  int retry_after_ms_ = 0;
  std::string message_;
};

}  // namespace valmod

/// Propagates an error status from an expression that yields a Status.
#define VALMOD_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::valmod::Status _valmod_status = (expr);        \
    if (!_valmod_status.ok()) return _valmod_status; \
  } while (0)

#endif  // VALMOD_COMMON_STATUS_H_
