#ifndef VALMOD_SIMD_KERNELS_SCALAR_INL_H_
#define VALMOD_SIMD_KERNELS_SCALAR_INL_H_

// Per-element scalar kernel bodies, shared by the scalar kernel table and by
// every vector translation unit (which uses them for remainder lanes the
// vector width doesn't cover). Keeping the remainder code literally the
// same inline functions as the scalar oracle is what makes the bit-identity
// guarantee hold at every size, not just multiples of the vector width.
//
// All kernels_*.cc are compiled with -ffp-contract=off, so these bodies
// never turn into FMAs even on ISAs that have them.

#include <cmath>
#include <cstddef>

namespace valmod::simd::scalar_kernel {

/// One span-2 butterfly over the 4 doubles at d + i.
inline void Radix2Butterfly(double* d, std::size_t i) {
  const double ar = d[i], ai = d[i + 1];
  const double br = d[i + 2], bi = d[i + 3];
  d[i] = ar + br;
  d[i + 1] = ai + bi;
  d[i + 2] = ar - br;
  d[i + 3] = ai - bi;
}

/// One fused radix-2^2 DIT butterfly at inner index k (see fft/plan.cc for
/// the derivation; this is that loop body, moved verbatim).
inline void FusedDitButterfly(double* pa, double* pb, double* pc, double* pd,
                              std::size_t k, const double* tw, std::size_t s1,
                              std::size_t s2, std::size_t quarter,
                              double sign) {
  const double w1r = tw[2 * k * s1];
  const double w1i = sign * tw[2 * k * s1 + 1];
  const double w2r = tw[2 * k * s2];
  const double w2i = sign * tw[2 * k * s2 + 1];
  const double w3r = tw[2 * (k * s2 + quarter)];
  const double w3i = sign * tw[2 * (k * s2 + quarter) + 1];

  const double br = pb[2 * k], bi = pb[2 * k + 1];
  const double t1r = w1r * br - w1i * bi;
  const double t1i = w1r * bi + w1i * br;
  const double ar = pa[2 * k], ai = pa[2 * k + 1];
  const double a0r = ar + t1r, a0i = ai + t1i;
  const double b0r = ar - t1r, b0i = ai - t1i;

  const double dr = pd[2 * k], di = pd[2 * k + 1];
  const double t2r = w1r * dr - w1i * di;
  const double t2i = w1r * di + w1i * dr;
  const double cr = pc[2 * k], ci = pc[2 * k + 1];
  const double c0r = cr + t2r, c0i = ci + t2i;
  const double d0r = cr - t2r, d0i = ci - t2i;

  const double t3r = w2r * c0r - w2i * c0i;
  const double t3i = w2r * c0i + w2i * c0r;
  pa[2 * k] = a0r + t3r;
  pa[2 * k + 1] = a0i + t3i;
  pc[2 * k] = a0r - t3r;
  pc[2 * k + 1] = a0i - t3i;

  const double t4r = w3r * d0r - w3i * d0i;
  const double t4i = w3r * d0i + w3i * d0r;
  pb[2 * k] = b0r + t4r;
  pb[2 * k + 1] = b0i + t4i;
  pd[2 * k] = b0r - t4r;
  pd[2 * k + 1] = b0i - t4i;
}

/// One fused radix-2^2 DIF butterfly at inner index k (twiddles applied
/// after the butterfly).
inline void FusedDifButterfly(double* pa, double* pb, double* pc, double* pd,
                              std::size_t k, const double* tw, std::size_t s1,
                              std::size_t s2, std::size_t quarter,
                              double sign) {
  const double w1r = tw[2 * k * s1];
  const double w1i = sign * tw[2 * k * s1 + 1];
  const double w2r = tw[2 * k * s2];
  const double w2i = sign * tw[2 * k * s2 + 1];
  const double w3r = tw[2 * (k * s2 + quarter)];
  const double w3i = sign * tw[2 * (k * s2 + quarter) + 1];

  const double ar = pa[2 * k], ai = pa[2 * k + 1];
  const double cr = pc[2 * k], ci = pc[2 * k + 1];
  const double a1r = ar + cr, a1i = ai + ci;
  const double cdr = ar - cr, cdi = ai - ci;
  const double c1r = w2r * cdr - w2i * cdi;
  const double c1i = w2r * cdi + w2i * cdr;

  const double br = pb[2 * k], bi = pb[2 * k + 1];
  const double dr = pd[2 * k], di = pd[2 * k + 1];
  const double b1r = br + dr, b1i = bi + di;
  const double ddr = br - dr, ddi = bi - di;
  const double d1r = w3r * ddr - w3i * ddi;
  const double d1i = w3r * ddi + w3i * ddr;

  pa[2 * k] = a1r + b1r;
  pa[2 * k + 1] = a1i + b1i;
  const double abr = a1r - b1r, abi = a1i - b1i;
  pb[2 * k] = w1r * abr - w1i * abi;
  pb[2 * k + 1] = w1r * abi + w1i * abr;

  pc[2 * k] = c1r + d1r;
  pc[2 * k + 1] = c1i + d1i;
  const double cdr2 = c1r - d1r, cdi2 = c1i - d1i;
  pd[2 * k] = w1r * cdr2 - w1i * cdi2;
  pd[2 * k + 1] = w1r * cdi2 + w1i * cdr2;
}

/// out[k] = a[k] * b[k] for one complex bin (the libstdc++ finite-math
/// std::complex<double> product, spelled out on doubles).
inline void ComplexMultiplyBin(const double* a, const double* b, double* out,
                               std::size_t k) {
  const double ar = a[2 * k], ai = a[2 * k + 1];
  const double br = b[2 * k], bi = b[2 * k + 1];
  out[2 * k] = ar * br - ai * bi;
  out[2 * k + 1] = ar * bi + ai * br;
}

/// One window of the moving mean/std sweep (stats::MovingStats::Mean /
/// Variance bodies for length >= 2, moved verbatim).
inline void WindowStatsAt(const double* prefix, const double* prefix_sq,
                          std::size_t i, std::size_t length, double dlen,
                          double inv_len, double global_mean, double* means,
                          double* std_devs) {
  const double diff = prefix[i + length] - prefix[i];
  means[i] = diff / dlen + global_mean;
  const double cm = diff * inv_len;
  const double mean_sq = (prefix_sq[i + length] - prefix_sq[i]) * inv_len;
  const double var = mean_sq - cm * cm;
  std_devs[i] = std::sqrt(var > 0.0 ? var : 0.0);
}

}  // namespace valmod::simd::scalar_kernel

#endif  // VALMOD_SIMD_KERNELS_SCALAR_INL_H_
