// AVX-512 kernel table. Compiled with -mavx512f -ffp-contract=off; only
// ever called after cpuid confirms AVX512F (which includes the OS xsave
// check in __builtin_cpu_supports). 512-bit lanes process 4 complexes per
// step; shorter spans fall back to the 256-bit bodies in
// kernels_avx2_inl.h (AVX2 is implied by -mavx512f) and then to the scalar
// bodies, so every size stays bit-identical to the oracle.
//
// AVX-512 has no vaddsubpd, so the alternating subtract/add of the complex
// product is spelled as x + (sign-flipped y): IEEE subtraction is defined
// as addition of the negation, so flipping the sign bit of the even lanes
// and adding is bit-identical to vaddsubpd. The sign flip uses integer xor
// (_mm512_xor_si512) to stay within AVX512F — _mm512_xor_pd would require
// AVX512DQ, which Knights-class parts lack.
//
// The dot product deliberately reuses the 256-bit kernel: widening the
// accumulator to 8 lanes would change the partial-sum grouping and break
// bit-identity with the scalar four-accumulator reduction.

#include <immintrin.h>

#include <cstddef>

#include "simd/kernels.h"
#include "simd/kernels_avx2_inl.h"
#include "simd/kernels_scalar_inl.h"

namespace valmod::simd {
namespace {

/// -0.0 in the even (real) lanes: xor with this then add == addsub.
inline __m512d NegateEvenLanes(__m512d v) {
  const __m512d mask = _mm512_setr_pd(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0,
                                      0.0);
  return _mm512_castsi512_pd(_mm512_xor_si512(_mm512_castpd_si512(v),
                                              _mm512_castpd_si512(mask)));
}

inline __m512d AddSub(__m512d x, __m512d y) {
  return _mm512_add_pd(x, NegateEvenLanes(y));
}

inline __m512d ComplexMulByDup(__m512d wr, __m512d wi, __m512d v) {
  const __m512d swapped = _mm512_permute_pd(v, 0x55);
  return AddSub(_mm512_mul_pd(wr, v), _mm512_mul_pd(wi, swapped));
}

/// Four (re, im) pairs gathered from tw at indices i0..i3.
inline __m512d LoadTwiddleQuad(const double* tw, std::size_t i0,
                               std::size_t i1, std::size_t i2,
                               std::size_t i3) {
  const __m256d lo = avx2_kernel::LoadTwiddlePair(tw, i0, i1);
  const __m256d hi = avx2_kernel::LoadTwiddlePair(tw, i2, i3);
  return _mm512_insertf64x4(_mm512_castpd256_pd512(lo), hi, 1);
}

struct TwiddleDup {
  __m512d r;
  __m512d i;
};

inline TwiddleDup LoadTwiddleDup(const double* tw, std::size_t k,
                                 std::size_t s, std::size_t offset,
                                 __m512d sign) {
  const __m512d w = LoadTwiddleQuad(tw, 2 * (k * s + offset),
                                    2 * ((k + 1) * s + offset),
                                    2 * ((k + 2) * s + offset),
                                    2 * ((k + 3) * s + offset));
  return {_mm512_permute_pd(w, 0x00),
          _mm512_mul_pd(_mm512_permute_pd(w, 0xFF), sign)};
}

void Radix2PassAvx512(double* d, std::size_t n) {
  const std::size_t total = 2 * n;
  // Gather/scatter lane maps for four span-2 butterflies per 16 doubles:
  // a = the four (ar, ai) pairs, b = the four (br, bi) pairs; outputs
  // re-interleave the sums and differences into butterfly order.
  const __m512i idx_a = _mm512_setr_epi64(0, 1, 4, 5, 8, 9, 12, 13);
  const __m512i idx_b = _mm512_setr_epi64(2, 3, 6, 7, 10, 11, 14, 15);
  const __m512i idx_lo = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
  const __m512i idx_hi = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
  std::size_t i = 0;
  for (; i + 16 <= total; i += 16) {
    const __m512d v0 = _mm512_loadu_pd(d + i);
    const __m512d v1 = _mm512_loadu_pd(d + i + 8);
    const __m512d a = _mm512_permutex2var_pd(v0, idx_a, v1);
    const __m512d b = _mm512_permutex2var_pd(v0, idx_b, v1);
    const __m512d s = _mm512_add_pd(a, b);
    const __m512d t = _mm512_sub_pd(a, b);
    _mm512_storeu_pd(d + i, _mm512_permutex2var_pd(s, idx_lo, t));
    _mm512_storeu_pd(d + i + 8, _mm512_permutex2var_pd(s, idx_hi, t));
  }
  for (; i < total; i += 4) scalar_kernel::Radix2Butterfly(d, i);
}

/// The 4-complex-wide fused DIT inner body at index k.
inline void FusedDitQuad(double* pa, double* pb, double* pc, double* pd,
                         std::size_t k, const double* tw, std::size_t s1,
                         std::size_t s2, std::size_t quarter, __m512d sign) {
  const TwiddleDup w1 = LoadTwiddleDup(tw, k, s1, 0, sign);
  const TwiddleDup w2 = LoadTwiddleDup(tw, k, s2, 0, sign);
  const TwiddleDup w3 = LoadTwiddleDup(tw, k, s2, quarter, sign);

  const __m512d vb = _mm512_loadu_pd(pb + 2 * k);
  const __m512d t1 = ComplexMulByDup(w1.r, w1.i, vb);
  const __m512d va = _mm512_loadu_pd(pa + 2 * k);
  const __m512d a0 = _mm512_add_pd(va, t1);
  const __m512d b0 = _mm512_sub_pd(va, t1);

  const __m512d vd = _mm512_loadu_pd(pd + 2 * k);
  const __m512d t2 = ComplexMulByDup(w1.r, w1.i, vd);
  const __m512d vc = _mm512_loadu_pd(pc + 2 * k);
  const __m512d c0 = _mm512_add_pd(vc, t2);
  const __m512d d0 = _mm512_sub_pd(vc, t2);

  const __m512d t3 = ComplexMulByDup(w2.r, w2.i, c0);
  _mm512_storeu_pd(pa + 2 * k, _mm512_add_pd(a0, t3));
  _mm512_storeu_pd(pc + 2 * k, _mm512_sub_pd(a0, t3));

  const __m512d t4 = ComplexMulByDup(w3.r, w3.i, d0);
  _mm512_storeu_pd(pb + 2 * k, _mm512_add_pd(b0, t4));
  _mm512_storeu_pd(pd + 2 * k, _mm512_sub_pd(b0, t4));
}

/// The 4-complex-wide fused DIF inner body at index k.
inline void FusedDifQuad(double* pa, double* pb, double* pc, double* pd,
                         std::size_t k, const double* tw, std::size_t s1,
                         std::size_t s2, std::size_t quarter, __m512d sign) {
  const TwiddleDup w1 = LoadTwiddleDup(tw, k, s1, 0, sign);
  const TwiddleDup w2 = LoadTwiddleDup(tw, k, s2, 0, sign);
  const TwiddleDup w3 = LoadTwiddleDup(tw, k, s2, quarter, sign);

  const __m512d va = _mm512_loadu_pd(pa + 2 * k);
  const __m512d vc = _mm512_loadu_pd(pc + 2 * k);
  const __m512d a1 = _mm512_add_pd(va, vc);
  const __m512d cd = _mm512_sub_pd(va, vc);
  const __m512d c1 = ComplexMulByDup(w2.r, w2.i, cd);

  const __m512d vb = _mm512_loadu_pd(pb + 2 * k);
  const __m512d vd = _mm512_loadu_pd(pd + 2 * k);
  const __m512d b1 = _mm512_add_pd(vb, vd);
  const __m512d dd = _mm512_sub_pd(vb, vd);
  const __m512d d1 = ComplexMulByDup(w3.r, w3.i, dd);

  _mm512_storeu_pd(pa + 2 * k, _mm512_add_pd(a1, b1));
  const __m512d ab = _mm512_sub_pd(a1, b1);
  _mm512_storeu_pd(pb + 2 * k, ComplexMulByDup(w1.r, w1.i, ab));

  _mm512_storeu_pd(pc + 2 * k, _mm512_add_pd(c1, d1));
  const __m512d cd2 = _mm512_sub_pd(c1, d1);
  _mm512_storeu_pd(pd + 2 * k, ComplexMulByDup(w1.r, w1.i, cd2));
}

void FusedRadix4DitAvx512(double* d, std::size_t n, std::size_t len,
                          const double* tw, double sign) {
  const std::size_t half = len / 2;
  const std::size_t s1 = n / len;
  const std::size_t s2 = s1 / 2;
  const std::size_t quarter = n / 4;
  const __m512d vsign512 = _mm512_set1_pd(sign);
  const __m256d vsign256 = _mm256_set1_pd(sign);
  for (std::size_t start = 0; start < n; start += 2 * len) {
    double* pa = d + 2 * start;
    double* pb = pa + len;
    double* pc = pa + 2 * len;
    double* pd = pa + 3 * len;
    std::size_t k = 0;
    for (; k + 4 <= half; k += 4) {
      FusedDitQuad(pa, pb, pc, pd, k, tw, s1, s2, quarter, vsign512);
    }
    for (; k + 2 <= half; k += 2) {
      avx2_kernel::FusedDitPair(pa, pb, pc, pd, k, tw, s1, s2, quarter,
                                vsign256);
    }
    for (; k < half; ++k) {
      scalar_kernel::FusedDitButterfly(pa, pb, pc, pd, k, tw, s1, s2, quarter,
                                       sign);
    }
  }
}

void FusedRadix4DifAvx512(double* d, std::size_t n, std::size_t len,
                          const double* tw, double sign) {
  const std::size_t half = len / 2;
  const std::size_t s1 = n / len;
  const std::size_t s2 = s1 / 2;
  const std::size_t quarter = n / 4;
  const __m512d vsign512 = _mm512_set1_pd(sign);
  const __m256d vsign256 = _mm256_set1_pd(sign);
  for (std::size_t start = 0; start < n; start += 2 * len) {
    double* pa = d + 2 * start;
    double* pb = pa + len;
    double* pc = pa + 2 * len;
    double* pd = pa + 3 * len;
    std::size_t k = 0;
    for (; k + 4 <= half; k += 4) {
      FusedDifQuad(pa, pb, pc, pd, k, tw, s1, s2, quarter, vsign512);
    }
    for (; k + 2 <= half; k += 2) {
      avx2_kernel::FusedDifPair(pa, pb, pc, pd, k, tw, s1, s2, quarter,
                                vsign256);
    }
    for (; k < half; ++k) {
      scalar_kernel::FusedDifButterfly(pa, pb, pc, pd, k, tw, s1, s2, quarter,
                                       sign);
    }
  }
}

void ComplexMultiplyAvx512(const double* a, const double* b, double* out,
                           std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m512d va = _mm512_loadu_pd(a + 2 * k);
    const __m512d vb = _mm512_loadu_pd(b + 2 * k);
    const __m512d br = _mm512_permute_pd(vb, 0x00);
    const __m512d bi = _mm512_permute_pd(vb, 0xFF);
    const __m512d swapped = _mm512_permute_pd(va, 0x55);
    _mm512_storeu_pd(out + 2 * k,
                     AddSub(_mm512_mul_pd(va, br),
                            _mm512_mul_pd(swapped, bi)));
  }
  for (; k + 2 <= n; k += 2) {
    const __m256d va = _mm256_loadu_pd(a + 2 * k);
    const __m256d vb = _mm256_loadu_pd(b + 2 * k);
    const __m256d br = _mm256_permute_pd(vb, 0x0);
    const __m256d bi = _mm256_permute_pd(vb, 0xF);
    const __m256d swapped = _mm256_permute_pd(va, 0x5);
    _mm256_storeu_pd(out + 2 * k,
                     _mm256_addsub_pd(_mm256_mul_pd(va, br),
                                      _mm256_mul_pd(swapped, bi)));
  }
  for (; k < n; ++k) scalar_kernel::ComplexMultiplyBin(a, b, out, k);
}

double DotProductAvx512(const double* a, const double* b, std::size_t n) {
  return avx2_kernel::DotProduct(a, b, n);
}

void WindowStatsAvx512(const double* prefix, const double* prefix_sq,
                       std::size_t count, std::size_t length,
                       double global_mean, double* means, double* std_devs) {
  const double dlen = static_cast<double>(length);
  const double inv_len = 1.0 / dlen;
  const __m512d vlen = _mm512_set1_pd(dlen);
  const __m512d vinv = _mm512_set1_pd(inv_len);
  const __m512d vgm = _mm512_set1_pd(global_mean);
  const __m512d vzero = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m512d diff = _mm512_sub_pd(_mm512_loadu_pd(prefix + i + length),
                                       _mm512_loadu_pd(prefix + i));
    _mm512_storeu_pd(means + i,
                     _mm512_add_pd(_mm512_div_pd(diff, vlen), vgm));
    const __m512d cm = _mm512_mul_pd(diff, vinv);
    const __m512d mean_sq =
        _mm512_mul_pd(_mm512_sub_pd(_mm512_loadu_pd(prefix_sq + i + length),
                                    _mm512_loadu_pd(prefix_sq + i)),
                      vinv);
    const __m512d var = _mm512_sub_pd(mean_sq, _mm512_mul_pd(cm, cm));
    _mm512_storeu_pd(std_devs + i,
                     _mm512_sqrt_pd(_mm512_max_pd(var, vzero)));
  }
  for (; i < count; ++i) {
    scalar_kernel::WindowStatsAt(prefix, prefix_sq, i, length, dlen, inv_len,
                                 global_mean, means, std_devs);
  }
}

}  // namespace

const Kernels& Avx512Kernels() {
  static constexpr Kernels kTable = {
      &Radix2PassAvx512,      &FusedRadix4DitAvx512, &FusedRadix4DifAvx512,
      &ComplexMultiplyAvx512, &DotProductAvx512,     &WindowStatsAvx512,
  };
  return kTable;
}

}  // namespace valmod::simd
