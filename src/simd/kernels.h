#ifndef VALMOD_SIMD_KERNELS_H_
#define VALMOD_SIMD_KERNELS_H_

// Per-ISA kernel table getters, one per translation unit. Only the targets
// CMake compiled in are declared available (VALMOD_SIMD_HAVE_* defines are
// set per-platform next to the per-file arch flags); dispatch.cc is the
// only consumer.

#include "simd/dispatch.h"

namespace valmod::simd {

const Kernels& ScalarKernels();

#if defined(VALMOD_SIMD_HAVE_AVX2)
const Kernels& Avx2Kernels();
#endif

#if defined(VALMOD_SIMD_HAVE_AVX512)
const Kernels& Avx512Kernels();
#endif

#if defined(VALMOD_SIMD_HAVE_NEON)
const Kernels& NeonKernels();
#endif

}  // namespace valmod::simd

#endif  // VALMOD_SIMD_KERNELS_H_
