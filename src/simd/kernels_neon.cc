// NEON (aarch64 ASIMD) kernel table. ASIMD is baseline on aarch64, so no
// runtime feature probe is needed beyond the architecture itself. Compiled
// with -ffp-contract=off like every kernels_*.cc; the bodies avoid vmla/
// vfma (which map to fused multiply-add) so every product and sum rounds
// exactly like the scalar oracle. The alternating subtract/add of the
// complex product flips the sign bit of the real lane with an integer xor
// and adds — bit-identical to a separate subtract by IEEE definition.

#include <arm_neon.h>

#include <cstddef>

#include "simd/kernels.h"
#include "simd/kernels_scalar_inl.h"

namespace valmod::simd {
namespace {

/// xor-mask flipping the sign of lane 0 (the real component).
inline float64x2_t NegateRealLane(float64x2_t v) {
  const uint64x2_t mask = {0x8000000000000000ULL, 0};
  return vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(v), mask));
}

/// Complex product against duplicated twiddle components: real lane
/// wr*vr - wi*vi, imaginary lane wr*vi + wi*vr.
inline float64x2_t ComplexMulByDup(float64x2_t wr, float64x2_t wi,
                                   float64x2_t v) {
  const float64x2_t swapped = vextq_f64(v, v, 1);
  return vaddq_f64(vmulq_f64(wr, v),
                   NegateRealLane(vmulq_f64(wi, swapped)));
}

void Radix2PassNeon(double* d, std::size_t n) {
  for (std::size_t i = 0; i < 2 * n; i += 4) {
    const float64x2_t a = vld1q_f64(d + i);
    const float64x2_t b = vld1q_f64(d + i + 2);
    vst1q_f64(d + i, vaddq_f64(a, b));
    vst1q_f64(d + i + 2, vsubq_f64(a, b));
  }
}

struct TwiddleDup {
  float64x2_t r;
  float64x2_t i;
};

inline TwiddleDup LoadTwiddleDup(const double* tw, std::size_t idx,
                                 double sign) {
  return {vdupq_n_f64(tw[idx]), vdupq_n_f64(sign * tw[idx + 1])};
}

/// One-complex-wide fused DIT body at index k.
inline void FusedDitOne(double* pa, double* pb, double* pc, double* pd,
                        std::size_t k, const double* tw, std::size_t s1,
                        std::size_t s2, std::size_t quarter, double sign) {
  const TwiddleDup w1 = LoadTwiddleDup(tw, 2 * k * s1, sign);
  const TwiddleDup w2 = LoadTwiddleDup(tw, 2 * k * s2, sign);
  const TwiddleDup w3 = LoadTwiddleDup(tw, 2 * (k * s2 + quarter), sign);

  const float64x2_t vb = vld1q_f64(pb + 2 * k);
  const float64x2_t t1 = ComplexMulByDup(w1.r, w1.i, vb);
  const float64x2_t va = vld1q_f64(pa + 2 * k);
  const float64x2_t a0 = vaddq_f64(va, t1);
  const float64x2_t b0 = vsubq_f64(va, t1);

  const float64x2_t vd = vld1q_f64(pd + 2 * k);
  const float64x2_t t2 = ComplexMulByDup(w1.r, w1.i, vd);
  const float64x2_t vc = vld1q_f64(pc + 2 * k);
  const float64x2_t c0 = vaddq_f64(vc, t2);
  const float64x2_t d0 = vsubq_f64(vc, t2);

  const float64x2_t t3 = ComplexMulByDup(w2.r, w2.i, c0);
  vst1q_f64(pa + 2 * k, vaddq_f64(a0, t3));
  vst1q_f64(pc + 2 * k, vsubq_f64(a0, t3));

  const float64x2_t t4 = ComplexMulByDup(w3.r, w3.i, d0);
  vst1q_f64(pb + 2 * k, vaddq_f64(b0, t4));
  vst1q_f64(pd + 2 * k, vsubq_f64(b0, t4));
}

/// One-complex-wide fused DIF body at index k.
inline void FusedDifOne(double* pa, double* pb, double* pc, double* pd,
                        std::size_t k, const double* tw, std::size_t s1,
                        std::size_t s2, std::size_t quarter, double sign) {
  const TwiddleDup w1 = LoadTwiddleDup(tw, 2 * k * s1, sign);
  const TwiddleDup w2 = LoadTwiddleDup(tw, 2 * k * s2, sign);
  const TwiddleDup w3 = LoadTwiddleDup(tw, 2 * (k * s2 + quarter), sign);

  const float64x2_t va = vld1q_f64(pa + 2 * k);
  const float64x2_t vc = vld1q_f64(pc + 2 * k);
  const float64x2_t a1 = vaddq_f64(va, vc);
  const float64x2_t cd = vsubq_f64(va, vc);
  const float64x2_t c1 = ComplexMulByDup(w2.r, w2.i, cd);

  const float64x2_t vb = vld1q_f64(pb + 2 * k);
  const float64x2_t vd = vld1q_f64(pd + 2 * k);
  const float64x2_t b1 = vaddq_f64(vb, vd);
  const float64x2_t dd = vsubq_f64(vb, vd);
  const float64x2_t d1 = ComplexMulByDup(w3.r, w3.i, dd);

  vst1q_f64(pa + 2 * k, vaddq_f64(a1, b1));
  const float64x2_t ab = vsubq_f64(a1, b1);
  vst1q_f64(pb + 2 * k, ComplexMulByDup(w1.r, w1.i, ab));

  vst1q_f64(pc + 2 * k, vaddq_f64(c1, d1));
  const float64x2_t cd2 = vsubq_f64(c1, d1);
  vst1q_f64(pd + 2 * k, ComplexMulByDup(w1.r, w1.i, cd2));
}

void FusedRadix4DitNeon(double* d, std::size_t n, std::size_t len,
                        const double* tw, double sign) {
  const std::size_t half = len / 2;
  const std::size_t s1 = n / len;
  const std::size_t s2 = s1 / 2;
  const std::size_t quarter = n / 4;
  for (std::size_t start = 0; start < n; start += 2 * len) {
    double* pa = d + 2 * start;
    double* pb = pa + len;
    double* pc = pa + 2 * len;
    double* pd = pa + 3 * len;
    for (std::size_t k = 0; k < half; ++k) {
      FusedDitOne(pa, pb, pc, pd, k, tw, s1, s2, quarter, sign);
    }
  }
}

void FusedRadix4DifNeon(double* d, std::size_t n, std::size_t len,
                        const double* tw, double sign) {
  const std::size_t half = len / 2;
  const std::size_t s1 = n / len;
  const std::size_t s2 = s1 / 2;
  const std::size_t quarter = n / 4;
  for (std::size_t start = 0; start < n; start += 2 * len) {
    double* pa = d + 2 * start;
    double* pb = pa + len;
    double* pc = pa + 2 * len;
    double* pd = pa + 3 * len;
    for (std::size_t k = 0; k < half; ++k) {
      FusedDifOne(pa, pb, pc, pd, k, tw, s1, s2, quarter, sign);
    }
  }
}

void ComplexMultiplyNeon(const double* a, const double* b, double* out,
                         std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const float64x2_t va = vld1q_f64(a + 2 * k);
    const float64x2_t vb = vld1q_f64(b + 2 * k);
    const float64x2_t br = vdupq_laneq_f64(vb, 0);
    const float64x2_t bi = vdupq_laneq_f64(vb, 1);
    const float64x2_t swapped = vextq_f64(va, va, 1);
    vst1q_f64(out + 2 * k,
              vaddq_f64(vmulq_f64(va, br),
                        NegateRealLane(vmulq_f64(swapped, bi))));
  }
}

double DotProductNeon(const double* a, const double* b, std::size_t n) {
  // Lanes of acc01 are the scalar kernel's acc0/acc1; acc23 holds acc2/acc3.
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a + t), vld1q_f64(b + t)));
    acc23 = vaddq_f64(acc23,
                      vmulq_f64(vld1q_f64(a + t + 2), vld1q_f64(b + t + 2)));
  }
  double acc0 = vgetq_lane_f64(acc01, 0);
  const double acc1 = vgetq_lane_f64(acc01, 1);
  const double acc2 = vgetq_lane_f64(acc23, 0);
  const double acc3 = vgetq_lane_f64(acc23, 1);
  for (; t < n; ++t) acc0 += a[t] * b[t];
  return (acc0 + acc1) + (acc2 + acc3);
}

void WindowStatsNeon(const double* prefix, const double* prefix_sq,
                     std::size_t count, std::size_t length, double global_mean,
                     double* means, double* std_devs) {
  const double dlen = static_cast<double>(length);
  const double inv_len = 1.0 / dlen;
  const float64x2_t vlen = vdupq_n_f64(dlen);
  const float64x2_t vinv = vdupq_n_f64(inv_len);
  const float64x2_t vgm = vdupq_n_f64(global_mean);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const float64x2_t diff = vsubq_f64(vld1q_f64(prefix + i + length),
                                       vld1q_f64(prefix + i));
    vst1q_f64(means + i, vaddq_f64(vdivq_f64(diff, vlen), vgm));
    const float64x2_t cm = vmulq_f64(diff, vinv);
    const float64x2_t mean_sq =
        vmulq_f64(vsubq_f64(vld1q_f64(prefix_sq + i + length),
                            vld1q_f64(prefix_sq + i)),
                  vinv);
    const float64x2_t var = vsubq_f64(mean_sq, vmulq_f64(cm, cm));
    vst1q_f64(std_devs + i, vsqrtq_f64(vmaxq_f64(var, vzero)));
  }
  for (; i < count; ++i) {
    scalar_kernel::WindowStatsAt(prefix, prefix_sq, i, length, dlen, inv_len,
                                 global_mean, means, std_devs);
  }
}

}  // namespace

const Kernels& NeonKernels() {
  static constexpr Kernels kTable = {
      &Radix2PassNeon,      &FusedRadix4DitNeon, &FusedRadix4DifNeon,
      &ComplexMultiplyNeon, &DotProductNeon,     &WindowStatsNeon,
  };
  return kTable;
}

}  // namespace valmod::simd
