#ifndef VALMOD_SIMD_KERNELS_AVX2_INL_H_
#define VALMOD_SIMD_KERNELS_AVX2_INL_H_

// 256-bit (AVX2) kernel bodies, shared by kernels_avx2.cc and — for the
// sub-512-bit tails — kernels_avx512.cc (GCC's -mavx512f implies AVX2, so
// both TUs can emit these). Everything here is designed for bit-identity
// with the scalar oracle in kernels_scalar_inl.h:
//
//   * no FMA intrinsics, and the TUs compile with -ffp-contract=off, so
//     every product and sum rounds exactly like the scalar code;
//   * complex products use vaddsubpd on plain products, which computes the
//     same a*c - b*d / a*d + b*c expressions lane-for-lane (the odd lane
//     sums the two cross products in the opposite order, which is exact by
//     commutativity of IEEE addition);
//   * the dot product keeps one 4-lane accumulator vector whose lane j is
//     exactly the scalar kernel's acc_j.

#include <immintrin.h>

#include <cstddef>

#include "simd/kernels_scalar_inl.h"

namespace valmod::simd::avx2_kernel {

/// Two (re, im) pairs gathered from tw + i0 and tw + i1.
inline __m256d LoadTwiddlePair(const double* tw, std::size_t i0,
                               std::size_t i1) {
  return _mm256_insertf128_pd(_mm256_castpd128_pd256(_mm_loadu_pd(tw + i0)),
                              _mm_loadu_pd(tw + i1), 1);
}

/// Complex product of two packed complexes against duplicated twiddle
/// components: even lane wr*vr - wi*vi, odd lane wr*vi + wi*vr.
inline __m256d ComplexMulByDup(__m256d wr, __m256d wi, __m256d v) {
  const __m256d swapped = _mm256_permute_pd(v, 0x5);  // (im, re) per complex
  return _mm256_addsub_pd(_mm256_mul_pd(wr, v), _mm256_mul_pd(wi, swapped));
}

struct TwiddleDup {
  __m256d r;
  __m256d i;
};

/// Loads twiddles k and k+1 at stride `s` (plus `offset`) and splits into
/// duplicated real/imag vectors, with `sign` folded into the imaginary part
/// exactly like the scalar kernel's `sign * tw[...]`.
inline TwiddleDup LoadTwiddleDup(const double* tw, std::size_t k,
                                 std::size_t s, std::size_t offset,
                                 __m256d sign) {
  const __m256d w = LoadTwiddlePair(tw, 2 * (k * s + offset),
                                    2 * ((k + 1) * s + offset));
  return {_mm256_permute_pd(w, 0x0),
          _mm256_mul_pd(_mm256_permute_pd(w, 0xF), sign)};
}

inline void Radix2Pass(double* d, std::size_t n) {
  const std::size_t total = 2 * n;
  std::size_t i = 0;
  for (; i + 8 <= total; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(d + i);
    const __m256d v1 = _mm256_loadu_pd(d + i + 4);
    const __m256d a = _mm256_permute2f128_pd(v0, v1, 0x20);
    const __m256d b = _mm256_permute2f128_pd(v0, v1, 0x31);
    const __m256d s = _mm256_add_pd(a, b);
    const __m256d t = _mm256_sub_pd(a, b);
    _mm256_storeu_pd(d + i, _mm256_permute2f128_pd(s, t, 0x20));
    _mm256_storeu_pd(d + i + 4, _mm256_permute2f128_pd(s, t, 0x31));
  }
  for (; i < total; i += 4) scalar_kernel::Radix2Butterfly(d, i);
}

/// The 2-complex-wide fused DIT inner body at index k.
inline void FusedDitPair(double* pa, double* pb, double* pc, double* pd,
                         std::size_t k, const double* tw, std::size_t s1,
                         std::size_t s2, std::size_t quarter, __m256d sign) {
  const TwiddleDup w1 = LoadTwiddleDup(tw, k, s1, 0, sign);
  const TwiddleDup w2 = LoadTwiddleDup(tw, k, s2, 0, sign);
  const TwiddleDup w3 = LoadTwiddleDup(tw, k, s2, quarter, sign);

  const __m256d vb = _mm256_loadu_pd(pb + 2 * k);
  const __m256d t1 = ComplexMulByDup(w1.r, w1.i, vb);
  const __m256d va = _mm256_loadu_pd(pa + 2 * k);
  const __m256d a0 = _mm256_add_pd(va, t1);
  const __m256d b0 = _mm256_sub_pd(va, t1);

  const __m256d vd = _mm256_loadu_pd(pd + 2 * k);
  const __m256d t2 = ComplexMulByDup(w1.r, w1.i, vd);
  const __m256d vc = _mm256_loadu_pd(pc + 2 * k);
  const __m256d c0 = _mm256_add_pd(vc, t2);
  const __m256d d0 = _mm256_sub_pd(vc, t2);

  const __m256d t3 = ComplexMulByDup(w2.r, w2.i, c0);
  _mm256_storeu_pd(pa + 2 * k, _mm256_add_pd(a0, t3));
  _mm256_storeu_pd(pc + 2 * k, _mm256_sub_pd(a0, t3));

  const __m256d t4 = ComplexMulByDup(w3.r, w3.i, d0);
  _mm256_storeu_pd(pb + 2 * k, _mm256_add_pd(b0, t4));
  _mm256_storeu_pd(pd + 2 * k, _mm256_sub_pd(b0, t4));
}

/// The 2-complex-wide fused DIF inner body at index k.
inline void FusedDifPair(double* pa, double* pb, double* pc, double* pd,
                         std::size_t k, const double* tw, std::size_t s1,
                         std::size_t s2, std::size_t quarter, __m256d sign) {
  const TwiddleDup w1 = LoadTwiddleDup(tw, k, s1, 0, sign);
  const TwiddleDup w2 = LoadTwiddleDup(tw, k, s2, 0, sign);
  const TwiddleDup w3 = LoadTwiddleDup(tw, k, s2, quarter, sign);

  const __m256d va = _mm256_loadu_pd(pa + 2 * k);
  const __m256d vc = _mm256_loadu_pd(pc + 2 * k);
  const __m256d a1 = _mm256_add_pd(va, vc);
  const __m256d cd = _mm256_sub_pd(va, vc);
  const __m256d c1 = ComplexMulByDup(w2.r, w2.i, cd);

  const __m256d vb = _mm256_loadu_pd(pb + 2 * k);
  const __m256d vd = _mm256_loadu_pd(pd + 2 * k);
  const __m256d b1 = _mm256_add_pd(vb, vd);
  const __m256d dd = _mm256_sub_pd(vb, vd);
  const __m256d d1 = ComplexMulByDup(w3.r, w3.i, dd);

  _mm256_storeu_pd(pa + 2 * k, _mm256_add_pd(a1, b1));
  const __m256d ab = _mm256_sub_pd(a1, b1);
  _mm256_storeu_pd(pb + 2 * k, ComplexMulByDup(w1.r, w1.i, ab));

  _mm256_storeu_pd(pc + 2 * k, _mm256_add_pd(c1, d1));
  const __m256d cd2 = _mm256_sub_pd(c1, d1);
  _mm256_storeu_pd(pd + 2 * k, ComplexMulByDup(w1.r, w1.i, cd2));
}

inline void FusedRadix4Dit(double* d, std::size_t n, std::size_t len,
                           const double* tw, double sign) {
  const std::size_t half = len / 2;
  const std::size_t s1 = n / len;
  const std::size_t s2 = s1 / 2;
  const std::size_t quarter = n / 4;
  const __m256d vsign = _mm256_set1_pd(sign);
  for (std::size_t start = 0; start < n; start += 2 * len) {
    double* pa = d + 2 * start;
    double* pb = pa + len;
    double* pc = pa + 2 * len;
    double* pd = pa + 3 * len;
    std::size_t k = 0;
    for (; k + 2 <= half; k += 2) {
      FusedDitPair(pa, pb, pc, pd, k, tw, s1, s2, quarter, vsign);
    }
    for (; k < half; ++k) {
      scalar_kernel::FusedDitButterfly(pa, pb, pc, pd, k, tw, s1, s2, quarter,
                                       sign);
    }
  }
}

inline void FusedRadix4Dif(double* d, std::size_t n, std::size_t len,
                           const double* tw, double sign) {
  const std::size_t half = len / 2;
  const std::size_t s1 = n / len;
  const std::size_t s2 = s1 / 2;
  const std::size_t quarter = n / 4;
  const __m256d vsign = _mm256_set1_pd(sign);
  for (std::size_t start = 0; start < n; start += 2 * len) {
    double* pa = d + 2 * start;
    double* pb = pa + len;
    double* pc = pa + 2 * len;
    double* pd = pa + 3 * len;
    std::size_t k = 0;
    for (; k + 2 <= half; k += 2) {
      FusedDifPair(pa, pb, pc, pd, k, tw, s1, s2, quarter, vsign);
    }
    for (; k < half; ++k) {
      scalar_kernel::FusedDifButterfly(pa, pb, pc, pd, k, tw, s1, s2, quarter,
                                       sign);
    }
  }
}

inline void ComplexMultiply(const double* a, const double* b, double* out,
                            std::size_t n) {
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m256d va = _mm256_loadu_pd(a + 2 * k);
    const __m256d vb = _mm256_loadu_pd(b + 2 * k);
    const __m256d br = _mm256_permute_pd(vb, 0x0);
    const __m256d bi = _mm256_permute_pd(vb, 0xF);
    const __m256d swapped = _mm256_permute_pd(va, 0x5);
    _mm256_storeu_pd(out + 2 * k,
                     _mm256_addsub_pd(_mm256_mul_pd(va, br),
                                      _mm256_mul_pd(swapped, bi)));
  }
  for (; k < n; ++k) scalar_kernel::ComplexMultiplyBin(a, b, out, k);
}

inline double DotProduct(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(_mm256_loadu_pd(a + t),
                                      _mm256_loadu_pd(b + t)));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double acc0 = lanes[0];
  for (; t < n; ++t) acc0 += a[t] * b[t];
  return (acc0 + lanes[1]) + (lanes[2] + lanes[3]);
}

inline void WindowStats(const double* prefix, const double* prefix_sq,
                        std::size_t count, std::size_t length,
                        double global_mean, double* means, double* std_devs) {
  const double dlen = static_cast<double>(length);
  const double inv_len = 1.0 / dlen;
  const __m256d vlen = _mm256_set1_pd(dlen);
  const __m256d vinv = _mm256_set1_pd(inv_len);
  const __m256d vgm = _mm256_set1_pd(global_mean);
  const __m256d vzero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(prefix + i + length),
                                       _mm256_loadu_pd(prefix + i));
    _mm256_storeu_pd(means + i,
                     _mm256_add_pd(_mm256_div_pd(diff, vlen), vgm));
    const __m256d cm = _mm256_mul_pd(diff, vinv);
    const __m256d mean_sq =
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(prefix_sq + i + length),
                                    _mm256_loadu_pd(prefix_sq + i)),
                      vinv);
    const __m256d var = _mm256_sub_pd(mean_sq, _mm256_mul_pd(cm, cm));
    _mm256_storeu_pd(std_devs + i,
                     _mm256_sqrt_pd(_mm256_max_pd(var, vzero)));
  }
  for (; i < count; ++i) {
    scalar_kernel::WindowStatsAt(prefix, prefix_sq, i, length, dlen, inv_len,
                                 global_mean, means, std_devs);
  }
}

}  // namespace valmod::simd::avx2_kernel

#endif  // VALMOD_SIMD_KERNELS_AVX2_INL_H_
