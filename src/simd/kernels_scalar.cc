// Scalar kernel table: the bit-exactness oracle every vector target must
// match. The loop bodies live in kernels_scalar_inl.h (shared with the
// vector TUs, which use them for remainder lanes); this file only supplies
// the whole-array drivers. Compiled with -ffp-contract=off like every
// kernels_*.cc so no a*b+c ever contracts into an FMA.

#include <cstddef>

#include "simd/kernels.h"
#include "simd/kernels_scalar_inl.h"

namespace valmod::simd {
namespace {

void Radix2PassScalar(double* d, std::size_t n) {
  for (std::size_t i = 0; i < 2 * n; i += 4) {
    scalar_kernel::Radix2Butterfly(d, i);
  }
}

void FusedRadix4DitScalar(double* d, std::size_t n, std::size_t len,
                          const double* tw, double sign) {
  const std::size_t half = len / 2;
  const std::size_t s1 = n / len;
  const std::size_t s2 = s1 / 2;
  const std::size_t quarter = n / 4;
  for (std::size_t start = 0; start < n; start += 2 * len) {
    double* pa = d + 2 * start;
    double* pb = pa + len;
    double* pc = pa + 2 * len;
    double* pd = pa + 3 * len;
    for (std::size_t k = 0; k < half; ++k) {
      scalar_kernel::FusedDitButterfly(pa, pb, pc, pd, k, tw, s1, s2, quarter,
                                       sign);
    }
  }
}

void FusedRadix4DifScalar(double* d, std::size_t n, std::size_t len,
                          const double* tw, double sign) {
  const std::size_t half = len / 2;
  const std::size_t s1 = n / len;
  const std::size_t s2 = s1 / 2;
  const std::size_t quarter = n / 4;
  for (std::size_t start = 0; start < n; start += 2 * len) {
    double* pa = d + 2 * start;
    double* pb = pa + len;
    double* pc = pa + 2 * len;
    double* pd = pa + 3 * len;
    for (std::size_t k = 0; k < half; ++k) {
      scalar_kernel::FusedDifButterfly(pa, pb, pc, pd, k, tw, s1, s2, quarter,
                                       sign);
    }
  }
}

void ComplexMultiplyScalar(const double* a, const double* b, double* out,
                           std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    scalar_kernel::ComplexMultiplyBin(a, b, out, k);
  }
}

double DotProductScalar(const double* a, const double* b, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    acc0 += a[t] * b[t];
    acc1 += a[t + 1] * b[t + 1];
    acc2 += a[t + 2] * b[t + 2];
    acc3 += a[t + 3] * b[t + 3];
  }
  for (; t < n; ++t) acc0 += a[t] * b[t];
  return (acc0 + acc1) + (acc2 + acc3);
}

void WindowStatsScalar(const double* prefix, const double* prefix_sq,
                       std::size_t count, std::size_t length,
                       double global_mean, double* means, double* std_devs) {
  const double dlen = static_cast<double>(length);
  const double inv_len = 1.0 / dlen;
  for (std::size_t i = 0; i < count; ++i) {
    scalar_kernel::WindowStatsAt(prefix, prefix_sq, i, length, dlen, inv_len,
                                 global_mean, means, std_devs);
  }
}

}  // namespace

const Kernels& ScalarKernels() {
  static constexpr Kernels kTable = {
      &Radix2PassScalar,      &FusedRadix4DitScalar, &FusedRadix4DifScalar,
      &ComplexMultiplyScalar, &DotProductScalar,     &WindowStatsScalar,
  };
  return kTable;
}

}  // namespace valmod::simd
