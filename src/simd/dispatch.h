#ifndef VALMOD_SIMD_DISPATCH_H_
#define VALMOD_SIMD_DISPATCH_H_

// Runtime SIMD dispatch for the MASS hot kernels.
//
// The engine's dense numeric sweeps — FFT butterflies, spectrum products,
// direct sliding dots, and the moving mean/std sweep — are implemented once
// per instruction set in per-ISA translation units (kernels_scalar.cc,
// kernels_avx2.cc, kernels_avx512.cc, kernels_neon.cc), each compiled with
// per-file arch flags so the rest of the binary stays generic-arch. The
// best target the CPU supports is detected once at startup (cpuid on x86,
// baseline ASIMD on aarch64) and resolved to a table of function pointers;
// every hot loop reads the table through one atomic pointer load.
//
// Every vector kernel is written to be BIT-IDENTICAL to the scalar oracle:
// no FMA contraction, the same per-element operation order, and the exact
// four-accumulator reduction pattern for dot products on every width. This
// keeps golden results byte-stable across `VALMOD_SIMD` targets, so
// switching targets never needs a results-version bump.
//
// Override order (strongest last): cpuid auto-detection, then the
// `VALMOD_SIMD=scalar|avx2|avx512|neon` environment variable (read at first
// use; invalid or unsupported values warn once and fall back to
// auto-detection), then an explicit SetTarget() call (the `--simd` flag in
// valmod_cli / valmod_server, and tests).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace valmod::simd {

enum class Target {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// The hot-kernel table. One instance per compiled-in target; all entries
/// are always non-null.
struct Kernels {
  /// Span-2 butterfly pass (unit twiddles) over n complex values stored as
  /// 2*n interleaved doubles. Requires n even.
  void (*radix2_pass)(double* d, std::size_t n);

  /// Fused radix-2^2 decimation-in-time pass: spans `len` and `2*len` of an
  /// n-point transform over interleaved doubles, twiddle table `tw`
  /// (interleaved re/im, n/2 entries), sign = +1 forward / -1 inverse.
  void (*fused_radix4_dit)(double* d, std::size_t n, std::size_t len,
                           const double* tw, double sign);

  /// Mirror decimation-in-frequency pass (twiddles applied after the
  /// butterfly). Same contract as fused_radix4_dit.
  void (*fused_radix4_dif)(double* d, std::size_t n, std::size_t len,
                           const double* tw, double sign);

  /// Elementwise complex product out[k] = a[k] * b[k] over n bins of
  /// interleaved (re, im) doubles. `out` may alias `a` or `b`. Matches the
  /// libstdc++ std::complex<double> finite-math product bit-for-bit:
  /// re = ar*br - ai*bi, im = ar*bi + ai*br.
  void (*complex_multiply)(const double* a, const double* b, double* out,
                           std::size_t n);

  /// Dot product with the engine's canonical four-accumulator reduction:
  /// lane j accumulates elements j, j+4, j+8, ...; the tail goes into lane
  /// 0; the final sum is (acc0 + acc1) + (acc2 + acc3). Every target
  /// preserves this exact grouping so results are bit-identical.
  double (*dot_product)(const double* a, const double* b, std::size_t n);

  /// Moving mean/std sweep over `count` windows of `length` >= 2 samples,
  /// from prefix sums: means[i] = (prefix[i+length] - prefix[i]) / length
  /// + global_mean; std_devs[i] = sqrt(max(mean_sq - cm*cm, 0)) with the
  /// variance terms scaled by 1.0/length (multiplication, matching
  /// stats::MovingStats::Variance exactly).
  void (*window_stats)(const double* prefix, const double* prefix_sq,
                       std::size_t count, std::size_t length,
                       double global_mean, double* means, double* std_devs);
};

/// Name for a target: "scalar", "avx2", "avx512", "neon".
const char* TargetName(Target target);

/// Parses a target name (the values accepted by VALMOD_SIMD and --simd).
Result<Target> ParseTarget(std::string_view name);

/// True when the target's kernels were compiled into this binary.
bool TargetCompiled(Target target);

/// True when the target is compiled in AND the running CPU supports it.
bool TargetSupported(Target target);

/// All supported targets, best-first (e.g. {avx512, avx2, scalar}).
std::vector<Target> SupportedTargets();

/// The active kernel table. First call resolves the startup target
/// (auto-detect, then the VALMOD_SIMD override); later calls are one atomic
/// load. Safe to call concurrently.
const Kernels& ActiveKernels();

/// The target ActiveKernels() currently resolves to.
Target ActiveTarget();

/// Forces the dispatch target (--simd flag, tests). Fails with
/// InvalidArgument if the target is not compiled in or not supported by
/// this CPU. Thread-safe; takes effect for subsequent ActiveKernels() calls.
Status SetTarget(Target target);

/// Human-readable list of detected CPU features ("avx2 fma avx512f ...").
std::string CpuFeatureString();

// ---------------------------------------------------------------------------
// Dispatch telemetry: kernel invocations per (target, kernel) pair.
//
// Counting every kernel call individually would put an atomic increment
// inside loops that currently run at memory bandwidth, so the convention is
// batched accounting at the *sweep* level: each hot-path call site issues
// one NoteKernelCalls per dispatched sweep (a whole butterfly schedule, a
// whole spectrum product, a whole row of direct dots), passing how many
// kernel invocations the sweep performed. One relaxed fetch_add per sweep
// is unmeasurable; the totals still attribute work to the ISA that did it.
// ---------------------------------------------------------------------------

enum class KernelKind {
  kRadix2Pass = 0,
  kFusedRadix4Dit = 1,
  kFusedRadix4Dif = 2,
  kComplexMultiply = 3,
  kDotProduct = 4,
  kWindowStats = 5,
};

inline constexpr int kNumTargets = 4;
inline constexpr int kNumKernelKinds = 6;

/// Metric-label spelling: "radix2_pass", "complex_multiply", ...
const char* KernelKindName(KernelKind kind);

/// Adds `calls` invocations of `kind` to the active target's counter.
/// Relaxed atomics; safe from any thread.
void NoteKernelCalls(KernelKind kind, std::uint64_t calls);

/// Point-in-time copy of every (target, kind) counter, indexed
/// [static_cast<int>(Target)][static_cast<int>(KernelKind)].
struct KernelCounters {
  std::uint64_t calls[kNumTargets][kNumKernelKinds] = {};
};
KernelCounters KernelCountersSnapshot();

}  // namespace valmod::simd

#endif  // VALMOD_SIMD_DISPATCH_H_
