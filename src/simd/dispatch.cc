#include "simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "simd/kernels.h"

namespace valmod::simd {
namespace {

#if defined(__x86_64__) || defined(_M_X64)
constexpr bool kIsX86 = true;
#else
constexpr bool kIsX86 = false;
#endif

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports folds in the OSXSAVE / XCR0 state check, so a
  // kernel that disabled AVX-512 state saving reports unsupported here.
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

const Kernels* KernelsFor(Target target) {
  switch (target) {
    case Target::kScalar:
      return &ScalarKernels();
    case Target::kAvx2:
#if defined(VALMOD_SIMD_HAVE_AVX2)
      return &Avx2Kernels();
#else
      return nullptr;
#endif
    case Target::kAvx512:
#if defined(VALMOD_SIMD_HAVE_AVX512)
      return &Avx512Kernels();
#else
      return nullptr;
#endif
    case Target::kNeon:
#if defined(VALMOD_SIMD_HAVE_NEON)
      return &NeonKernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

struct Dispatch {
  std::atomic<const Kernels*> kernels{nullptr};
  std::atomic<Target> target{Target::kScalar};
};

Dispatch& State() {
  static Dispatch* dispatch = new Dispatch();
  return *dispatch;
}

Target DetectBestTarget() {
  if (TargetSupported(Target::kAvx512)) return Target::kAvx512;
  if (TargetSupported(Target::kAvx2)) return Target::kAvx2;
  if (TargetSupported(Target::kNeon)) return Target::kNeon;
  return Target::kScalar;
}

/// Resolves the startup target: auto-detection, overridden by VALMOD_SIMD
/// when it names a usable target. An unknown or unsupported value warns
/// once on stderr and keeps the auto-detected choice — a bad ops-side env
/// var must not crash (or silently slow down) a serving binary with SIGILL.
Target ResolveStartupTarget() {
  Target target = DetectBestTarget();
  const char* env = std::getenv("VALMOD_SIMD");
  if (env != nullptr && env[0] != '\0') {
    Result<Target> parsed = ParseTarget(env);
    if (!parsed.ok()) {
      std::fprintf(stderr,
                   "valmod: ignoring unknown VALMOD_SIMD=%s "
                   "(want scalar|avx2|avx512|neon); using %s\n",
                   env, TargetName(target));
    } else if (!TargetSupported(*parsed)) {
      std::fprintf(stderr,
                   "valmod: VALMOD_SIMD=%s not supported on this "
                   "machine/build; using %s\n",
                   env, TargetName(target));
    } else {
      target = *parsed;
    }
  }
  return target;
}

const Kernels& ResolveAndStore() {
  Dispatch& state = State();
  const Target target = ResolveStartupTarget();
  const Kernels* table = KernelsFor(target);
  // Both stores may race with a concurrent first call; all racers compute
  // the same values, so last-writer-wins is benign.
  state.target.store(target, std::memory_order_relaxed);
  state.kernels.store(table, std::memory_order_release);
  return *table;
}

}  // namespace

const char* TargetName(Target target) {
  switch (target) {
    case Target::kScalar:
      return "scalar";
    case Target::kAvx2:
      return "avx2";
    case Target::kAvx512:
      return "avx512";
    case Target::kNeon:
      return "neon";
  }
  return "unknown";
}

Result<Target> ParseTarget(std::string_view name) {
  if (name == "scalar") return Target::kScalar;
  if (name == "avx2") return Target::kAvx2;
  if (name == "avx512") return Target::kAvx512;
  if (name == "neon") return Target::kNeon;
  return Status::InvalidArgument(
      "unknown SIMD target '" + std::string(name) +
      "' (want scalar|avx2|avx512|neon)");
}

bool TargetCompiled(Target target) { return KernelsFor(target) != nullptr; }

bool TargetSupported(Target target) {
  if (!TargetCompiled(target)) return false;
  switch (target) {
    case Target::kScalar:
      return true;
    case Target::kAvx2:
      return CpuHasAvx2();
    case Target::kAvx512:
      return CpuHasAvx512();
    case Target::kNeon:
      return !kIsX86;  // compiled in only on aarch64, where ASIMD is baseline
  }
  return false;
}

std::vector<Target> SupportedTargets() {
  std::vector<Target> targets;
  for (Target t : {Target::kAvx512, Target::kAvx2, Target::kNeon,
                   Target::kScalar}) {
    if (TargetSupported(t)) targets.push_back(t);
  }
  return targets;
}

const Kernels& ActiveKernels() {
  const Kernels* table = State().kernels.load(std::memory_order_acquire);
  if (table != nullptr) return *table;
  return ResolveAndStore();
}

Target ActiveTarget() {
  ActiveKernels();  // force startup resolution
  return State().target.load(std::memory_order_relaxed);
}

Status SetTarget(Target target) {
  if (!TargetCompiled(target)) {
    return Status::InvalidArgument(std::string("SIMD target '") +
                                   TargetName(target) +
                                   "' is not compiled into this binary");
  }
  if (!TargetSupported(target)) {
    return Status::InvalidArgument(std::string("SIMD target '") +
                                   TargetName(target) +
                                   "' is not supported by this CPU");
  }
  Dispatch& state = State();
  state.target.store(target, std::memory_order_relaxed);
  state.kernels.store(KernelsFor(target), std::memory_order_release);
  return Status::Ok();
}

namespace {

std::atomic<std::uint64_t> g_kernel_calls[kNumTargets][kNumKernelKinds];

}  // namespace

const char* KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kRadix2Pass:
      return "radix2_pass";
    case KernelKind::kFusedRadix4Dit:
      return "fused_radix4_dit";
    case KernelKind::kFusedRadix4Dif:
      return "fused_radix4_dif";
    case KernelKind::kComplexMultiply:
      return "complex_multiply";
    case KernelKind::kDotProduct:
      return "dot_product";
    case KernelKind::kWindowStats:
      return "window_stats";
  }
  return "unknown";
}

void NoteKernelCalls(KernelKind kind, std::uint64_t calls) {
  if (calls == 0) return;
  // Reads the stored target directly (no ActiveTarget() round trip): the
  // caller just dispatched through the table, so resolution has happened.
  const int target =
      static_cast<int>(State().target.load(std::memory_order_relaxed));
  g_kernel_calls[target][static_cast<int>(kind)].fetch_add(
      calls, std::memory_order_relaxed);
}

KernelCounters KernelCountersSnapshot() {
  KernelCounters out;
  for (int t = 0; t < kNumTargets; ++t) {
    for (int k = 0; k < kNumKernelKinds; ++k) {
      out.calls[t][k] = g_kernel_calls[t][k].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::string CpuFeatureString() {
  std::string features;
  const auto append = [&features](const char* name) {
    if (!features.empty()) features += ' ';
    features += name;
  };
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("sse4.2")) append("sse4.2");
  if (__builtin_cpu_supports("avx")) append("avx");
  if (__builtin_cpu_supports("avx2")) append("avx2");
  if (__builtin_cpu_supports("fma")) append("fma");
  if (__builtin_cpu_supports("avx512f")) append("avx512f");
  if (__builtin_cpu_supports("avx512dq")) append("avx512dq");
  if (__builtin_cpu_supports("avx512bw")) append("avx512bw");
  if (__builtin_cpu_supports("avx512vl")) append("avx512vl");
#elif defined(__aarch64__)
  append("asimd");
#endif
  if (features.empty()) features = "generic";
  return features;
}

}  // namespace valmod::simd
