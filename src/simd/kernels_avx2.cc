// AVX2 kernel table. Compiled with -mavx2 -ffp-contract=off; only ever
// called after cpuid confirms AVX2. Bodies live in kernels_avx2_inl.h
// (shared with the AVX-512 TU for its 256-bit tails).

#include <cstddef>

#include "simd/kernels.h"
#include "simd/kernels_avx2_inl.h"

namespace valmod::simd {
namespace {

void Radix2PassAvx2(double* d, std::size_t n) { avx2_kernel::Radix2Pass(d, n); }

void FusedRadix4DitAvx2(double* d, std::size_t n, std::size_t len,
                        const double* tw, double sign) {
  avx2_kernel::FusedRadix4Dit(d, n, len, tw, sign);
}

void FusedRadix4DifAvx2(double* d, std::size_t n, std::size_t len,
                        const double* tw, double sign) {
  avx2_kernel::FusedRadix4Dif(d, n, len, tw, sign);
}

void ComplexMultiplyAvx2(const double* a, const double* b, double* out,
                         std::size_t n) {
  avx2_kernel::ComplexMultiply(a, b, out, n);
}

double DotProductAvx2(const double* a, const double* b, std::size_t n) {
  return avx2_kernel::DotProduct(a, b, n);
}

void WindowStatsAvx2(const double* prefix, const double* prefix_sq,
                     std::size_t count, std::size_t length, double global_mean,
                     double* means, double* std_devs) {
  avx2_kernel::WindowStats(prefix, prefix_sq, count, length, global_mean,
                           means, std_devs);
}

}  // namespace

const Kernels& Avx2Kernels() {
  static constexpr Kernels kTable = {
      &Radix2PassAvx2,      &FusedRadix4DitAvx2, &FusedRadix4DifAvx2,
      &ComplexMultiplyAvx2, &DotProductAvx2,     &WindowStatsAvx2,
  };
  return kTable;
}

}  // namespace valmod::simd
