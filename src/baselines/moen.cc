#include "baselines/moen.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mass/engine.h"
#include "mass/mass.h"
#include "mp/matrix_profile.h"
#include "mp/motif.h"
#include "series/znorm.h"
#include "stats/moving_stats.h"

namespace valmod::baselines {

namespace {

using mp::kInfinity;

/// Early-abandoning z-normalized distance: accumulates the squared
/// difference of the two normalized windows and gives up as soon as it
/// exceeds `bsf`. Returns +infinity on abandon.
double EarlyAbandonDistance(std::span<const double> centered, double mean_a,
                            double inv_std_a, double mean_b, double inv_std_b,
                            std::size_t a, std::size_t b, std::size_t length,
                            double bsf) {
  const double bsf_sq = bsf * bsf;
  double acc = 0.0;
  for (std::size_t t = 0; t < length; ++t) {
    const double za = (centered[a + t] - mean_a) * inv_std_a;
    const double zb = (centered[b + t] - mean_b) * inv_std_b;
    const double diff = za - zb;
    acc += diff * diff;
    if (acc > bsf_sq) return kInfinity;
  }
  return std::sqrt(acc);
}

struct BestPair {
  double distance = kInfinity;
  int64_t a = -1;
  int64_t b = -1;

  void Offer(double d, std::size_t i, std::size_t j) {
    if (d < distance) {
      distance = d;
      a = static_cast<int64_t>(std::min(i, j));
      b = static_cast<int64_t>(std::max(i, j));
    }
  }
};

}  // namespace

Result<std::vector<core::LengthMotifs>> RunMoen(
    const series::DataSeries& series, const MoenOptions& options) {
  if (options.min_length < 2 || options.min_length > options.max_length) {
    return Status::InvalidArgument("need 2 <= min_length <= max_length");
  }
  if (options.max_length + 1 > series.size()) {
    return Status::InvalidArgument("max_length leaves fewer than 2 windows");
  }
  if (options.num_references == 0) {
    return Status::InvalidArgument("num_references must be >= 1");
  }

  const stats::MovingStats& stats = series.stats();
  const auto centered = series.centered();
  const double const_threshold = stats.constant_std_threshold();

  // One engine across the whole length sweep: every length computes
  // `num_references` row profiles, and the cached series spectrum serves
  // them all.
  mass::MassEngine engine(series);

  std::vector<core::LengthMotifs> per_length;
  BestPair previous;  // motif of the previous length, seeds the next bsf

  for (std::size_t length = options.min_length; length <= options.max_length;
       ++length) {
    if (options.deadline.Expired()) {
      return Status::DeadlineExceeded("MOEN timed out at length " +
                                      std::to_string(length));
    }
    const std::size_t count = series.NumSubsequences(length);
    const std::size_t exclusion =
        mp::ExclusionZoneFor(length, options.exclusion_fraction);
    if (count <= exclusion) {
      per_length.push_back(core::LengthMotifs{length, {}});
      continue;
    }

    std::vector<double> means(count), stds(count);
    for (std::size_t i = 0; i < count; ++i) {
      means[i] = stats.CenteredMean(i, length);
      stds[i] = stats.StdDev(i, length);
    }

    BestPair best;
    // Seed: the previous motif re-measured at this length (cross-length
    // carry-over; exact because it is a real pair distance).
    if (previous.a >= 0 &&
        static_cast<std::size_t>(previous.b) + length <= series.size() &&
        static_cast<std::size_t>(previous.b - previous.a) >= exclusion) {
      VALMOD_ASSIGN_OR_RETURN(
          double d, series::SubsequenceDistance(
                        series, static_cast<std::size_t>(previous.a),
                        static_cast<std::size_t>(previous.b), length));
      best.Offer(d, static_cast<std::size_t>(previous.a),
                 static_cast<std::size_t>(previous.b));
    }

    // Reference distance profiles, evenly spread across the series.
    const std::size_t refs = std::min(options.num_references, count);
    std::vector<std::vector<double>> ref_profiles;
    ref_profiles.reserve(refs);
    for (std::size_t r = 0; r < refs; ++r) {
      const std::size_t ref_offset = r * (count - 1) / std::max<std::size_t>(
                                                           1, refs - 1);
      VALMOD_ASSIGN_OR_RETURN(mass::RowProfile profile,
                              engine.ComputeRowProfile(ref_offset, length));
      ref_profiles.push_back(std::move(profile.distances));
    }

    // Order subsequences by distance to the first reference; for sorted
    // values the pointwise gap D[i+g] - D[i] is non-decreasing in g, so the
    // scan over rank gaps can stop once the smallest gap reaches the bsf.
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), 0);
    const std::vector<double>& d0 = ref_profiles[0];
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      if (d0[x] != d0[y]) return d0[x] < d0[y];
      return x < y;
    });

    for (std::size_t gap = 1; gap < count; ++gap) {
      double min_gap_lb = kInfinity;
      for (std::size_t r = 0; r + gap < count; ++r) {
        const std::size_t i = order[r];
        const std::size_t j = order[r + gap];
        const double gap_lb = std::abs(d0[i] - d0[j]);
        min_gap_lb = std::min(min_gap_lb, gap_lb);
        if (gap_lb >= best.distance) continue;
        const std::size_t lo = std::min(i, j);
        const std::size_t hi = std::max(i, j);
        if (hi - lo < exclusion) continue;

        // Tighten with the remaining references before the exact pass.
        double lb = gap_lb;
        for (std::size_t q = 1; q < ref_profiles.size() && lb < best.distance;
             ++q) {
          lb = std::max(lb,
                        std::abs(ref_profiles[q][i] - ref_profiles[q][j]));
        }
        if (lb >= best.distance) continue;

        const bool const_i = stds[i] <= const_threshold;
        const bool const_j = stds[j] <= const_threshold;
        double d;
        if (const_i || const_j) {
          d = (const_i && const_j) ? 0.0
                                   : std::sqrt(static_cast<double>(length));
        } else {
          d = EarlyAbandonDistance(centered, means[i], 1.0 / stds[i],
                                   means[j], 1.0 / stds[j], i, j, length,
                                   best.distance);
        }
        best.Offer(d, i, j);
      }
      if (min_gap_lb >= best.distance) break;
      if ((gap & 63) == 0 && options.deadline.Expired()) {
        return Status::DeadlineExceeded("MOEN timed out at length " +
                                        std::to_string(length));
      }
    }

    core::LengthMotifs result;
    result.length = length;
    if (best.a >= 0) {
      mp::MotifPair pair;
      pair.offset_a = best.a;
      pair.offset_b = best.b;
      pair.length = length;
      pair.distance = best.distance;
      pair.normalized_distance =
          series::LengthNormalizedDistance(best.distance, length);
      result.motifs.push_back(pair);
    }
    per_length.push_back(std::move(result));
    previous = best;
  }
  return per_length;
}

}  // namespace valmod::baselines
