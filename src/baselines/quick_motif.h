#ifndef VALMOD_BASELINES_QUICK_MOTIF_H_
#define VALMOD_BASELINES_QUICK_MOTIF_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "core/valmod.h"
#include "mp/motif.h"
#include "series/data_series.h"

namespace valmod::baselines {

/// Options for the QuickMotif baseline.
struct QuickMotifOptions {
  /// PAA dimensions per subsequence summary.
  std::size_t paa_dimensions = 8;
  /// Subsequences per MBR block.
  std::size_t block_size = 64;
  double exclusion_fraction = 0.5;
  Deadline deadline;
};

/// QuickMotif ([3] in the text, Li et al. ICDE'15): exact fixed-length best
/// motif pair via spatial pruning over PAA summaries.
///
/// Faithful-in-structure reimplementation (DESIGN.md §3.8): z-normalized
/// subsequences are summarized with PAA, ordered along a Morton (z-order)
/// curve — substituting the original's Hilbert curve, same locality purpose —
/// and grouped into MBR blocks. Block pairs are visited in ascending MBR
/// lower-bound order; within a pair, candidates are checked with the PAA
/// point lower bound and then an early-abandoning exact distance. All bounds
/// are admissible, so the result is exact.
Result<mp::MotifPair> RunQuickMotif(const series::DataSeries& series,
                                    std::size_t length,
                                    const QuickMotifOptions& options = {});

/// QuickMotif adapted to a length range (one independent run per length),
/// the form the paper benchmarks in Figure 3.
struct QuickMotifRangeOptions {
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  QuickMotifOptions per_length;
  Deadline deadline;
};
Result<std::vector<core::LengthMotifs>> RunQuickMotifRange(
    const series::DataSeries& series, const QuickMotifRangeOptions& options);

}  // namespace valmod::baselines

#endif  // VALMOD_BASELINES_QUICK_MOTIF_H_
