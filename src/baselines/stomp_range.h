#ifndef VALMOD_BASELINES_STOMP_RANGE_H_
#define VALMOD_BASELINES_STOMP_RANGE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "core/valmod.h"
#include "mp/motif.h"
#include "series/data_series.h"

namespace valmod::baselines {

/// Options for the fixed-length state of the art adapted to a length range.
struct StompRangeOptions {
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  std::size_t k = 1;
  double exclusion_fraction = 0.5;
  int num_threads = 1;
  mp::MotifSelection selection = mp::MotifSelection::kNonOverlapping;
  Deadline deadline;
};

/// The comparison baseline of the paper's Figure 3: STOMP ([1, 2] in the
/// text) run once per length in [min_length, max_length], extracting top-k
/// motif pairs from each full matrix profile. Exact but
/// O((lmax - lmin + 1) * n^2).
Result<std::vector<core::LengthMotifs>> RunStompRange(
    const series::DataSeries& series, const StompRangeOptions& options);

}  // namespace valmod::baselines

#endif  // VALMOD_BASELINES_STOMP_RANGE_H_
