#include "baselines/stomp_range.h"

#include <string>
#include <utility>

#include "common/status.h"
#include "mp/stomp.h"

namespace valmod::baselines {

Result<std::vector<core::LengthMotifs>> RunStompRange(
    const series::DataSeries& series, const StompRangeOptions& options) {
  if (options.min_length < 2 || options.min_length > options.max_length) {
    return Status::InvalidArgument("need 2 <= min_length <= max_length");
  }
  if (options.max_length + 1 > series.size()) {
    return Status::InvalidArgument("max_length leaves fewer than 2 windows");
  }
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");

  std::vector<core::LengthMotifs> per_length;
  per_length.reserve(options.max_length - options.min_length + 1);
  for (std::size_t length = options.min_length; length <= options.max_length;
       ++length) {
    if (options.deadline.Expired()) {
      return Status::DeadlineExceeded("STOMP-range timed out at length " +
                                      std::to_string(length));
    }
    mp::ProfileOptions profile_options;
    profile_options.exclusion_fraction = options.exclusion_fraction;
    profile_options.num_threads = options.num_threads;
    profile_options.deadline = options.deadline;
    VALMOD_ASSIGN_OR_RETURN(mp::MatrixProfile profile,
                            mp::ComputeStomp(series, length, profile_options));
    VALMOD_ASSIGN_OR_RETURN(
        std::vector<mp::MotifPair> motifs,
        mp::ExtractTopKMotifs(profile, options.k, options.selection));
    per_length.push_back(core::LengthMotifs{length, std::move(motifs)});
  }
  return per_length;
}

}  // namespace valmod::baselines
