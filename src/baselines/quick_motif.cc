#include "baselines/quick_motif.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mp/matrix_profile.h"
#include "series/znorm.h"
#include "stats/moving_stats.h"

namespace valmod::baselines {

namespace {

using mp::kInfinity;

/// PAA summary of one z-normalized subsequence plus the per-segment sample
/// counts shared by all summaries of a run.
struct PaaTable {
  std::size_t dims = 0;
  std::vector<double> segment_lengths;   // samples per PAA segment
  std::vector<double> values;            // count x dims, row-major
  std::vector<char> is_const;            // constant windows: all-zero PAA

  std::span<const double> Row(std::size_t i) const {
    return {&values[i * dims], dims};
  }
};

/// Builds PAA summaries for every window via prefix sums: segment mean of
/// the z-normalized window = (segment mean - window mean) / window std.
PaaTable BuildPaa(const series::DataSeries& series, std::size_t length,
                  std::size_t dims) {
  const stats::MovingStats& stats = series.stats();
  const auto centered = series.centered();
  const std::size_t count = series.NumSubsequences(length);
  const double const_threshold = stats.constant_std_threshold();

  PaaTable table;
  table.dims = dims;
  table.values.assign(count * dims, 0.0);
  table.is_const.assign(count, 0);

  // Segment boundaries: as even as possible.
  std::vector<std::size_t> seg_start(dims + 1);
  for (std::size_t s = 0; s <= dims; ++s) {
    seg_start[s] = s * length / dims;
  }
  table.segment_lengths.resize(dims);
  for (std::size_t s = 0; s < dims; ++s) {
    table.segment_lengths[s] =
        static_cast<double>(seg_start[s + 1] - seg_start[s]);
  }

  // Prefix sums over the centered values for O(1) segment sums.
  std::vector<double> prefix(series.size() + 1, 0.0);
  for (std::size_t i = 0; i < series.size(); ++i) {
    prefix[i + 1] = prefix[i] + centered[i];
  }

  for (std::size_t i = 0; i < count; ++i) {
    const double std_i = stats.StdDev(i, length);
    if (std_i <= const_threshold) {
      table.is_const[i] = 1;
      continue;  // all-zero PAA matches the all-zero z-normalization
    }
    const double mean_i = stats.CenteredMean(i, length);
    const double inv_std = 1.0 / std_i;
    for (std::size_t s = 0; s < dims; ++s) {
      if (table.segment_lengths[s] == 0.0) continue;
      const double seg_sum =
          prefix[i + seg_start[s + 1]] - prefix[i + seg_start[s]];
      const double seg_mean = seg_sum / table.segment_lengths[s];
      table.values[i * dims + s] = (seg_mean - mean_i) * inv_std;
    }
  }
  return table;
}

/// Admissible PAA lower bound between two summarized windows:
/// d^2 >= sum_s seg_len[s] * (paa_a[s] - paa_b[s])^2 (Cauchy-Schwarz per
/// segment). Squared form to avoid sqrt in the hot path.
double PaaLowerBoundSquared(const PaaTable& table, std::size_t a,
                            std::size_t b) {
  const double* pa = &table.values[a * table.dims];
  const double* pb = &table.values[b * table.dims];
  double acc = 0.0;
  for (std::size_t s = 0; s < table.dims; ++s) {
    const double diff = pa[s] - pb[s];
    acc += table.segment_lengths[s] * diff * diff;
  }
  return acc;
}

/// Morton (z-order) key from quantized PAA coordinates; orders the windows
/// so that spatial neighbors land in the same block (substitute for the
/// original's Hilbert curve).
uint64_t MortonKey(std::span<const double> paa) {
  // Quantize each dimension to 8 bits around a fixed z-score range.
  constexpr double kLo = -4.0, kHi = 4.0;
  constexpr unsigned kBits = 8;
  std::vector<uint32_t> q(paa.size());
  for (std::size_t d = 0; d < paa.size(); ++d) {
    const double clamped = std::clamp(paa[d], kLo, kHi);
    q[d] = static_cast<uint32_t>((clamped - kLo) / (kHi - kLo) * 255.0);
  }
  uint64_t key = 0;
  int out_bit = 63;
  for (int bit = kBits - 1; bit >= 0 && out_bit >= 0; --bit) {
    for (std::size_t d = 0; d < paa.size() && out_bit >= 0; ++d) {
      key |= static_cast<uint64_t>((q[d] >> bit) & 1u)
             << static_cast<unsigned>(out_bit);
      --out_bit;
    }
  }
  return key;
}

/// A block of consecutive (in Morton order) windows with its MBR.
struct Block {
  std::size_t begin = 0, end = 0;        // range into the order array
  std::vector<double> lo, hi;             // per-dimension bounds
};

/// Squared min distance between two MBRs under the segment-weighted metric.
double BlockLowerBoundSquared(const PaaTable& table, const Block& x,
                              const Block& y) {
  double acc = 0.0;
  for (std::size_t s = 0; s < table.dims; ++s) {
    double gap = 0.0;
    if (x.hi[s] < y.lo[s]) {
      gap = y.lo[s] - x.hi[s];
    } else if (y.hi[s] < x.lo[s]) {
      gap = x.lo[s] - y.hi[s];
    }
    acc += table.segment_lengths[s] * gap * gap;
  }
  return acc;
}

double EarlyAbandonDistance(std::span<const double> centered, double mean_a,
                            double inv_std_a, double mean_b, double inv_std_b,
                            std::size_t a, std::size_t b, std::size_t length,
                            double bsf) {
  const double bsf_sq = bsf * bsf;
  double acc = 0.0;
  for (std::size_t t = 0; t < length; ++t) {
    const double za = (centered[a + t] - mean_a) * inv_std_a;
    const double zb = (centered[b + t] - mean_b) * inv_std_b;
    const double diff = za - zb;
    acc += diff * diff;
    if (acc > bsf_sq) return kInfinity;
  }
  return std::sqrt(acc);
}

}  // namespace

Result<mp::MotifPair> RunQuickMotif(const series::DataSeries& series,
                                    std::size_t length,
                                    const QuickMotifOptions& options) {
  const std::size_t count = series.NumSubsequences(length);
  const std::size_t exclusion =
      mp::ExclusionZoneFor(length, options.exclusion_fraction);
  if (count <= exclusion) {
    return Status::InvalidArgument(
        "no non-trivial pairs at length " + std::to_string(length));
  }
  if (options.paa_dimensions == 0 || options.paa_dimensions > length) {
    return Status::InvalidArgument("paa_dimensions must be in [1, length]");
  }
  if (options.block_size == 0) {
    return Status::InvalidArgument("block_size must be >= 1");
  }

  const stats::MovingStats& stats = series.stats();
  const auto centered = series.centered();
  const double const_threshold = stats.constant_std_threshold();

  const PaaTable table = BuildPaa(series, length, options.paa_dimensions);

  std::vector<double> means(count), stds(count);
  for (std::size_t i = 0; i < count; ++i) {
    means[i] = stats.CenteredMean(i, length);
    stds[i] = stats.StdDev(i, length);
  }

  auto exact = [&](std::size_t i, std::size_t j, double bsf) {
    const bool const_i = stds[i] <= const_threshold;
    const bool const_j = stds[j] <= const_threshold;
    if (const_i || const_j) {
      return (const_i && const_j) ? 0.0
                                  : std::sqrt(static_cast<double>(length));
    }
    return EarlyAbandonDistance(centered, means[i], 1.0 / stds[i], means[j],
                                1.0 / stds[j], i, j, length, bsf);
  };

  // Morton ordering and blocking.
  std::vector<uint64_t> keys(count);
  for (std::size_t i = 0; i < count; ++i) keys[i] = MortonKey(table.Row(i));
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });

  std::vector<Block> blocks;
  for (std::size_t begin = 0; begin < count; begin += options.block_size) {
    Block block;
    block.begin = begin;
    block.end = std::min(count, begin + options.block_size);
    block.lo.assign(table.dims, kInfinity);
    block.hi.assign(table.dims, -kInfinity);
    for (std::size_t r = block.begin; r < block.end; ++r) {
      const auto paa = table.Row(order[r]);
      for (std::size_t s = 0; s < table.dims; ++s) {
        block.lo[s] = std::min(block.lo[s], paa[s]);
        block.hi[s] = std::max(block.hi[s], paa[s]);
      }
    }
    blocks.push_back(std::move(block));
  }

  // Seed the best-so-far with Morton-adjacent pairs (spatial neighbors are
  // likely near-best) so block pruning starts effective.
  mp::MotifPair best;
  best.length = length;
  auto offer = [&](std::size_t i, std::size_t j, double d) {
    if (d < best.distance) {
      best.distance = d;
      best.offset_a = static_cast<int64_t>(std::min(i, j));
      best.offset_b = static_cast<int64_t>(std::max(i, j));
    }
  };
  for (std::size_t r = 0; r + 1 < count; ++r) {
    // One non-trivial Morton neighbor per rank is enough for seeding.
    for (std::size_t g = 1; r + g < count; ++g) {
      const std::size_t i = order[r];
      const std::size_t j = order[r + g];
      const std::size_t gap = i > j ? i - j : j - i;
      if (gap < exclusion) continue;
      offer(i, j, exact(i, j, best.distance));
      break;
    }
  }

  // All block pairs in ascending MBR lower-bound order; refine until the
  // bound catches up with the best-so-far.
  struct BlockPair {
    double lb_sq;
    std::size_t x, y;
  };
  std::vector<BlockPair> pairs;
  pairs.reserve(blocks.size() * (blocks.size() + 1) / 2);
  for (std::size_t x = 0; x < blocks.size(); ++x) {
    for (std::size_t y = x; y < blocks.size(); ++y) {
      const double lb_sq =
          x == y ? 0.0 : BlockLowerBoundSquared(table, blocks[x], blocks[y]);
      if (lb_sq < best.distance * best.distance) {
        pairs.push_back(BlockPair{lb_sq, x, y});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const BlockPair& a, const BlockPair& b) {
              return a.lb_sq < b.lb_sq;
            });

  std::size_t visited = 0;
  for (const BlockPair& bp : pairs) {
    if (bp.lb_sq >= best.distance * best.distance) break;
    if ((++visited & 63) == 0 && options.deadline.Expired()) {
      return Status::DeadlineExceeded("QuickMotif timed out");
    }
    const Block& bx = blocks[bp.x];
    const Block& by = blocks[bp.y];
    for (std::size_t rx = bx.begin; rx < bx.end; ++rx) {
      const std::size_t ry_begin = bp.x == bp.y ? rx + 1 : by.begin;
      for (std::size_t ry = ry_begin; ry < by.end; ++ry) {
        const std::size_t i = order[rx];
        const std::size_t j = order[ry];
        const std::size_t gap = i > j ? i - j : j - i;
        if (gap < exclusion) continue;
        if (PaaLowerBoundSquared(table, i, j) >=
            best.distance * best.distance) {
          continue;
        }
        offer(i, j, exact(i, j, best.distance));
      }
    }
  }

  if (best.offset_a < 0) {
    return Status::NotFound("no eligible motif pair at length " +
                            std::to_string(length));
  }
  best.normalized_distance =
      series::LengthNormalizedDistance(best.distance, length);
  return best;
}

Result<std::vector<core::LengthMotifs>> RunQuickMotifRange(
    const series::DataSeries& series, const QuickMotifRangeOptions& options) {
  if (options.min_length < 2 || options.min_length > options.max_length) {
    return Status::InvalidArgument("need 2 <= min_length <= max_length");
  }
  std::vector<core::LengthMotifs> per_length;
  for (std::size_t length = options.min_length; length <= options.max_length;
       ++length) {
    if (options.deadline.Expired()) {
      return Status::DeadlineExceeded("QuickMotif-range timed out at length " +
                                      std::to_string(length));
    }
    QuickMotifOptions per = options.per_length;
    per.deadline = options.deadline;
    core::LengthMotifs entry;
    entry.length = length;
    Result<mp::MotifPair> pair = RunQuickMotif(series, length, per);
    if (pair.ok()) {
      entry.motifs.push_back(*pair);
    } else if (pair.status().code() != StatusCode::kNotFound &&
               pair.status().code() != StatusCode::kInvalidArgument) {
      return pair.status();
    }
    per_length.push_back(std::move(entry));
  }
  return per_length;
}

}  // namespace valmod::baselines
