#ifndef VALMOD_BASELINES_MOEN_H_
#define VALMOD_BASELINES_MOEN_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "core/valmod.h"
#include "series/data_series.h"

namespace valmod::baselines {

/// Options for the MOEN baseline.
struct MoenOptions {
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  double exclusion_fraction = 0.5;
  /// Reference subsequences used for triangle-inequality pruning per length.
  std::size_t num_references = 6;
  Deadline deadline;
};

/// MOEN ([5] in the text, Mueen ICDM'13 "Enumeration of Time Series Motifs
/// of All Lengths"): the exact *best* motif pair for every length of the
/// range (MOEN's natural output is k = 1).
///
/// Faithful-in-structure reimplementation (DESIGN.md §3.8): per length, an
/// MK-style search — reference distance profiles via MASS, candidate pairs
/// enumerated in ascending order of a triangle-inequality lower bound, exact
/// distances with early abandoning — with the best-so-far seeded by
/// re-evaluating the previous length's motif at the new length, which plays
/// the role of MOEN's cross-length bound reuse.
Result<std::vector<core::LengthMotifs>> RunMoen(
    const series::DataSeries& series, const MoenOptions& options);

}  // namespace valmod::baselines

#endif  // VALMOD_BASELINES_MOEN_H_
