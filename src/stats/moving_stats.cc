#include "stats/moving_stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "simd/dispatch.h"

namespace valmod::stats {

Result<MovingStats> MovingStats::Create(std::span<const double> data) {
  if (data.empty()) {
    return Status::InvalidArgument("MovingStats requires a non-empty series");
  }
  // Neumaier-compensated global mean: the shift that conditions everything
  // downstream, so compute it carefully. (Non-finite values poison the sum
  // but CreateImpl validates every element before the mean is used.)
  double sum = 0.0, comp = 0.0;
  for (double x : data) {
    const double t = sum + x;
    if (std::abs(sum) >= std::abs(x)) {
      comp += (sum - t) + x;
    } else {
      comp += (x - t) + sum;
    }
    sum = t;
  }
  return CreateImpl(data, (sum + comp) / static_cast<double>(data.size()));
}

Result<MovingStats> MovingStats::CreateWithCenter(std::span<const double> data,
                                                  double center) {
  if (data.empty()) {
    return Status::InvalidArgument("MovingStats requires a non-empty series");
  }
  return CreateImpl(data, center);
}

Result<MovingStats> MovingStats::CreateImpl(std::span<const double> data,
                                            double center) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!std::isfinite(data[i])) {
      return Status::InvalidArgument("non-finite value at index " +
                                     std::to_string(i));
    }
  }

  MovingStats stats;
  stats.n_ = data.size();
  stats.global_mean_ = center;

  stats.centered_.resize(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    stats.centered_[i] = data[i] - stats.global_mean_;
  }

  stats.prefix_.resize(data.size() + 1, 0.0);
  stats.prefix_sq_.resize(data.size() + 1, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double c = stats.centered_[i];
    stats.prefix_[i + 1] = stats.prefix_[i] + c;
    stats.prefix_sq_[i + 1] = stats.prefix_sq_[i] + c * c;
  }

  const double global_variance = stats.Variance(0, stats.n_);
  stats.constant_variance_threshold_ =
      kConstantVarianceEpsilon * std::max(1.0, global_variance);
  stats.constant_std_threshold_ =
      std::sqrt(stats.constant_variance_threshold_);
  return stats;
}

double MovingStats::Mean(std::size_t offset, std::size_t length) const {
  assert(length >= 1 && offset + length <= n_);
  const double centered_mean =
      (prefix_[offset + length] - prefix_[offset]) /
      static_cast<double>(length);
  return centered_mean + global_mean_;
}

double MovingStats::CenteredMean(std::size_t offset,
                                 std::size_t length) const {
  assert(length >= 1 && offset + length <= n_);
  return (prefix_[offset + length] - prefix_[offset]) /
         static_cast<double>(length);
}

double MovingStats::Variance(std::size_t offset, std::size_t length) const {
  assert(length >= 1 && offset + length <= n_);
  if (length == 1) return 0.0;  // exact; avoids sqrt-amplified rounding
  const double inv_len = 1.0 / static_cast<double>(length);
  const double mean = (prefix_[offset + length] - prefix_[offset]) * inv_len;
  const double mean_sq =
      (prefix_sq_[offset + length] - prefix_sq_[offset]) * inv_len;
  const double var = mean_sq - mean * mean;
  return var > 0.0 ? var : 0.0;
}

double MovingStats::StdDev(std::size_t offset, std::size_t length) const {
  return std::sqrt(Variance(offset, length));
}

Status MovingStats::WindowStats(std::size_t length, std::vector<double>* means,
                                std::vector<double>* std_devs) const {
  if (length == 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  if (length > n_) {
    return Status::OutOfRange("window length " + std::to_string(length) +
                              " exceeds series length " + std::to_string(n_));
  }
  const std::size_t count = n_ - length + 1;
  means->resize(count);
  std_devs->resize(count);
  if (length == 1) {
    // Variance(i, 1) is exactly 0 (see Variance's early return); the
    // dispatched sweep kernel assumes length >= 2.
    for (std::size_t i = 0; i < count; ++i) (*means)[i] = Mean(i, length);
    std::fill(std_devs->begin(), std_devs->end(), 0.0);
    return Status::Ok();
  }
  // One dense sweep over the prefix arrays, runtime-dispatched to the best
  // SIMD target; bit-identical to the per-window Mean/StdDev loop.
  simd::ActiveKernels().window_stats(prefix_.data(), prefix_sq_.data(), count,
                                     length, global_mean_, means->data(),
                                     std_devs->data());
  simd::NoteKernelCalls(simd::KernelKind::kWindowStats, 1);
  return Status::Ok();
}

Status MovingStats::CenteredWindowStats(std::size_t length,
                                        std::vector<double>* means,
                                        std::vector<double>* std_devs) const {
  VALMOD_RETURN_IF_ERROR(WindowStats(length, means, std_devs));
  for (double& m : *means) m -= global_mean_;
  return Status::Ok();
}

}  // namespace valmod::stats
