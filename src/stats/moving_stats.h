#ifndef VALMOD_STATS_MOVING_STATS_H_
#define VALMOD_STATS_MOVING_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace valmod::stats {

/// Base variance threshold below which a window is treated as constant; the
/// effective threshold scales with the global variance of the series (see
/// MovingStats::constant_variance_threshold()).
///
/// Constant (zero-variance) windows cannot be z-normalized; the library's
/// convention (see DESIGN.md §3.1) z-normalizes them to the all-zeros vector.
inline constexpr double kConstantVarianceEpsilon = 1e-12;

/// Precomputed prefix sums giving O(1) mean / variance / standard deviation
/// of any window `(offset, length)` of a data series.
///
/// VALMOD queries window statistics for *every* subsequence at *every* length
/// in the range, so these must be both O(1) and numerically robust. To keep
/// the sum-of-squares well conditioned for series with large level offsets or
/// random-walk drift, accumulation happens on globally mean-centered values
/// (z-normalized distances are invariant under a global shift); `Mean()` adds
/// the shift back, `Variance()` needs no correction.
class MovingStats {
 public:
  /// Builds prefix sums over `data`. Fails on empty input or non-finite
  /// values.
  static Result<MovingStats> Create(std::span<const double> data);

  /// Like Create, but centers at the caller-supplied `center` instead of
  /// the computed global mean. The streaming path passes 0.0 over values
  /// that are already anchor-shifted: because the center then never moves
  /// with new appends, `centered()` is bit-stable across successive
  /// materializations of a growing window — which is what lets the MASS
  /// engine's chunk spectra carry over from one snapshot generation to the
  /// next (see MassEngine::AdoptChunkSpectraFrom). Conditioning is the
  /// caller's responsibility: the values must already be moderate around
  /// `center` (StreamingProfile's re-anchoring guarantees this).
  static Result<MovingStats> CreateWithCenter(std::span<const double> data,
                                              double center);

  /// Number of points in the underlying series.
  std::size_t size() const { return n_; }

  /// Mean of the window starting at `offset` with `length` points.
  /// Preconditions (checked with assert in debug builds only, for speed):
  /// `length >= 1`, `offset + length <= size()`.
  double Mean(std::size_t offset, std::size_t length) const;

  /// Mean of the window in the centered representation (i.e. `Mean() -
  /// global_mean()`). Kernels that combine window means with dot products of
  /// `centered()` values must use this accessor so both sides agree.
  double CenteredMean(std::size_t offset, std::size_t length) const;

  /// Population variance (divide by length) of the window, clamped at 0.
  double Variance(std::size_t offset, std::size_t length) const;

  /// Population standard deviation of the window.
  double StdDev(std::size_t offset, std::size_t length) const;

  /// True when the window is (numerically) constant; such windows
  /// z-normalize to all zeros by library convention.
  bool IsConstant(std::size_t offset, std::size_t length) const {
    return Variance(offset, length) <= constant_variance_threshold_;
  }

  /// Effective constant-window variance threshold:
  /// `kConstantVarianceEpsilon * max(1, variance of the whole series)`, so
  /// the classification is invariant under rescaling of well-scaled data.
  double constant_variance_threshold() const {
    return constant_variance_threshold_;
  }

  /// Standard-deviation form of the same threshold, for kernels that work on
  /// bulk std-dev arrays.
  double constant_std_threshold() const { return constant_std_threshold_; }

  /// Fills `means` and `std_devs` (resized to `size() - length + 1`) with the
  /// statistics of every window of `length`; the bulk interface used by
  /// STOMP/MASS inner loops. Fails if `length` is 0 or exceeds the series.
  Status WindowStats(std::size_t length, std::vector<double>* means,
                     std::vector<double>* std_devs) const;

  /// Same as WindowStats but with means in the centered representation; this
  /// is the variant the distance kernels consume.
  Status CenteredWindowStats(std::size_t length, std::vector<double>* means,
                             std::vector<double>* std_devs) const;

  /// The globally mean-centered copy of the input; shares indexing with it.
  /// Dot products of centered windows are *not* the same as dot products of
  /// raw windows — callers combining dot products with these stats must use
  /// the same representation on both sides (everything inside this library
  /// uses the centered values, see `series::DataSeries::centered()`).
  std::span<const double> centered() const { return centered_; }

  /// The global mean subtracted from the input during construction.
  double global_mean() const { return global_mean_; }

  /// Heap footprint of the stats arrays (centered copy + two prefix sums).
  std::size_t MemoryBytes() const {
    return (centered_.capacity() + prefix_.capacity() +
            prefix_sq_.capacity()) *
           sizeof(double);
  }

 private:
  MovingStats() = default;

  static Result<MovingStats> CreateImpl(std::span<const double> data,
                                        double center);

  std::size_t n_ = 0;
  double global_mean_ = 0.0;
  double constant_variance_threshold_ = kConstantVarianceEpsilon;
  double constant_std_threshold_ = 0.0;
  std::vector<double> centered_;      // data - global_mean
  std::vector<double> prefix_;        // prefix_[i] = sum of centered_[0..i)
  std::vector<double> prefix_sq_;     // prefix sums of squares
};

}  // namespace valmod::stats

#endif  // VALMOD_STATS_MOVING_STATS_H_
