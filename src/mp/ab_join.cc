#include "mp/ab_join.h"

#include <string>
#include <vector>

#include "common/status.h"
#include "series/znorm.h"
#include "stats/moving_stats.h"

namespace valmod::mp {

namespace {

/// One diagonal of the cross matrix: cells (i, j) with j - i = shift fixed,
/// where i indexes windows of a and j indexes windows of b. `shift` may be
/// negative (b starts earlier). Statistics arrive in the *centered*
/// representation of each series (the two series have independent centers;
/// correlations are shift-invariant per argument, so mixing them is sound).
void WalkJoinDiagonal(std::span<const double> ca, std::span<const double> cb,
                      std::size_t length, std::size_t count_a,
                      std::size_t count_b, long shift,
                      std::span<const double> means_a,
                      std::span<const double> stds_a,
                      const std::vector<char>& const_a,
                      std::span<const double> means_b,
                      std::span<const double> stds_b,
                      const std::vector<char>& const_b,
                      MatrixProfile* profile) {
  const std::size_t i0 = shift >= 0 ? 0 : static_cast<std::size_t>(-shift);
  const std::size_t j0 = shift >= 0 ? static_cast<std::size_t>(shift) : 0;
  if (i0 >= count_a || j0 >= count_b) return;

  double qt = series::DotProduct(ca.data() + i0, cb.data() + j0, length);
  for (std::size_t step = 0; i0 + step < count_a && j0 + step < count_b;
       ++step) {
    const std::size_t i = i0 + step;
    const std::size_t j = j0 + step;
    if (step > 0) {
      qt += ca[i + length - 1] * cb[j + length - 1] -
            ca[i - 1] * cb[j - 1];
    }
    const double d = series::PairDistanceFromDot(
        qt, means_a[i], means_b[j], stds_a[i], stds_b[j], length,
        const_a[i] != 0, const_b[j] != 0);
    if (d < profile->distances[i]) {
      profile->distances[i] = d;
      profile->indices[i] = static_cast<int64_t>(j);
    }
  }
}

}  // namespace

Result<MatrixProfile> ComputeAbJoin(const series::DataSeries& series_a,
                                    const series::DataSeries& series_b,
                                    std::size_t length,
                                    const ProfileOptions& options) {
  const std::size_t count_a = series_a.NumSubsequences(length);
  const std::size_t count_b = series_b.NumSubsequences(length);
  if (count_a == 0 || count_b == 0) {
    return Status::InvalidArgument(
        "length " + std::to_string(length) +
        " yields no subsequences in one of the series (sizes " +
        std::to_string(series_a.size()) + ", " +
        std::to_string(series_b.size()) + ")");
  }

  MatrixProfile profile;
  profile.subsequence_length = length;
  profile.exclusion_zone = 0;  // cross-series: no trivial matches
  profile.distances.assign(count_a, kInfinity);
  profile.indices.assign(count_a, -1);

  std::vector<double> means_a, stds_a, means_b, stds_b;
  VALMOD_RETURN_IF_ERROR(
      series_a.stats().CenteredWindowStats(length, &means_a, &stds_a));
  VALMOD_RETURN_IF_ERROR(
      series_b.stats().CenteredWindowStats(length, &means_b, &stds_b));

  const double threshold_a = series_a.stats().constant_std_threshold();
  const double threshold_b = series_b.stats().constant_std_threshold();
  std::vector<char> const_a(count_a), const_b(count_b);
  for (std::size_t i = 0; i < count_a; ++i) {
    const_a[i] = stds_a[i] <= threshold_a ? 1 : 0;
  }
  for (std::size_t j = 0; j < count_b; ++j) {
    const_b[j] = stds_b[j] <= threshold_b ? 1 : 0;
  }

  const auto ca = series_a.centered();
  const auto cb = series_b.centered();
  long checked = 0;
  for (long shift = -static_cast<long>(count_a) + 1;
       shift < static_cast<long>(count_b); ++shift) {
    if ((++checked & 255) == 0 && options.deadline.Expired()) {
      return Status::DeadlineExceeded("AB-join timed out");
    }
    WalkJoinDiagonal(ca, cb, length, count_a, count_b, shift, means_a,
                     stds_a, const_a, means_b, stds_b, const_b, &profile);
  }
  return profile;
}

}  // namespace valmod::mp
