#include "mp/profile_io.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace valmod::mp {

Status WriteProfileCsv(const MatrixProfile& profile,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.precision(17);
  out << "# valmod matrix profile,length=" << profile.subsequence_length
      << ",exclusion=" << profile.exclusion_zone << '\n';
  out << "distance,index\n";
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (profile.distances[i] == kInfinity) {
      out << "inf,-1\n";
    } else {
      out << profile.distances[i] << ',' << profile.indices[i] << '\n';
    }
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Result<MatrixProfile> ReadProfileCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");

  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("# valmod matrix profile", 0) != 0) {
    return Status::IoError("'" + path + "' is not a valmod profile CSV");
  }
  MatrixProfile profile;
  const auto parse_field = [&](const std::string& key) -> long long {
    const std::size_t pos = header.find(key + "=");
    if (pos == std::string::npos) return -1;
    return std::strtoll(header.c_str() + pos + key.size() + 1, nullptr, 10);
  };
  const long long length = parse_field("length");
  const long long exclusion = parse_field("exclusion");
  if (length <= 0 || exclusion < 0) {
    return Status::IoError("malformed profile header in '" + path + "'");
  }
  profile.subsequence_length = static_cast<std::size_t>(length);
  profile.exclusion_zone = static_cast<std::size_t>(exclusion);

  std::string line;
  std::getline(in, line);  // column header
  std::size_t line_number = 2;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::IoError("missing comma at line " +
                             std::to_string(line_number) + " of '" + path +
                             "'");
    }
    const std::string dist_text = line.substr(0, comma);
    if (dist_text == "inf") {
      profile.distances.push_back(kInfinity);
      profile.indices.push_back(-1);
      continue;
    }
    char* end = nullptr;
    const double distance = std::strtod(dist_text.c_str(), &end);
    if (end == dist_text.c_str()) {
      return Status::IoError("bad distance at line " +
                             std::to_string(line_number) + " of '" + path +
                             "'");
    }
    profile.distances.push_back(distance);
    profile.indices.push_back(
        std::strtoll(line.c_str() + comma + 1, nullptr, 10));
  }
  if (profile.distances.empty()) {
    return Status::IoError("no profile rows in '" + path + "'");
  }
  return profile;
}

}  // namespace valmod::mp
