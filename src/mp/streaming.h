#ifndef VALMOD_MP_STREAMING_H_
#define VALMOD_MP_STREAMING_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "mp/matrix_profile.h"

namespace valmod::mp {

/// Incrementally maintained matrix profile for an append-only series
/// (STAMPI/STOMPI-style, the streaming variant introduced alongside the
/// Matrix Profile papers the demo builds on).
///
/// Each Append(value) admits one new subsequence and costs O(m + l): the
/// new window's dot products against all existing windows derive from the
/// previous newest window's dots via the same recurrence STOMP uses along
/// diagonals, and both the new row's minimum and all affected existing rows
/// are updated. After appending the whole series the profile equals the
/// batch `ComputeStomp` result (unit-tested).
///
/// Note on normalization: the incremental statistics are anchored to the
/// value passed first (z-normalized distances are shift-invariant), so the
/// structure is intended for series without astronomically large level
/// offsets; use the batch algorithms for one-shot analysis.
class StreamingProfile {
 public:
  /// Creates an empty streaming profile for subsequences of `length`.
  /// `exclusion_fraction` as in ProfileOptions.
  static Result<StreamingProfile> Create(std::size_t length,
                                         double exclusion_fraction = 0.5);

  /// Appends one point. Fails only on non-finite input.
  Status Append(double value);

  /// Appends a batch of points.
  Status AppendAll(std::span<const double> values);

  /// Points appended so far.
  std::size_t size() const { return values_.size(); }

  /// Subsequences admitted so far (0 during warm-up).
  std::size_t NumSubsequences() const {
    return values_.size() >= length_ ? values_.size() - length_ + 1 : 0;
  }

  /// Snapshot of the current matrix profile. Rows without an eligible
  /// non-trivial match hold +infinity / -1.
  const MatrixProfile& profile() const { return profile_; }

  /// The appended values.
  std::span<const double> values() const { return values_; }

 private:
  StreamingProfile(std::size_t length, std::size_t exclusion)
      : length_(length), exclusion_(exclusion) {
    profile_.subsequence_length = length;
    profile_.exclusion_zone = exclusion;
  }

  double Mean(std::size_t offset) const;
  double Variance(std::size_t offset) const;

  std::size_t length_;
  std::size_t exclusion_;
  double anchor_ = 0.0;         // fixed shift applied to all values
  bool anchored_ = false;
  std::vector<double> values_;  // shifted by anchor_
  std::vector<double> prefix_;      // prefix sums of shifted values
  std::vector<double> prefix_sq_;   // prefix sums of squares
  std::vector<double> last_dots_;   // QT(j, previous newest window)
  MatrixProfile profile_;
};

}  // namespace valmod::mp

#endif  // VALMOD_MP_STREAMING_H_
