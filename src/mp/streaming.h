#ifndef VALMOD_MP_STREAMING_H_
#define VALMOD_MP_STREAMING_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "mp/matrix_profile.h"
#include "series/windowed_series.h"

namespace valmod::mp {

/// One motif pair derived from a maintained profile: the two window offsets
/// (window-relative; add the profile owner's window start for global stream
/// positions) and their z-normalized distance.
struct MotifEntry {
  std::size_t offset_a = 0;
  std::size_t offset_b = 0;
  double distance = 0.0;
};

/// One discord derived from a maintained profile: the window whose nearest
/// non-trivial neighbor is far away.
struct DiscordEntry {
  std::size_t offset = 0;
  std::int64_t neighbor = -1;
  double distance = 0.0;
};

/// Top-k motif pairs of a (single-length) matrix profile: every row's
/// (row, nearest neighbor) pair, deduplicated as unordered pairs, ranked by
/// ascending distance with deterministic (offset_a, offset_b) tie-breaks.
/// Used both by StreamingProfile::TopMotifs and as the batch oracle in the
/// windowed parity tests, so the two can never rank differently.
std::vector<MotifEntry> TopKMotifs(const MatrixProfile& profile,
                                   std::size_t k);

/// Top-k discords of a matrix profile: rows ranked by descending
/// nearest-neighbor distance, greedily selected so no two picked offsets
/// fall within the profile's exclusion zone of each other (the classic
/// discord de-duplication). Rows with no eligible neighbor (+inf) are
/// skipped — they carry no evidence, not an infinitely strong anomaly.
std::vector<DiscordEntry> TopKDiscords(const MatrixProfile& profile,
                                       std::size_t k);

/// Configuration for StreamingProfile.
struct StreamingOptions {
  /// As in ProfileOptions: the exclusion zone is
  /// ExclusionZoneFor(length, exclusion_fraction).
  double exclusion_fraction = 0.5;

  /// Maximum points retained (the sliding window). 0 = unbounded
  /// (append-only, the historical behavior). When bounded, must be at
  /// least 2 * length so the retained window always carries enough
  /// subsequences to have non-trivial matches.
  std::size_t max_points = 0;

  /// Enables periodic re-anchoring (see class comment). On by default;
  /// tests disable it to demonstrate the drift failure mode it prevents.
  bool reanchor = true;
};

/// Incrementally maintained matrix profile for a streaming series
/// (STAMPI/STOMPI-style, the streaming variant introduced alongside the
/// Matrix Profile papers the demo builds on), with an optional sliding
/// window bounding both memory and per-append cost.
///
/// Each Append(value) admits one new subsequence and costs O(W + l) where
/// W is the retained window size (total history when unbounded): the new
/// window's dot products against all retained windows derive from the
/// previous newest window's dots via the same recurrence STOMP uses along
/// diagonals, and both the new row's minimum and all affected existing rows
/// are updated. After appending a series the profile equals the batch
/// `ComputeStomp` result on the retained window (unit-tested, including
/// across arbitrary append/evict interleavings).
///
/// Windowed mode (`max_points > 0`): once the buffer is full, each append
/// evicts the oldest point, drops the profile row whose window left the
/// buffer, and *repairs* retained rows whose recorded nearest neighbor was
/// the evicted window by rescanning their distance row — so the maintained
/// profile is always exactly the profile of the retained window, never a
/// stale superset. Amortized memory is bounded by O(max_points).
///
/// Normalization and re-anchoring: incremental statistics are kept on
/// values shifted by an anchor (z-normalized distances are shift
/// invariant). A fixed anchor degrades on long-lived drifting streams: the
/// variance of a window is computed as mean-of-squares minus square-of-mean
/// over the shifted values, which cancels catastrophically once the window
/// mean grows far past the window standard deviation (relative error
/// ~ eps * mean^2 / variance). When `reanchor` is on, the profile watches
/// that ratio and, once the retained window's mean-square exceeds ~1e6x its
/// variance, folds the current window mean into the anchor, shifts the
/// retained values in place, rebuilds the prefix sums, and recomputes the
/// O(W) dot-product carry — keeping the conditioning ratio bounded (~1e-10
/// relative error) for any drift. Re-anchors are rate-limited to one per
/// `length` appends, so their O(W l) cost amortizes to O(W) per append —
/// the same order as the regular update. Each re-anchor bumps
/// `anchor_epoch()`, which downstream snapshot caches use to detect that
/// the shifted values changed wholesale.
class StreamingProfile {
 public:
  /// Creates an empty streaming profile for subsequences of `length`.
  static Result<StreamingProfile> Create(std::size_t length,
                                         const StreamingOptions& options);

  /// Convenience overload: unbounded, re-anchoring on.
  static Result<StreamingProfile> Create(std::size_t length,
                                         double exclusion_fraction = 0.5);

  /// Appends one point. Fails only on non-finite input.
  Status Append(double value);

  /// True batch append: validates every value up front (so a bad value at
  /// index i rejects the whole batch instead of leaving a partial append),
  /// reserves all internal arrays once, and checks the allocation fault
  /// point once per batch instead of per point.
  Status AppendAll(std::span<const double> values);

  /// Points currently retained (== total appended when unbounded).
  std::size_t size() const { return values_.size(); }

  /// Subsequences currently retained (0 during warm-up).
  std::size_t NumSubsequences() const {
    return values_.size() >= length_ ? values_.size() - length_ + 1 : 0;
  }

  std::size_t length() const { return length_; }
  std::size_t max_points() const { return values_.max_points(); }
  /// Global stream position of the first retained point == total evicted.
  std::size_t window_start() const { return values_.start_index(); }
  std::size_t total_appended() const { return values_.total_appended(); }
  /// Incremented on every re-anchor; a change means every retained shifted
  /// value (and hence any snapshot materialized from them) changed.
  std::uint64_t anchor_epoch() const { return anchor_epoch_; }

  /// Materialized snapshot of the maintained profile over the retained
  /// window. O(W): distances are copied and neighbor indices rebased to be
  /// window-relative (evicted neighbors can never appear — repair removes
  /// them as part of the eviction that invalidated them). Rows without an
  /// eligible non-trivial match hold +infinity / -1.
  MatrixProfile ProfileSnapshot() const;

  /// Top-k motifs / discords of the maintained profile, window-relative
  /// offsets. O(W + sorting of candidate rows) per call — independent of
  /// total appended history; the serving layer's result cache makes
  /// repeated reads at one generation O(1).
  std::vector<MotifEntry> TopMotifs(std::size_t k) const;
  std::vector<DiscordEntry> TopDiscords(std::size_t k) const;

  /// The retained (anchor-shifted) values, contiguous, oldest first.
  std::span<const double> values() const { return values_.values(); }

  /// Heap footprint of all maintained state.
  std::size_t MemoryBytes() const;

 private:
  StreamingProfile(std::size_t length, std::size_t exclusion,
                   const StreamingOptions& options)
      : length_(length),
        exclusion_(exclusion),
        reanchor_(options.reanchor),
        values_(options.max_points) {}

  double Mean(std::size_t offset) const;
  double Variance(std::size_t offset) const;

  /// Append core for a validated value; shared by Append and AppendAll.
  void AppendValidated(double value);
  /// Evicts the oldest point + profile row and repairs rows orphaned by it.
  void EvictOne();
  /// Recomputes the full distance row for the retained window at local
  /// offset `row` against every other retained window (its previous
  /// nearest neighbor was just evicted, so the stored minimum is stale).
  void RepairRow(std::size_t row);
  /// Folds the current window mean into the anchor if drift crossed the
  /// conditioning threshold (see class comment).
  void MaybeReanchor();

  std::size_t length_;
  std::size_t exclusion_;
  bool reanchor_ = true;
  double anchor_ = 0.0;  // fixed shift applied to all values
  bool anchored_ = false;
  std::uint64_t anchor_epoch_ = 0;
  std::size_t last_reanchor_total_ = 0;  // total_appended() at last re-anchor

  /// Retained shifted values; evicts per `max_points`.
  series::WindowedSeries values_;
  /// Prefix sums of the retained shifted values (and squares): entry i is
  /// the sum of retained values [0, i), so both always hold size() + 1
  /// entries and window sums are O(1) differences. Rebuilt (rebased to 0)
  /// on re-anchor; popped in lockstep with evictions.
  series::SlidingBuffer<double> prefix_;
  series::SlidingBuffer<double> prefix_sq_;
  /// QT(j, previous newest window) for every window retained at the last
  /// append; entry 0 corresponds to global window offset last_dots_start_.
  std::vector<double> last_dots_;
  std::size_t last_dots_start_ = 0;
  /// The maintained profile rows for retained windows: distances_[w] /
  /// neighbors_[w] describe the window at local offset w. Neighbors are
  /// stored as *global* stream offsets so eviction never needs an O(W)
  /// rebase sweep; ProfileSnapshot rebases on the way out.
  series::SlidingBuffer<double> distances_;
  series::SlidingBuffer<std::int64_t> neighbors_;
};

}  // namespace valmod::mp

#endif  // VALMOD_MP_STREAMING_H_
