#include "mp/pan_profile.h"

#include <algorithm>
#include <fstream>
#include <string>

#include "common/status.h"
#include "mp/stomp.h"
#include "series/znorm.h"

namespace valmod::mp {

Result<std::span<const double>> PanProfile::Row(std::size_t length) const {
  const auto it = std::find(lengths_.begin(), lengths_.end(), length);
  if (it == lengths_.end()) {
    return Status::NotFound("length " + std::to_string(length) +
                            " is not covered by this pan profile");
  }
  const std::size_t row = static_cast<std::size_t>(it - lengths_.begin());
  return std::span<const double>(&cells_[row * width_], width_);
}

Result<PanProfile::Cell> PanProfile::BestCell() const {
  if (cells_.empty()) {
    return Status::FailedPrecondition("pan profile is empty");
  }
  Cell best;
  for (std::size_t r = 0; r < lengths_.size(); ++r) {
    for (std::size_t i = 0; i < width_; ++i) {
      const double value = cells_[r * width_ + i];
      if (value < best.normalized_distance) {
        best.normalized_distance = value;
        best.length = lengths_[r];
        best.offset = i;
      }
    }
  }
  if (best.normalized_distance == kInfinity) {
    return Status::NotFound("no eligible match at any covered length");
  }
  return best;
}

Status PanProfile::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.precision(10);
  out << "length";
  for (std::size_t i = 0; i < width_; ++i) out << ",o" << i;
  out << '\n';
  for (std::size_t r = 0; r < lengths_.size(); ++r) {
    out << lengths_[r];
    for (std::size_t i = 0; i < width_; ++i) {
      const double value = cells_[r * width_ + i];
      out << ',';
      if (value == kInfinity) {
        out << "inf";
      } else {
        out << value;
      }
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Result<PanProfile> ComputePanProfile(const series::DataSeries& series,
                                     const PanProfileOptions& options) {
  if (options.min_length < 2 || options.min_length > options.max_length) {
    return Status::InvalidArgument("need 2 <= min_length <= max_length");
  }
  if (options.max_length + 1 > series.size()) {
    return Status::InvalidArgument("max_length leaves fewer than 2 windows");
  }
  if (options.step == 0) {
    return Status::InvalidArgument("step must be >= 1");
  }

  PanProfile pan;
  pan.width_ = series.NumSubsequences(options.min_length);
  for (std::size_t l = options.min_length; l <= options.max_length;
       l += options.step) {
    pan.lengths_.push_back(l);
  }
  pan.cells_.assign(pan.lengths_.size() * pan.width_, kInfinity);

  for (std::size_t r = 0; r < pan.lengths_.size(); ++r) {
    const std::size_t length = pan.lengths_[r];
    if (options.deadline.Expired()) {
      return Status::DeadlineExceeded("pan profile timed out at length " +
                                      std::to_string(length));
    }
    ProfileOptions profile_options;
    profile_options.exclusion_fraction = options.exclusion_fraction;
    profile_options.num_threads = options.num_threads;
    profile_options.deadline = options.deadline;
    VALMOD_ASSIGN_OR_RETURN(MatrixProfile profile,
                            ComputeStomp(series, length, profile_options));
    for (std::size_t i = 0; i < profile.size(); ++i) {
      if (profile.distances[i] == kInfinity) continue;
      pan.cells_[r * pan.width_ + i] =
          series::LengthNormalizedDistance(profile.distances[i], length);
    }
  }
  return pan;
}

}  // namespace valmod::mp
