#include "mp/motif.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <span>
#include <utility>

#include "common/status.h"
#include "series/znorm.h"

namespace valmod::mp {

std::string ToString(const MotifPair& pair) {
  return "(a=" + std::to_string(pair.offset_a) +
         ", b=" + std::to_string(pair.offset_b) +
         ", l=" + std::to_string(pair.length) +
         ", d=" + std::to_string(pair.distance) +
         ", dn=" + std::to_string(pair.normalized_distance) + ")";
}

std::vector<MotifPair> SelectFromSortedCandidates(
    std::span<const RowCandidate> candidates, std::size_t length,
    std::size_t exclusion_zone, std::size_t k, MotifSelection selection) {
  std::vector<MotifPair> motifs;
  std::set<std::pair<int64_t, int64_t>> seen_pairs;
  std::vector<int64_t> chosen_members;

  auto overlaps_chosen = [&](int64_t offset) {
    for (int64_t member : chosen_members) {
      if (std::llabs(member - offset) <
          static_cast<int64_t>(exclusion_zone)) {
        return true;
      }
    }
    return false;
  };

  for (const RowCandidate& candidate : candidates) {
    if (motifs.size() >= k) break;
    const int64_t a = std::min(candidate.row, candidate.match);
    const int64_t b = std::max(candidate.row, candidate.match);
    if (!seen_pairs.insert({a, b}).second) continue;

    if (selection == MotifSelection::kNonOverlapping &&
        (overlaps_chosen(a) || overlaps_chosen(b))) {
      continue;
    }

    MotifPair pair;
    pair.offset_a = a;
    pair.offset_b = b;
    pair.length = length;
    pair.distance = candidate.distance;
    pair.normalized_distance =
        series::LengthNormalizedDistance(candidate.distance, length);
    motifs.push_back(pair);
    if (selection == MotifSelection::kNonOverlapping) {
      chosen_members.push_back(a);
      chosen_members.push_back(b);
    }
  }
  return motifs;
}

Result<std::vector<MotifPair>> SelectTopKFromRowMinima(
    std::span<const double> distances, std::span<const int64_t> indices,
    std::size_t length, std::size_t exclusion_zone, std::size_t k,
    MotifSelection selection) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (distances.size() != indices.size()) {
    return Status::InvalidArgument("distances/indices size mismatch");
  }

  std::vector<RowCandidate> candidates;
  candidates.reserve(distances.size());
  for (std::size_t row = 0; row < distances.size(); ++row) {
    if (indices[row] < 0 || distances[row] == kInfinity) continue;
    candidates.push_back(RowCandidate{distances[row],
                                      static_cast<int64_t>(row),
                                      indices[row]});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const RowCandidate& a, const RowCandidate& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.row < b.row;
            });
  return SelectFromSortedCandidates(candidates, length, exclusion_zone, k,
                                    selection);
}

Result<std::vector<MotifPair>> ExtractTopKMotifs(const MatrixProfile& profile,
                                                 std::size_t k,
                                                 MotifSelection selection) {
  return SelectTopKFromRowMinima(profile.distances, profile.indices,
                                 profile.subsequence_length,
                                 profile.exclusion_zone, k, selection);
}

}  // namespace valmod::mp
