#ifndef VALMOD_MP_PAN_PROFILE_H_
#define VALMOD_MP_PAN_PROFILE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "mp/matrix_profile.h"
#include "series/data_series.h"

namespace valmod::mp {

/// Options for the pan matrix profile.
struct PanProfileOptions {
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  /// Lengths are sampled every `step` (1 = every length). Coarser steps
  /// trade resolution on the length axis for time, as in the published
  /// pan-profile work.
  std::size_t step = 1;
  double exclusion_fraction = 0.5;
  int num_threads = 1;
  Deadline deadline;
};

/// The pan matrix profile ("PMP"): length-normalized matrix profiles for a
/// whole range of lengths stacked into one matrix — the all-lengths
/// visualization companion to VALMOD from the same research line. Cell
/// (row r, offset i) holds `MP_{length(r)}[i] * sqrt(1 / length(r))`, so
/// values are comparable across rows; +infinity marks rows/offsets without
/// an eligible match.
class PanProfile {
 public:
  /// Lengths covered, ascending (min, min+step, ...).
  const std::vector<std::size_t>& lengths() const { return lengths_; }

  /// Normalized profile of one covered length (row of the pan matrix).
  Result<std::span<const double>> Row(std::size_t length) const;

  /// Number of offsets per row (computed at min_length; longer lengths pad
  /// their tail with +infinity so the matrix is rectangular).
  std::size_t width() const { return width_; }

  /// The globally minimal cell: the best motif of any covered length under
  /// the length-normalized distance.
  struct Cell {
    std::size_t length = 0;
    std::size_t offset = 0;
    double normalized_distance = kInfinity;
  };
  Result<Cell> BestCell() const;

  /// Writes the matrix as CSV (one row per length, header with offsets).
  Status WriteCsv(const std::string& path) const;

 private:
  friend Result<PanProfile> ComputePanProfile(const series::DataSeries&,
                                              const PanProfileOptions&);
  std::vector<std::size_t> lengths_;
  std::size_t width_ = 0;
  std::vector<double> cells_;  // lengths x width, row-major
};

/// Computes the pan matrix profile with one exact STOMP per covered length.
/// O(((lmax - lmin) / step) * n^2); `num_threads` parallelizes each STOMP.
Result<PanProfile> ComputePanProfile(const series::DataSeries& series,
                                     const PanProfileOptions& options);

}  // namespace valmod::mp

#endif  // VALMOD_MP_PAN_PROFILE_H_
