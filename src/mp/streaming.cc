#include "mp/streaming.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/fault.h"
#include "series/znorm.h"

namespace valmod::mp {

namespace {

/// Absolute variance threshold for constant-window classification in the
/// streaming setting (the batch path scales this with the global variance,
/// which is unknowable mid-stream; anchoring keeps values moderate).
constexpr double kStreamConstantVariance = 1e-12;

/// Re-anchor once the retained window's squared mean exceeds this multiple
/// of its variance: past that ratio the mean-of-squares / square-of-mean
/// cancellation starts eating into the ~1e-10 accuracy the parity suites
/// rely on (relative variance error ~ eps * ratio).
constexpr double kReanchorMeanVarianceRatio = 1e6;

}  // namespace

std::vector<MotifEntry> TopKMotifs(const MatrixProfile& profile,
                                   std::size_t k) {
  std::vector<MotifEntry> pairs;
  pairs.reserve(profile.distances.size());
  for (std::size_t i = 0; i < profile.distances.size(); ++i) {
    const double d = profile.distances[i];
    const std::int64_t neighbor = profile.indices[i];
    if (!std::isfinite(d) || neighbor < 0) continue;
    const std::size_t j = static_cast<std::size_t>(neighbor);
    MotifEntry entry;
    entry.offset_a = std::min(i, j);
    entry.offset_b = std::max(i, j);
    entry.distance = d;
    pairs.push_back(entry);
  }
  // Mutual nearest neighbors produce the same unordered pair twice (after
  // a windowed repair possibly ulps apart: the repair rescan recomputes
  // the dot directly instead of via the recurrence). Deduplicate
  // deterministically: sort by (pair, distance), keep the smaller distance.
  std::sort(pairs.begin(), pairs.end(),
            [](const MotifEntry& a, const MotifEntry& b) {
              if (a.offset_a != b.offset_a) return a.offset_a < b.offset_a;
              if (a.offset_b != b.offset_b) return a.offset_b < b.offset_b;
              return a.distance < b.distance;
            });
  pairs.erase(std::unique(pairs.begin(), pairs.end(),
                          [](const MotifEntry& a, const MotifEntry& b) {
                            return a.offset_a == b.offset_a &&
                                   a.offset_b == b.offset_b;
                          }),
              pairs.end());
  std::sort(pairs.begin(), pairs.end(),
            [](const MotifEntry& a, const MotifEntry& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.offset_a != b.offset_a) return a.offset_a < b.offset_a;
              return a.offset_b < b.offset_b;
            });
  if (pairs.size() > k) pairs.resize(k);
  return pairs;
}

std::vector<DiscordEntry> TopKDiscords(const MatrixProfile& profile,
                                       std::size_t k) {
  std::vector<DiscordEntry> candidates;
  candidates.reserve(profile.distances.size());
  for (std::size_t i = 0; i < profile.distances.size(); ++i) {
    const double d = profile.distances[i];
    if (!std::isfinite(d) || profile.indices[i] < 0) continue;
    DiscordEntry entry;
    entry.offset = i;
    entry.neighbor = profile.indices[i];
    entry.distance = d;
    candidates.push_back(entry);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const DiscordEntry& a, const DiscordEntry& b) {
              if (a.distance != b.distance) return a.distance > b.distance;
              return a.offset < b.offset;
            });
  std::vector<DiscordEntry> out;
  for (const DiscordEntry& candidate : candidates) {
    if (out.size() >= k) break;
    bool overlaps = false;
    for (const DiscordEntry& taken : out) {
      const std::size_t gap = taken.offset > candidate.offset
                                  ? taken.offset - candidate.offset
                                  : candidate.offset - taken.offset;
      if (gap < profile.exclusion_zone) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) out.push_back(candidate);
  }
  return out;
}

Result<StreamingProfile> StreamingProfile::Create(
    std::size_t length, const StreamingOptions& options) {
  if (length < 2) {
    return Status::InvalidArgument("subsequence length must be >= 2");
  }
  if (options.exclusion_fraction < 0.0 || options.exclusion_fraction > 1.0) {
    return Status::InvalidArgument("exclusion_fraction must be in [0, 1]");
  }
  if (options.max_points != 0 && options.max_points < 2 * length) {
    return Status::InvalidArgument(
        "max_points must be 0 (unbounded) or >= 2 * length (" +
        std::to_string(2 * length) + "); got " +
        std::to_string(options.max_points));
  }
  return StreamingProfile(
      length, ExclusionZoneFor(length, options.exclusion_fraction), options);
}

Result<StreamingProfile> StreamingProfile::Create(std::size_t length,
                                                  double exclusion_fraction) {
  StreamingOptions options;
  options.exclusion_fraction = exclusion_fraction;
  return Create(length, options);
}

double StreamingProfile::Mean(std::size_t offset) const {
  return (prefix_[offset + length_] - prefix_[offset]) /
         static_cast<double>(length_);
}

double StreamingProfile::Variance(std::size_t offset) const {
  const double inv_len = 1.0 / static_cast<double>(length_);
  const double mean = (prefix_[offset + length_] - prefix_[offset]) * inv_len;
  const double mean_sq =
      (prefix_sq_[offset + length_] - prefix_sq_[offset]) * inv_len;
  const double var = mean_sq - mean * mean;
  return var > 0.0 ? var : 0.0;
}

Status StreamingProfile::Append(double value) {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("non-finite value appended");
  }
  AppendValidated(value);
  return Status::Ok();
}

Status StreamingProfile::AppendAll(std::span<const double> values) {
  // Validate the whole batch up front: a bad value rejects the batch
  // atomically instead of leaving the points before it appended (the old
  // per-point loop's behavior, which forced callers to treat every batch
  // error as a possibly-partial write).
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return Status::InvalidArgument("non-finite value at index " +
                                     std::to_string(i));
    }
  }
  if (values.empty()) return Status::Ok();
  // Models the batch's array growth failing, once per batch — the per-point
  // core below never allocates unpredictably because of the reserves.
  VALMOD_RETURN_IF_ERROR(VALMOD_FAULT_POINT("streaming.append.alloc"));
  const std::size_t add = values.size();
  values_.Reserve(add);
  prefix_.Reserve(add + 1);
  prefix_sq_.Reserve(add + 1);
  distances_.Reserve(add);
  neighbors_.Reserve(add);
  for (const double value : values) AppendValidated(value);
  return Status::Ok();
}

void StreamingProfile::AppendValidated(double value) {
  if (!anchored_) {
    anchor_ = value;
    anchored_ = true;
  }
  const double shifted = value - anchor_;
  if (prefix_.size() == 0) {
    prefix_.PushBack(0.0);
    prefix_sq_.PushBack(0.0);
  }
  prefix_.PushBack(prefix_.back() + shifted);
  prefix_sq_.PushBack(prefix_sq_.back() + shifted * shifted);
  if (values_.Append(shifted) > 0) EvictOne();

  const std::size_t n = values_.size();
  if (n < length_) return;  // warm-up

  const std::size_t base = values_.start_index();
  const double* v = values_.values().data();
  const std::size_t m = n - length_;  // newest window offset (local)
  if (m == 0) {
    last_dots_.assign(1, series::DotProduct(v, v, length_));
    last_dots_start_ = base;
    distances_.PushBack(kInfinity);
    neighbors_.PushBack(-1);
    MaybeReanchor();
    return;
  }

  // Dots of the new window vs every retained window: derive from the
  // previous newest window's dots with the diagonal recurrence; only
  // QT(0, m) needs a direct O(l) product. `last_dots_` is addressed by
  // global window offset (entry 0 = last_dots_start_), so an eviction
  // between appends just shifts the lookup — the dropped entry is exactly
  // the one no retained window needs anymore.
  std::vector<double> new_dots(m + 1);
  new_dots[0] = series::DotProduct(v, v + m, length_);
  const double tail_new = v[m + length_ - 1];
  const std::size_t shift = base - last_dots_start_;
  for (std::size_t j = 1; j <= m; ++j) {
    new_dots[j] = last_dots_[j - 1 + shift] - v[j - 1] * v[m - 1] +
                  v[j + length_ - 1] * tail_new;
  }

  distances_.PushBack(kInfinity);
  neighbors_.PushBack(-1);

  const double mean_m = Mean(m);
  const double var_m = Variance(m);
  const double std_m = std::sqrt(var_m);
  const bool const_m = var_m <= kStreamConstantVariance;

  for (std::size_t j = 0; j + exclusion_ <= m; ++j) {
    const double var_j = Variance(j);
    const double d = series::PairDistanceFromDot(
        new_dots[j], Mean(j), mean_m, std::sqrt(var_j), std_m, length_,
        var_j <= kStreamConstantVariance, const_m);
    if (d < distances_[j]) {
      distances_[j] = d;
      neighbors_[j] = static_cast<std::int64_t>(base + m);
    }
    if (d < distances_[m]) {
      distances_[m] = d;
      neighbors_[m] = static_cast<std::int64_t>(base + j);
    }
  }

  last_dots_ = std::move(new_dots);
  last_dots_start_ = base;
  MaybeReanchor();
}

void StreamingProfile::EvictOne() {
  // values_ already dropped its oldest point; keep the prefix boundaries
  // and the profile rows in lockstep. Prefix entries are sums from a fixed
  // origin, so dropping the oldest boundary leaves every window difference
  // intact.
  prefix_.PopFront();
  prefix_sq_.PopFront();
  if (distances_.size() == 0) return;  // W >= 2l makes this unreachable
  distances_.PopFront();
  neighbors_.PopFront();
  // The dropped window is the one at the previous window start; any
  // retained row whose nearest neighbor it was must be repaired or the
  // profile would keep a distance to data that no longer exists.
  const std::int64_t evicted_window =
      static_cast<std::int64_t>(values_.start_index()) - 1;
  const std::size_t rows = distances_.size();
  for (std::size_t w = 0; w < rows; ++w) {
    if (neighbors_[w] == evicted_window) RepairRow(w);
  }
}

void StreamingProfile::RepairRow(std::size_t row) {
  distances_[row] = kInfinity;
  neighbors_[row] = -1;
  const double* v = values_.values().data();
  const std::int64_t base = static_cast<std::int64_t>(values_.start_index());
  const double mean_r = Mean(row);
  const double var_r = Variance(row);
  const double std_r = std::sqrt(var_r);
  const bool const_r = var_r <= kStreamConstantVariance;
  const std::size_t rows = distances_.size();
  for (std::size_t j = 0; j < rows; ++j) {
    const std::size_t gap = j > row ? j - row : row - j;
    if (gap < exclusion_) continue;
    const double var_j = Variance(j);
    const double d = series::PairDistanceFromDot(
        series::DotProduct(v + row, v + j, length_), mean_r, Mean(j), std_r,
        std::sqrt(var_j), length_, const_r,
        var_j <= kStreamConstantVariance);
    // Prefer the *youngest* window among (bit-)equal candidates: a young
    // neighbor survives ~W more evictions, so ties in repetitive data do
    // not re-orphan this row on every eviction and trigger repeated O(W l)
    // repairs.
    if (d < distances_[row] ||
        (d == distances_[row] &&
         base + static_cast<std::int64_t>(j) > neighbors_[row])) {
      distances_[row] = d;
      neighbors_[row] = base + static_cast<std::int64_t>(j);
    }
  }
}

void StreamingProfile::MaybeReanchor() {
  if (!reanchor_) return;
  const std::size_t n = values_.size();
  if (n < length_) return;
  // Rate limit: at most one re-anchor per `length` appends bounds the
  // O(W l) recompute below to O(W) amortized per append — the same order
  // as the regular update pass — even on pathological streams that keep
  // re-triggering (e.g. constant values at a large offset, whose variance
  // is exactly 0).
  if (values_.total_appended() < last_reanchor_total_ + length_) return;
  const double inv = 1.0 / static_cast<double>(n);
  const double mean = (prefix_[n] - prefix_[0]) * inv;
  const double mean_sq = (prefix_sq_[n] - prefix_sq_[0]) * inv;
  const double var = std::max(0.0, mean_sq - mean * mean);
  if (mean == 0.0 || mean * mean <= kReanchorMeanVarianceRatio * var) return;

  // Fold the window mean into the anchor. Distances already recorded are
  // untouched: they were computed while the ratio was still below the
  // threshold, and z-normalized distances are invariant under the shift.
  anchor_ += mean;
  for (double& x : values_.mutable_values()) x -= mean;
  prefix_.Clear();
  prefix_sq_.Clear();
  prefix_.Reserve(n + 1);
  prefix_sq_.Reserve(n + 1);
  prefix_.PushBack(0.0);
  prefix_sq_.PushBack(0.0);
  for (const double x : values_.values()) {
    prefix_.PushBack(prefix_.back() + x);
    prefix_sq_.PushBack(prefix_sq_.back() + x * x);
  }
  // The dot-product carry is a sum of products of shifted values, which is
  // *not* shift invariant — recompute it directly against the re-shifted
  // values.
  const std::size_t m = n - length_;
  const double* v = values_.values().data();
  last_dots_.assign(m + 1, 0.0);
  for (std::size_t w = 0; w <= m; ++w) {
    last_dots_[w] = series::DotProduct(v + w, v + m, length_);
  }
  last_dots_start_ = values_.start_index();
  ++anchor_epoch_;
  last_reanchor_total_ = values_.total_appended();
}

MatrixProfile StreamingProfile::ProfileSnapshot() const {
  MatrixProfile profile;
  profile.subsequence_length = length_;
  profile.exclusion_zone = exclusion_;
  const std::size_t rows = distances_.size();
  profile.distances.resize(rows);
  profile.indices.resize(rows);
  const std::int64_t base = static_cast<std::int64_t>(values_.start_index());
  for (std::size_t w = 0; w < rows; ++w) {
    profile.distances[w] = distances_[w];
    profile.indices[w] = neighbors_[w] < 0 ? -1 : neighbors_[w] - base;
  }
  return profile;
}

std::vector<MotifEntry> StreamingProfile::TopMotifs(std::size_t k) const {
  return TopKMotifs(ProfileSnapshot(), k);
}

std::vector<DiscordEntry> StreamingProfile::TopDiscords(std::size_t k) const {
  return TopKDiscords(ProfileSnapshot(), k);
}

std::size_t StreamingProfile::MemoryBytes() const {
  return values_.MemoryBytes() + prefix_.MemoryBytes() +
         prefix_sq_.MemoryBytes() + last_dots_.capacity() * sizeof(double) +
         distances_.MemoryBytes() +
         neighbors_.MemoryBytes();
}

}  // namespace valmod::mp
