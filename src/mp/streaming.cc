#include "mp/streaming.h"

#include <cmath>
#include <string>

#include "series/znorm.h"

namespace valmod::mp {

namespace {

/// Absolute variance threshold for constant-window classification in the
/// streaming setting (the batch path scales this with the global variance,
/// which is unknowable mid-stream; anchoring keeps values moderate).
constexpr double kStreamConstantVariance = 1e-12;

}  // namespace

Result<StreamingProfile> StreamingProfile::Create(
    std::size_t length, double exclusion_fraction) {
  if (length < 2) {
    return Status::InvalidArgument("subsequence length must be >= 2");
  }
  if (exclusion_fraction < 0.0 || exclusion_fraction > 1.0) {
    return Status::InvalidArgument("exclusion_fraction must be in [0, 1]");
  }
  return StreamingProfile(length,
                          ExclusionZoneFor(length, exclusion_fraction));
}

double StreamingProfile::Mean(std::size_t offset) const {
  return (prefix_[offset + length_] - prefix_[offset]) /
         static_cast<double>(length_);
}

double StreamingProfile::Variance(std::size_t offset) const {
  const double inv_len = 1.0 / static_cast<double>(length_);
  const double mean = (prefix_[offset + length_] - prefix_[offset]) * inv_len;
  const double mean_sq =
      (prefix_sq_[offset + length_] - prefix_sq_[offset]) * inv_len;
  const double var = mean_sq - mean * mean;
  return var > 0.0 ? var : 0.0;
}

Status StreamingProfile::Append(double value) {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("non-finite value appended");
  }
  if (!anchored_) {
    anchor_ = value;
    anchored_ = true;
  }
  const double shifted = value - anchor_;
  values_.push_back(shifted);
  prefix_.resize(values_.size() + 1);
  prefix_sq_.resize(values_.size() + 1);
  prefix_[values_.size()] = prefix_[values_.size() - 1] + shifted;
  prefix_sq_[values_.size()] =
      prefix_sq_[values_.size() - 1] + shifted * shifted;

  if (values_.size() < length_) return Status::Ok();  // warm-up

  const std::size_t m = values_.size() - length_;  // newest window offset
  if (m == 0) {
    last_dots_.assign(1, series::DotProduct(values_.data(), values_.data(),
                                            length_));
    profile_.distances.assign(1, kInfinity);
    profile_.indices.assign(1, -1);
    return Status::Ok();
  }

  // Dots of the new window vs every window: derive from the previous newest
  // window's dots with the diagonal recurrence; only QT(0, m) needs a
  // direct O(l) product.
  std::vector<double> new_dots(m + 1);
  new_dots[0] = series::DotProduct(values_.data(), values_.data() + m,
                                   length_);
  const double tail_new = values_[m + length_ - 1];
  for (std::size_t j = 1; j <= m; ++j) {
    new_dots[j] = last_dots_[j - 1] - values_[j - 1] * values_[m - 1] +
                  values_[j + length_ - 1] * tail_new;
  }

  profile_.distances.push_back(kInfinity);
  profile_.indices.push_back(-1);

  const double mean_m = Mean(m);
  const double var_m = Variance(m);
  const double std_m = std::sqrt(var_m);
  const bool const_m = var_m <= kStreamConstantVariance;

  for (std::size_t j = 0; j + exclusion_ <= m; ++j) {
    const double var_j = Variance(j);
    const double d = series::PairDistanceFromDot(
        new_dots[j], Mean(j), mean_m, std::sqrt(var_j), std_m, length_,
        var_j <= kStreamConstantVariance, const_m);
    if (d < profile_.distances[j]) {
      profile_.distances[j] = d;
      profile_.indices[j] = static_cast<int64_t>(m);
    }
    if (d < profile_.distances[m]) {
      profile_.distances[m] = d;
      profile_.indices[m] = static_cast<int64_t>(j);
    }
  }

  last_dots_ = std::move(new_dots);
  return Status::Ok();
}

Status StreamingProfile::AppendAll(std::span<const double> values) {
  for (double v : values) {
    VALMOD_RETURN_IF_ERROR(Append(v));
  }
  return Status::Ok();
}

}  // namespace valmod::mp
