#ifndef VALMOD_MP_STOMP_H_
#define VALMOD_MP_STOMP_H_

#include <cstddef>

#include "common/result.h"
#include "mp/matrix_profile.h"
#include "series/data_series.h"

namespace valmod::mp {

/// STOMP (Matrix Profile II): exact matrix profile at one length in O(n^2)
/// time and O(n) extra space via the diagonal dot-product recurrence
///
///   QT(i+1, j+1) = QT(i, j) - c[i] c[j] + c[i+l] c[j+l]
///
/// over the globally centered values `c`. With `options.num_threads > 1` the
/// diagonals are distributed round-robin across threads (balanced load, as
/// diagonal k has n - l + 1 - k cells) with per-thread profiles merged at
/// the end.
Result<MatrixProfile> ComputeStomp(const series::DataSeries& series,
                                   std::size_t length,
                                   const ProfileOptions& options = {});

}  // namespace valmod::mp

#endif  // VALMOD_MP_STOMP_H_
