#include "mp/stamp.h"

#include <string>
#include <vector>

#include "common/status.h"
#include "mass/engine.h"
#include "mass/mass.h"

namespace valmod::mp {

Result<MatrixProfile> ComputeStamp(const series::DataSeries& series,
                                   std::size_t length,
                                   const ProfileOptions& options) {
  const std::size_t count = series.NumSubsequences(length);
  if (count == 0) {
    return Status::InvalidArgument(
        "length " + std::to_string(length) + " yields no subsequences in a " +
        std::to_string(series.size()) + "-point series");
  }

  MatrixProfile profile;
  profile.subsequence_length = length;
  profile.exclusion_zone = ExclusionZoneFor(length, options.exclusion_fraction);
  profile.distances.assign(count, kInfinity);
  profile.indices.assign(count, -1);

  // One engine for the whole sweep: the series spectrum and FFT plan are
  // computed once and shared by all `count` row profiles, so each row costs
  // one query transform + one inverse instead of three full transforms.
  mass::MassEngine engine(series);
  for (std::size_t i = 0; i < count; ++i) {
    if ((i & 31) == 0 && options.deadline.Expired()) {
      return Status::DeadlineExceeded("STAMP timed out");
    }
    VALMOD_ASSIGN_OR_RETURN(mass::RowProfile row,
                            engine.ComputeRowProfile(i, length));
    mass::ApplyExclusionZone(&row.distances, i, profile.exclusion_zone);
    for (std::size_t j = 0; j < count; ++j) {
      if (row.distances[j] < profile.distances[i]) {
        profile.distances[i] = row.distances[j];
        profile.indices[i] = static_cast<int64_t>(j);
      }
    }
  }
  return profile;
}

}  // namespace valmod::mp
