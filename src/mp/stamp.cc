#include "mp/stamp.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "mass/engine.h"
#include "mass/mass.h"

namespace valmod::mp {

Result<MatrixProfile> ComputeStamp(const series::DataSeries& series,
                                   std::size_t length,
                                   const ProfileOptions& options) {
  // One engine for the whole sweep: the series spectrum and FFT plan are
  // computed once and shared by all row profiles. Callers that already
  // hold a warm engine (the serving layer's dataset snapshots) use the
  // engine overload instead and skip even that one-time cost.
  mass::MassEngine engine(series);
  return ComputeStamp(engine, length, options);
}

Result<MatrixProfile> ComputeStamp(mass::MassEngine& engine,
                                   std::size_t length,
                                   const ProfileOptions& options) {
  const trace::TraceSpan trace_span("stamp_compute");
  const series::DataSeries& series = engine.series();
  const std::size_t count = series.NumSubsequences(length);
  if (count == 0) {
    return Status::InvalidArgument(
        "length " + std::to_string(length) + " yields no subsequences in a " +
        std::to_string(series.size()) + "-point series");
  }
  if (!mass::IsValidResultsVersion(options.results_version)) {
    return Status::InvalidArgument(
        "unknown results_version " +
        std::to_string(options.results_version));
  }

  MatrixProfile profile;
  profile.subsequence_length = length;
  profile.exclusion_zone = ExclusionZoneFor(length, options.exclusion_fraction);
  profile.distances.assign(count, kInfinity);
  profile.indices.assign(count, -1);

  // Rows are pulled through the engine's batched entry point in fixed-size
  // chunks, which (a) fans each chunk across options.num_threads pool
  // workers, (b) lets adjacent rows share one pair-packed transform, and
  // (c) bounds how much work runs between deadline checks. The chunk size
  // is even so the row pairing — and therefore the numerics — never
  // depends on the thread count, only on the (fixed) row order.
  const int num_threads = std::max(1, options.num_threads);
  const std::size_t chunk =
      std::max<std::size_t>(64, 16 * static_cast<std::size_t>(num_threads));
  std::vector<std::size_t> rows;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    if (options.deadline.Expired()) {
      return Status::DeadlineExceeded("STAMP timed out");
    }
    const std::size_t end = std::min(count, begin + chunk);
    rows.resize(end - begin);
    std::iota(rows.begin(), rows.end(), begin);
    VALMOD_ASSIGN_OR_RETURN(
        std::vector<mass::RowProfile> batch,
        engine.ComputeRowProfiles(
            rows, length, num_threads,
            mass::EffectiveBackend(options.backend,
                                   options.results_version)));
    for (std::size_t b = 0; b < batch.size(); ++b) {
      const std::size_t i = begin + b;
      mass::RowProfile& row = batch[b];
      mass::ApplyExclusionZone(&row.distances, i, profile.exclusion_zone);
      for (std::size_t j = 0; j < count; ++j) {
        if (row.distances[j] < profile.distances[i]) {
          profile.distances[i] = row.distances[j];
          profile.indices[i] = static_cast<int64_t>(j);
        }
      }
    }
  }
  return profile;
}

}  // namespace valmod::mp
