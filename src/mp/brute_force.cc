#include "mp/brute_force.h"

#include <string>
#include <vector>

#include "common/status.h"
#include "series/znorm.h"

namespace valmod::mp {

Result<MatrixProfile> ComputeBruteForce(const series::DataSeries& series,
                                        std::size_t length,
                                        const ProfileOptions& options) {
  const std::size_t count = series.NumSubsequences(length);
  if (count == 0) {
    return Status::InvalidArgument(
        "length " + std::to_string(length) + " yields no subsequences in a " +
        std::to_string(series.size()) + "-point series");
  }

  MatrixProfile profile;
  profile.subsequence_length = length;
  profile.exclusion_zone = ExclusionZoneFor(length, options.exclusion_fraction);
  profile.distances.assign(count, kInfinity);
  profile.indices.assign(count, -1);

  // Pre-z-normalize every window once; distances are then plain Euclidean.
  std::vector<std::vector<double>> normalized(count);
  for (std::size_t i = 0; i < count; ++i) {
    VALMOD_ASSIGN_OR_RETURN(std::vector<double> window,
                            series.Subsequence(i, length));
    VALMOD_ASSIGN_OR_RETURN(normalized[i], series::ZNormalize(window));
  }

  for (std::size_t i = 0; i < count; ++i) {
    if ((i & 63) == 0 && options.deadline.Expired()) {
      return Status::DeadlineExceeded("brute-force profile timed out");
    }
    for (std::size_t j = i + profile.exclusion_zone; j < count; ++j) {
      double sq = 0.0;
      for (std::size_t t = 0; t < length; ++t) {
        const double diff = normalized[i][t] - normalized[j][t];
        sq += diff * diff;
      }
      const double d = std::sqrt(sq);
      if (d < profile.distances[i]) {
        profile.distances[i] = d;
        profile.indices[i] = static_cast<int64_t>(j);
      }
      if (d < profile.distances[j]) {
        profile.distances[j] = d;
        profile.indices[j] = static_cast<int64_t>(i);
      }
    }
  }
  return profile;
}

}  // namespace valmod::mp
