#ifndef VALMOD_MP_BRUTE_FORCE_H_
#define VALMOD_MP_BRUTE_FORCE_H_

#include <cstddef>

#include "common/result.h"
#include "mp/matrix_profile.h"
#include "series/data_series.h"

namespace valmod::mp {

/// Textbook O(n^2 * l) matrix profile: every pair distance is computed from
/// the z-normalization definitions with no shared state and no FFT.
///
/// This is the library's ground truth — deliberately independent of the
/// MovingStats / dot-product machinery so tests of STOMP/STAMP/VALMOD
/// validate the full numeric pipeline, not just agreeing bugs. Use only on
/// small inputs.
Result<MatrixProfile> ComputeBruteForce(const series::DataSeries& series,
                                        std::size_t length,
                                        const ProfileOptions& options = {});

}  // namespace valmod::mp

#endif  // VALMOD_MP_BRUTE_FORCE_H_
