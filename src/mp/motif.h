#ifndef VALMOD_MP_MOTIF_H_
#define VALMOD_MP_MOTIF_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "mp/matrix_profile.h"

namespace valmod::mp {

/// A motif pair: the two subsequence offsets, their z-normalized distance,
/// and the length-normalized distance `d * sqrt(1/l)` used to compare pairs
/// of different lengths (paper §2). `offset_a < offset_b` always.
struct MotifPair {
  int64_t offset_a = -1;
  int64_t offset_b = -1;
  std::size_t length = 0;
  double distance = kInfinity;
  double normalized_distance = kInfinity;

  friend bool operator==(const MotifPair&, const MotifPair&) = default;
};

/// Renders "(a=.., b=.., l=.., d=.., dn=..)" for logs and examples.
std::string ToString(const MotifPair& pair);

/// How top-k motif pairs are selected from row minima.
enum class MotifSelection {
  /// After choosing a pair, subsequences overlapping either member (within
  /// the exclusion zone) are not eligible for later pairs. This is the
  /// standard matrix-profile motif enumeration and the default.
  kNonOverlapping,
  /// The k smallest distinct row minima, deduplicated only as unordered
  /// pairs; overlapping pairs allowed.
  kAllRowMinima,
};

/// Extracts the top-k motif pairs from a matrix profile. Returns fewer than
/// k pairs when the profile runs out of eligible rows. k must be >= 1.
Result<std::vector<MotifPair>> ExtractTopKMotifs(
    const MatrixProfile& profile, std::size_t k,
    MotifSelection selection = MotifSelection::kNonOverlapping);

/// Selects top-k motif pairs directly from row-minimum arrays (the entry
/// point shared by the matrix-profile overload above and VALMOD's
/// certified-rows path, which has no MatrixProfile object).
Result<std::vector<MotifPair>> SelectTopKFromRowMinima(
    std::span<const double> distances, std::span<const int64_t> indices,
    std::size_t length, std::size_t exclusion_zone, std::size_t k,
    MotifSelection selection);

/// One eligible row minimum: `row`'s best match is `match` at `distance`.
struct RowCandidate {
  double distance = kInfinity;
  int64_t row = -1;
  int64_t match = -1;
};

/// Core selection shared by SelectTopKFromRowMinima and VALMOD's certified
/// sweep: `candidates` must be sorted by ascending distance (ties by row)
/// and contain only finite, matched rows. Deduplicates unordered pairs and,
/// for kNonOverlapping, masks the exclusion zone around chosen members.
std::vector<MotifPair> SelectFromSortedCandidates(
    std::span<const RowCandidate> candidates, std::size_t length,
    std::size_t exclusion_zone, std::size_t k, MotifSelection selection);

}  // namespace valmod::mp

#endif  // VALMOD_MP_MOTIF_H_
