#include "mp/discord.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "common/status.h"

namespace valmod::mp {

Result<std::vector<Discord>> ExtractTopKDiscords(const MatrixProfile& profile,
                                                 std::size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  std::vector<std::size_t> order(profile.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (profile.distances[a] != profile.distances[b]) {
      return profile.distances[a] > profile.distances[b];  // descending
    }
    return a < b;
  });

  std::vector<Discord> discords;
  std::vector<int64_t> chosen;
  for (std::size_t row : order) {
    if (discords.size() >= k) break;
    if (profile.indices[row] < 0 ||
        profile.distances[row] == kInfinity) {
      continue;  // no valid neighbor: undefined discord score
    }
    const int64_t offset = static_cast<int64_t>(row);
    bool overlapping = false;
    for (int64_t member : chosen) {
      if (std::llabs(member - offset) <
          static_cast<int64_t>(profile.exclusion_zone)) {
        overlapping = true;
        break;
      }
    }
    if (overlapping) continue;

    discords.push_back(Discord{offset, profile.indices[row],
                               profile.subsequence_length,
                               profile.distances[row]});
    chosen.push_back(offset);
  }
  return discords;
}

}  // namespace valmod::mp
