#ifndef VALMOD_MP_AB_JOIN_H_
#define VALMOD_MP_AB_JOIN_H_

#include <cstddef>

#include "common/result.h"
#include "mp/matrix_profile.h"
#include "series/data_series.h"

namespace valmod::mp {

/// AB-join matrix profile (Matrix Profile I, reference [1] of the paper:
/// "all pairs similarity joins"): for every subsequence of `series_a`, the
/// z-normalized distance to its nearest neighbor *in `series_b`* and that
/// neighbor's offset.
///
/// Unlike the self-join there are no trivial matches, so no exclusion zone
/// applies (`exclusion_zone` is 0 in the result). The join is directional:
/// `JoinAb(a, b)` profiles a against b; swap the arguments for the other
/// direction. O(|a| * |b|) via the diagonal dot-product recurrence.
Result<MatrixProfile> ComputeAbJoin(const series::DataSeries& series_a,
                                    const series::DataSeries& series_b,
                                    std::size_t length,
                                    const ProfileOptions& options = {});

}  // namespace valmod::mp

#endif  // VALMOD_MP_AB_JOIN_H_
