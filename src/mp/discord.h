#ifndef VALMOD_MP_DISCORD_H_
#define VALMOD_MP_DISCORD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "mp/matrix_profile.h"

namespace valmod::mp {

/// A discord: the subsequence whose nearest non-trivial neighbor is farthest
/// away — the matrix profile's anomaly primitive. Included because the
/// matrix profile substrate yields it for free and the original Matrix
/// Profile papers ([1] in the text) present motifs and discords together.
struct Discord {
  int64_t offset = -1;
  int64_t nearest_neighbor = -1;
  std::size_t length = 0;
  /// Distance to the nearest neighbor (larger = more anomalous).
  double distance = 0.0;
};

/// Top-k discords from a matrix profile, mutually separated by the profile's
/// exclusion zone. Rows with no valid neighbor (+inf) are skipped. Returns
/// fewer than k when the profile runs out of separated rows.
Result<std::vector<Discord>> ExtractTopKDiscords(const MatrixProfile& profile,
                                                 std::size_t k);

}  // namespace valmod::mp

#endif  // VALMOD_MP_DISCORD_H_
