#ifndef VALMOD_MP_PROFILE_IO_H_
#define VALMOD_MP_PROFILE_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "mp/matrix_profile.h"

namespace valmod::mp {

/// Writes a matrix profile as CSV with a metadata header row:
///
///   # valmod matrix profile,length=<l>,exclusion=<z>
///   distance,index
///   1.234,17
///   ...
///
/// +infinity distances serialize as "inf" with index -1.
Status WriteProfileCsv(const MatrixProfile& profile, const std::string& path);

/// Reads a matrix profile written by WriteProfileCsv (exact round trip up
/// to decimal formatting, which uses 17 significant digits).
Result<MatrixProfile> ReadProfileCsv(const std::string& path);

}  // namespace valmod::mp

#endif  // VALMOD_MP_PROFILE_IO_H_
