#ifndef VALMOD_MP_MATRIX_PROFILE_H_
#define VALMOD_MP_MATRIX_PROFILE_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/timer.h"
#include "mass/backend.h"

namespace valmod::mp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// The matrix profile of a series at one subsequence length: for every
/// subsequence, the z-normalized distance to its best non-trivial match and
/// that match's offset (paper Figure 1 b-c).
struct MatrixProfile {
  std::size_t subsequence_length = 0;
  std::size_t exclusion_zone = 0;
  /// distances[i] = min over non-trivial j of d(T_{i,l}, T_{j,l});
  /// +infinity when no valid match exists (e.g. everything excluded).
  std::vector<double> distances;
  /// indices[i] = argmin offset, or -1 when distances[i] is +infinity.
  std::vector<int64_t> indices;

  std::size_t size() const { return distances.size(); }
};

/// Options shared by the fixed-length profile algorithms.
struct ProfileOptions {
  /// Trivial-match exclusion zone as a fraction of the subsequence length:
  /// offsets with |i - j| < ceil(fraction * l) never match (min 1 = self).
  double exclusion_fraction = 0.5;
  /// Number of worker threads for STOMP and STAMP; <= 1 runs serially.
  int num_threads = 1;
  /// Cooperative deadline; algorithms return kDeadlineExceeded when it
  /// fires (checked at coarse granularity).
  Deadline deadline;
  /// Convolution backend for the MASS-based algorithms (STAMP routes it
  /// into MassEngine; STOMP and the brute-force path compute no
  /// convolutions and ignore it). kAuto applies the engine's cost-model
  /// crossover; forcing a backend exists for tests and benches.
  mass::ConvolutionBackend backend = mass::ConvolutionBackend::kAuto;
  /// Which automatic backend-selection policy resolves kAuto (see
  /// mass::kResultsVersion): the default (2) is the calibrated cost model;
  /// 1 pins the frozen v1 policy so outputs stay bit-identical to
  /// historical goldens. Ignored when `backend` forces a specific backend.
  int results_version = mass::kResultsVersion;
};

/// Exclusion-zone radius for a length under the given fraction (min 1, so
/// the self-match is always excluded).
inline std::size_t ExclusionZoneFor(std::size_t length, double fraction) {
  if (fraction <= 0.0) return 1;
  const double radius = std::ceil(fraction * static_cast<double>(length));
  return radius < 1.0 ? 1 : static_cast<std::size_t>(radius);
}

}  // namespace valmod::mp

#endif  // VALMOD_MP_MATRIX_PROFILE_H_
