#ifndef VALMOD_MP_STAMP_H_
#define VALMOD_MP_STAMP_H_

#include <cstddef>

#include "common/result.h"
#include "mp/matrix_profile.h"
#include "series/data_series.h"

namespace valmod::mass {
class MassEngine;
}  // namespace valmod::mass

namespace valmod::mp {

/// STAMP (Matrix Profile I): exact matrix profile at one length in
/// O(n^2 log n) — one MASS distance profile per subsequence. Slower than
/// STOMP but with an entirely independent inner loop, which makes it a
/// useful cross-check and the natural anytime variant. Rows run through the
/// batched MassEngine in chunks spread across `options.num_threads` pool
/// workers; the result is independent of the thread count.
Result<MatrixProfile> ComputeStamp(const series::DataSeries& series,
                                   std::size_t length,
                                   const ProfileOptions& options = {});

/// Engine-reusing form: identical contract and numerics, but the rows run
/// through the caller's `engine` instead of a throwaway one — the series
/// spectra and FFT plans cached there (e.g. in a serving-layer dataset
/// snapshot) are shared across calls instead of being rebuilt per request.
/// The engine's series is the input series.
Result<MatrixProfile> ComputeStamp(mass::MassEngine& engine,
                                   std::size_t length,
                                   const ProfileOptions& options = {});

}  // namespace valmod::mp

#endif  // VALMOD_MP_STAMP_H_
