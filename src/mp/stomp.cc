#include "mp/stomp.h"

#include <atomic>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "series/znorm.h"
#include "stats/moving_stats.h"

namespace valmod::mp {

namespace {

/// Per-thread working state: local best distance/index per row, merged
/// serially after the parallel sweep.
struct LocalProfile {
  std::vector<double> distances;
  std::vector<int64_t> indices;

  explicit LocalProfile(std::size_t count)
      : distances(count, kInfinity), indices(count, -1) {}

  void Update(std::size_t row, double distance, std::size_t match) {
    if (distance < distances[row]) {
      distances[row] = distance;
      indices[row] = static_cast<int64_t>(match);
    }
  }
};

/// Walks one diagonal (fixed j - i = diag), updating the local profile for
/// both endpoints of every cell.
void WalkDiagonal(std::span<const double> c, std::size_t length,
                  std::size_t count, std::size_t diag,
                  std::span<const double> means, std::span<const double> stds,
                  const std::vector<char>& is_const, LocalProfile* local) {
  // First cell of the diagonal: direct dot product.
  double qt = series::DotProduct(c.data(), c.data() + diag, length);

  for (std::size_t i = 0; i + diag < count; ++i) {
    const std::size_t j = i + diag;
    if (i > 0) {
      qt += c[i + length - 1] * c[j + length - 1] - c[i - 1] * c[j - 1];
    }
    const double d = series::PairDistanceFromDot(
        qt, means[i], means[j], stds[i], stds[j], length,
        is_const[i] != 0, is_const[j] != 0);
    local->Update(i, d, j);
    local->Update(j, d, i);
  }
}

}  // namespace

Result<MatrixProfile> ComputeStomp(const series::DataSeries& series,
                                   std::size_t length,
                                   const ProfileOptions& options) {
  const std::size_t count = series.NumSubsequences(length);
  if (count == 0) {
    return Status::InvalidArgument(
        "length " + std::to_string(length) + " yields no subsequences in a " +
        std::to_string(series.size()) + "-point series");
  }

  MatrixProfile profile;
  profile.subsequence_length = length;
  profile.exclusion_zone = ExclusionZoneFor(length, options.exclusion_fraction);
  profile.distances.assign(count, kInfinity);
  profile.indices.assign(count, -1);

  std::vector<double> means, stds;
  VALMOD_RETURN_IF_ERROR(
      series.stats().CenteredWindowStats(length, &means, &stds));
  const double const_threshold = series.stats().constant_std_threshold();
  std::vector<char> is_const(count);
  for (std::size_t i = 0; i < count; ++i) {
    is_const[i] = stds[i] <= const_threshold ? 1 : 0;
  }

  const auto c = series.centered();
  const std::size_t first_diag = profile.exclusion_zone;

  const int threads =
      options.num_threads > 1 ? options.num_threads : 1;
  if (threads == 1) {
    LocalProfile local(count);
    for (std::size_t diag = first_diag; diag < count; ++diag) {
      if ((diag & 255) == 0 && options.deadline.Expired()) {
        return Status::DeadlineExceeded("STOMP timed out");
      }
      WalkDiagonal(c, length, count, diag, means, stds, is_const, &local);
    }
    profile.distances = std::move(local.distances);
    profile.indices = std::move(local.indices);
    return profile;
  }

  // Parallel sweep on the persistent pool: round-robin diagonal assignment
  // balances work because diagonal lengths decrease linearly. Each chunk t
  // fills its own LocalProfile, so chunks are independent regardless of
  // which pool thread runs them.
  std::vector<LocalProfile> locals;
  locals.reserve(threads);
  for (int t = 0; t < threads; ++t) locals.emplace_back(count);
  std::atomic<bool> expired{false};

  ParallelFor(0, static_cast<std::size_t>(threads), threads,
              [&](std::size_t t) {
    LocalProfile& local = locals[t];
    std::size_t steps = 0;
    for (std::size_t diag = first_diag + t; diag < count;
         diag += static_cast<std::size_t>(threads)) {
      if ((++steps & 255) == 0 &&
          (expired.load(std::memory_order_relaxed) ||
           options.deadline.Expired())) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      WalkDiagonal(c, length, count, diag, means, stds, is_const, &local);
    }
  });
  if (expired.load()) {
    return Status::DeadlineExceeded("STOMP timed out");
  }

  for (const LocalProfile& local : locals) {
    for (std::size_t i = 0; i < count; ++i) {
      if (local.distances[i] < profile.distances[i]) {
        profile.distances[i] = local.distances[i];
        profile.indices[i] = local.indices[i];
      }
    }
  }
  return profile;
}

}  // namespace valmod::mp
