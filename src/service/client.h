#ifndef VALMOD_SERVICE_CLIENT_H_
#define VALMOD_SERVICE_CLIENT_H_

// Client side of the serving protocol: a Transport that moves one request
// line to the server and one response line back, and a RetryClient that
// layers the retry/backoff contract on top — capped exponential backoff
// with deterministic jitter, honoring the server's `retry_after_ms` hint
// on overload errors. bench_service and the chaos tests drive the server
// through this client so the documented retry semantics are exercised by
// code, not just prose (README "Robustness").

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"

namespace valmod::service {

/// Moves one request line to a server and returns its response line.
/// Implementations are single-stream: calls are serial per transport.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `line` (no trailing newline) and returns the response line.
  /// Transport-level failures (connect/send/recv) come back as kIoError —
  /// the retryable transport failure class; protocol-level errors arrive
  /// as successful round trips whose payload says ok:false.
  virtual Result<std::string> RoundTrip(const std::string& line) = 0;

  /// Returns the next response line without sending anything — the
  /// continuation pages of a paged response (README "Serving": a large
  /// result arrives as several `chunk` lines). kIoError when the stream
  /// ends before another line; the default suits transports that can
  /// never have one buffered.
  virtual Result<std::string> ReceiveLine() {
    return Status::IoError("transport has no further response lines");
  }

  /// Drops any broken connection state so the next RoundTrip starts
  /// fresh. No-op for connectionless transports.
  virtual void Reset() {}
};

/// In-process transport: forwards lines to a callback (typically
/// Service::HandleRequestLine or HandleRequest). Lets benches and tests
/// exercise the full client retry stack without sockets. A handler may
/// return several '\n'-separated lines (HandleRequest's paged encoding
/// does); RoundTrip yields the first and ReceiveLine the rest.
class CallbackTransport final : public Transport {
 public:
  using Handler = std::function<std::string(const std::string&)>;

  explicit CallbackTransport(Handler handler)
      : handler_(std::move(handler)) {}

  Result<std::string> RoundTrip(const std::string& line) override {
    pending_ = handler_(line);
    offset_ = 0;
    return NextLine();
  }

  Result<std::string> ReceiveLine() override { return NextLine(); }

  void Reset() override {
    pending_.clear();
    offset_ = 0;
  }

 private:
  Result<std::string> NextLine() {
    if (offset_ >= pending_.size()) {
      return Status::IoError("transport has no further response lines");
    }
    const std::size_t newline = pending_.find('\n', offset_);
    const std::size_t end =
        newline == std::string::npos ? pending_.size() : newline;
    std::string line = pending_.substr(offset_, end - offset_);
    offset_ = newline == std::string::npos ? pending_.size() : newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  }

  Handler handler_;
  std::string pending_;     // handler output not yet returned as lines
  std::size_t offset_ = 0;  // read position within pending_
};

/// TCP transport to a local valmod_server (127.0.0.1 only, matching the
/// server's bind). Connects lazily on the first RoundTrip and reconnects
/// after Reset(); send/recv run under the configured timeouts so a hung
/// server surfaces as kIoError instead of a wedged client.
class TcpTransport final : public Transport {
 public:
  struct Options {
    double connect_timeout_seconds = 5.0;
    double io_timeout_seconds = 30.0;
  };

  explicit TcpTransport(int port);
  TcpTransport(int port, const Options& options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Result<std::string> RoundTrip(const std::string& line) override;
  Result<std::string> ReceiveLine() override;
  void Reset() override;

 private:
  Status EnsureConnected();

  const int port_;
  const Options options_;
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned line
};

struct RetryOptions {
  /// Total tries, including the first. 1 disables retries.
  int max_attempts = 5;
  int initial_backoff_ms = 10;
  int max_backoff_ms = 2000;
  double multiplier = 2.0;
  /// Each delay is scaled by a factor drawn from
  /// [1 - jitter_fraction, 1 + jitter_fraction], deterministically from
  /// jitter_seed — synchronized clients desynchronize, tests replay.
  double jitter_fraction = 0.25;
  std::uint64_t jitter_seed = 0;
  /// Whether transport kIoError is retried (with a transport Reset). On by
  /// default: the serving protocol's requests are idempotent reads.
  bool retry_io_errors = true;
};

/// Cumulative counters across a client's lifetime.
struct RetryStats {
  std::uint64_t calls = 0;        // Call() invocations
  std::uint64_t attempts = 0;     // round trips issued
  std::uint64_t retries = 0;      // attempts beyond each call's first
  std::uint64_t gave_up = 0;      // calls that exhausted max_attempts
  std::uint64_t backoff_ms_total = 0;  // time spent sleeping between tries
  std::uint64_t pages = 0;  // continuation pages received (paged responses)
};

/// Issues requests through a Transport with the retry/backoff contract:
///  - retried: transport kIoError (after Reset), and responses whose
///    error code is ResourceExhausted or Unavailable — the two codes the
///    server uses for "try again later";
///  - not retried: every other error code (InvalidArgument, NotFound,
///    DeadlineExceeded, ... — retrying cannot change the outcome);
///  - delay: the response's `retry_after_ms` hint when present, otherwise
///    jittered capped exponential backoff.
///
/// Paged responses are reassembled transparently: when the first line of a
/// response carries a `chunk` field, Call keeps reading lines through
/// Transport::ReceiveLine until the `"partial":false` page, concatenates
/// the chunks in seq order, and returns the same single object an unpaged
/// response would have produced (envelope fields plus `result`; the paging
/// bookkeeping — partial/seq/pages/chunk — is stripped). A stream that
/// breaks mid-page is a transport kIoError, retried like any other.
class RetryClient {
 public:
  explicit RetryClient(Transport& transport, const RetryOptions& options = {});

  /// Sends `line`, retrying per the contract, and returns the parsed
  /// response object (which may still be ok:false — the *last* attempt's
  /// response is returned when retries are exhausted). kIoError only when
  /// the transport failed and retries ran out or were disabled.
  Result<json::Value> Call(const std::string& line);

  const RetryStats& stats() const { return stats_; }

 private:
  int DelayMs(int attempt, const json::Value* response);
  /// Drains and reassembles the remaining pages of a paged response whose
  /// first page is `first`. kIoError when the stream ends early (the
  /// retryable class); other codes mean a malformed page (not retryable).
  Result<json::Value> ReassemblePaged(json::Value first);

  Transport& transport_;
  const RetryOptions options_;
  RetryStats stats_;
  std::uint64_t jitter_state_;
};

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_CLIENT_H_
