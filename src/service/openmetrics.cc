#include "service/openmetrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/json.h"
#include "fft/plan.h"
#include "mass/backend.h"
#include "mass/engine.h"
#include "simd/dispatch.h"

namespace valmod::service {

namespace {

void AppendU64(std::uint64_t value, std::string* out) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  *out += buffer;
}

void AppendSeconds(double value, std::string* out) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  *out += buffer;
}

/// `# TYPE family type` header. `family` is the name WITHOUT the _total
/// suffix for counters, per the exposition format.
void Type(std::string_view family, std::string_view type, std::string* out) {
  *out += "# TYPE ";
  out->append(family);
  *out += ' ';
  out->append(type);
  *out += '\n';
}

void CounterLine(std::string_view family, std::string_view labels,
                 std::uint64_t value, std::string* out) {
  out->append(family);
  *out += "_total";
  out->append(labels);
  *out += ' ';
  AppendU64(value, out);
  *out += '\n';
}

void GaugeLine(std::string_view name, std::string_view labels, double value,
               std::string* out) {
  out->append(name);
  out->append(labels);
  *out += ' ';
  AppendSeconds(value, out);
  *out += '\n';
}

std::string VerbLabel(const std::string& verb) {
  return "{verb=\"" + verb + "\"}";
}

}  // namespace

std::string RenderOpenMetrics(const VerbMetrics& metrics,
                              const ResultCache::Stats& cache,
                              const SchedulerStats& scheduler) {
  std::string out;
  out.reserve(8192);
  const std::vector<VerbMetrics::VerbSnapshot> verbs = metrics.Snapshot();

  Type("valmod_uptime_seconds", "gauge", &out);
  GaugeLine("valmod_uptime_seconds", "", metrics.UptimeSeconds(), &out);

  Type("valmod_build_info", "gauge", &out);
  out += "valmod_build_info{simd_target=\"";
  out += simd::TargetName(simd::ActiveTarget());
  out += "\",results_version=\"";
  AppendU64(static_cast<std::uint64_t>(mass::kResultsVersion), &out);
  out += "\"} 1\n";

  // Per-verb request counters.
  Type("valmod_requests", "counter", &out);
  for (const auto& verb : verbs) {
    CounterLine("valmod_requests", VerbLabel(verb.verb), verb.count, &out);
  }
  Type("valmod_request_errors", "counter", &out);
  for (const auto& verb : verbs) {
    CounterLine("valmod_request_errors", VerbLabel(verb.verb), verb.errors,
                &out);
  }

  // Per-verb latency histograms: the quarter-octave histogram re-rendered
  // as cumulative per-doubling buckets, with `le` edges in SECONDS (the
  // exposition convention). The top stored bucket absorbs overflow, so its
  // cumulative count equals the total and +Inf adds no information beyond
  // closing the histogram.
  Type("valmod_request_latency_seconds", "histogram", &out);
  for (const auto& verb : verbs) {
    for (int d = 0; d < LatencyHistogram::kDoublings; ++d) {
      const double upper_ms =
          LatencyHistogram::kMinMs * std::exp2(static_cast<double>(d + 1));
      out += "valmod_request_latency_seconds_bucket{verb=\"";
      out += verb.verb;
      out += "\",le=\"";
      AppendSeconds(upper_ms / 1e3, &out);
      out += "\"} ";
      AppendU64(verb.cumulative[static_cast<std::size_t>(d)], &out);
      out += '\n';
    }
    out += "valmod_request_latency_seconds_bucket{verb=\"";
    out += verb.verb;
    out += "\",le=\"+Inf\"} ";
    AppendU64(verb.count, &out);
    out += '\n';
    out += "valmod_request_latency_seconds_sum";
    out += VerbLabel(verb.verb);
    out += ' ';
    AppendSeconds(verb.sum_ms / 1e3, &out);
    out += '\n';
    out += "valmod_request_latency_seconds_count";
    out += VerbLabel(verb.verb);
    out += ' ';
    AppendU64(verb.count, &out);
    out += '\n';
  }

  // Result cache: lookup traffic plus the flight-coalescing protocol.
  Type("valmod_result_cache_hits", "counter", &out);
  CounterLine("valmod_result_cache_hits", "", cache.hits, &out);
  Type("valmod_result_cache_misses", "counter", &out);
  CounterLine("valmod_result_cache_misses", "", cache.misses, &out);
  Type("valmod_result_cache_insertions", "counter", &out);
  CounterLine("valmod_result_cache_insertions", "", cache.insertions, &out);
  Type("valmod_result_cache_evictions", "counter", &out);
  CounterLine("valmod_result_cache_evictions", "", cache.evictions, &out);
  Type("valmod_result_cache_flights_led", "counter", &out);
  CounterLine("valmod_result_cache_flights_led", "", cache.flights_led, &out);
  Type("valmod_result_cache_coalesced_waiters", "counter", &out);
  CounterLine("valmod_result_cache_coalesced_waiters", "", cache.coalesced,
              &out);
  Type("valmod_result_cache_waiters_served", "counter", &out);
  CounterLine("valmod_result_cache_waiters_served", "", cache.waiters_served,
              &out);
  Type("valmod_result_cache_failovers", "counter", &out);
  CounterLine("valmod_result_cache_failovers", "", cache.failovers, &out);
  Type("valmod_result_cache_entries", "gauge", &out);
  GaugeLine("valmod_result_cache_entries", "",
            static_cast<double>(cache.entries), &out);
  Type("valmod_result_cache_inflight_flights", "gauge", &out);
  GaugeLine("valmod_result_cache_inflight_flights", "",
            static_cast<double>(cache.inflight), &out);

  // Scheduler admission/retirement counters and queue gauges.
  Type("valmod_scheduler_admitted", "counter", &out);
  CounterLine("valmod_scheduler_admitted", "", scheduler.admitted, &out);
  Type("valmod_scheduler_completed", "counter", &out);
  CounterLine("valmod_scheduler_completed", "", scheduler.completed, &out);
  Type("valmod_scheduler_rejected", "counter", &out);
  CounterLine("valmod_scheduler_rejected", "", scheduler.rejected, &out);
  Type("valmod_scheduler_shed", "counter", &out);
  CounterLine("valmod_scheduler_shed", "", scheduler.shed, &out);
  Type("valmod_scheduler_cancelled", "counter", &out);
  CounterLine("valmod_scheduler_cancelled", "", scheduler.cancelled, &out);
  Type("valmod_scheduler_expired", "counter", &out);
  CounterLine("valmod_scheduler_expired", "", scheduler.expired, &out);
  Type("valmod_scheduler_overruns", "counter", &out);
  CounterLine("valmod_scheduler_overruns", "", scheduler.overruns, &out);
  Type("valmod_scheduler_queue_depth", "gauge", &out);
  GaugeLine("valmod_scheduler_queue_depth", "",
            static_cast<double>(scheduler.queue_depth), &out);
  Type("valmod_scheduler_active", "gauge", &out);
  GaugeLine("valmod_scheduler_active", "",
            static_cast<double>(scheduler.active), &out);
  Type("valmod_scheduler_stalled", "gauge", &out);
  GaugeLine("valmod_scheduler_stalled", "",
            static_cast<double>(scheduler.stalled), &out);

  // Engine caches and per-backend row throughput (process-wide totals).
  const mass::EngineCounters engine = mass::EngineCountersSnapshot();
  Type("valmod_engine_series_spectra_hits", "counter", &out);
  CounterLine("valmod_engine_series_spectra_hits", "",
              engine.series_spectra_hits, &out);
  Type("valmod_engine_series_spectra_misses", "counter", &out);
  CounterLine("valmod_engine_series_spectra_misses", "",
              engine.series_spectra_misses, &out);
  Type("valmod_engine_pair_spectra_builds", "counter", &out);
  CounterLine("valmod_engine_pair_spectra_builds", "",
              engine.pair_spectra_builds, &out);
  Type("valmod_engine_chunk_spectra_hits", "counter", &out);
  CounterLine("valmod_engine_chunk_spectra_hits", "",
              engine.chunk_spectra_hits, &out);
  Type("valmod_engine_chunk_spectra_misses", "counter", &out);
  CounterLine("valmod_engine_chunk_spectra_misses", "",
              engine.chunk_spectra_misses, &out);
  Type("valmod_engine_chunk_spectra_evictions", "counter", &out);
  CounterLine("valmod_engine_chunk_spectra_evictions", "",
              engine.chunk_spectra_evictions, &out);
  Type("valmod_engine_chunk_spectra_adopted", "counter", &out);
  CounterLine("valmod_engine_chunk_spectra_adopted", "",
              engine.chunk_spectra_adopted, &out);
  Type("valmod_engine_calibration_refits", "counter", &out);
  CounterLine("valmod_engine_calibration_refits", "",
              mass::CalibrationRefitCount(), &out);
  Type("valmod_engine_rows", "counter", &out);
  CounterLine("valmod_engine_rows", "{backend=\"direct\"}", engine.rows_direct,
              &out);
  CounterLine("valmod_engine_rows", "{backend=\"fft_single\"}",
              engine.rows_fft_single, &out);
  CounterLine("valmod_engine_rows", "{backend=\"fft_pair\"}",
              engine.rows_fft_pair, &out);
  CounterLine("valmod_engine_rows", "{backend=\"overlap_save\"}",
              engine.rows_overlap_save, &out);

  // FFT plan registry.
  const fft::PlanRegistryCounters plans = fft::PlanRegistryCountersSnapshot();
  Type("valmod_fft_plan_hits", "counter", &out);
  CounterLine("valmod_fft_plan_hits", "", plans.hits, &out);
  Type("valmod_fft_plan_misses", "counter", &out);
  CounterLine("valmod_fft_plan_misses", "", plans.misses, &out);
  Type("valmod_fft_plan_evictions", "counter", &out);
  CounterLine("valmod_fft_plan_evictions", "", plans.evictions, &out);

  // SIMD dispatch: one series per (target, kernel), zeros included so the
  // series set is stable across scrapes.
  const simd::KernelCounters kernels = simd::KernelCountersSnapshot();
  Type("valmod_simd_kernel_calls", "counter", &out);
  for (int t = 0; t < simd::kNumTargets; ++t) {
    for (int k = 0; k < simd::kNumKernelKinds; ++k) {
      std::string labels = "{target=\"";
      labels += simd::TargetName(static_cast<simd::Target>(t));
      labels += "\",kernel=\"";
      labels += simd::KernelKindName(static_cast<simd::KernelKind>(k));
      labels += "\"}";
      CounterLine("valmod_simd_kernel_calls", labels, kernels.calls[t][k],
                  &out);
    }
  }

  out += "# EOF\n";
  return out;
}

std::string RenderTraceJson(const trace::TraceContext& context) {
  const std::vector<trace::TraceContext::Span> spans = context.Snapshot();
  std::string out = "{\"wall_ns\":";
  AppendU64(context.ElapsedNs(), &out);
  out += ",\"dropped\":";
  AppendU64(context.dropped(), &out);
  out += ",\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"name\":";
    json::AppendQuoted(spans[i].name, &out);
    out += ",\"parent\":";
    out += std::to_string(spans[i].parent);
    out += ",\"start_ns\":";
    AppendU64(spans[i].start_ns, &out);
    out += ",\"duration_ns\":";
    AppendU64(spans[i].duration_ns, &out);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace valmod::service
