#ifndef VALMOD_SERVICE_REGISTRY_H_
#define VALMOD_SERVICE_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "mass/engine.h"
#include "mp/matrix_profile.h"
#include "mp/streaming.h"
#include "series/data_series.h"

namespace valmod::service {

/// An immutable (series, engine) pair at one dataset generation — the unit
/// of sharing in the serving stack. Every request executing against a
/// dataset holds one of these via shared_ptr, so:
///
///  - the `MassEngine` (and with it the cached series spectra, chunk
///    spectra, and FFT plans) is built once per generation and reused by
///    every request, which is what lets the engine caches amortize across
///    a query stream instead of dying with each one-shot CLI process;
///  - `unload` (or a streaming append that supersedes this generation)
///    cannot pull the data out from under an in-flight request — the
///    snapshot stays alive until the last request drops its reference.
///
/// MassEngine is internally synchronized, so one snapshot may serve any
/// number of concurrent requests.
class DatasetSnapshot {
 public:
  DatasetSnapshot(series::DataSeries series, std::uint64_t generation)
      : series_(std::move(series)), engine_(series_), generation_(generation) {}

  DatasetSnapshot(const DatasetSnapshot&) = delete;
  DatasetSnapshot& operator=(const DatasetSnapshot&) = delete;

  const series::DataSeries& series() const { return series_; }
  /// Mutable because engine calls are non-const; the engine is safe for
  /// concurrent callers (its caches are mutex-guarded).
  mass::MassEngine& engine() const { return engine_; }
  std::uint64_t generation() const { return generation_; }

 private:
  series::DataSeries series_;
  mutable mass::MassEngine engine_;
  std::uint64_t generation_;
};

/// One named dataset held by the registry: either a static series loaded
/// once, or a streaming (append-only) series backed by an incrementally
/// maintained `mp::StreamingProfile`.
///
/// Generations: a static dataset is forever generation 1; every streaming
/// append bumps the generation. The generation is part of every result
/// cache key, so cached responses computed against an older state of the
/// data are never served after an append.
class Dataset {
 public:
  /// Registry-internal constructors; use DatasetRegistry to create these.
  static std::shared_ptr<Dataset> CreateStatic(std::string name,
                                               series::DataSeries series);
  /// `max_points == 0` means unbounded (append-only); a bound turns the
  /// dataset into a sliding window (see mp::StreamingOptions::max_points).
  static Result<std::shared_ptr<Dataset>> CreateStreaming(
      std::string name, std::size_t subsequence_length,
      double exclusion_fraction = 0.5, std::size_t max_points = 0);

  const std::string& name() const { return name_; }
  /// Process-unique id, distinct across every dataset ever created — in
  /// particular across unload/reload cycles of the same *name*. Cache keys
  /// embed it so a reloaded "ecg" (fresh data, generation restarting at 1)
  /// can never alias cached responses from the previous "ecg".
  std::uint64_t uid() const { return uid_; }
  bool streaming() const { return streaming_.has_value(); }
  std::uint64_t generation() const;
  std::size_t size() const;

  /// The streaming profile's subsequence length (0 for static datasets).
  std::size_t streaming_length() const { return streaming_length_; }

  /// The streaming window bound (0 for static or unbounded datasets).
  std::size_t max_points() const { return max_points_; }

  /// The current (series, engine) snapshot. For a static dataset this is
  /// always the same object; for a streaming dataset the snapshot is
  /// materialized lazily from the appended values at first use per
  /// generation (and reused until the next append). Fails for a streaming
  /// dataset with no points yet.
  ///
  /// Streaming note: the materialized series holds the values shifted by
  /// the StreamingProfile's anchor. Z-normalized distances are invariant
  /// under a global shift, so every query result is unaffected; only raw
  /// value readback would see the shift, and the service never exposes it.
  Result<std::shared_ptr<const DatasetSnapshot>> Snapshot();

  /// The dataset state one append produced, captured atomically under the
  /// dataset lock: a concurrent append can never make a response report a
  /// (points, generation) pair this append did not itself create.
  struct AppendResult {
    std::size_t points = 0;  // retained after the append
    std::size_t subsequences = 0;
    std::uint64_t generation = 0;
    /// Points evicted by this append (windowed datasets only).
    std::size_t evicted = 0;
    /// Global stream position of the first retained point.
    std::size_t window_start = 0;
    std::size_t total_appended = 0;
  };

  /// Appends points to a streaming dataset (O(m + l) each) and bumps the
  /// generation. Fails on static datasets.
  Result<AppendResult> Append(std::span<const double> values);

  /// Copy of the incrementally maintained matrix profile (streaming only),
  /// tagged with the generation it was taken at. Copied under the dataset
  /// lock so concurrent appends can neither tear the profile nor desync it
  /// from the generation — the server keys cached responses by that
  /// generation, so the pair must be atomic.
  struct StreamingState {
    mp::MatrixProfile profile;
    std::uint64_t generation = 0;
    std::size_t points = 0;
    /// Global stream position of window offset 0 in `profile`.
    std::size_t window_start = 0;
  };
  Result<StreamingState> StreamingProfileSnapshot();

  /// Incrementally maintained top-k motifs/discords (streaming only), read
  /// from the maintained profile under the dataset lock — O(W), no batch
  /// recomputation, consistent with the generation it reports.
  struct StreamingTopK {
    std::vector<mp::MotifEntry> motifs;
    std::vector<mp::DiscordEntry> discords;
    std::uint64_t generation = 0;
    std::size_t points = 0;
    std::size_t window_start = 0;
  };
  Result<StreamingTopK> StreamingTopKSnapshot(std::size_t k_motifs,
                                              std::size_t k_discords);

  /// Occupancy and footprint of the dataset, for the `stats` verb.
  struct MemoryInfo {
    std::size_t memory_bytes = 0;  // profile state + snapshot + engine caches
    std::size_t retained = 0;
    std::size_t max_points = 0;     // 0 = unbounded
    std::size_t evicted_total = 0;  // == window start
    std::size_t total_appended = 0;
  };
  MemoryInfo Memory() const;

 private:
  Dataset() = default;

  std::string name_;
  std::uint64_t uid_ = 0;
  std::size_t streaming_length_ = 0;
  std::size_t max_points_ = 0;

  mutable std::mutex mutex_;
  std::uint64_t generation_ = 1;
  std::optional<mp::StreamingProfile> streaming_;
  /// Cached snapshot; for streaming datasets its generation may trail
  /// generation_ until the next Snapshot() call re-materializes.
  std::shared_ptr<const DatasetSnapshot> snapshot_;
  /// Provenance of the streaming snapshot_, used to decide whether the next
  /// materialization is a pure extension of the previous one (same anchor,
  /// same window start, grew) — in which case the new engine adopts the old
  /// engine's chunk spectra and the append path stays O(new points).
  std::size_t snapshot_points_ = 0;
  std::uint64_t snapshot_anchor_epoch_ = 0;
  std::size_t snapshot_window_start_ = 0;
};

/// Named, ref-counted registry of long-lived datasets — the serving
/// stack's ownership root. Handing out shared_ptr<Dataset> (and snapshots)
/// means `Unload` only severs the name: in-flight requests against the
/// unloaded dataset finish normally on their own references.
class DatasetRegistry {
 public:
  struct Info {
    std::string name;
    std::size_t points = 0;
    std::uint64_t generation = 0;
    bool streaming = false;
    std::size_t streaming_length = 0;
    std::size_t max_points = 0;      // 0 = unbounded / static
    std::size_t evicted = 0;         // total points aged out of the window
    std::size_t total_appended = 0;  // streaming only; == points for static
    std::size_t memory_bytes = 0;    // series + profile + engine caches
  };

  /// Registers a static dataset under `name`. Fails if the name is taken
  /// (unload first — silently replacing would invalidate the generation
  /// story for requests already admitted against the old data).
  Result<std::shared_ptr<Dataset>> LoadSeries(const std::string& name,
                                              series::DataSeries series);

  /// Registers an empty streaming dataset maintaining a profile at
  /// `subsequence_length`; `max_points > 0` bounds the retained window.
  Result<std::shared_ptr<Dataset>> CreateStreaming(
      const std::string& name, std::size_t subsequence_length,
      double exclusion_fraction = 0.5, std::size_t max_points = 0);

  /// Looks up a dataset. NotFound when absent.
  Result<std::shared_ptr<Dataset>> Get(const std::string& name) const;

  Status Unload(const std::string& name);

  /// Sorted by name.
  std::vector<Info> List() const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Dataset>> datasets_;
};

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_REGISTRY_H_
