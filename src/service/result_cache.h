#ifndef VALMOD_SERVICE_RESULT_CACHE_H_
#define VALMOD_SERVICE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace valmod::service {

/// Bounded LRU cache of serialized response payloads, keyed by the full
/// identity of a computation:
///
///   dataset name + dataset generation + verb + resolved request params
///   + results_version + backend cost-model generation
///
/// (the server builds the key; see service/server.cc). Each component
/// closes one staleness hole:
///  - the dataset *generation* changes on every streaming append, so a
///    cached answer is never served against newer data;
///  - `results_version` pins the backend-selection policy, which the PR 4
///    versioning made part of a result's identity (same inputs, different
///    policy => different ulps);
///  - the cost-model generation (mass::BackendCostModelGeneration) bumps
///    whenever CalibrateBackendCostModel installs a refit, which can
///    silently change which backend kAuto picks under the *same*
///    results_version.
///
/// The request's `threads` param is deliberately NOT part of the key: the
/// engine guarantees batched results depend only on row order, never on
/// the thread count, so responses computed at different thread counts are
/// byte-identical and may share an entry.
///
/// Values are shared_ptr<const string>: a hit hands back a reference to
/// the stored bytes with no copy, and eviction cannot race a reader.
///
/// In-flight coalescing: beyond the stored entries, the cache tracks keys
/// whose computation is *currently running* (a "flight"). The first miss
/// for a key becomes the flight's leader and computes; every identical
/// miss that arrives while the flight is open joins as a waiter instead of
/// recomputing — one computation, N responses. The flight protocol:
///
///   GetOrJoin  -> kHit (value ready) | kLeader (caller computes)
///                 | kJoined (caller's waiter callbacks were parked)
///   CompleteFlight -> leader succeeded: value is stored (unless the
///                 caller says not to cache it), and every parked waiter
///                 is returned for fan-out
///   FailFlight -> leader failed / was cancelled / returned a payload the
///                 waiters must not share (partial): the *next* waiter is
///                 popped for promotion to leader — fail-over, not a
///                 thundering error to every waiter. The flight stays
///                 open while waiters remain.
///
/// Flights work even at capacity 0 (caching disabled): coalescing
/// deduplicates concurrent work, which is independent of memoizing
/// finished work.
class ResultCache {
 public:
  struct Stats {
    std::size_t entries = 0;
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t inflight = 0;          // open flights now
    std::uint64_t coalesced = 0;       // waiters that joined a flight, ever
    std::uint64_t failovers = 0;       // waiters promoted to leader, ever
    std::uint64_t flights_led = 0;     // GetOrJoin calls that opened a flight
    std::uint64_t waiters_served = 0;  // waiters fanned a leader's payload
  };

  /// A parked waiter: `deliver` fans out the leader's finished payload;
  /// `promote` re-executes the waiter's own computation when it becomes
  /// the new leader after a fail-over. Exactly one of the two is invoked,
  /// by the caller, outside the cache lock.
  struct InFlightWaiter {
    std::function<void(std::shared_ptr<const std::string>)> deliver;
    std::function<void()> promote;
  };

  enum class FlightState {
    kHit,     // value was cached; no flight involved
    kLeader,  // caller opened the flight and must compute
    kJoined,  // caller's waiter was parked on an open flight
  };

  struct FlightLookup {
    FlightState state = FlightState::kLeader;
    /// Set only for kHit.
    std::shared_ptr<const std::string> value;
  };

  /// `capacity` = max entries; 0 disables caching (Get always misses,
  /// Put is a no-op) so the server's --cache=0 flag and the bench's cold
  /// path share one code path.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// nullptr on miss. A hit refreshes the entry's recency.
  std::shared_ptr<const std::string> Get(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// beyond capacity.
  void Put(const std::string& key, std::shared_ptr<const std::string> value);

  /// One atomic lookup-or-coalesce step (see class comment). The waiter is
  /// parked only when the result is kJoined; for kHit and kLeader it is
  /// discarded untouched.
  FlightLookup GetOrJoin(const std::string& key, InFlightWaiter waiter);

  /// Closes the flight for `key` after a successful computation: stores
  /// `value` (unless `cache_value` is false — e.g. the flight ran with
  /// caching disabled) and returns every parked waiter for fan-out. Safe
  /// to call when no flight exists (plain Put-like behavior, no waiters).
  std::vector<InFlightWaiter> CompleteFlight(
      const std::string& key, std::shared_ptr<const std::string> value,
      bool cache_value);

  /// Fails the current leader of `key`'s flight over to the next waiter:
  /// pops and returns it (the flight stays open; the caller must invoke
  /// `promote`), or closes the flight and returns nullopt when no waiters
  /// remain. Safe to call when no flight exists.
  std::optional<InFlightWaiter> FailFlight(const std::string& key);

  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> value;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Most recent at the front.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  /// Open flights: key -> waiters parked behind the leader (the leader is
  /// not in the queue; it is whoever got kLeader / the last promotion).
  std::unordered_map<std::string, std::deque<InFlightWaiter>> flights_;
  Stats counters_;

  /// Lookup half of Get/GetOrJoin; requires mutex_. Counts a hit or miss.
  std::shared_ptr<const std::string> GetLocked(const std::string& key);
  /// Insert half of Put/CompleteFlight; requires mutex_.
  void PutLocked(const std::string& key,
                 std::shared_ptr<const std::string> value);
};

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_RESULT_CACHE_H_
