#ifndef VALMOD_SERVICE_RESULT_CACHE_H_
#define VALMOD_SERVICE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace valmod::service {

/// Bounded LRU cache of serialized response payloads, keyed by the full
/// identity of a computation:
///
///   dataset name + dataset generation + verb + resolved request params
///   + results_version + backend cost-model generation
///
/// (the server builds the key; see service/server.cc). Each component
/// closes one staleness hole:
///  - the dataset *generation* changes on every streaming append, so a
///    cached answer is never served against newer data;
///  - `results_version` pins the backend-selection policy, which the PR 4
///    versioning made part of a result's identity (same inputs, different
///    policy => different ulps);
///  - the cost-model generation (mass::BackendCostModelGeneration) bumps
///    whenever CalibrateBackendCostModel installs a refit, which can
///    silently change which backend kAuto picks under the *same*
///    results_version.
///
/// The request's `threads` param is deliberately NOT part of the key: the
/// engine guarantees batched results depend only on row order, never on
/// the thread count, so responses computed at different thread counts are
/// byte-identical and may share an entry.
///
/// Values are shared_ptr<const string>: a hit hands back a reference to
/// the stored bytes with no copy, and eviction cannot race a reader.
class ResultCache {
 public:
  struct Stats {
    std::size_t entries = 0;
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  /// `capacity` = max entries; 0 disables caching (Get always misses,
  /// Put is a no-op) so the server's --cache=0 flag and the bench's cold
  /// path share one code path.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// nullptr on miss. A hit refreshes the entry's recency.
  std::shared_ptr<const std::string> Get(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// beyond capacity.
  void Put(const std::string& key, std::shared_ptr<const std::string> value);

  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> value;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Most recent at the front.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats counters_;
};

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_RESULT_CACHE_H_
