#ifndef VALMOD_SERVICE_SCHEDULER_H_
#define VALMOD_SERVICE_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"

namespace valmod::service {

struct SchedulerOptions {
  /// Request-level concurrency: how many requests execute at once. Each
  /// request may additionally fan out its *compute* over the shared
  /// persistent ThreadPool (its `threads` param), so this bounds admitted
  /// requests, not CPU threads — the pool serializes one fork-join region
  /// at a time and runs overflow inline, which keeps the two layers from
  /// deadlocking or oversubscribing.
  int num_workers = 4;
  /// Most requests waiting to start. Admission beyond this sheds or rejects
  /// (bounded queue = bounded memory and bounded worst-case queueing delay;
  /// the loser sees a structured retryable error with a backoff hint).
  std::size_t queue_capacity = 64;
  /// When the queue is full and a higher-priority request arrives, evict
  /// the lowest-priority queued request (newest first within that class)
  /// instead of bouncing the newcomer — under overload, capacity goes to
  /// the work the client ranked highest. Set false for strict
  /// reject-the-newcomer admission.
  bool shed_on_overload = true;
  /// A running request whose elapsed time exceeds `watchdog_factor` times
  /// its deadline budget counts as stalled (gauge `stalled` in stats) and,
  /// once it finally finishes, as an overrun (counter `overruns`). Such
  /// requests hold a worker hostage — the deadline is cooperative, so a
  /// wedged backend ignores it — and the watchdog makes that visible to
  /// `health` instead of silently shrinking the worker pool.
  double watchdog_factor = 3.0;
};

/// Counters exposed through the server's `stats` verb.
struct SchedulerStats {
  std::size_t queue_depth = 0;   // submitted, not yet started
  std::size_t active = 0;        // currently executing
  std::uint64_t admitted = 0;    // accepted into the queue, ever
  std::uint64_t completed = 0;   // job ran to completion (ok or error)
  std::uint64_t rejected = 0;    // bounced at admission (queue full)
  std::uint64_t shed = 0;        // evicted from the queue by higher priority
  std::uint64_t cancelled = 0;   // cancelled before starting
  std::uint64_t expired = 0;     // deadline passed before starting
  std::uint64_t overruns = 0;    // finished after watchdog_factor × deadline
  std::size_t stalled = 0;       // running now, past watchdog_factor × deadline
  double mean_queue_wait_ms = 0.0;  // admission → start, over started requests
  double max_queue_wait_ms = 0.0;
  double mean_service_ms = 0.0;  // EWMA of job execution time
  int retry_after_ms = 0;        // current backoff hint for overload errors
};

/// Bounded, priority-ordered admission queue feeding a small set of
/// request-executor threads — the concurrency layer between protocol
/// front ends and the engine stack.
///
/// Semantics:
///  - Priorities: higher runs first; FIFO within a priority (admission
///    order breaks ties, so equal-priority clients are served fairly).
///  - Deadlines: each request carries a `Deadline`; if it fires before the
///    request starts, the request completes as kDeadlineExceeded without
///    executing. While running, the same deadline is handed to the job,
///    which threads it into the algorithms' cooperative checks.
///  - Cancellation: `Ticket::Cancel()` marks the request. Unstarted
///    requests never run; a running request's deadline starts reporting
///    Expired() (the cancel flag is attached to it), so it unwinds at the
///    algorithm's next cooperative checkpoint.
///  - Overload: at capacity, either the lowest-priority queued request is
///    shed (default) or the newcomer is rejected; both resolve as
///    kResourceExhausted carrying a `retry_after_ms` hint derived from the
///    observed service rate and current queue depth.
class QueryScheduler {
 public:
  /// A job computes the response payload under the request's deadline.
  using Job = std::function<Result<std::string>(const Deadline& deadline)>;

  /// Completion callback for the async submit path: invoked exactly once
  /// with the ticket's final result, from whichever thread resolves the
  /// ticket (a worker, the shedding submitter, or the destructor). It runs
  /// outside every scheduler and ticket lock, so it may call back into the
  /// scheduler (including Submit) — but it must not block for long, since
  /// it borrows a worker thread.
  using Completion = std::function<void(const Result<std::string>& result)>;

  /// Handle to one admitted request.
  class Ticket {
   public:
    /// Blocks until the request completes (or is cancelled / expired /
    /// shed) and returns its payload or error. May be called once or many
    /// times; the result is latched — every terminal path funnels through
    /// QueryScheduler::Resolve, which writes the result exactly once.
    Result<std::string> Wait();

    /// True once a result is available (Wait would not block).
    bool Done();

    /// Requests cooperative cancellation (see class comment).
    void Cancel();

   private:
    friend class QueryScheduler;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::optional<Result<std::string>> result_;
    std::shared_ptr<std::atomic<bool>> cancelled_ =
        std::make_shared<std::atomic<bool>>(false);

    Job job_;
    /// Set only through the async Submit overload; moved out (under the
    /// ticket mutex) and invoked by Resolve, so it fires at most once no
    /// matter which terminal path wins.
    Completion completion_;
    int priority_ = 0;
    std::uint64_t sequence_ = 0;
    Deadline deadline_;
    /// Deadline budget at admission, seconds (+inf when unbounded); the
    /// watchdog threshold is watchdog_factor × this.
    double timeout_seconds_ = 0.0;
    std::chrono::steady_clock::time_point admitted_at_;
  };

  explicit QueryScheduler(const SchedulerOptions& options = {});

  /// Resolves every queued-but-unstarted ticket as cancelled, waits for
  /// running jobs to finish, and joins the workers.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admits a request. At capacity, sheds the lowest-priority queued
  /// request if the newcomer outranks it (its Wait() returns
  /// kResourceExhausted), otherwise fails fast with kResourceExhausted;
  /// either error carries a retry_after_ms hint.
  Result<std::shared_ptr<Ticket>> Submit(Job job, int priority = 0,
                                         Deadline deadline = Deadline());

  /// Async variant: like Submit, but `completion` is invoked exactly once
  /// with the final result instead of (or in addition to) a Wait() call.
  /// Rejection at admission (queue full, shut down) is returned directly —
  /// the completion is NOT invoked for requests that were never admitted,
  /// so the caller keeps one error path, not two.
  Result<std::shared_ptr<Ticket>> Submit(Job job, int priority,
                                         Deadline deadline,
                                         Completion completion);

  SchedulerStats stats() const;

 private:
  /// Orders the ready set: begin() is the next request to run (highest
  /// priority, earliest admission); the last element is the shed victim
  /// (lowest priority, latest admission — the one that has both the least
  /// claim to run and the least wait invested).
  struct Compare {
    bool operator()(const std::shared_ptr<Ticket>& a,
                    const std::shared_ptr<Ticket>& b) const {
      if (a->priority_ != b->priority_) return a->priority_ > b->priority_;
      return a->sequence_ < b->sequence_;  // earlier admission first
    }
  };

  struct ActiveInfo {
    std::chrono::steady_clock::time_point started_at;
    double timeout_seconds = 0.0;
  };

  void WorkerLoop();
  static void Resolve(const std::shared_ptr<Ticket>& ticket,
                      Result<std::string> result);
  /// Backoff hint for overload errors: expected time for the backlog to
  /// drain one slot at the observed service rate. Requires mutex_.
  int RetryHintMsLocked() const;
  /// Watchdog threshold in seconds for a request with this budget, or a
  /// negative value when the budget is unbounded (never stalls).
  double StallThresholdSeconds(double timeout_seconds) const;

  const SchedulerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::set<std::shared_ptr<Ticket>, Compare> queue_;
  bool stop_ = false;
  std::uint64_t next_sequence_ = 0;
  std::size_t active_ = 0;
  /// Start time and budget of every running request, keyed by ticket
  /// identity; the watchdog gauge walks this in stats().
  std::map<const Ticket*, ActiveInfo> active_info_;
  SchedulerStats counters_;
  /// EWMA of job execution time; seeds the retry hint before data arrives.
  double mean_service_ms_ = 100.0;
  bool service_time_observed_ = false;
  std::uint64_t started_ = 0;          // requests that reached execution
  double total_queue_wait_ms_ = 0.0;   // summed over started requests
  std::vector<std::thread> workers_;
};

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_SCHEDULER_H_
