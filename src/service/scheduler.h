#ifndef VALMOD_SERVICE_SCHEDULER_H_
#define VALMOD_SERVICE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"

namespace valmod::service {

struct SchedulerOptions {
  /// Request-level concurrency: how many requests execute at once. Each
  /// request may additionally fan out its *compute* over the shared
  /// persistent ThreadPool (its `threads` param), so this bounds admitted
  /// requests, not CPU threads — the pool serializes one fork-join region
  /// at a time and runs overflow inline, which keeps the two layers from
  /// deadlocking or oversubscribing.
  int num_workers = 4;
  /// Most requests waiting to start. Admission beyond this is rejected
  /// immediately (bounded queue = bounded memory and bounded worst-case
  /// queueing delay; the client sees a structured "queue full" error and
  /// can back off).
  std::size_t queue_capacity = 64;
};

/// Counters exposed through the server's `stats` verb.
struct SchedulerStats {
  std::size_t queue_depth = 0;   // submitted, not yet started
  std::size_t active = 0;        // currently executing
  std::uint64_t admitted = 0;    // accepted into the queue, ever
  std::uint64_t completed = 0;   // job ran to completion (ok or error)
  std::uint64_t rejected = 0;    // bounced at admission (queue full)
  std::uint64_t cancelled = 0;   // cancelled before starting
  std::uint64_t expired = 0;     // deadline passed before starting
};

/// Bounded, priority-ordered admission queue feeding a small set of
/// request-executor threads — the concurrency layer between protocol
/// front ends and the engine stack.
///
/// Semantics:
///  - Priorities: higher runs first; FIFO within a priority (admission
///    order breaks ties, so equal-priority clients are served fairly).
///  - Deadlines: each request carries a `Deadline`; if it fires before the
///    request starts, the request completes as kDeadlineExceeded without
///    executing. While running, the same deadline is handed to the job,
///    which threads it into the algorithms' cooperative checks.
///  - Cancellation: `Ticket::Cancel()` marks the request. Unstarted
///    requests never run; a running request's deadline starts reporting
///    Expired() (the cancel flag is attached to it), so it unwinds at the
///    algorithm's next cooperative checkpoint.
class QueryScheduler {
 public:
  /// A job computes the response payload under the request's deadline.
  using Job = std::function<Result<std::string>(const Deadline& deadline)>;

  /// Handle to one admitted request.
  class Ticket {
   public:
    /// Blocks until the request completes (or is cancelled / expired) and
    /// returns its payload or error. May be called once or many times; the
    /// result is latched.
    Result<std::string> Wait();

    /// True once a result is available (Wait would not block).
    bool Done();

    /// Requests cooperative cancellation (see class comment).
    void Cancel();

   private:
    friend class QueryScheduler;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::optional<Result<std::string>> result_;
    std::shared_ptr<std::atomic<bool>> cancelled_ =
        std::make_shared<std::atomic<bool>>(false);

    Job job_;
    int priority_ = 0;
    std::uint64_t sequence_ = 0;
    Deadline deadline_;
  };

  explicit QueryScheduler(const SchedulerOptions& options = {});

  /// Resolves every queued-but-unstarted ticket as cancelled, waits for
  /// running jobs to finish, and joins the workers.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admits a request. Fails fast with FailedPrecondition when the queue
  /// is at capacity (the caller translates that into a structured
  /// retryable error).
  Result<std::shared_ptr<Ticket>> Submit(Job job, int priority = 0,
                                         Deadline deadline = Deadline());

  SchedulerStats stats() const;

 private:
  struct Compare {
    bool operator()(const std::shared_ptr<Ticket>& a,
                    const std::shared_ptr<Ticket>& b) const {
      if (a->priority_ != b->priority_) return a->priority_ < b->priority_;
      return a->sequence_ > b->sequence_;  // earlier admission first
    }
  };

  void WorkerLoop();
  static void Resolve(const std::shared_ptr<Ticket>& ticket,
                      Result<std::string> result);

  const SchedulerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::priority_queue<std::shared_ptr<Ticket>,
                      std::vector<std::shared_ptr<Ticket>>, Compare>
      queue_;
  bool stop_ = false;
  std::uint64_t next_sequence_ = 0;
  std::size_t active_ = 0;
  SchedulerStats counters_;
  std::vector<std::thread> workers_;
};

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_SCHEDULER_H_
