#ifndef VALMOD_SERVICE_SERVER_H_
#define VALMOD_SERVICE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "service/registry.h"
#include "service/result_cache.h"
#include "service/scheduler.h"

namespace valmod::service {

struct ServiceOptions {
  /// Request-executor threads (see SchedulerOptions::num_workers).
  int workers = 4;
  /// Bounded admission queue capacity.
  std::size_t queue_capacity = 64;
  /// Result cache entries; 0 disables response caching.
  std::size_t cache_capacity = 128;
  /// Deadline applied to requests that carry no `timeout_ms`; 0 = none.
  double default_timeout_seconds = 0.0;
};

/// The VALMOD motif-discovery service: long-lived serving state (dataset
/// registry + result cache) plus concurrent request execution (scheduler),
/// speaking a newline-delimited JSON protocol.
///
/// One request per line in, exactly one response line out:
///
///   {"id":1,"verb":"motifs","dataset":"ecg",
///    "params":{"lmin":100,"lmax":120,"k":3},"priority":0,"timeout_ms":5000}
///   -> {"id":1,"ok":true,"verb":"motifs","cached":false,"result":{...}}
///
/// Errors are structured, never fatal:
///   -> {"id":1,"ok":false,"verb":"motifs",
///       "error":{"code":"InvalidArgument","message":"..."}}
///
/// Verbs:
///   admin  — load, unload, append, stats, health, faults, calibrate,
///            shutdown
///   query  — motifs, valmap, profile, query, discords (scheduled through
///            the bounded queue with priorities/deadlines; responses are
///            memoized in the result cache)
///
/// Overload errors (queue full / request shed) use code ResourceExhausted
/// and carry a `retry_after_ms` backoff hint; see README "Robustness" for
/// the full error-code table and the retry contract.
///
/// `HandleRequestLine` is safe to call from any number of threads — the
/// TCP front end calls it from one thread per connection, the --stdio mode
/// from its single reader loop, and the bench from N client threads. See
/// README "Serving" for the full protocol reference.
class Service {
 public:
  explicit Service(const ServiceOptions& options = {});

  /// Processes one request line and returns one response line (no trailing
  /// newline). Never throws and never kills the process: malformed JSON,
  /// unknown verbs, bad params, expired deadlines, and full queues all
  /// come back as structured error responses.
  std::string HandleRequestLine(const std::string& line);

  /// Set by the `shutdown` verb; the front ends exit their accept/read
  /// loops when this turns true.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  DatasetRegistry& registry() { return registry_; }
  ResultCache& result_cache() { return cache_; }
  QueryScheduler& scheduler() { return scheduler_; }
  const ServiceOptions& options() const { return options_; }

 private:
  const ServiceOptions options_;
  DatasetRegistry registry_;
  ResultCache cache_;
  QueryScheduler scheduler_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_SERVER_H_
