#ifndef VALMOD_SERVICE_SERVER_H_
#define VALMOD_SERVICE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "common/trace.h"
#include "service/metrics.h"
#include "service/registry.h"
#include "service/result_cache.h"
#include "service/scheduler.h"

namespace valmod::service {

struct ServiceOptions {
  /// Request-executor threads (see SchedulerOptions::num_workers).
  int workers = 4;
  /// Bounded admission queue capacity.
  std::size_t queue_capacity = 64;
  /// Result cache entries; 0 disables response caching (miss coalescing
  /// stays active — deduplicating concurrent work is independent of
  /// memoizing finished work).
  std::size_t cache_capacity = 128;
  /// Deadline applied to requests that carry no `timeout_ms`; 0 = none.
  double default_timeout_seconds = 0.0;
  /// Responses whose serialized result exceeds this are paged as a
  /// sequence of bounded NDJSON chunk lines instead of one multi-megabyte
  /// line (see HandleRequestAsync). 0 disables paging.
  std::size_t page_bytes = 1 << 20;
  /// Worst-latency requests retained by the slow-query log (the `slowlog`
  /// verb); 0 disables it.
  std::size_t slowlog_capacity = SlowLog::kDefaultCapacity;
};

/// The VALMOD motif-discovery service: long-lived serving state (dataset
/// registry + result cache) plus concurrent request execution (scheduler),
/// speaking a newline-delimited JSON protocol.
///
/// One request per line in; one response out — usually one line, but a
/// result larger than `page_bytes` is paged as several lines:
///
///   {"id":1,"verb":"motifs","dataset":"ecg",
///    "params":{"lmin":100,"lmax":120,"k":3},"priority":0,"timeout_ms":5000}
///   -> {"id":1,"ok":true,"verb":"motifs","cached":false,"result":{...}}
///
/// Paged responses carry the serialized result split across `chunk`
/// string fragments; every page repeats the envelope:
///
///   -> {"id":1,"ok":true,...,"partial":true,"seq":0,"chunk":"{\"size\":"}
///   -> {"id":1,"ok":true,...,"partial":false,"seq":1,"pages":2,
///       "chunk":"1024,...}"}
///
/// (concatenating the chunks in `seq` order reproduces the `result`
/// bytes; the final page has "partial":false and the page count). This
/// envelope-level "partial" — more pages follow — is distinct from the
/// in-result "partial" written by allow_partial, which means the
/// *computation* was deadline-truncated.
///
/// Errors are structured, never fatal, and never paged:
///   -> {"id":1,"ok":false,"verb":"motifs",
///       "error":{"code":"InvalidArgument","message":"..."}}
///
/// Verbs:
///   admin  — load, unload, append, stats, health, faults, calibrate,
///            metrics (OpenMetrics exposition), slowlog (worst-latency
///            requests with span trees), shutdown
///   query  — motifs, valmap, profile, query, discords (scheduled through
///            the bounded queue with priorities/deadlines; responses are
///            memoized in the result cache)
///
/// A request carrying `"trace":true` in its envelope gets the response
/// envelope extended with `trace_id` (16 hex digits) and `trace` (the
/// request's span tree; see service/openmetrics.h RenderTraceJson) — on
/// the final page only, for paged responses, so RetryClient's reassembly
/// surfaces them automatically.
///
/// Identical concurrent cache misses are coalesced by cache key: the
/// first becomes the leader and computes, the rest park as waiters and
/// receive the leader's bytes (flagged "coalesced":true) — one
/// computation, N responses. A failed/cancelled leader fails over to the
/// next waiter instead of erroring everyone; a leader whose own run was
/// deadline-truncated (allow_partial) keeps its partial payload private
/// and the waiters fail over the same way, so truncated bytes are neither
/// cached nor fanned out.
///
/// Overload errors (queue full / request shed) use code ResourceExhausted
/// and carry a `retry_after_ms` backoff hint; see README "Robustness" for
/// the full error-code table and the retry contract.
///
/// All entry points are safe to call from any number of threads. See
/// README "Serving" for the full protocol reference.
class Service {
 public:
  /// Receives one complete response: one or more '\n'-terminated NDJSON
  /// lines (several when the response is paged). Invoked exactly once per
  /// request — synchronously for admin verbs, cache hits, and errors;
  /// from a scheduler worker thread for computed query responses. It must
  /// be callable from any thread and should not block.
  using ResponseCallback = std::function<void(std::string response)>;

  explicit Service(const ServiceOptions& options = {});

  /// Async entry point (the epoll front end's path): processes one
  /// request line and hands the response to `done` instead of blocking
  /// the caller. Never throws and never kills the process: malformed
  /// JSON, unknown verbs, bad params, expired deadlines, and full queues
  /// all come back as structured error responses.
  void HandleRequestAsync(const std::string& line, ResponseCallback done);

  /// Synchronous wrapper over HandleRequestAsync: blocks until the
  /// response is ready and returns the same wire bytes ('\n'-terminated,
  /// paged when large). Used by --stdio mode, which thereby shares the
  /// paged-response encoder with TCP.
  std::string HandleRequest(const std::string& line);

  /// Legacy synchronous single-line entry point: like HandleRequest but
  /// never pages (one response line, no trailing newline), preserving the
  /// original line-in/line-out contract for embedders and tests.
  std::string HandleRequestLine(const std::string& line);

  /// Set by the `shutdown` verb; the front ends exit their accept/read
  /// loops when this turns true.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  DatasetRegistry& registry() { return registry_; }
  ResultCache& result_cache() { return cache_; }
  QueryScheduler& scheduler() { return scheduler_; }
  VerbMetrics& metrics() { return metrics_; }
  SlowLog& slowlog() { return slowlog_; }
  const ServiceOptions& options() const { return options_; }

 private:
  struct RequestContext;

  /// Shared implementation: parse, validate, dispatch. `page_bytes`
  /// bounds the per-line result size (0 = never page).
  void Handle(const std::string& line, std::size_t page_bytes,
              ResponseCallback done);

  /// Submits `ctx` as the leader of its flight (or as a plain request
  /// when it has no cache key). On admission failure the error is
  /// delivered and the flight fails over to the next waiter.
  void ExecuteAsLeader(const std::shared_ptr<RequestContext>& ctx);
  /// Leader's scheduler completion: fan out success, fail over errors and
  /// partial (deadline-truncated) payloads.
  void OnLeaderComplete(const std::shared_ptr<RequestContext>& ctx,
                        const Result<std::string>& result);
  /// Promotes the next parked waiter of `key`'s flight, if any.
  void FailOverFlight(const std::string& key);

  /// Terminal delivery: records per-verb metrics and invokes the
  /// context's callback with the encoded wire bytes. Each context reaches
  /// exactly one Deliver call.
  void DeliverOk(const std::shared_ptr<RequestContext>& ctx,
                 const std::string& payload, bool cached, bool coalesced);
  void DeliverError(const std::shared_ptr<RequestContext>& ctx,
                    const Status& status);

  /// Offers a completed request to the slow-query log; renders the span
  /// tree only when the latency would actually be admitted.
  void RecordSlowRequest(const std::string& verb, double latency_ms, bool ok,
                         const trace::TraceContext* context);

  const ServiceOptions options_;
  DatasetRegistry registry_;
  ResultCache cache_;
  VerbMetrics metrics_;
  SlowLog slowlog_;
  std::atomic<bool> shutdown_{false};
  /// Declared last so it is destroyed first: in-flight completions still
  /// touch the cache and metrics above while the scheduler drains.
  QueryScheduler scheduler_;
};

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_SERVER_H_
