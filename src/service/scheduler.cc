#include "service/scheduler.h"

#include <algorithm>
#include <utility>

namespace valmod::service {

Result<std::string> QueryScheduler::Ticket::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return result_.has_value(); });
  return *result_;
}

bool QueryScheduler::Ticket::Done() {
  std::lock_guard<std::mutex> lock(mutex_);
  return result_.has_value();
}

void QueryScheduler::Ticket::Cancel() {
  cancelled_->store(true, std::memory_order_relaxed);
}

QueryScheduler::QueryScheduler(const SchedulerOptions& options)
    : options_(options) {
  const int workers = std::max(1, options_.num_workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryScheduler::~QueryScheduler() {
  std::vector<std::shared_ptr<Ticket>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    while (!queue_.empty()) {
      orphans.push_back(queue_.top());
      queue_.pop();
      ++counters_.cancelled;
    }
  }
  work_cv_.notify_all();
  // Resolve outside the lock: waiters may wake immediately and re-enter
  // scheduler accessors.
  for (const auto& ticket : orphans) {
    Resolve(ticket, Status::DeadlineExceeded("scheduler shut down"));
  }
  for (std::thread& worker : workers_) worker.join();
}

Result<std::shared_ptr<QueryScheduler::Ticket>> QueryScheduler::Submit(
    Job job, int priority, Deadline deadline) {
  auto ticket = std::make_shared<Ticket>();
  ticket->job_ = std::move(job);
  ticket->priority_ = priority;
  // The job observes cancellation through its own deadline checks.
  ticket->deadline_ = deadline.WithCancelFlag(ticket->cancelled_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      return Status::FailedPrecondition("scheduler is shut down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++counters_.rejected;
      return Status::FailedPrecondition(
          "admission queue full (" + std::to_string(options_.queue_capacity) +
          " requests waiting); retry later");
    }
    ticket->sequence_ = next_sequence_++;
    queue_.push(ticket);
    ++counters_.admitted;
  }
  work_cv_.notify_one();
  return ticket;
}

SchedulerStats QueryScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats stats = counters_;
  stats.queue_depth = queue_.size();
  stats.active = active_;
  return stats;
}

void QueryScheduler::Resolve(const std::shared_ptr<Ticket>& ticket,
                             Result<std::string> result) {
  {
    std::lock_guard<std::mutex> lock(ticket->mutex_);
    if (!ticket->result_.has_value()) {
      ticket->result_.emplace(std::move(result));
    }
  }
  ticket->cv_.notify_all();
}

void QueryScheduler::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Ticket> ticket;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      ticket = queue_.top();
      queue_.pop();
      // Pre-start gates, decided under the lock so counters are exact.
      if (ticket->cancelled_->load(std::memory_order_relaxed)) {
        ++counters_.cancelled;
        lock.unlock();
        Resolve(ticket, Status::DeadlineExceeded(
                            "request cancelled before execution"));
        continue;
      }
      if (ticket->deadline_.Expired()) {
        ++counters_.expired;
        lock.unlock();
        Resolve(ticket, Status::DeadlineExceeded(
                            "deadline expired before execution"));
        continue;
      }
      ++active_;
    }

    Result<std::string> result = ticket->job_(ticket->deadline_);
    // Counters first, then Resolve: a waiter woken by Resolve must already
    // see this request as completed in stats().
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      ++counters_.completed;
    }
    Resolve(ticket, std::move(result));
  }
}

}  // namespace valmod::service
