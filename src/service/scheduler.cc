#include "service/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/fault.h"

namespace valmod::service {

namespace {

double ElapsedSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

Result<std::string> QueryScheduler::Ticket::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return result_.has_value(); });
  return *result_;
}

bool QueryScheduler::Ticket::Done() {
  std::lock_guard<std::mutex> lock(mutex_);
  return result_.has_value();
}

void QueryScheduler::Ticket::Cancel() {
  cancelled_->store(true, std::memory_order_relaxed);
}

QueryScheduler::QueryScheduler(const SchedulerOptions& options)
    : options_(options) {
  const int workers = std::max(1, options_.num_workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryScheduler::~QueryScheduler() {
  std::vector<std::shared_ptr<Ticket>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    orphans.assign(queue_.begin(), queue_.end());
    queue_.clear();
    counters_.cancelled += orphans.size();
  }
  work_cv_.notify_all();
  // Resolve outside the lock: waiters may wake immediately and re-enter
  // scheduler accessors.
  for (const auto& ticket : orphans) {
    Resolve(ticket, Status::DeadlineExceeded("scheduler shut down"));
  }
  for (std::thread& worker : workers_) worker.join();
}

int QueryScheduler::RetryHintMsLocked() const {
  const int workers = std::max(1, options_.num_workers);
  const double backlog = static_cast<double>(queue_.size()) + 1.0;
  const double hint = mean_service_ms_ * backlog / workers;
  return static_cast<int>(std::clamp(hint, 1.0, 30000.0));
}

double QueryScheduler::StallThresholdSeconds(double timeout_seconds) const {
  if (!std::isfinite(timeout_seconds) || timeout_seconds <= 0.0) return -1.0;
  return options_.watchdog_factor * timeout_seconds;
}

Result<std::shared_ptr<QueryScheduler::Ticket>> QueryScheduler::Submit(
    Job job, int priority, Deadline deadline) {
  return Submit(std::move(job), priority, deadline, Completion());
}

Result<std::shared_ptr<QueryScheduler::Ticket>> QueryScheduler::Submit(
    Job job, int priority, Deadline deadline, Completion completion) {
  auto ticket = std::make_shared<Ticket>();
  ticket->job_ = std::move(job);
  ticket->completion_ = std::move(completion);
  ticket->priority_ = priority;
  ticket->timeout_seconds_ = deadline.SecondsRemaining();
  // The job observes cancellation through its own deadline checks.
  ticket->deadline_ = deadline.WithCancelFlag(ticket->cancelled_);
  std::shared_ptr<Ticket> victim;
  int victim_hint = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      return Status::FailedPrecondition("scheduler is shut down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Full. Shed the lowest-priority queued request if the newcomer
      // strictly outranks it; otherwise the newcomer is the lowest-value
      // work and is the one turned away.
      const auto last = queue_.empty() ? queue_.end() : std::prev(queue_.end());
      if (options_.shed_on_overload && last != queue_.end() &&
          (*last)->priority_ < priority) {
        victim = *last;
        queue_.erase(last);
        ++counters_.shed;
        victim_hint = RetryHintMsLocked();
      } else {
        ++counters_.rejected;
        const int hint = RetryHintMsLocked();
        return Status::ResourceExhausted(
                   "admission queue full (" +
                   std::to_string(options_.queue_capacity) +
                   " requests waiting)")
            .SetRetryAfterMs(hint);
      }
    }
    ticket->sequence_ = next_sequence_++;
    ticket->admitted_at_ = std::chrono::steady_clock::now();
    queue_.insert(ticket);
    ++counters_.admitted;
  }
  if (victim) {
    Resolve(victim, Status::ResourceExhausted(
                        "shed from admission queue by a higher-priority "
                        "request")
                        .SetRetryAfterMs(victim_hint));
  }
  work_cv_.notify_one();
  return ticket;
}

SchedulerStats QueryScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats stats = counters_;
  stats.queue_depth = queue_.size();
  stats.active = active_;
  stats.mean_service_ms = service_time_observed_ ? mean_service_ms_ : 0.0;
  stats.mean_queue_wait_ms =
      started_ > 0 ? total_queue_wait_ms_ / static_cast<double>(started_)
                   : 0.0;
  stats.retry_after_ms = RetryHintMsLocked();
  std::size_t stalled = 0;
  for (const auto& [ticket, info] : active_info_) {
    const double threshold = StallThresholdSeconds(info.timeout_seconds);
    if (threshold >= 0.0 && ElapsedSeconds(info.started_at) > threshold) {
      ++stalled;
    }
  }
  stats.stalled = stalled;
  return stats;
}

void QueryScheduler::Resolve(const std::shared_ptr<Ticket>& ticket,
                             Result<std::string> result) {
  Completion completion;
  {
    std::lock_guard<std::mutex> lock(ticket->mutex_);
    if (!ticket->result_.has_value()) {
      ticket->result_.emplace(std::move(result));
      // Claim the completion under the same latch that makes the result
      // write exactly-once; a second Resolve finds it already moved out.
      completion = std::move(ticket->completion_);
      ticket->completion_ = nullptr;
    }
  }
  ticket->cv_.notify_all();
  // Outside both locks: the callback may re-enter the scheduler (e.g. a
  // coalescing fail-over resubmits the next waiter's job). Reading result_
  // unlocked is safe — only the thread that latched it holds a completion,
  // and the latch guarantees no later write.
  if (completion) completion(*ticket->result_);
}

void QueryScheduler::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Ticket> ticket;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      ticket = *queue_.begin();
      queue_.erase(queue_.begin());
      // Pre-start gates, decided under the lock so counters are exact.
      if (ticket->cancelled_->load(std::memory_order_relaxed)) {
        ++counters_.cancelled;
        lock.unlock();
        Resolve(ticket, Status::DeadlineExceeded(
                            "request cancelled before execution"));
        continue;
      }
      if (ticket->deadline_.Expired()) {
        ++counters_.expired;
        lock.unlock();
        Resolve(ticket, Status::DeadlineExceeded(
                            "deadline expired before execution"));
        continue;
      }
      const double wait_ms = ElapsedSeconds(ticket->admitted_at_) * 1e3;
      ++started_;
      total_queue_wait_ms_ += wait_ms;
      counters_.max_queue_wait_ms =
          std::max(counters_.max_queue_wait_ms, wait_ms);
      ++active_;
      active_info_[ticket.get()] =
          ActiveInfo{std::chrono::steady_clock::now(),
                     ticket->timeout_seconds_};
    }

    // The stall fault point models a worker wedged in (or failed by) the
    // backend: a delay spec holds the worker here — visible to the
    // watchdog — while an error spec fails the request as if the engine
    // call itself had faulted.
    const Status fault = VALMOD_FAULT_POINT("scheduler.worker.stall");
    Result<std::string> result =
        fault.ok() ? ticket->job_(ticket->deadline_)
                   : Result<std::string>(fault);
    // Counters first, then Resolve: a waiter woken by Resolve must already
    // see this request as completed in stats().
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = active_info_.find(ticket.get());
      if (it != active_info_.end()) {
        const double elapsed_s = ElapsedSeconds(it->second.started_at);
        const double threshold =
            StallThresholdSeconds(it->second.timeout_seconds);
        if (threshold >= 0.0 && elapsed_s > threshold) ++counters_.overruns;
        // EWMA: smooth enough to ride out one outlier, fresh enough that
        // the retry hint tracks a load shift within a few requests.
        const double elapsed_ms = elapsed_s * 1e3;
        mean_service_ms_ = service_time_observed_
                               ? 0.8 * mean_service_ms_ + 0.2 * elapsed_ms
                               : elapsed_ms;
        service_time_observed_ = true;
        active_info_.erase(it);
      }
      --active_;
      ++counters_.completed;
    }
    Resolve(ticket, std::move(result));
  }
}

}  // namespace valmod::service
