#include "service/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault.h"

namespace valmod::service {

namespace {

constexpr const char* kLineTooLongError =
    "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"InvalidArgument\","
    "\"message\":\"request line exceeds 32 MiB\"}}\n";

/// Binds a loopback listener. `port` 0 picks an ephemeral port; the bound
/// port is written back either way.
Result<int> BindListener(int* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    *port = static_cast<int>(ntohs(bound.sin_port));
  }
  return fd;
}

/// Writes the whole buffer to a blocking client socket. MSG_NOSIGNAL
/// (belt to the SIG_IGN braces in the server main): a client that closed
/// its socket mid-response must surface as a failed send on this
/// connection, never as a SIGPIPE that kills the process — and with it
/// every other client's datasets.
bool SendAll(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t w =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (w <= 0) return false;
    written += static_cast<std::size_t>(w);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Epoll event-loop transport
// ---------------------------------------------------------------------------

class EpollServer : public TcpServer {
 public:
  EpollServer(Service& service, const TcpServerOptions& options)
      : service_(service), options_(options) {}

  ~EpollServer() override {
    {
      std::lock_guard<std::mutex> lock(completions_->mutex);
      completions_->event_fd = -1;
    }
    for (auto& [fd, conn] : connections_) ::close(fd);
    connections_.clear();
    if (event_fd_ >= 0) ::close(event_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  Status Init() {
    port_ = options_.port;
    VALMOD_ASSIGN_OR_RETURN(listen_fd_, BindListener(&port_));
    if (::fcntl(listen_fd_, F_SETFL, O_NONBLOCK) < 0) {
      return Status::IoError(std::string("fcntl: ") + std::strerror(errno));
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::IoError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
    event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (event_fd_ < 0) {
      return Status::IoError(std::string("eventfd: ") +
                             std::strerror(errno));
    }
    completions_->event_fd = event_fd_;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
      return Status::IoError(std::string("epoll_ctl: ") +
                             std::strerror(errno));
    }
    ev.data.fd = event_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0) {
      return Status::IoError(std::string("epoll_ctl: ") +
                             std::strerror(errno));
    }
    return Status::Ok();
  }

  int port() const override { return port_; }

  int Serve() override {
    epoll_event events[64];
    for (;;) {
      DrainCompletions();
      if (service_.shutdown_requested()) {
        if (accepting_) {
          (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          accepting_ = false;
        }
        CloseIdleConnections();
        // Exit once every pending response has been flushed; connections
        // still computing keep the loop alive until their completions
        // arrive through the eventfd.
        if (connections_.empty()) break;
      }
      const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == listen_fd_) {
          AcceptNew();
          continue;
        }
        if (fd == event_fd_) {
          std::uint64_t count = 0;
          (void)!::read(event_fd_, &count, sizeof(count));
          continue;
        }
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConnection(fd);
          continue;
        }
        if (events[i].events & EPOLLIN) OnReadable(fd);
        if (events[i].events & EPOLLOUT) OnWritable(fd);
      }
    }
    // Late completions (jobs still draining inside the scheduler) find
    // the invalidated queue and drop their bytes instead of writing to a
    // dead eventfd or a recycled descriptor.
    {
      std::lock_guard<std::mutex> lock(completions_->mutex);
      completions_->event_fd = -1;
    }
    return 0;
  }

 private:
  /// One nonblocking connection's read/write state machine.
  struct Connection {
    int fd = -1;
    /// Distinguishes this connection from an earlier one that used the
    /// same descriptor: a completion for a closed connection whose fd the
    /// kernel recycled must be dropped, not written to the new client.
    std::uint64_t gen = 0;
    /// Unprocessed input: zero or more buffered complete lines (only
    /// while reads are paused at the in-flight cap) plus a partial line.
    std::string inbuf;
    /// How far inbuf has been scanned for '\n' — a growing partial line
    /// is scanned once per chunk, not once per byte per chunk.
    std::size_t scan_offset = 0;
    /// Responses awaiting the socket, oldest first; out_offset is the
    /// write position within the front element.
    std::deque<std::string> outbox;
    std::size_t out_offset = 0;
    /// Requests dispatched, responses not yet queued.
    int inflight = 0;
    std::uint32_t events = 0;  // currently registered epoll mask
    bool read_eof = false;
    /// Fatal (oversized line / write fault): flush the outbox, then close.
    bool closing = false;
  };

  struct PendingResponse {
    int fd = -1;
    std::uint64_t gen = 0;
    std::string bytes;
  };

  /// Handoff from completion threads (scheduler workers — or the loop
  /// itself, for inline admin/hit/error responses) back to the event
  /// loop. The eventfd is invalidated under the mutex when the loop
  /// exits, so a completion can never write to a dead descriptor.
  struct CompletionQueue {
    std::mutex mutex;
    int event_fd = -1;
    std::vector<PendingResponse> ready;
  };

  void AcceptNew() {
    for (;;) {
      const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (client < 0) break;  // EAGAIN: drained the backlog
      Connection conn;
      conn.fd = client;
      conn.gen = next_gen_++;
      conn.events = EPOLLIN;
      epoll_event ev{};
      ev.events = conn.events;
      ev.data.fd = client;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev) < 0) {
        ::close(client);
        continue;
      }
      connections_.emplace(client, std::move(conn));
    }
  }

  void OnReadable(int fd) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    // Chaos hook: a fired "server.read" fault stands in for the client
    // vanishing (or the kernel erroring) mid-read — drop the connection
    // exactly as a failed read would.
    if (!VALMOD_FAULT_POINT("server.read").ok()) {
      CloseConnection(fd);
      return;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      CloseConnection(fd);
      return;
    }
    if (n == 0) {
      conn.read_eof = true;
      ProcessBufferedLines(conn);
      if (!FlushWrites(conn)) return;
      UpdateInterest(conn);
      return;
    }
    conn.inbuf.append(chunk, static_cast<std::size_t>(n));
    ProcessBufferedLines(conn);
    // Incremental line cap: fires on the chunk that crosses it (the whole
    // remaining inbuf is one unterminated line once scan_offset caught
    // up), not after minutes of buffering toward a newline that never
    // comes.
    if (!conn.closing && conn.scan_offset == conn.inbuf.size() &&
        conn.inbuf.size() > kMaxRequestLineBytes) {
      conn.inbuf.clear();
      conn.inbuf.shrink_to_fit();
      conn.scan_offset = 0;
      conn.outbox.push_back(kLineTooLongError);
      conn.closing = true;
    }
    if (!FlushWrites(conn)) return;
    UpdateInterest(conn);
  }

  void OnWritable(int fd) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    if (!FlushWrites(conn)) return;
    UpdateInterest(conn);
  }

  /// Extracts complete lines and dispatches them, stopping at the
  /// in-flight cap (the remainder stays buffered; UpdateInterest pauses
  /// reads until completions drain).
  void ProcessBufferedLines(Connection& conn) {
    std::size_t start = 0;
    while (!conn.closing && conn.inflight < options_.max_inflight) {
      const std::size_t from =
          conn.scan_offset > start ? conn.scan_offset : start;
      const std::size_t newline = conn.inbuf.find('\n', from);
      if (newline == std::string::npos) {
        conn.scan_offset = conn.inbuf.size();
        break;
      }
      std::string line = conn.inbuf.substr(start, newline - start);
      start = newline + 1;
      conn.scan_offset = start;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      ++conn.inflight;
      DispatchLine(conn, line);
    }
    if (start > 0) {
      conn.inbuf.erase(0, start);
      conn.scan_offset -= start;
    }
  }

  void DispatchLine(const Connection& conn, const std::string& line) {
    service_.HandleRequestAsync(
        line, [queue = completions_, fd = conn.fd,
               gen = conn.gen](std::string response) {
          std::lock_guard<std::mutex> lock(queue->mutex);
          if (queue->event_fd < 0) return;  // loop gone; drop the bytes
          queue->ready.push_back(
              PendingResponse{fd, gen, std::move(response)});
          const std::uint64_t one = 1;
          (void)!::write(queue->event_fd, &one, sizeof(one));
        });
  }

  void DrainCompletions() {
    std::vector<PendingResponse> batch;
    {
      std::lock_guard<std::mutex> lock(completions_->mutex);
      batch.swap(completions_->ready);
    }
    for (PendingResponse& response : batch) {
      const auto it = connections_.find(response.fd);
      if (it == connections_.end() || it->second.gen != response.gen) {
        continue;  // connection closed (and fd possibly recycled)
      }
      Connection& conn = it->second;
      --conn.inflight;
      if (!conn.closing) conn.outbox.push_back(std::move(response.bytes));
      // A freed in-flight slot may unpause buffered pipelined requests.
      ProcessBufferedLines(conn);
      if (!FlushWrites(conn)) continue;
      UpdateInterest(conn);
    }
  }

  /// Writes as much of the outbox as the socket accepts. Returns false
  /// when the connection was closed (write error, fired fault, or
  /// nothing left to do for a finished connection) — the caller must not
  /// touch it again.
  bool FlushWrites(Connection& conn) {
    while (!conn.outbox.empty()) {
      // Chaos hook: a fired "server.write" fault models the client
      // vanishing mid-response.
      if (!VALMOD_FAULT_POINT("server.write").ok()) {
        CloseConnection(conn.fd);
        return false;
      }
      const std::string& front = conn.outbox.front();
      const ssize_t w = ::send(conn.fd, front.data() + conn.out_offset,
                               front.size() - conn.out_offset, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        CloseConnection(conn.fd);
        return false;
      }
      conn.out_offset += static_cast<std::size_t>(w);
      if (conn.out_offset == front.size()) {
        conn.outbox.pop_front();
        conn.out_offset = 0;
      }
    }
    if (conn.outbox.empty() &&
        (conn.closing || (conn.read_eof && conn.inflight == 0))) {
      CloseConnection(conn.fd);
      return false;
    }
    return true;
  }

  void UpdateInterest(Connection& conn) {
    std::uint32_t desired = 0;
    if (!conn.read_eof && !conn.closing &&
        conn.inflight < options_.max_inflight) {
      desired |= EPOLLIN;
    }
    if (!conn.outbox.empty()) desired |= EPOLLOUT;
    if (desired == conn.events) return;
    epoll_event ev{};
    ev.events = desired;
    ev.data.fd = conn.fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
      conn.events = desired;
    }
  }

  void CloseConnection(int fd) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    connections_.erase(it);
  }

  void CloseIdleConnections() {
    for (auto it = connections_.begin(); it != connections_.end();) {
      const Connection& conn = it->second;
      if (conn.outbox.empty() && conn.inflight == 0) {
        (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
        ::close(conn.fd);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }

  Service& service_;
  const TcpServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  int port_ = 0;
  bool accepting_ = true;
  std::uint64_t next_gen_ = 1;
  std::shared_ptr<CompletionQueue> completions_ =
      std::make_shared<CompletionQueue>();
  std::unordered_map<int, Connection> connections_;
};

// ---------------------------------------------------------------------------
// Thread-per-connection transport (legacy, kept for A/B benchmarks)
// ---------------------------------------------------------------------------

class ThreadedServer : public TcpServer {
 public:
  ThreadedServer(Service& service, const TcpServerOptions& options)
      : service_(service), port_(options.port) {}

  ~ThreadedServer() override {
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  Status Init() {
    VALMOD_ASSIGN_OR_RETURN(listen_fd_, BindListener(&port_));
    return Status::Ok();
  }

  int port() const override { return port_; }

  int Serve() override {
    for (;;) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) break;  // listener shut down by the shutdown verb
      Reap();
      Add(client);
    }
    Wake();
    JoinAll();
    return 0;
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void Add(int client_fd) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto conn = std::make_unique<Connection>();
    conn->fd = client_fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] {
      ServeConnection(raw->fd);
      raw->done.store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(conn));
  }

  /// Joins threads whose connections have finished. Called between
  /// accepts; O(live connections).
  void Reap() {
    std::vector<std::unique_ptr<Connection>> finished;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = connections_.begin();
      while (it != connections_.end()) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& conn : finished) conn->thread.join();  // finished: no block
  }

  /// Forces every blocked accept()/read() to return so the process can
  /// exit: close() alone does not reliably wake a thread blocked on the
  /// same fd, shutdown(2) does. Idempotent.
  void Wake() {
    std::lock_guard<std::mutex> lock(mutex_);
    ::shutdown(listen_fd_, SHUT_RDWR);
    for (const auto& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }

  void JoinAll() {
    std::vector<std::unique_ptr<Connection>> remaining;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      remaining.swap(connections_);
    }
    for (auto& conn : remaining) conn->thread.join();
  }

  /// One connection: a serial newline-delimited request stream.
  void ServeConnection(int fd) {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;
      if (!VALMOD_FAULT_POINT("server.read").ok()) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      if (buffer.size() > kMaxRequestLineBytes &&
          buffer.find('\n') == std::string::npos) {
        (void)SendAll(fd, kLineTooLongError, std::strlen(kLineTooLongError));
        break;
      }
      std::size_t newline;
      while ((newline = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        // HandleRequest shares the paged-response encoder with the epoll
        // transport and --stdio; the bytes are already '\n'-terminated.
        const std::string response = service_.HandleRequest(line);
        if (!VALMOD_FAULT_POINT("server.write").ok() ||
            !SendAll(fd, response.data(), response.size())) {
          ::close(fd);
          return;
        }
        if (service_.shutdown_requested()) {
          Wake();  // unblocks the accept loop and every idle client
          ::close(fd);
          return;
        }
      }
    }
    ::close(fd);
  }

  Service& service_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace

Result<std::unique_ptr<TcpServer>> MakeEpollServer(
    Service& service, const TcpServerOptions& options) {
  auto server = std::make_unique<EpollServer>(service, options);
  VALMOD_RETURN_IF_ERROR(server->Init());
  return std::unique_ptr<TcpServer>(std::move(server));
}

Result<std::unique_ptr<TcpServer>> MakeThreadedServer(
    Service& service, const TcpServerOptions& options) {
  auto server = std::make_unique<ThreadedServer>(service, options);
  VALMOD_RETURN_IF_ERROR(server->Init());
  return std::unique_ptr<TcpServer>(std::move(server));
}

}  // namespace valmod::service
