#include "service/result_cache.h"

#include <utility>

namespace valmod::service {

std::shared_ptr<const std::string> ResultCache::GetLocked(
    const std::string& key) {
  if (capacity_ == 0) return nullptr;  // disabled lookups are not counted
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->value;
}

void ResultCache::PutLocked(const std::string& key,
                            std::shared_ptr<const std::string> value) {
  if (capacity_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_.emplace(key, lru_.begin());
  ++counters_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

std::shared_ptr<const std::string> ResultCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetLocked(key);
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const std::string> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  PutLocked(key, std::move(value));
}

ResultCache::FlightLookup ResultCache::GetOrJoin(const std::string& key,
                                                 InFlightWaiter waiter) {
  std::lock_guard<std::mutex> lock(mutex_);
  FlightLookup lookup;
  lookup.value = GetLocked(key);
  if (lookup.value != nullptr) {
    lookup.state = FlightState::kHit;
    return lookup;
  }
  auto it = flights_.find(key);
  if (it != flights_.end()) {
    it->second.push_back(std::move(waiter));
    ++counters_.coalesced;
    lookup.state = FlightState::kJoined;
    return lookup;
  }
  flights_.emplace(key, std::deque<InFlightWaiter>{});
  ++counters_.flights_led;
  lookup.state = FlightState::kLeader;
  return lookup;
}

std::vector<ResultCache::InFlightWaiter> ResultCache::CompleteFlight(
    const std::string& key, std::shared_ptr<const std::string> value,
    bool cache_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cache_value) PutLocked(key, std::move(value));
  std::vector<InFlightWaiter> waiters;
  auto it = flights_.find(key);
  if (it != flights_.end()) {
    waiters.assign(std::make_move_iterator(it->second.begin()),
                   std::make_move_iterator(it->second.end()));
    flights_.erase(it);
    counters_.waiters_served += waiters.size();
  }
  return waiters;
}

std::optional<ResultCache::InFlightWaiter> ResultCache::FailFlight(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = flights_.find(key);
  if (it == flights_.end()) return std::nullopt;
  if (it->second.empty()) {
    flights_.erase(it);
    return std::nullopt;
  }
  InFlightWaiter next = std::move(it->second.front());
  it->second.pop_front();
  ++counters_.failovers;
  return next;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = counters_;
  stats.entries = lru_.size();
  stats.capacity = capacity_;
  stats.inflight = flights_.size();
  return stats;
}

}  // namespace valmod::service
