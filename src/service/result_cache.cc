#include "service/result_cache.h"

#include <utility>

namespace valmod::service {

std::shared_ptr<const std::string> ResultCache::Get(const std::string& key) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->value;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const std::string> value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_.emplace(key, lru_.begin());
  ++counters_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = counters_;
  stats.entries = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace valmod::service
