#ifndef VALMOD_SERVICE_OPENMETRICS_H_
#define VALMOD_SERVICE_OPENMETRICS_H_

#include <string>

#include "common/trace.h"
#include "service/metrics.h"
#include "service/result_cache.h"
#include "service/scheduler.h"

namespace valmod::service {

/// Renders the whole process's telemetry as OpenMetrics text (the
/// Prometheus exposition format): per-verb request counters and cumulative
/// latency histograms from `metrics`, the result-cache and scheduler
/// counters passed in, and — read directly from their process-wide
/// snapshot APIs — the MASS engine cache counters, the FFT plan registry
/// counters, and the per-(target, kernel) SIMD dispatch counters. The
/// output is a complete exposition: every family has a `# TYPE` line,
/// counters carry the `_total` suffix, histograms emit cumulative
/// `_bucket{le="..."}` (in seconds) plus `_sum`/`_count`, and the text
/// ends with `# EOF`.
std::string RenderOpenMetrics(const VerbMetrics& metrics,
                              const ResultCache::Stats& cache,
                              const SchedulerStats& scheduler);

/// Renders a request's span tree as a JSON object:
///   {"wall_ns":N,"dropped":D,"spans":[
///     {"name":"...","parent":-1,"start_ns":S,"duration_ns":D}, ...]}
/// Span indices are implicit (array order matches BeginSpan order), so
/// `parent` references are array indices; `start_ns` is relative to the
/// context's origin. A span still open at render time reports
/// duration_ns 0.
std::string RenderTraceJson(const trace::TraceContext& context);

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_OPENMETRICS_H_
