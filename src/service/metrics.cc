#include "service/metrics.h"

#include <algorithm>
#include <cmath>

namespace valmod::service {

double WelfordAccumulator::StdDev() const { return std::sqrt(Variance()); }

int LatencyHistogram::BucketIndex(double ms) {
  if (!(ms > kMinMs)) return 0;  // underflow, zero, and NaN land in bucket 0
  const double octaves = std::log2(ms / kMinMs);
  const int index =
      static_cast<int>(octaves * static_cast<double>(kBucketsPerDoubling));
  return std::clamp(index, 0, kBucketCount - 1);
}

double LatencyHistogram::BucketLowerMs(int i) {
  return kMinMs *
         std::exp2(static_cast<double>(i) /
                   static_cast<double>(kBucketsPerDoubling));
}

void LatencyHistogram::Record(double ms) {
  if (!std::isfinite(ms) || ms < 0.0) ms = 0.0;
  ++buckets_[static_cast<std::size_t>(BucketIndex(ms))];
  if (count_ == 0 || ms < min_ms_) min_ms_ = ms;
  if (ms > max_ms_) max_ms_ = ms;
  ++count_;
}

std::array<std::uint64_t, LatencyHistogram::kDoublings>
LatencyHistogram::CumulativePerDoubling() const {
  std::array<std::uint64_t, kDoublings> out{};
  std::uint64_t cumulative = 0;
  for (int d = 0; d < kDoublings; ++d) {
    for (int j = 0; j < kBucketsPerDoubling; ++j) {
      cumulative +=
          buckets_[static_cast<std::size_t>(d * kBucketsPerDoubling + j)];
    }
    out[static_cast<std::size_t>(d)] = cumulative;
  }
  return out;
}

double LatencyHistogram::QuantileMs(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, ceil): the smallest bucket whose
  // cumulative count reaches it holds the quantile.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[static_cast<std::size_t>(i)];
    if (cumulative >= rank) {
      // Geometric midpoint of the bucket — the minimum-relative-error
      // point estimate for a log-scale bin — clamped to the observed
      // extremes so a single-sample histogram reports the sample itself.
      const double estimate =
          BucketLowerMs(i) * std::exp2(0.5 / kBucketsPerDoubling);
      return std::clamp(estimate, min_ms_, max_ms_);
    }
  }
  return max_ms_;
}

void VerbMetrics::Record(std::string_view verb, double latency_ms, bool ok) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = verbs_.find(verb);
  if (it == verbs_.end()) {
    it = verbs_.emplace(std::string(verb), PerVerb{}).first;
  }
  PerVerb& entry = it->second;
  entry.welford.Add(latency_ms);
  entry.histogram.Record(latency_ms);
  if (!ok) ++entry.errors;
}

double VerbMetrics::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_at_)
      .count();
}

std::vector<VerbMetrics::VerbSnapshot> VerbMetrics::Snapshot() const {
  const double uptime = UptimeSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<VerbSnapshot> out;
  out.reserve(verbs_.size());
  for (const auto& [verb, entry] : verbs_) {
    VerbSnapshot snapshot;
    snapshot.verb = verb;
    snapshot.count = entry.welford.n;
    snapshot.errors = entry.errors;
    snapshot.mean_ms = entry.welford.mean;
    snapshot.stddev_ms = entry.welford.StdDev();
    snapshot.min_ms = entry.histogram.min_ms();
    snapshot.max_ms = entry.histogram.max_ms();
    snapshot.p50_ms = entry.histogram.QuantileMs(0.50);
    snapshot.p99_ms = entry.histogram.QuantileMs(0.99);
    snapshot.requests_per_second =
        uptime > 0.0 ? static_cast<double>(entry.welford.n) / uptime : 0.0;
    snapshot.sum_ms =
        entry.welford.mean * static_cast<double>(entry.welford.n);
    snapshot.cumulative = entry.histogram.CumulativePerDoubling();
    out.push_back(std::move(snapshot));
  }
  return out;
}

bool SlowLog::WouldAdmit(double latency_ms) const {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() < capacity_) return true;
  for (const Entry& entry : entries_) {
    if (latency_ms > entry.latency_ms) return true;
  }
  return false;
}

void SlowLog::Add(Entry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= capacity_) {
    // Evict the current fastest; keep the older entry on ties so a stream
    // of identical latencies does not churn the log.
    auto fastest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->latency_ms < fastest->latency_ms ||
          (it->latency_ms == fastest->latency_ms &&
           it->sequence > fastest->sequence)) {
        fastest = it;
      }
    }
    if (entry.latency_ms <= fastest->latency_ms) return;
    entries_.erase(fastest);
  }
  entry.sequence = next_sequence_++;
  entries_.push_back(std::move(entry));
}

std::vector<SlowLog::Entry> SlowLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.latency_ms != b.latency_ms) return a.latency_ms > b.latency_ms;
    return a.sequence < b.sequence;
  });
  return out;
}

}  // namespace valmod::service
