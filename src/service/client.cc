#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

namespace valmod::service {

namespace {

timeval ToTimeval(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  return tv;
}

/// splitmix64; the client's deterministic jitter source.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(int port) : TcpTransport(port, Options()) {}

TcpTransport::TcpTransport(int port, const Options& options)
    : port_(port), options_(options) {}

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpTransport::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status TcpTransport::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  // SO_SNDTIMEO also bounds a blocking connect(), standing in for the
  // connect timeout; after the connect it is re-set to the I/O timeout.
  timeval tv = ToTimeval(options_.connect_timeout_seconds);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect to 127.0.0.1:" + std::to_string(port_) +
                           ": " + std::strerror(err));
  }
  tv = ToTimeval(options_.io_timeout_seconds);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  fd_ = fd;
  buffer_.clear();
  return Status::Ok();
}

Result<std::string> TcpTransport::RoundTrip(const std::string& line) {
  VALMOD_RETURN_IF_ERROR(EnsureConnected());
  std::string out = line;
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    // MSG_NOSIGNAL: a server that closed the connection must surface as a
    // retryable kIoError here, not a SIGPIPE in the client process.
    const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      const int err = errno;
      Reset();
      return Status::IoError(std::string("send: ") + std::strerror(err));
    }
    sent += static_cast<std::size_t>(n);
  }
  return ReceiveLine();
}

Result<std::string> TcpTransport::ReceiveLine() {
  if (fd_ < 0) {
    return Status::IoError("not connected: no response line to receive");
  }
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      const int err = errno;
      Reset();
      return Status::IoError(
          n == 0 ? "connection closed before a full response line"
                 : std::string("recv: ") + std::strerror(err));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// RetryClient
// ---------------------------------------------------------------------------

RetryClient::RetryClient(Transport& transport, const RetryOptions& options)
    : transport_(transport),
      options_(options),
      jitter_state_(options.jitter_seed) {}

int RetryClient::DelayMs(int attempt, const json::Value* response) {
  // Server hint wins: it reflects the actual backlog drain rate.
  if (response != nullptr) {
    if (const json::Value* error = response->Find("error")) {
      const double hint = error->GetNumber("retry_after_ms", 0.0);
      if (hint > 0.0) {
        return static_cast<int>(std::min(hint, 60000.0));
      }
    }
  }
  double delay = static_cast<double>(options_.initial_backoff_ms) *
                 std::pow(options_.multiplier, attempt);
  delay = std::min(delay, static_cast<double>(options_.max_backoff_ms));
  if (options_.jitter_fraction > 0.0) {
    jitter_state_ = Mix64(jitter_state_);
    const double unit =
        static_cast<double>(jitter_state_ >> 11) * 0x1.0p-53;  // [0, 1)
    delay *= 1.0 + options_.jitter_fraction * (2.0 * unit - 1.0);
  }
  return std::max(0, static_cast<int>(delay));
}

Result<json::Value> RetryClient::ReassemblePaged(json::Value first) {
  const json::Value* chunk = first.Find("chunk");
  if (chunk == nullptr || !chunk->is_string()) {
    return Status::Internal("paged response: page 0 carries no string chunk");
  }
  if (first.GetNumber("seq", -1.0) != 0.0) {
    return Status::Internal("paged response: first page is not seq 0");
  }
  std::string payload = chunk->AsString();
  json::Value last = std::move(first);
  std::size_t seq = 0;
  while (last.GetBool("partial", false)) {
    Result<std::string> wire = transport_.ReceiveLine();
    if (!wire.ok()) return wire.status();  // kIoError: the retryable class
    ++stats_.pages;
    Result<json::Value> page = json::Parse(*wire);
    if (!page.ok()) return page.status();
    const json::Value* next_chunk = page->Find("chunk");
    if (!page->is_object() || next_chunk == nullptr ||
        !next_chunk->is_string()) {
      return Status::Internal("paged response: page " +
                              std::to_string(seq + 1) +
                              " carries no string chunk");
    }
    ++seq;
    if (page->GetNumber("seq", -1.0) != static_cast<double>(seq)) {
      return Status::Internal("paged response: expected seq " +
                              std::to_string(seq) + ", got " +
                              page->Serialize());
    }
    payload += next_chunk->AsString();
    last = std::move(*page);
  }
  const double pages = last.GetNumber("pages", static_cast<double>(seq + 1));
  if (pages != static_cast<double>(seq + 1)) {
    return Status::Internal(
        "paged response: final page claims " +
        std::to_string(static_cast<long long>(pages)) + " pages, received " +
        std::to_string(seq + 1));
  }
  VALMOD_ASSIGN_OR_RETURN(json::Value result, json::Parse(payload));
  // The caller sees the same shape an unpaged response has: the final
  // page's envelope with the paging bookkeeping replaced by `result`.
  json::Value::Object& envelope = last.AsObject();
  envelope.erase("partial");
  envelope.erase("seq");
  envelope.erase("pages");
  envelope.erase("chunk");
  envelope.emplace("result", std::move(result));
  return last;
}

Result<json::Value> RetryClient::Call(const std::string& line) {
  ++stats_.calls;
  const int max_attempts = std::max(1, options_.max_attempts);
  Status last_transport_error = Status::Ok();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    ++stats_.attempts;
    Result<std::string> wire = transport_.RoundTrip(line);
    if (!wire.ok()) {
      last_transport_error = wire.status();
      if (!options_.retry_io_errors ||
          wire.status().code() != StatusCode::kIoError) {
        return wire.status();
      }
      transport_.Reset();
      if (attempt + 1 < max_attempts) {
        const int delay = DelayMs(attempt, nullptr);
        stats_.backoff_ms_total += static_cast<std::uint64_t>(delay);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      continue;
    }
    Result<json::Value> response = json::Parse(*wire);
    if (!response.ok()) {
      // A server speaking garbage is not retryable: surface it.
      return response.status();
    }
    if (response->is_object() && response->Find("chunk") != nullptr) {
      response = ReassemblePaged(std::move(*response));
      if (!response.ok()) {
        if (response.status().code() != StatusCode::kIoError) {
          return response.status();  // malformed pages: not retryable
        }
        // The stream broke mid-response: same handling as a failed
        // round trip (requests are idempotent reads).
        last_transport_error = response.status();
        if (!options_.retry_io_errors) return response.status();
        transport_.Reset();
        if (attempt + 1 < max_attempts) {
          const int delay = DelayMs(attempt, nullptr);
          stats_.backoff_ms_total += static_cast<std::uint64_t>(delay);
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
        continue;
      }
    }
    bool retryable = false;
    if (response->is_object() && !response->GetBool("ok", false)) {
      if (const json::Value* error = response->Find("error")) {
        const std::string code_name = error->GetString("code", "");
        StatusCode code = StatusCode::kInternal;
        if (StatusCodeFromName(code_name, &code)) {
          retryable = code == StatusCode::kResourceExhausted ||
                      code == StatusCode::kUnavailable;
        }
      }
    }
    if (!retryable || attempt + 1 == max_attempts) {
      if (retryable) ++stats_.gave_up;
      return response;
    }
    const int delay = DelayMs(attempt, &*response);
    stats_.backoff_ms_total += static_cast<std::uint64_t>(delay);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  ++stats_.gave_up;
  return last_transport_error;
}

}  // namespace valmod::service
