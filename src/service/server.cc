#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/json.h"
#include "common/timer.h"
#include "common/trace.h"
#include "service/openmetrics.h"
#include "core/valmod.h"
#include "core/variable_discords.h"
#include "mass/backend.h"
#include "mass/query_search.h"
#include "mp/stamp.h"
#include "mp/stomp.h"
#include "series/generators.h"
#include "series/io.h"
#include "series/znorm.h"
#include "simd/dispatch.h"

namespace valmod::service {

namespace {

using json::Value;

// ---------------------------------------------------------------------------
// Response envelopes
// ---------------------------------------------------------------------------

void AppendEnvelopePrefix(const Value& id, const std::string& verb,
                          bool cached, bool coalesced, std::string* out) {
  *out += "{\"id\":";
  id.SerializeTo(out);
  *out += ",\"ok\":true,\"verb\":";
  json::AppendQuoted(verb, out);
  *out += cached ? ",\"cached\":true" : ",\"cached\":false";
  if (coalesced) *out += ",\"coalesced\":true";
}

/// Wire encoding of a successful response: one '\n'-terminated line when
/// the serialized result fits in `page_bytes` (or paging is off), else
/// ceil(size / page_bytes) chunk lines. Every page repeats the envelope;
/// non-final pages carry "partial":true, the final page "partial":false
/// plus the total page count; concatenating the `chunk` fragments in
/// `seq` order reproduces the result bytes. This envelope "partial" (more
/// pages follow) is unrelated to allow_partial's in-result "partial" (the
/// computation was deadline-truncated).
std::string EncodeOkWire(const Value& id, const std::string& verb, bool cached,
                         bool coalesced, const std::string& payload,
                         std::size_t page_bytes,
                         const std::string& trace_fragment = {}) {
  if (page_bytes == 0 || payload.size() <= page_bytes) {
    std::string out;
    AppendEnvelopePrefix(id, verb, cached, coalesced, &out);
    out += ",\"result\":";
    out += payload;
    out += trace_fragment;
    out += "}\n";
    return out;
  }
  const std::size_t pages = (payload.size() + page_bytes - 1) / page_bytes;
  std::string out;
  out.reserve(payload.size() + pages * 96);
  for (std::size_t i = 0; i < pages; ++i) {
    AppendEnvelopePrefix(id, verb, cached, coalesced, &out);
    const bool last = i + 1 == pages;
    out += last ? ",\"partial\":false" : ",\"partial\":true";
    out += ",\"seq\":";
    out += std::to_string(i);
    if (last) {
      out += ",\"pages\":";
      out += std::to_string(pages);
    }
    out += ",\"chunk\":";
    json::AppendQuoted(
        std::string_view(payload).substr(i * page_bytes, page_bytes), &out);
    // Trace fields ride the FINAL page only: RetryClient's reassembly
    // keeps the last page's envelope, so the reassembled response carries
    // them without any client-side special casing.
    if (last) out += trace_fragment;
    out += "}\n";
  }
  return out;
}


std::string ErrorResponse(const Value& id, const std::string& verb,
                          const Status& status,
                          const std::string& trace_fragment = {}) {
  std::string out = "{\"id\":";
  id.SerializeTo(&out);
  out += ",\"ok\":false";
  if (!verb.empty()) {
    out += ",\"verb\":";
    json::AppendQuoted(verb, &out);
  }
  out += ",\"error\":{\"code\":";
  json::AppendQuoted(StatusCodeName(status.code()), &out);
  out += ",\"message\":";
  json::AppendQuoted(status.message(), &out);
  if (status.retry_after_ms() > 0) {
    out += ",\"retry_after_ms\":";
    out += std::to_string(status.retry_after_ms());
  }
  out += '}';
  out += trace_fragment;
  out += '}';
  return out;
}

/// The `,"trace_id":"...","trace":{...}` envelope suffix for a request
/// that asked for tracing; empty otherwise.
std::string TraceFragment(const trace::TraceContext* context,
                          bool want_trace) {
  if (context == nullptr || !want_trace) return {};
  std::string out = ",\"trace_id\":\"";
  out += trace::TraceIdHex(context->trace_id());
  out += "\",\"trace\":";
  out += RenderTraceJson(*context);
  return out;
}

// ---------------------------------------------------------------------------
// Typed param extraction
// ---------------------------------------------------------------------------

/// Rejects params objects carrying keys the verb does not know, mirroring
/// Flags::RejectUnknown for the protocol: a typo'd "results_versoin" or
/// "lmxa" must fail loudly, not silently run under defaults — the same
/// silent-wrong-label hazard the CLI's closed flag tables eliminate.
Status RejectUnknownParams(const Value& params,
                           std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : params.AsObject()) {
    bool found = false;
    for (const std::string_view k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string message = "unknown param '" + key + "' (accepted:";
      for (const std::string_view k : known) {
        message += ' ';
        message += k;
      }
      message += ")";
      return Status::InvalidArgument(std::move(message));
    }
  }
  return Status::Ok();
}

/// Upper bound on integer-valued params. Far above any meaningful series
/// size / k / thread count, and small enough that the double -> integer
/// casts below are always in range (casting a double above the target
/// type's max is undefined behavior, and params are untrusted input — the
/// server's contract is structured errors, never UB or process death).
constexpr double kMaxIntegerParam = 1e12;

Result<std::size_t> SizeParam(const Value& params, std::string_view key,
                              std::size_t default_value) {
  const Value* v = params.Find(key);
  if (v == nullptr) return default_value;
  if (!v->is_number() || v->AsDouble() < 0.0 ||
      v->AsDouble() > kMaxIntegerParam ||
      v->AsDouble() != std::floor(v->AsDouble())) {
    return Status::InvalidArgument("param '" + std::string(key) +
                                   "' must be an integer in [0, 1e12]");
  }
  return static_cast<std::size_t>(v->AsDouble());
}

Result<int> IntParam(const Value& params, std::string_view key,
                     int default_value) {
  const Value* v = params.Find(key);
  if (v == nullptr) return default_value;
  if (!v->is_number() || v->AsDouble() < 0.0 ||
      v->AsDouble() > 1e6 || v->AsDouble() != std::floor(v->AsDouble())) {
    return Status::InvalidArgument("param '" + std::string(key) +
                                   "' must be an integer in [0, 1e6]");
  }
  return static_cast<int>(v->AsDouble());
}

Result<bool> BoolParam(const Value& params, std::string_view key,
                       bool default_value) {
  const Value* v = params.Find(key);
  if (v == nullptr) return default_value;
  if (!v->is_bool()) {
    return Status::InvalidArgument("param '" + std::string(key) +
                                   "' must be a boolean");
  }
  return v->AsBool();
}

Result<int> ResultsVersionParam(const Value& params) {
  VALMOD_ASSIGN_OR_RETURN(
      int version,
      IntParam(params, "results_version", mass::kResultsVersion));
  if (!mass::IsValidResultsVersion(version)) {
    return Status::InvalidArgument(
        "unknown results_version " + std::to_string(version) + " (valid: " +
        std::to_string(mass::kLegacyResultsVersion) + ", " +
        std::to_string(mass::kResultsVersion) + ")");
  }
  return version;
}

Result<std::vector<double>> DoublesParam(const Value& params,
                                         std::string_view key) {
  const Value* v = params.Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument("param '" + std::string(key) +
                                   "' must be an array of numbers");
  }
  std::vector<double> out;
  out.reserve(v->AsArray().size());
  for (const Value& e : v->AsArray()) {
    if (!e.is_number()) {
      return Status::InvalidArgument("param '" + std::string(key) +
                                     "' must contain only numbers");
    }
    out.push_back(e.AsDouble());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Payload builders
// ---------------------------------------------------------------------------

Value MotifPairValue(const mp::MotifPair& m, std::size_t rank) {
  Value::Object o;
  o.emplace("rank", Value(rank + 1));
  o.emplace("length", Value(m.length));
  o.emplace("offset_a", Value(static_cast<long long>(m.offset_a)));
  o.emplace("offset_b", Value(static_cast<long long>(m.offset_b)));
  o.emplace("distance", Value(m.distance));
  o.emplace("normalized", Value(m.normalized_distance));
  return Value(std::move(o));
}

Value DoublesValue(std::span<const double> values) {
  Value::Array array;
  array.reserve(values.size());
  for (const double v : values) array.push_back(Value(v));
  return Value(std::move(array));
}

Value IntsValue(std::span<const int64_t> values) {
  Value::Array array;
  array.reserve(values.size());
  for (const int64_t v : values) {
    array.push_back(Value(static_cast<long long>(v)));
  }
  return Value(std::move(array));
}

Value ProfileValue(const mp::MatrixProfile& profile) {
  Value::Object o;
  o.emplace("length", Value(profile.subsequence_length));
  o.emplace("exclusion_zone", Value(profile.exclusion_zone));
  // +infinity (no eligible match yet) is not representable in JSON; the
  // protocol uses null, and `indices` already carries -1 there.
  Value::Array distances;
  distances.reserve(profile.distances.size());
  for (const double d : profile.distances) {
    distances.push_back(std::isfinite(d) ? Value(d) : Value(nullptr));
  }
  o.emplace("distances", Value(std::move(distances)));
  o.emplace("indices", IntsValue(profile.indices));
  return Value(std::move(o));
}

// ---------------------------------------------------------------------------
// Query-verb planning: each planner resolves params, derives the cache key
// material, and builds the job that computes the serialized payload.
// ---------------------------------------------------------------------------

struct QueryPlan {
  /// Canonical identity of the computation (see ResultCache); empty
  /// disables caching for this request.
  std::string cache_key;
  QueryScheduler::Job job;
  /// Set true by the job when it returned a deadline-truncated payload
  /// (allow_partial). The server must never cache such a response: it
  /// keeps the plan's cache key, and serving it to a later identical
  /// request would silently degrade an unconstrained caller.
  std::shared_ptr<std::atomic<bool>> partial_flag;
};

/// Key = dataset uid|generation|verb|params|versioning. The *uid* — not
/// the name — identifies the data: names are reusable (unload "ecg", load
/// a different series as "ecg"; static generations restart at 1), and a
/// name-keyed cache would serve the old series' responses for the new
/// one. `engine_backed` adds the results_version and cost-model
/// generation components — profile (STOMP) and discords compute no
/// convolutions, so their bytes are identical under every backend policy
/// and the components would only fragment the cache.
std::string CacheKey(const Dataset& dataset, std::uint64_t generation,
                     std::string_view verb, const std::string& params_key,
                     int results_version, bool engine_backed) {
  std::string key = "ds";
  key += std::to_string(dataset.uid());
  key += "|g";
  key += std::to_string(generation);
  key += "|";
  key += verb;
  key += "|";
  key += params_key;
  if (engine_backed) {
    key += "|rv";
    key += std::to_string(results_version);
    key += "|cm";
    key += std::to_string(mass::BackendCostModelGeneration());
  }
  return key;
}

/// The maintained-top-k fast path for streaming datasets: when the request
/// targets exactly the maintained subsequence length, motifs/discords are
/// read from the incrementally maintained profile (O(W) under the dataset
/// lock, cached per generation) instead of recomputing a batch profile.
/// A nullopt return means "not eligible, use the batch path".
std::optional<QueryPlan> PlanMaintainedMotifs(
    const std::shared_ptr<Dataset>& dataset, std::size_t lmin,
    std::size_t lmax, std::size_t k) {
  const std::size_t native = dataset->streaming_length();
  if (!dataset->streaming()) return std::nullopt;
  if ((lmin != 0 && lmin != native) || (lmax != 0 && lmax != native)) {
    return std::nullopt;
  }
  QueryPlan plan;
  // Generation-keyed like the streaming profile verb: the O(W) maintained
  // read happens only on a cache miss (see PlanProfile for the benign
  // key-races-append note).
  plan.cache_key = CacheKey(*dataset, dataset->generation(), "motifs",
                            "maintained,l=" + std::to_string(native) +
                                ",k=" + std::to_string(k),
                            mass::kResultsVersion, /*engine_backed=*/false);
  plan.job = [dataset, k, native](const Deadline& deadline)
      -> Result<std::string> {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("motifs deadline expired");
    }
    VALMOD_ASSIGN_OR_RETURN(Dataset::StreamingTopK top,
                            dataset->StreamingTopKSnapshot(k, 0));
    Value::Object payload;
    payload.emplace("generation", Value(top.generation));
    payload.emplace("streaming", Value(true));
    payload.emplace("maintained", Value(true));
    payload.emplace("points", Value(top.points));
    payload.emplace("window_start", Value(top.window_start));
    Value::Array ranked;
    ranked.reserve(top.motifs.size());
    for (std::size_t r = 0; r < top.motifs.size(); ++r) {
      mp::MotifPair pair;
      pair.offset_a = static_cast<std::int64_t>(top.motifs[r].offset_a);
      pair.offset_b = static_cast<std::int64_t>(top.motifs[r].offset_b);
      pair.length = native;
      pair.distance = top.motifs[r].distance;
      pair.normalized_distance =
          series::LengthNormalizedDistance(top.motifs[r].distance, native);
      ranked.push_back(MotifPairValue(pair, r));
    }
    Value::Object entry;
    entry.emplace("length", Value(native));
    entry.emplace("motifs", Value(ranked));
    Value::Array per_length;
    per_length.push_back(Value(std::move(entry)));
    payload.emplace("per_length", Value(std::move(per_length)));
    payload.emplace("ranked", Value(std::move(ranked)));
    return Value(std::move(payload)).Serialize();
  };
  return plan;
}

std::optional<QueryPlan> PlanMaintainedDiscords(
    const std::shared_ptr<Dataset>& dataset, std::size_t lmin,
    std::size_t lmax, std::size_t k) {
  const std::size_t native = dataset->streaming_length();
  if (!dataset->streaming()) return std::nullopt;
  if ((lmin != 0 && lmin != native) || (lmax != 0 && lmax != native)) {
    return std::nullopt;
  }
  QueryPlan plan;
  plan.cache_key = CacheKey(*dataset, dataset->generation(), "discords",
                            "maintained,l=" + std::to_string(native) +
                                ",k=" + std::to_string(k),
                            mass::kResultsVersion, /*engine_backed=*/false);
  plan.job = [dataset, k, native](const Deadline& deadline)
      -> Result<std::string> {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("discords deadline expired");
    }
    VALMOD_ASSIGN_OR_RETURN(Dataset::StreamingTopK top,
                            dataset->StreamingTopKSnapshot(0, k));
    Value::Object payload;
    payload.emplace("generation", Value(top.generation));
    payload.emplace("streaming", Value(true));
    payload.emplace("maintained", Value(true));
    payload.emplace("points", Value(top.points));
    payload.emplace("window_start", Value(top.window_start));
    Value::Array discords;
    discords.reserve(top.discords.size());
    for (std::size_t r = 0; r < top.discords.size(); ++r) {
      const mp::DiscordEntry& d = top.discords[r];
      Value::Object out;
      out.emplace("rank", Value(r + 1));
      out.emplace("offset", Value(static_cast<long long>(d.offset)));
      out.emplace("neighbor", Value(static_cast<long long>(d.neighbor)));
      out.emplace("distance", Value(d.distance));
      out.emplace("normalized",
                  Value(series::LengthNormalizedDistance(d.distance, native)));
      discords.push_back(Value(std::move(out)));
    }
    Value::Object entry;
    entry.emplace("length", Value(native));
    entry.emplace("discords", Value(std::move(discords)));
    Value::Array per_length;
    per_length.push_back(Value(std::move(entry)));
    payload.emplace("per_length", Value(std::move(per_length)));
    return Value(std::move(payload)).Serialize();
  };
  return plan;
}

Result<QueryPlan> PlanValmod(const std::shared_ptr<Dataset>& dataset,
                             const Value& params, bool build_valmap) {
  VALMOD_RETURN_IF_ERROR(RejectUnknownParams(
      params, {"lmin", "lmax", "k", "p", "threads", "results_version",
               "allow_partial"}));
  core::ValmodOptions options;
  VALMOD_ASSIGN_OR_RETURN(options.min_length, SizeParam(params, "lmin", 0));
  VALMOD_ASSIGN_OR_RETURN(options.max_length, SizeParam(params, "lmax", 0));
  VALMOD_ASSIGN_OR_RETURN(options.k,
                          SizeParam(params, "k", build_valmap ? 4 : 1));
  if (!build_valmap) {
    // Streaming datasets answer same-length motif requests from the
    // maintained profile — no batch recomputation, no snapshot build.
    if (std::optional<QueryPlan> maintained = PlanMaintainedMotifs(
            dataset, options.min_length, options.max_length, options.k)) {
      return *std::move(maintained);
    }
  }
  VALMOD_ASSIGN_OR_RETURN(options.p, SizeParam(params, "p", 10));
  VALMOD_ASSIGN_OR_RETURN(options.num_threads, IntParam(params, "threads", 1));
  VALMOD_ASSIGN_OR_RETURN(options.results_version,
                          ResultsVersionParam(params));
  VALMOD_ASSIGN_OR_RETURN(options.allow_partial,
                          BoolParam(params, "allow_partial", false));
  options.build_valmap = build_valmap;

  VALMOD_ASSIGN_OR_RETURN(std::shared_ptr<const DatasetSnapshot> snapshot,
                          dataset->Snapshot());
  // `threads` is absent on purpose: results are thread-count independent.
  // `allow_partial` is also absent: a run that *completes* under
  // allow_partial is byte-identical to an unconstrained run, so the two
  // share a cache line; truncated responses are never cached at all
  // (partial_flag below).
  std::string params_key = "lmin=" + std::to_string(options.min_length) +
                           ",lmax=" + std::to_string(options.max_length) +
                           ",k=" + std::to_string(options.k) +
                           ",p=" + std::to_string(options.p);
  QueryPlan plan;
  plan.cache_key =
      CacheKey(*dataset, snapshot->generation(),
               build_valmap ? "valmap" : "motifs", params_key,
               options.results_version, /*engine_backed=*/true);
  plan.partial_flag = std::make_shared<std::atomic<bool>>(false);
  plan.job = [snapshot, options, build_valmap,
              partial_flag = plan.partial_flag](
                 const Deadline& deadline) -> Result<std::string> {
    core::ValmodOptions run_options = options;
    run_options.deadline = deadline;
    VALMOD_ASSIGN_OR_RETURN(core::ValmodResult result,
                            core::RunValmod(snapshot->engine(), run_options));
    Value::Object payload;
    payload.emplace("generation", Value(snapshot->generation()));
    payload.emplace("results_version", Value(options.results_version));
    if (result.partial) {
      partial_flag->store(true, std::memory_order_relaxed);
      payload.emplace("partial", Value(true));
      // The longest length actually covered; per_length is an ascending,
      // gap-free prefix of [lmin, lmax].
      payload.emplace("completed_lmax",
                      Value(result.per_length.back().length));
    }
    if (build_valmap) {
      const core::Valmap& valmap = result.valmap;
      payload.emplace("size", Value(valmap.size()));
      payload.emplace("mpn", DoublesValue(valmap.normalized_profile()));
      payload.emplace("index_profile", IntsValue(valmap.index_profile()));
      Value::Array lp;
      lp.reserve(valmap.length_profile().size());
      for (const std::size_t l : valmap.length_profile()) {
        lp.push_back(Value(l));
      }
      payload.emplace("length_profile", Value(std::move(lp)));
    } else {
      Value::Array per_length;
      per_length.reserve(result.per_length.size());
      for (const core::LengthMotifs& lm : result.per_length) {
        Value::Object entry;
        entry.emplace("length", Value(lm.length));
        Value::Array motifs;
        motifs.reserve(lm.motifs.size());
        for (std::size_t r = 0; r < lm.motifs.size(); ++r) {
          motifs.push_back(MotifPairValue(lm.motifs[r], r));
        }
        entry.emplace("motifs", Value(std::move(motifs)));
        per_length.push_back(Value(std::move(entry)));
      }
      payload.emplace("per_length", Value(std::move(per_length)));
      Value::Array ranked;
      ranked.reserve(result.ranked.size());
      for (std::size_t r = 0; r < result.ranked.size(); ++r) {
        ranked.push_back(MotifPairValue(result.ranked[r], r));
      }
      payload.emplace("ranked", Value(std::move(ranked)));
    }
    return Value(std::move(payload)).Serialize();
  };
  return plan;
}

Result<QueryPlan> PlanProfile(const std::shared_ptr<Dataset>& dataset,
                              const Value& params) {
  VALMOD_RETURN_IF_ERROR(
      RejectUnknownParams(params, {"l", "threads", "algo"}));
  if (dataset->streaming()) {
    if (params.Find("algo") != nullptr) {
      return Status::InvalidArgument(
          "param 'algo' does not apply to streaming datasets (the profile "
          "is maintained incrementally, not recomputed)");
    }
    // The incrementally maintained profile is the dataset's native one;
    // a mismatched length request is an error rather than a silent batch
    // recompute at a different length.
    VALMOD_ASSIGN_OR_RETURN(
        std::size_t length,
        SizeParam(params, "l", dataset->streaming_length()));
    if (length != dataset->streaming_length()) {
      return Status::InvalidArgument(
          "streaming dataset '" + dataset->name() + "' maintains length " +
          std::to_string(dataset->streaming_length()) +
          "; requested l=" + std::to_string(length));
    }
    // The key derives from a cheap locked generation read; the O(n)
    // profile copy happens inside the job, i.e. only on a cache miss — a
    // polling client on a warm cache stays O(1). If an append lands
    // between the key read and the job's snapshot, the job serializes the
    // *newer* state under the older key: benign (generations only
    // advance, so a hit can only ever return data at least as fresh as
    // its key; the payload carries its true generation), and the next
    // plan keys at the new generation and recomputes.
    QueryPlan plan;
    plan.cache_key = CacheKey(*dataset, dataset->generation(), "profile",
                              "l=" + std::to_string(length),
                              mass::kResultsVersion, /*engine_backed=*/false);
    plan.job = [dataset](const Deadline& deadline) -> Result<std::string> {
      if (deadline.Expired()) {
        return Status::DeadlineExceeded("profile deadline expired");
      }
      VALMOD_ASSIGN_OR_RETURN(Dataset::StreamingState state,
                              dataset->StreamingProfileSnapshot());
      Value payload = ProfileValue(state.profile);
      payload.AsObject().emplace("generation", Value(state.generation));
      payload.AsObject().emplace("streaming", Value(true));
      payload.AsObject().emplace("points", Value(state.points));
      payload.AsObject().emplace("window_start", Value(state.window_start));
      return payload.Serialize();
    };
    return plan;
  }

  VALMOD_ASSIGN_OR_RETURN(std::size_t length, SizeParam(params, "l", 0));
  VALMOD_ASSIGN_OR_RETURN(int threads, IntParam(params, "threads", 1));
  const std::string algo = params.GetString("algo", "stomp");
  if (algo != "stomp" && algo != "stamp") {
    return Status::InvalidArgument(
        "param 'algo' must be \"stomp\" (default) or \"stamp\"");
  }
  const bool use_stamp = algo == "stamp";
  VALMOD_ASSIGN_OR_RETURN(std::shared_ptr<const DatasetSnapshot> snapshot,
                          dataset->Snapshot());
  QueryPlan plan;
  // STOMP computes no convolutions, so its bytes are backend-independent
  // and the key skips the rv/cm components. STAMP runs MASS rows through
  // the snapshot's shared engine, so its key carries them — and the algo
  // tag, so the two algorithms' (numerically ~1e-9-apart) results never
  // alias one cache entry.
  plan.cache_key = CacheKey(*dataset, snapshot->generation(), "profile",
                            "l=" + std::to_string(length) +
                                (use_stamp ? ",algo=stamp" : ""),
                            mass::kResultsVersion,
                            /*engine_backed=*/use_stamp);
  plan.job = [snapshot, length, threads,
              use_stamp](const Deadline& deadline) -> Result<std::string> {
    mp::ProfileOptions options;
    options.num_threads = threads;
    options.deadline = deadline;
    VALMOD_ASSIGN_OR_RETURN(
        mp::MatrixProfile profile,
        use_stamp ? mp::ComputeStamp(snapshot->engine(), length, options)
                  : mp::ComputeStomp(snapshot->series(), length, options));
    Value payload = ProfileValue(profile);
    payload.AsObject().emplace("generation", Value(snapshot->generation()));
    payload.AsObject().emplace("streaming", Value(false));
    if (use_stamp) payload.AsObject().emplace("algo", Value("stamp"));
    return payload.Serialize();
  };
  return plan;
}

Result<QueryPlan> PlanQuery(const std::shared_ptr<Dataset>& dataset,
                            const Value& params) {
  VALMOD_RETURN_IF_ERROR(
      RejectUnknownParams(params, {"values", "k", "results_version"}));
  mass::QuerySearchOptions options;
  VALMOD_ASSIGN_OR_RETURN(options.k, SizeParam(params, "k", 1));
  VALMOD_ASSIGN_OR_RETURN(options.results_version,
                          ResultsVersionParam(params));
  VALMOD_ASSIGN_OR_RETURN(std::vector<double> query,
                          DoublesParam(params, "values"));
  VALMOD_ASSIGN_OR_RETURN(std::shared_ptr<const DatasetSnapshot> snapshot,
                          dataset->Snapshot());

  // The query values are part of the computation's identity, so the key
  // embeds their canonical serialization (queries are subsequence-sized —
  // tens to hundreds of points — so the key stays small).
  std::string params_key = "k=" + std::to_string(options.k) + ",values=";
  DoublesValue(query).SerializeTo(&params_key);
  QueryPlan plan;
  plan.cache_key =
      CacheKey(*dataset, snapshot->generation(), "query", params_key,
               options.results_version, /*engine_backed=*/true);
  auto shared_query = std::make_shared<std::vector<double>>(std::move(query));
  plan.job = [snapshot, options,
              shared_query](const Deadline& deadline) -> Result<std::string> {
    mass::QuerySearchOptions run_options = options;
    run_options.deadline = deadline;
    VALMOD_ASSIGN_OR_RETURN(
        std::vector<mass::QueryMatch> matches,
        mass::FindQueryMatches(snapshot->engine(), *shared_query,
                               run_options));
    Value::Object payload;
    payload.emplace("generation", Value(snapshot->generation()));
    payload.emplace("results_version", Value(options.results_version));
    Value::Array out;
    out.reserve(matches.size());
    for (std::size_t r = 0; r < matches.size(); ++r) {
      Value::Object m;
      m.emplace("rank", Value(r + 1));
      m.emplace("offset", Value(static_cast<long long>(matches[r].offset)));
      m.emplace("distance", Value(matches[r].distance));
      out.push_back(Value(std::move(m)));
    }
    payload.emplace("matches", Value(std::move(out)));
    return Value(std::move(payload)).Serialize();
  };
  return plan;
}

Result<QueryPlan> PlanDiscords(const std::shared_ptr<Dataset>& dataset,
                               const Value& params) {
  VALMOD_RETURN_IF_ERROR(
      RejectUnknownParams(params, {"lmin", "lmax", "k", "threads"}));
  core::VariableDiscordOptions options;
  VALMOD_ASSIGN_OR_RETURN(options.min_length, SizeParam(params, "lmin", 0));
  VALMOD_ASSIGN_OR_RETURN(options.max_length, SizeParam(params, "lmax", 0));
  VALMOD_ASSIGN_OR_RETURN(options.k, SizeParam(params, "k", 1));
  VALMOD_ASSIGN_OR_RETURN(options.num_threads, IntParam(params, "threads", 1));
  // Same-length requests against a streaming dataset read the maintained
  // profile instead of recomputing (see PlanMaintainedMotifs).
  if (std::optional<QueryPlan> maintained = PlanMaintainedDiscords(
          dataset, options.min_length, options.max_length, options.k)) {
    return *std::move(maintained);
  }
  VALMOD_ASSIGN_OR_RETURN(std::shared_ptr<const DatasetSnapshot> snapshot,
                          dataset->Snapshot());
  std::string params_key = "lmin=" + std::to_string(options.min_length) +
                           ",lmax=" + std::to_string(options.max_length) +
                           ",k=" + std::to_string(options.k);
  QueryPlan plan;
  plan.cache_key = CacheKey(*dataset, snapshot->generation(), "discords",
                            params_key, mass::kResultsVersion,
                            /*engine_backed=*/false);
  plan.job = [snapshot,
              options](const Deadline& deadline) -> Result<std::string> {
    core::VariableDiscordOptions run_options = options;
    run_options.deadline = deadline;
    VALMOD_ASSIGN_OR_RETURN(
        core::VariableDiscordResult result,
        core::FindVariableLengthDiscords(snapshot->series(), run_options));
    Value::Object payload;
    payload.emplace("generation", Value(snapshot->generation()));
    Value::Array per_length;
    per_length.reserve(result.per_length.size());
    for (const core::LengthDiscords& ld : result.per_length) {
      Value::Object entry;
      entry.emplace("length", Value(ld.length));
      Value::Array discords;
      discords.reserve(ld.discords.size());
      for (std::size_t r = 0; r < ld.discords.size(); ++r) {
        const mp::Discord& d = ld.discords[r];
        Value::Object out;
        out.emplace("rank", Value(r + 1));
        out.emplace("offset", Value(static_cast<long long>(d.offset)));
        out.emplace("neighbor",
                    Value(static_cast<long long>(d.nearest_neighbor)));
        out.emplace("distance", Value(d.distance));
        out.emplace("normalized",
                    Value(series::LengthNormalizedDistance(d.distance,
                                                           d.length)));
        discords.push_back(Value(std::move(out)));
      }
      entry.emplace("discords", Value(std::move(discords)));
      per_length.push_back(Value(std::move(entry)));
    }
    payload.emplace("per_length", Value(std::move(per_length)));
    return Value(std::move(payload)).Serialize();
  };
  return plan;
}

// ---------------------------------------------------------------------------
// Admin verbs (executed inline: they are registry/metadata operations, not
// compute, so they never queue behind heavy queries)
// ---------------------------------------------------------------------------

Value DatasetInfoValue(const DatasetRegistry::Info& info) {
  Value::Object o;
  o.emplace("name", Value(info.name));
  o.emplace("points", Value(info.points));
  o.emplace("generation", Value(info.generation));
  o.emplace("streaming", Value(info.streaming));
  if (info.streaming) {
    o.emplace("streaming_length", Value(info.streaming_length));
    o.emplace("max_points", Value(info.max_points));
    o.emplace("evicted", Value(info.evicted));
    o.emplace("total_appended", Value(info.total_appended));
    if (info.max_points > 0) {
      o.emplace("window_occupancy",
                Value(static_cast<double>(info.points) /
                      static_cast<double>(info.max_points)));
    }
  }
  o.emplace("memory_bytes", Value(info.memory_bytes));
  return Value(std::move(o));
}

Result<std::string> DoLoad(DatasetRegistry& registry, const std::string& name,
                           const Value& params) {
  if (name.empty()) {
    return Status::InvalidArgument("load requires a 'dataset' name");
  }
  VALMOD_RETURN_IF_ERROR(RejectUnknownParams(
      params, {"streaming_length", "exclusion_fraction", "max_points",
               "window", "path", "column", "generator", "n", "seed",
               "allow_nonfinite"}));
  std::shared_ptr<Dataset> dataset;
  if (params.Find("streaming_length") != nullptr) {
    VALMOD_ASSIGN_OR_RETURN(std::size_t length,
                            SizeParam(params, "streaming_length", 0));
    const double exclusion = params.GetNumber("exclusion_fraction", 0.5);
    // `window` is an alias for `max_points` (0 = unbounded). Both are
    // accepted for protocol symmetry with the docs; disagreeing values are
    // an error rather than a silent precedence rule.
    VALMOD_ASSIGN_OR_RETURN(std::size_t max_points,
                            SizeParam(params, "max_points", 0));
    VALMOD_ASSIGN_OR_RETURN(std::size_t window, SizeParam(params, "window", 0));
    if (max_points != 0 && window != 0 && max_points != window) {
      return Status::InvalidArgument(
          "params 'max_points' and 'window' are aliases and disagree (" +
          std::to_string(max_points) + " vs " + std::to_string(window) + ")");
    }
    if (max_points == 0) max_points = window;
    VALMOD_ASSIGN_OR_RETURN(
        dataset,
        registry.CreateStreaming(name, length, exclusion, max_points));
  } else if (params.Find("path") != nullptr) {
    VALMOD_ASSIGN_OR_RETURN(std::size_t column, SizeParam(params, "column", 0));
    series::ReadOptions read_options;
    VALMOD_ASSIGN_OR_RETURN(read_options.allow_nonfinite,
                            BoolParam(params, "allow_nonfinite", false));
    VALMOD_ASSIGN_OR_RETURN(
        series::DataSeries series,
        series::ReadDelimited(params.GetString("path", ""), column,
                              read_options));
    VALMOD_ASSIGN_OR_RETURN(dataset,
                            registry.LoadSeries(name, std::move(series)));
  } else if (params.Find("generator") != nullptr) {
    VALMOD_ASSIGN_OR_RETURN(std::size_t n, SizeParam(params, "n", 20000));
    // Generator size is bounded so a typo'd request exhausts neither time
    // nor memory (1e8 points is ~800 MB of doubles before stats).
    if (n > 100000000) {
      return Status::InvalidArgument("generator 'n' must be <= 1e8");
    }
    VALMOD_ASSIGN_OR_RETURN(std::size_t seed, SizeParam(params, "seed", 1));
    VALMOD_ASSIGN_OR_RETURN(
        series::DataSeries series,
        synth::ByName(params.GetString("generator", ""), n,
                      static_cast<std::uint64_t>(seed)));
    VALMOD_ASSIGN_OR_RETURN(dataset,
                            registry.LoadSeries(name, std::move(series)));
  } else {
    return Status::InvalidArgument(
        "load params must carry 'path', 'generator', or 'streaming_length'");
  }
  Value::Object payload;
  payload.emplace("name", Value(dataset->name()));
  payload.emplace("points", Value(dataset->size()));
  payload.emplace("generation", Value(dataset->generation()));
  payload.emplace("streaming", Value(dataset->streaming()));
  if (dataset->streaming()) {
    payload.emplace("max_points", Value(dataset->max_points()));
  }
  return Value(std::move(payload)).Serialize();
}

Result<std::string> DoAppend(DatasetRegistry& registry,
                             const std::string& name, const Value& params) {
  if (name.empty()) {
    return Status::InvalidArgument("append requires a 'dataset' name");
  }
  VALMOD_RETURN_IF_ERROR(RejectUnknownParams(params, {"values"}));
  VALMOD_ASSIGN_OR_RETURN(std::shared_ptr<Dataset> dataset,
                          registry.Get(name));
  VALMOD_ASSIGN_OR_RETURN(std::vector<double> values,
                          DoublesParam(params, "values"));
  VALMOD_ASSIGN_OR_RETURN(Dataset::AppendResult appended,
                          dataset->Append(values));
  Value::Object payload;
  payload.emplace("points", Value(appended.points));
  payload.emplace("subsequences", Value(appended.subsequences));
  payload.emplace("generation", Value(appended.generation));
  payload.emplace("window_start", Value(appended.window_start));
  payload.emplace("evicted", Value(appended.evicted));
  payload.emplace("total_appended", Value(appended.total_appended));
  return Value(std::move(payload)).Serialize();
}

Result<std::string> DoStats(Service& service) {
  Value::Object payload;
  Value::Array datasets;
  for (const DatasetRegistry::Info& info : service.registry().List()) {
    datasets.push_back(DatasetInfoValue(info));
  }
  payload.emplace("datasets", Value(std::move(datasets)));

  const ResultCache::Stats cache = service.result_cache().stats();
  Value::Object cache_obj;
  cache_obj.emplace("entries", Value(cache.entries));
  cache_obj.emplace("capacity", Value(cache.capacity));
  cache_obj.emplace("hits", Value(cache.hits));
  cache_obj.emplace("misses", Value(cache.misses));
  cache_obj.emplace("insertions", Value(cache.insertions));
  cache_obj.emplace("evictions", Value(cache.evictions));
  cache_obj.emplace("inflight", Value(cache.inflight));
  cache_obj.emplace("coalesced", Value(cache.coalesced));
  cache_obj.emplace("failovers", Value(cache.failovers));
  cache_obj.emplace("flights_led", Value(cache.flights_led));
  cache_obj.emplace("waiters_served", Value(cache.waiters_served));
  payload.emplace("cache", Value(std::move(cache_obj)));

  const SchedulerStats sched = service.scheduler().stats();
  Value::Object sched_obj;
  sched_obj.emplace("queue_depth", Value(sched.queue_depth));
  sched_obj.emplace("active", Value(sched.active));
  sched_obj.emplace("admitted", Value(sched.admitted));
  sched_obj.emplace("completed", Value(sched.completed));
  sched_obj.emplace("rejected", Value(sched.rejected));
  sched_obj.emplace("shed", Value(sched.shed));
  sched_obj.emplace("cancelled", Value(sched.cancelled));
  sched_obj.emplace("expired", Value(sched.expired));
  sched_obj.emplace("overruns", Value(sched.overruns));
  sched_obj.emplace("stalled", Value(sched.stalled));
  sched_obj.emplace("mean_queue_wait_ms", Value(sched.mean_queue_wait_ms));
  sched_obj.emplace("max_queue_wait_ms", Value(sched.max_queue_wait_ms));
  sched_obj.emplace("mean_service_ms", Value(sched.mean_service_ms));
  sched_obj.emplace("retry_after_ms", Value(sched.retry_after_ms));
  payload.emplace("scheduler", Value(std::move(sched_obj)));

  // Per-verb latency/throughput: exact mean/stddev from the Welford
  // accumulators, p50/p99 from the log-scale histograms.
  Value::Array verbs;
  for (const VerbMetrics::VerbSnapshot& v : service.metrics().Snapshot()) {
    Value::Object o;
    o.emplace("verb", Value(v.verb));
    o.emplace("count", Value(v.count));
    o.emplace("errors", Value(v.errors));
    o.emplace("mean_ms", Value(v.mean_ms));
    o.emplace("stddev_ms", Value(v.stddev_ms));
    o.emplace("min_ms", Value(v.min_ms));
    o.emplace("max_ms", Value(v.max_ms));
    o.emplace("p50_ms", Value(v.p50_ms));
    o.emplace("p99_ms", Value(v.p99_ms));
    o.emplace("requests_per_second", Value(v.requests_per_second));
    verbs.push_back(Value(std::move(o)));
  }
  payload.emplace("verbs", Value(std::move(verbs)));
  payload.emplace("uptime_seconds", Value(service.metrics().UptimeSeconds()));

  payload.emplace("cost_model_generation",
                  Value(mass::BackendCostModelGeneration()));
  payload.emplace("default_results_version", Value(mass::kResultsVersion));
  payload.emplace("simd_target",
                  Value(std::string(simd::TargetName(simd::ActiveTarget()))));
  payload.emplace("cpu_features", Value(simd::CpuFeatureString()));
  return Value(std::move(payload)).Serialize();
}

/// Lists every armed fault point with its trigger state. Shared by the
/// `faults` verb's response and by `health` (armed faults mark the process
/// degraded — chaos harnesses must never be mistaken for a healthy server).
Value FaultListValue() {
  Value::Array points;
  if constexpr (fault::kFaultInjectionEnabled) {
    for (const fault::FaultPointInfo& info :
         fault::FaultInjector::Global().List()) {
      Value::Object o;
      o.emplace("point", Value(info.point));
      switch (info.spec.kind) {
        case fault::FaultKind::kError:
          o.emplace("kind", Value("error"));
          o.emplace("code", Value(std::string(
                                StatusCodeName(info.spec.code))));
          break;
        case fault::FaultKind::kDelay:
          o.emplace("kind", Value("delay"));
          o.emplace("delay_ms", Value(info.spec.delay_ms));
          break;
        case fault::FaultKind::kAllocFail:
          o.emplace("kind", Value("alloc"));
          break;
      }
      o.emplace("hits", Value(info.hits));
      o.emplace("fires", Value(info.fires));
      points.push_back(Value(std::move(o)));
    }
  }
  return Value(std::move(points));
}

/// `faults` verb: arm/disarm fault points at runtime, for chaos testing a
/// live server without restarting it. Unavailable (structured, not fatal)
/// when the build compiled fault injection out.
Result<std::string> DoFaults(const Value& params) {
  VALMOD_RETURN_IF_ERROR(
      RejectUnknownParams(params, {"arm", "disarm", "disarm_all"}));
  if constexpr (!fault::kFaultInjectionEnabled) {
    return Status::Unavailable(
        "fault injection compiled out (build with -DVALMOD_FAULT_INJECTION=ON)");
  }
  fault::FaultInjector& injector = fault::FaultInjector::Global();
  if (const Value* arm = params.Find("arm")) {
    if (!arm->is_string()) {
      return Status::InvalidArgument("param 'arm' must be a directive string");
    }
    VALMOD_RETURN_IF_ERROR(injector.ArmFromString(arm->AsString()));
  }
  if (const Value* disarm = params.Find("disarm")) {
    if (!disarm->is_string()) {
      return Status::InvalidArgument(
          "param 'disarm' must be a fault point name");
    }
    injector.Disarm(disarm->AsString());
  }
  VALMOD_ASSIGN_OR_RETURN(const bool disarm_all,
                          BoolParam(params, "disarm_all", false));
  if (disarm_all) injector.DisarmAll();
  Value::Object payload;
  payload.emplace("armed", FaultListValue());
  return Value(std::move(payload)).Serialize();
}

/// `health` verb: one cheap, always-serviceable probe that summarizes
/// whether the process is degraded — stalled workers, a saturated
/// admission queue, or armed fault points — without queueing behind the
/// very overload it is reporting.
Result<std::string> DoHealth(Service& service) {
  const SchedulerStats sched = service.scheduler().stats();
  Value::Array reasons;
  if (sched.stalled > 0) {
    reasons.push_back(Value("stalled_workers"));
  }
  if (sched.queue_depth >= service.options().queue_capacity) {
    reasons.push_back(Value("admission_queue_full"));
  }
  int faults_armed = 0;
  if constexpr (fault::kFaultInjectionEnabled) {
    faults_armed = fault::FaultInjector::Global().armed_count();
  }
  if (faults_armed > 0) {
    reasons.push_back(Value("faults_armed"));
  }
  Value::Object payload;
  payload.emplace("status", Value(reasons.empty() ? "ok" : "degraded"));
  payload.emplace("reasons", Value(std::move(reasons)));
  payload.emplace("stalled", Value(sched.stalled));
  payload.emplace("active", Value(sched.active));
  payload.emplace("queue_depth", Value(sched.queue_depth));
  payload.emplace("queue_capacity", Value(service.options().queue_capacity));
  payload.emplace("datasets", Value(service.registry().List().size()));
  payload.emplace("faults_armed", Value(faults_armed));
  payload.emplace("simd_target",
                  Value(std::string(simd::TargetName(simd::ActiveTarget()))));
  return Value(std::move(payload)).Serialize();
}

/// `metrics` verb: the whole process's telemetry as OpenMetrics text. The
/// exposition rides the NDJSON protocol as a JSON string field, so an
/// operator (or scrape bridge) issues {"verb":"metrics"} and writes the
/// `body` bytes through verbatim.
Result<std::string> DoMetrics(Service& service) {
  const std::string body =
      RenderOpenMetrics(service.metrics(), service.result_cache().stats(),
                        service.scheduler().stats());
  std::string payload = "{\"format\":\"openmetrics\",\"body\":";
  json::AppendQuoted(body, &payload);
  payload += '}';
  return payload;
}

/// `slowlog` verb: the worst-latency requests the server has completed,
/// slowest first, each with its span tree when tracing was on.
Result<std::string> DoSlowlog(Service& service) {
  std::string payload = "{\"entries\":[";
  bool first = true;
  for (const SlowLog::Entry& entry : service.slowlog().Snapshot()) {
    if (!first) payload += ',';
    first = false;
    payload += "{\"verb\":";
    json::AppendQuoted(entry.verb, &payload);
    payload += ",\"latency_ms\":";
    payload += Value(entry.latency_ms).Serialize();
    payload += entry.ok ? ",\"ok\":true" : ",\"ok\":false";
    if (!entry.trace_id.empty()) {
      payload += ",\"trace_id\":";
      json::AppendQuoted(entry.trace_id, &payload);
    }
    if (!entry.spans_json.empty()) {
      payload += ",\"trace\":";
      payload += entry.spans_json;
    }
    payload += '}';
  }
  payload += "]}";
  return payload;
}

Result<std::string> DoCalibrate() {
  const mass::BackendCostModel model = mass::CalibrateBackendCostModel();
  Value::Object weights;
  weights.emplace("direct", Value(model.direct));
  weights.emplace("fft_single", Value(model.fft_single));
  weights.emplace("fft_pair", Value(model.fft_pair));
  weights.emplace("overlap_save", Value(model.overlap_save));
  weights.emplace("overlap_save_chunk", Value(model.overlap_save_chunk));
  Value::Object payload;
  payload.emplace("model", Value(std::move(weights)));
  payload.emplace("simd_target",
                  Value(std::string(simd::TargetName(model.simd_target))));
  payload.emplace("cost_model_generation",
                  Value(mass::BackendCostModelGeneration()));
  return Value(std::move(payload)).Serialize();
}

}  // namespace

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
             .count() *
         1e3;
}

/// Blocking adapter for the sync entry points: parks the caller until the
/// async path invokes the captured callback (which may happen on a
/// scheduler worker thread).
struct SyncWaiter {
  std::mutex mutex;
  std::condition_variable cv;
  std::string response;
  bool signalled = false;
};

Service::ResponseCallback CaptureInto(std::shared_ptr<SyncWaiter> waiter) {
  return [waiter = std::move(waiter)](std::string response) {
    {
      std::lock_guard<std::mutex> lock(waiter->mutex);
      waiter->response = std::move(response);
      waiter->signalled = true;
    }
    waiter->cv.notify_one();
  };
}

std::string AwaitResponse(SyncWaiter& waiter) {
  std::unique_lock<std::mutex> lock(waiter.mutex);
  waiter.cv.wait(lock, [&] { return waiter.signalled; });
  return std::move(waiter.response);
}

}  // namespace

/// One query request in flight through the async path: everything needed
/// to execute it (or re-execute it after a fail-over promotion), deliver
/// its response, and account for it — independent of the calling thread.
struct Service::RequestContext {
  Value id;
  std::string verb;
  QueryScheduler::Job job;
  std::shared_ptr<std::atomic<bool>> partial_flag;
  std::string cache_key;
  int priority = 0;
  Deadline deadline;
  std::size_t page_bytes = 0;
  ResponseCallback done;
  std::chrono::steady_clock::time_point started_at;
  /// Per-request span tree; null when tracing is globally disabled. Shared
  /// with the job wrapper, which rebinds it on the executing worker.
  std::shared_ptr<trace::TraceContext> trace_context;
  /// Index of the root "request" span in trace_context.
  int root_span = -1;
  /// Whether the envelope asked for the span tree back ("trace":true).
  bool want_trace = false;
};

Service::Service(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_capacity),
      slowlog_(options.slowlog_capacity),
      scheduler_(SchedulerOptions{options.workers, options.queue_capacity}) {}

void Service::HandleRequestAsync(const std::string& line,
                                 ResponseCallback done) {
  Handle(line, options_.page_bytes, std::move(done));
}

std::string Service::HandleRequest(const std::string& line) {
  auto waiter = std::make_shared<SyncWaiter>();
  Handle(line, options_.page_bytes, CaptureInto(waiter));
  return AwaitResponse(*waiter);
}

std::string Service::HandleRequestLine(const std::string& line) {
  auto waiter = std::make_shared<SyncWaiter>();
  Handle(line, /*page_bytes=*/0, CaptureInto(waiter));
  std::string wire = AwaitResponse(*waiter);
  if (!wire.empty() && wire.back() == '\n') wire.pop_back();
  return wire;
}

void Service::Handle(const std::string& line, std::size_t page_bytes,
                     ResponseCallback done) {
  const auto started = std::chrono::steady_clock::now();
  Value id;  // null until the request proves parseable
  std::string verb;
  bool want_trace = false;

  // Every request gets a span tree while tracing is globally on; the
  // `trace` envelope param only controls whether it is *returned*. The
  // root "request" span covers arrival through delivery start; stage
  // spans nest under it. Binding the context here makes TraceSpans fire
  // for everything resolved inline on this thread (parse, planning, admin
  // verbs); the job wrapper rebinds on the scheduler worker.
  std::shared_ptr<trace::TraceContext> tctx;
  int root_span = -1;
  if (trace::Enabled()) {
    tctx = std::make_shared<trace::TraceContext>();
    root_span = tctx->BeginSpan("request", -1);
  }
  const trace::ScopedBinding bind(trace::Binding{tctx.get(), root_span});

  // Synchronous delivery for everything resolved inline: admin verbs,
  // cache hits, and every validation error. (The query path below moves
  // `done` into its context instead; control flow guarantees these
  // lambdas are never touched after that.)
  const auto fail = [&](const Status& status) {
    const std::string label = verb.empty() ? "invalid" : verb;
    const double latency_ms = ElapsedMs(started);
    metrics_.Record(label, latency_ms, /*ok=*/false);
    if (tctx != nullptr) tctx->EndSpan(root_span);
    RecordSlowRequest(label, latency_ms, /*ok=*/false, tctx.get());
    done(ErrorResponse(id, verb, status, TraceFragment(tctx.get(), want_trace)) +
         "\n");
  };
  const auto ok = [&](const std::string& payload, bool cached) {
    const double latency_ms = ElapsedMs(started);
    metrics_.Record(verb, latency_ms, /*ok=*/true);
    if (tctx != nullptr) tctx->EndSpan(root_span);
    RecordSlowRequest(verb, latency_ms, /*ok=*/true, tctx.get());
    done(EncodeOkWire(id, verb, cached, /*coalesced=*/false, payload,
                      page_bytes, TraceFragment(tctx.get(), want_trace)));
  };

  Result<Value> parsed = [&] {
    const trace::TraceSpan span("parse");
    return json::Parse(line);
  }();
  if (!parsed.ok()) return fail(parsed.status());
  const Value& request = *parsed;
  if (!request.is_object()) {
    return fail(Status::InvalidArgument("request must be a JSON object"));
  }
  if (const Value* idv = request.Find("id")) id = *idv;
  verb = request.GetString("verb", "");
  if (verb.empty()) {
    return fail(
        Status::InvalidArgument("request must carry a string 'verb'"));
  }
  if (const Value* tv = request.Find("trace")) {
    if (!tv->is_bool()) {
      return fail(Status::InvalidArgument("'trace' must be a boolean"));
    }
    want_trace = tv->AsBool();
  }
  Value params{Value::Object{}};
  if (const Value* p = request.Find("params")) {
    if (!p->is_object()) {
      return fail(Status::InvalidArgument("'params' must be an object"));
    }
    params = *p;
  }
  const std::string dataset_name = request.GetString("dataset", "");

  // ---- admin verbs: inline ----
  if (verb == "load") {
    Result<std::string> payload = DoLoad(registry_, dataset_name, params);
    if (!payload.ok()) return fail(payload.status());
    return ok(*payload, /*cached=*/false);
  }
  if (verb == "unload") {
    if (dataset_name.empty()) {
      return fail(
          Status::InvalidArgument("unload requires a 'dataset' name"));
    }
    const Status status = registry_.Unload(dataset_name);
    if (!status.ok()) return fail(status);
    std::string payload = "{\"unloaded\":";
    json::AppendQuoted(dataset_name, &payload);
    payload += "}";
    return ok(payload, /*cached=*/false);
  }
  if (verb == "append") {
    Result<std::string> payload = DoAppend(registry_, dataset_name, params);
    if (!payload.ok()) return fail(payload.status());
    return ok(*payload, /*cached=*/false);
  }
  if (verb == "stats") {
    Result<std::string> payload = DoStats(*this);
    if (!payload.ok()) return fail(payload.status());
    return ok(*payload, /*cached=*/false);
  }
  if (verb == "calibrate") {
    Result<std::string> payload = DoCalibrate();
    if (!payload.ok()) return fail(payload.status());
    return ok(*payload, /*cached=*/false);
  }
  if (verb == "faults") {
    Result<std::string> payload = DoFaults(params);
    if (!payload.ok()) return fail(payload.status());
    return ok(*payload, /*cached=*/false);
  }
  if (verb == "health") {
    Result<std::string> payload = DoHealth(*this);
    if (!payload.ok()) return fail(payload.status());
    return ok(*payload, /*cached=*/false);
  }
  if (verb == "metrics") {
    Result<std::string> payload = DoMetrics(*this);
    if (!payload.ok()) return fail(payload.status());
    return ok(*payload, /*cached=*/false);
  }
  if (verb == "slowlog") {
    Result<std::string> payload = DoSlowlog(*this);
    if (!payload.ok()) return fail(payload.status());
    return ok(*payload, /*cached=*/false);
  }
  if (verb == "shutdown") {
    shutdown_.store(true, std::memory_order_release);
    return ok("{\"shutting_down\":true}", /*cached=*/false);
  }

  // ---- query verbs: coalesce -> scheduler ----
  const bool is_query_verb = verb == "motifs" || verb == "valmap" ||
                             verb == "profile" || verb == "query" ||
                             verb == "discords";
  if (!is_query_verb) {
    return fail(Status::InvalidArgument("unknown verb '" + verb + "'"));
  }
  if (dataset_name.empty()) {
    return fail(
        Status::InvalidArgument(verb + " requires a 'dataset' name"));
  }
  Result<std::shared_ptr<Dataset>> dataset = registry_.Get(dataset_name);
  if (!dataset.ok()) return fail(dataset.status());

  Result<QueryPlan> plan = [&]() -> Result<QueryPlan> {
    const trace::TraceSpan span("plan");
    if (verb == "motifs") return PlanValmod(*dataset, params, false);
    if (verb == "valmap") return PlanValmod(*dataset, params, true);
    if (verb == "profile") return PlanProfile(*dataset, params);
    if (verb == "query") return PlanQuery(*dataset, params);
    return PlanDiscords(*dataset, params);
  }();
  if (!plan.ok()) return fail(plan.status());

  // Envelope numerics: wrong *types* are rejected (a string "5000" for
  // timeout_ms silently running unbounded would be the opposite of the
  // requested deadline); out-of-range *values* are clamped — an absurd
  // timeout means "effectively forever" and an absurd priority still
  // orders correctly, while unchecked double -> integer casts on
  // untrusted values would be undefined behavior.
  for (const char* field : {"timeout_ms", "priority"}) {
    const Value* v = request.Find(field);
    if (v != nullptr && !v->is_number()) {
      return fail(Status::InvalidArgument(std::string("'") + field +
                                          "' must be a number"));
    }
  }
  const double timeout_ms =
      std::min(request.GetNumber("timeout_ms", -1.0), 8.64e10);  // <= 1000d
  Deadline deadline;
  if (timeout_ms >= 0.0) {
    deadline = Deadline::After(timeout_ms / 1000.0);
  } else if (options_.default_timeout_seconds > 0.0) {
    deadline = Deadline::After(options_.default_timeout_seconds);
  }

  auto ctx = std::make_shared<RequestContext>();
  ctx->id = id;
  ctx->verb = verb;
  ctx->partial_flag = plan->partial_flag;
  ctx->cache_key = std::move(plan->cache_key);
  ctx->priority = static_cast<int>(
      std::clamp(request.GetNumber("priority", 0.0), -1.0e6, 1.0e6));
  ctx->deadline = deadline;
  ctx->page_bytes = page_bytes;
  ctx->done = std::move(done);
  ctx->started_at = started;
  ctx->trace_context = tctx;
  ctx->root_span = root_span;
  ctx->want_trace = want_trace;
  // The fault point's hit counter increments once per job *execution*
  // while armed, which is exactly what the coalescing tests and the
  // bench's miss-storm probe count as "underlying computations".
  ctx->job = [job = std::move(plan->job)](
                 const Deadline& d) -> Result<std::string> {
    const Status fault = VALMOD_FAULT_POINT("server.query.compute");
    if (!fault.ok()) return fault;
    return job(d);
  };

  if (ctx->cache_key.empty()) {
    // No computation identity: nothing to look up or coalesce against.
    ExecuteAsLeader(ctx);
    return;
  }
  ResultCache::InFlightWaiter waiter;
  waiter.deliver = [this, ctx](std::shared_ptr<const std::string> value) {
    if (ctx->deadline.Expired()) {
      DeliverError(ctx, Status::DeadlineExceeded(
                            "deadline expired while coalesced behind an "
                            "identical in-flight request"));
      return;
    }
    DeliverOk(ctx, *value, /*cached=*/false, /*coalesced=*/true);
  };
  waiter.promote = [this, ctx] { ExecuteAsLeader(ctx); };
  int cache_span = -1;
  if (tctx != nullptr) cache_span = tctx->BeginSpan("cache_lookup", root_span);
  const ResultCache::FlightLookup lookup =
      cache_.GetOrJoin(ctx->cache_key, std::move(waiter));
  if (tctx != nullptr) tctx->EndSpan(cache_span);
  switch (lookup.state) {
    case ResultCache::FlightState::kHit:
      DeliverOk(ctx, *lookup.value, /*cached=*/true, /*coalesced=*/false);
      return;
    case ResultCache::FlightState::kJoined:
      return;  // parked; the leader's completion fans out to us
    case ResultCache::FlightState::kLeader:
      ExecuteAsLeader(ctx);
      return;
  }
}

void Service::ExecuteAsLeader(const std::shared_ptr<RequestContext>& ctx) {
  QueryScheduler::Job job = ctx->job;
  if (ctx->trace_context != nullptr) {
    // Wrap at submit time (not in ctx->job itself) so the context never
    // owns a closure that captures its own shared_ptr. The queue_wait
    // span runs from here until a worker picks the job up; rebinding on
    // the worker lets engine-level TraceSpans attach under the root.
    auto tctx = ctx->trace_context;
    const int root = ctx->root_span;
    const int queue_span = tctx->BeginSpan("queue_wait", root);
    job = [job = std::move(job), tctx, root,
           queue_span](const Deadline& d) -> Result<std::string> {
      tctx->EndSpan(queue_span);
      const trace::ScopedBinding bind(trace::Binding{tctx.get(), root});
      const trace::TraceSpan span("compute");
      return job(d);
    };
  }
  Result<std::shared_ptr<QueryScheduler::Ticket>> ticket = scheduler_.Submit(
      std::move(job), ctx->priority, ctx->deadline,
      [this, ctx](const Result<std::string>& result) {
        OnLeaderComplete(ctx, result);
      });
  if (!ticket.ok()) {
    // Never admitted, so the completion will not fire. Deliver the
    // overload error here and pass leadership on — a parked waiter may
    // carry a higher priority or arrive at a drained queue.
    const std::string key = ctx->cache_key;
    DeliverError(ctx, ticket.status());
    if (!key.empty()) FailOverFlight(key);
  }
}

void Service::OnLeaderComplete(const std::shared_ptr<RequestContext>& ctx,
                               const Result<std::string>& result) {
  const std::string& key = ctx->cache_key;
  if (!result.ok()) {
    DeliverError(ctx, result.status());
    if (!key.empty()) FailOverFlight(key);
    return;
  }
  const bool partial = ctx->partial_flag != nullptr &&
                       ctx->partial_flag->load(std::memory_order_relaxed);
  if (partial) {
    // A deadline-truncated payload is private to the leader that opted
    // into allow_partial: it is never cached, and fanning it out would
    // hand waiters a truncated answer they did not ask for — the next
    // waiter computes for itself instead.
    DeliverOk(ctx, *result, /*cached=*/false, /*coalesced=*/false);
    if (!key.empty()) FailOverFlight(key);
    return;
  }
  auto value = std::make_shared<const std::string>(*result);
  // Close the flight (store the value, collect the waiters) BEFORE
  // delivering to the leader: the moment the leader's client sees its
  // response, an identical follow-up request must find a cache hit, not
  // a stale open flight.
  std::vector<ResultCache::InFlightWaiter> waiters;
  if (!key.empty()) {
    waiters = cache_.CompleteFlight(key, value, /*cache_value=*/true);
  }
  DeliverOk(ctx, *value, /*cached=*/false, /*coalesced=*/false);
  for (ResultCache::InFlightWaiter& waiter : waiters) {
    waiter.deliver(value);
  }
}

void Service::FailOverFlight(const std::string& key) {
  // The promotion runs outside the cache lock; a promotion that fails
  // admission recurses here with one fewer waiter, so the chain always
  // terminates.
  if (std::optional<ResultCache::InFlightWaiter> next =
          cache_.FailFlight(key)) {
    next->promote();
  }
}

void Service::DeliverOk(const std::shared_ptr<RequestContext>& ctx,
                        const std::string& payload, bool cached,
                        bool coalesced) {
  const double latency_ms = ElapsedMs(ctx->started_at);
  metrics_.Record(ctx->verb, latency_ms, /*ok=*/true);
  trace::TraceContext* tctx = ctx->trace_context.get();
  // The root span closes before the fragment renders so the returned tree
  // accounts for the full queued + computed interval. The serialize span
  // lands after that render — it cannot appear in its own response — but
  // it does reach the slowlog entry, which renders just before delivery:
  // recording ahead of done() guarantees that once a client holds its
  // response, the request is already visible to a `slowlog` scrape (done()
  // unblocks synchronous callers, which would otherwise race this thread).
  if (tctx != nullptr) tctx->EndSpan(ctx->root_span);
  const std::string fragment = TraceFragment(tctx, ctx->want_trace);
  std::string wire;
  {
    const trace::ScopedBinding bind(trace::Binding{tctx, ctx->root_span});
    const trace::TraceSpan span("serialize");
    wire = EncodeOkWire(ctx->id, ctx->verb, cached, coalesced, payload,
                        ctx->page_bytes, fragment);
  }
  RecordSlowRequest(ctx->verb, latency_ms, /*ok=*/true, tctx);
  ctx->done(std::move(wire));
}

void Service::DeliverError(const std::shared_ptr<RequestContext>& ctx,
                           const Status& status) {
  const double latency_ms = ElapsedMs(ctx->started_at);
  metrics_.Record(ctx->verb, latency_ms, /*ok=*/false);
  trace::TraceContext* tctx = ctx->trace_context.get();
  if (tctx != nullptr) tctx->EndSpan(ctx->root_span);
  RecordSlowRequest(ctx->verb, latency_ms, /*ok=*/false, tctx);
  ctx->done(ErrorResponse(ctx->id, ctx->verb, status,
                          TraceFragment(tctx, ctx->want_trace)) +
            "\n");
}

void Service::RecordSlowRequest(const std::string& verb, double latency_ms,
                                bool ok, const trace::TraceContext* context) {
  if (!slowlog_.WouldAdmit(latency_ms)) return;
  SlowLog::Entry entry;
  entry.verb = verb;
  entry.latency_ms = latency_ms;
  entry.ok = ok;
  if (context != nullptr) {
    entry.trace_id = trace::TraceIdHex(context->trace_id());
    entry.spans_json = RenderTraceJson(*context);
  }
  slowlog_.Add(std::move(entry));
}

}  // namespace valmod::service
