#ifndef VALMOD_SERVICE_TCP_SERVER_H_
#define VALMOD_SERVICE_TCP_SERVER_H_

#include <cstddef>
#include <memory>

#include "common/result.h"
#include "service/server.h"

namespace valmod::service {

/// Longest accepted request line. Generous (a 1M-point append of
/// full-precision doubles fits), but bounded and enforced *incrementally*:
/// the moment a connection's unterminated line crosses the cap — mid
/// nonblocking read, without waiting for a newline — it gets a structured
/// error and is dropped, so a client streaming garbage cannot grow a
/// buffer until the process is killed.
inline constexpr std::size_t kMaxRequestLineBytes = 32u << 20;  // 32 MiB

struct TcpServerOptions {
  /// 0 binds an ephemeral port; the real one is readable via port()
  /// before Serve() is called, so tests never race for a fixed port.
  int port = 0;
  /// Per-connection cap on requests submitted but not yet answered
  /// (epoll transport only). At the cap the connection's reads pause —
  /// EPOLLIN is disarmed — until responses drain: backpressure through
  /// the kernel socket buffer to the client, instead of unbounded
  /// server-side queueing for one aggressive pipeliner.
  int max_inflight = 64;
};

/// A TCP front end serving a Service on 127.0.0.1 (localhost only: the
/// server executes file loads and unbounded compute on behalf of clients,
/// so it is strictly a local tool). The listener is bound at creation;
/// Serve() blocks until the service's `shutdown` verb fires (all pending
/// responses are flushed first) or the listener dies.
class TcpServer {
 public:
  virtual ~TcpServer() = default;

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolved even when options.port was 0).
  virtual int port() const = 0;

  /// Blocks serving connections; returns a process exit code (0 = clean
  /// shutdown).
  virtual int Serve() = 0;

 protected:
  TcpServer() = default;
};

/// The default transport: a single-threaded epoll event loop. Nonblocking
/// acceptor; per-connection read/write state machines with buffered
/// partial lines and backpressure-aware writes; requests flow through
/// Service::HandleRequestAsync, and completions (from scheduler worker
/// threads) re-arm the connection for writing via an eventfd wake instead
/// of parking a blocked thread per client.
Result<std::unique_ptr<TcpServer>> MakeEpollServer(
    Service& service, const TcpServerOptions& options);

/// The legacy transport: one blocking thread per connection. Kept working
/// for A/B benchmarks against the event loop (bench_service drives both).
Result<std::unique_ptr<TcpServer>> MakeThreadedServer(
    Service& service, const TcpServerOptions& options);

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_TCP_SERVER_H_
