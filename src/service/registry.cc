#include "service/registry.h"

#include <atomic>
#include <utility>

#include "common/fault.h"

namespace valmod::service {

namespace {

/// Process-unique dataset ids (see Dataset::uid). Starts at 1 so 0 reads
/// as "no dataset".
std::uint64_t NextDatasetUid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::shared_ptr<Dataset> Dataset::CreateStatic(std::string name,
                                               series::DataSeries series) {
  auto dataset = std::shared_ptr<Dataset>(new Dataset());
  dataset->name_ = std::move(name);
  dataset->uid_ = NextDatasetUid();
  dataset->snapshot_ =
      std::make_shared<DatasetSnapshot>(std::move(series), /*generation=*/1);
  return dataset;
}

Result<std::shared_ptr<Dataset>> Dataset::CreateStreaming(
    std::string name, std::size_t subsequence_length,
    double exclusion_fraction, std::size_t max_points) {
  mp::StreamingOptions options;
  options.exclusion_fraction = exclusion_fraction;
  options.max_points = max_points;
  VALMOD_ASSIGN_OR_RETURN(
      mp::StreamingProfile profile,
      mp::StreamingProfile::Create(subsequence_length, options));
  auto dataset = std::shared_ptr<Dataset>(new Dataset());
  dataset->name_ = std::move(name);
  dataset->uid_ = NextDatasetUid();
  dataset->streaming_length_ = subsequence_length;
  dataset->max_points_ = max_points;
  dataset->streaming_.emplace(std::move(profile));
  return dataset;
}

std::uint64_t Dataset::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

std::size_t Dataset::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streaming_) return streaming_->size();
  return snapshot_ ? snapshot_->series().size() : 0;
}

Result<std::shared_ptr<const DatasetSnapshot>> Dataset::Snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (snapshot_ && snapshot_->generation() == generation_) return snapshot_;
  // Streaming dataset whose snapshot trails the appends (or was never
  // built): materialize a DataSeries from the appended values at the
  // current generation. The build is O(n) plus the engine's lazily built
  // caches; it happens at most once per generation, on the first query
  // that needs batch access after an append.
  if (!streaming_) {
    return Status::Internal("static dataset lost its snapshot");
  }
  if (streaming_->size() == 0) {
    return Status::FailedPrecondition(
        "streaming dataset '" + name_ + "' has no points yet");
  }
  // Models the O(n) snapshot materialization failing; the dataset keeps
  // its appended values and the next query retries the build.
  VALMOD_RETURN_IF_ERROR(VALMOD_FAULT_POINT("registry.snapshot.alloc"));
  const auto values = streaming_->values();
  // The stats are centered at 0 over the anchor-shifted values rather than
  // at the materialized window's own mean: z-normalized queries cannot tell
  // the difference, but it makes `centered()` bit-stable while the window
  // grows in place, which is what lets the new engine adopt the previous
  // generation's overlap-save chunk spectra below.
  VALMOD_ASSIGN_OR_RETURN(
      series::DataSeries series,
      series::DataSeries::CreateWithCenter({values.begin(), values.end()},
                                           /*center=*/0.0));
  auto next =
      std::make_shared<DatasetSnapshot>(std::move(series), generation_);
  // Pure-extension fast path: if the retained values are the previous
  // snapshot's values plus appended points (same anchor epoch, same window
  // start, grew), seed the new engine's chunk-spectra cache from the old
  // one so only the chunks the new points touch are recomputed —
  // O(new points), not O(n), per generation.
  if (snapshot_ && snapshot_points_ > 0 &&
      snapshot_anchor_epoch_ == streaming_->anchor_epoch() &&
      snapshot_window_start_ == streaming_->window_start() &&
      snapshot_points_ <= values.size()) {
    next->engine().AdoptChunkSpectraFrom(snapshot_->engine(),
                                         snapshot_points_);
  }
  snapshot_ = std::move(next);
  snapshot_points_ = values.size();
  snapshot_anchor_epoch_ = streaming_->anchor_epoch();
  snapshot_window_start_ = streaming_->window_start();
  return snapshot_;
}

Result<Dataset::AppendResult> Dataset::Append(std::span<const double> values) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!streaming_) {
    return Status::FailedPrecondition(
        "dataset '" + name_ + "' is not streaming; append is not supported");
  }
  if (values.empty()) {
    return Status::InvalidArgument("append requires at least one value");
  }
  VALMOD_RETURN_IF_ERROR(streaming_->AppendAll(values));
  ++generation_;  // invalidates cached snapshot and every result-cache key
  AppendResult result;
  result.points = streaming_->size();
  result.subsequences = streaming_->NumSubsequences();
  result.generation = generation_;
  result.window_start = streaming_->window_start();
  result.evicted = streaming_->window_start();
  result.total_appended = streaming_->total_appended();
  return result;
}

Result<Dataset::StreamingState> Dataset::StreamingProfileSnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!streaming_) {
    return Status::FailedPrecondition(
        "dataset '" + name_ + "' is not streaming; it has no incremental "
        "profile (use the profile verb with a length instead)");
  }
  StreamingState state;
  state.profile = streaming_->ProfileSnapshot();  // copy under the lock
  state.generation = generation_;
  state.points = streaming_->size();
  state.window_start = streaming_->window_start();
  return state;
}

Result<Dataset::StreamingTopK> Dataset::StreamingTopKSnapshot(
    std::size_t k_motifs, std::size_t k_discords) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!streaming_) {
    return Status::FailedPrecondition(
        "dataset '" + name_ + "' is not streaming; it has no maintained "
        "top-k (use the motifs/discords verbs with a length range instead)");
  }
  StreamingTopK top;
  top.motifs = streaming_->TopMotifs(k_motifs);
  top.discords = streaming_->TopDiscords(k_discords);
  top.generation = generation_;
  top.points = streaming_->size();
  top.window_start = streaming_->window_start();
  return top;
}

Dataset::MemoryInfo Dataset::Memory() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MemoryInfo info;
  if (streaming_) {
    info.memory_bytes = streaming_->MemoryBytes();
    info.retained = streaming_->size();
    info.max_points = max_points_;
    info.evicted_total = streaming_->window_start();
    info.total_appended = streaming_->total_appended();
  } else if (snapshot_) {
    info.retained = snapshot_->series().size();
    info.total_appended = info.retained;
  }
  if (snapshot_) {
    info.memory_bytes += snapshot_->series().MemoryBytes() +
                         snapshot_->engine().CacheMemoryBytes();
  }
  return info;
}

Result<std::shared_ptr<Dataset>> DatasetRegistry::LoadSeries(
    const std::string& name, series::DataSeries series) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (datasets_.count(name) > 0) {
    return Status::FailedPrecondition(
        "dataset '" + name + "' is already loaded (unload it first)");
  }
  // Models the allocation of the dataset's series/stats arrays failing:
  // the name must stay unclaimed and the registry untouched, so a retried
  // load after the fault clears succeeds.
  VALMOD_RETURN_IF_ERROR(VALMOD_FAULT_POINT("registry.load.alloc"));
  auto dataset = Dataset::CreateStatic(name, std::move(series));
  datasets_.emplace(name, dataset);
  return dataset;
}

Result<std::shared_ptr<Dataset>> DatasetRegistry::CreateStreaming(
    const std::string& name, std::size_t subsequence_length,
    double exclusion_fraction, std::size_t max_points) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (datasets_.count(name) > 0) {
    return Status::FailedPrecondition(
        "dataset '" + name + "' is already loaded (unload it first)");
  }
  VALMOD_ASSIGN_OR_RETURN(
      std::shared_ptr<Dataset> dataset,
      Dataset::CreateStreaming(name, subsequence_length, exclusion_fraction,
                               max_points));
  datasets_.emplace(name, dataset);
  return dataset;
}

Result<std::shared_ptr<Dataset>> DatasetRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset named '" + name + "'");
  }
  return it->second;
}

Status DatasetRegistry::Unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset named '" + name + "'");
  }
  // In-flight requests hold their own shared_ptr; this only drops the name.
  datasets_.erase(it);
  return Status::Ok();
}

std::vector<DatasetRegistry::Info> DatasetRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Info> infos;
  infos.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) {
    Info info;
    info.name = name;
    info.points = dataset->size();
    info.generation = dataset->generation();
    info.streaming = dataset->streaming();
    info.streaming_length = dataset->streaming_length();
    info.max_points = dataset->max_points();
    const Dataset::MemoryInfo memory = dataset->Memory();
    info.evicted = memory.evicted_total;
    info.total_appended = memory.total_appended;
    info.memory_bytes = memory.memory_bytes;
    infos.push_back(std::move(info));
  }
  return infos;
}

std::size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return datasets_.size();
}

}  // namespace valmod::service
