#ifndef VALMOD_SERVICE_METRICS_H_
#define VALMOD_SERVICE_METRICS_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace valmod::service {

/// Streaming mean/variance accumulator (Welford's algorithm): O(1) memory,
/// numerically stable, no sample buffer — the `struct stats {n, mean, M2}`
/// pattern the Linux perf tooling uses for exactly this job. Percentiles
/// cannot come from it, which is what the bucket histogram below is for.
struct WelfordAccumulator {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void Add(double x) {
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
  }

  /// Population variance; 0 until two samples exist.
  double Variance() const {
    return n > 1 ? m2 / static_cast<double>(n) : 0.0;
  }
  double StdDev() const;
};

/// Fixed log-scale latency histogram: quarter-octave buckets (4 per
/// doubling) from 1 µs to ~4.6 hours, so the whole range a request could
/// plausibly take lives in 132 fixed counters — O(1) memory per verb, no
/// sample buffers, and p50/p99 estimates whose relative error is bounded by
/// the bucket width (2^(1/4) ≈ 19%). Records are lock-free after the
/// owner's mutex (see VerbMetrics); the histogram itself is plain counters.
class LatencyHistogram {
 public:
  /// Quarter-octave resolution: bucket i covers
  /// [kMinMs * 2^(i/4), kMinMs * 2^((i+1)/4)). Bucket 0 also absorbs
  /// underflow, the last bucket absorbs overflow.
  static constexpr double kMinMs = 1e-3;  // 1 µs
  static constexpr int kBucketsPerDoubling = 4;
  static constexpr int kDoublings = 33;  // 1 µs * 2^33 ≈ 2.4 h
  static constexpr int kBucketCount = kBucketsPerDoubling * kDoublings;

  void Record(double ms);

  /// Latency (ms) at quantile q in [0, 1], estimated as the geometric
  /// midpoint of the bucket where the cumulative count crosses q·n.
  /// 0 when empty.
  double QuantileMs(double q) const;

  std::uint64_t count() const { return count_; }
  double min_ms() const { return count_ > 0 ? min_ms_ : 0.0; }
  double max_ms() const { return max_ms_; }

  /// Cumulative counts at per-doubling granularity for the OpenMetrics
  /// exposition: element d is the number of samples <= kMinMs * 2^(d+1)
  /// (the upper edge of doubling d), for d in [0, kDoublings). The final
  /// element equals count() because the top bucket absorbs overflow, so
  /// the renderer adds only the +Inf bucket. Coarsening 4:1 keeps the
  /// scrape at 33 series per verb instead of 132 while the native
  /// quarter-octave resolution still backs QuantileMs.
  std::array<std::uint64_t, kDoublings> CumulativePerDoubling() const;

  /// Lower bound of bucket `i` in milliseconds (exposed for tests).
  static double BucketLowerMs(int i);
  /// Bucket index for a latency (exposed for tests).
  static int BucketIndex(double ms);

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
};

/// Per-verb request metrics for the `stats` verb: a Welford accumulator
/// (exact mean/stddev) plus a log-scale histogram (p50/p99) and an error
/// counter per verb, under one mutex. Request rates come from the recorder
/// uptime, so throughput needs no extra state.
class VerbMetrics {
 public:
  VerbMetrics() : started_at_(std::chrono::steady_clock::now()) {}

  VerbMetrics(const VerbMetrics&) = delete;
  VerbMetrics& operator=(const VerbMetrics&) = delete;

  /// Records one completed request for `verb`. `ok` tracks the error rate;
  /// latency is recorded either way (errors have latency too, and an
  /// overloaded server's error latency is exactly what an operator needs).
  void Record(std::string_view verb, double latency_ms, bool ok);

  struct VerbSnapshot {
    std::string verb;
    std::uint64_t count = 0;
    std::uint64_t errors = 0;
    double mean_ms = 0.0;
    double stddev_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double requests_per_second = 0.0;  // count / recorder uptime
    /// Total latency (ms) over all samples — welford.mean * n, exact up to
    /// the accumulator's rounding; the OpenMetrics histogram `_sum`.
    double sum_ms = 0.0;
    /// Cumulative per-doubling bucket counts for the OpenMetrics
    /// histogram; see LatencyHistogram::CumulativePerDoubling.
    std::array<std::uint64_t, LatencyHistogram::kDoublings> cumulative{};
  };

  /// Sorted by verb name.
  std::vector<VerbSnapshot> Snapshot() const;

  double UptimeSeconds() const;

 private:
  struct PerVerb {
    WelfordAccumulator welford;
    LatencyHistogram histogram;
    std::uint64_t errors = 0;
  };

  const std::chrono::steady_clock::time_point started_at_;
  mutable std::mutex mutex_;
  std::map<std::string, PerVerb, std::less<>> verbs_;
};

/// Bounded log of the worst-latency requests the server has completed: a
/// fixed-capacity set ordered by latency, so the memory cost is capacity *
/// one entry regardless of uptime. Entries carry the request's span tree
/// pre-rendered as JSON; callers check WouldAdmit() before paying for the
/// rendering, so the fast path of a sub-threshold request is one mutex +
/// one compare.
class SlowLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 16;

  struct Entry {
    std::uint64_t sequence = 0;  // admission order, for stable sorting
    std::string verb;
    std::string trace_id;   // 16 hex digits; empty when tracing was off
    double latency_ms = 0.0;
    bool ok = true;
    std::string spans_json;  // pre-rendered span tree ("" when absent)
  };

  explicit SlowLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  SlowLog(const SlowLog&) = delete;
  SlowLog& operator=(const SlowLog&) = delete;

  /// True when a request of `latency_ms` would enter the log right now —
  /// the log has room, or the latency beats the current minimum.
  bool WouldAdmit(double latency_ms) const;

  /// Inserts the entry (assigning its sequence), evicting the current
  /// fastest entry when at capacity. No-op when the entry would not admit.
  void Add(Entry entry);

  /// Slowest first; ties broken by admission order (older first).
  std::vector<Entry> Snapshot() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::uint64_t next_sequence_ = 0;
  std::vector<Entry> entries_;  // unordered; sorted at Snapshot
};

}  // namespace valmod::service

#endif  // VALMOD_SERVICE_METRICS_H_
