#ifndef VALMOD_FFT_FFT_H_
#define VALMOD_FFT_FFT_H_

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace valmod::fft {

/// Transform direction for Transform().
enum class Direction { kForward, kInverse };

/// Smallest power of two >= n (n = 0 maps to 1).
std::size_t NextPowerOfTwo(std::size_t n);

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// `data.size()` must be a power of two. The inverse transform includes the
/// 1/N scaling, so Transform(kForward) followed by Transform(kInverse)
/// reproduces the input (up to rounding).
Status Transform(std::span<std::complex<double>> data, Direction direction);

/// Linear convolution of two real sequences, `out[k] = sum_i a[i] b[k-i]`,
/// output length `a.size() + b.size() - 1`. Computed via zero-padded FFT.
Result<std::vector<double>> Convolve(std::span<const double> a,
                                     std::span<const double> b);

/// Chunk FFT size used by the overlap-save convolution paths for a filter of
/// `filter_size` points: the smallest power of two >= 4 * filter_size, with
/// a floor of 64. ~4x the filter keeps at least half of every chunk as
/// fresh (alias-free) output while the per-chunk transforms stay small
/// enough to be cache resident; the floor stops tiny filters from
/// fragmenting the signal into thousands of micro-chunks.
std::size_t OverlapSaveFftSize(std::size_t filter_size);

/// Linear convolution with the same contract as Convolve, computed by
/// overlap-save: the signal is processed in overlapping chunks of
/// OverlapSaveFftSize(b.size()) points, each circularly convolved with `b`'s
/// (once-computed) spectrum, and the aliased first b.size()-1 outputs of
/// every chunk are discarded. The flop count scales with
/// n * log(chunk) instead of n * log(n), so for filters much shorter than
/// the signal this is substantially cheaper than the full-size transform.
/// Results agree with Convolve to rounding, not bit-for-bit: the evaluation
/// order of every output differs.
Result<std::vector<double>> OverlapSaveConvolve(std::span<const double> a,
                                                std::span<const double> b);

/// Sliding dot products of `query` against `series`:
///
///   out[i] = sum_{t=0}^{m-1} query[t] * series[i + t],
///   i in [0, n - m],   n = series.size(), m = query.size().
///
/// This is the O(n log n) kernel at the heart of MASS: a convolution of the
/// series with the reversed query, computed with one forward/inverse FFT
/// pair. Requires 1 <= m <= n.
Result<std::vector<double>> SlidingDotProducts(std::span<const double> series,
                                               std::span<const double> query);

}  // namespace valmod::fft

#endif  // VALMOD_FFT_FFT_H_
