#include "fft/plan.h"

#include <cassert>
#include <cmath>
#include <mutex>
#include <numbers>
#include <unordered_map>
#include <utility>

namespace valmod::fft {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  assert(IsPowerOfTwo(n));

  bit_reverse_.resize(n_);
  std::size_t j = 0;
  bit_reverse_[0] = 0;
  for (std::size_t i = 1; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bit_reverse_[i] = static_cast<std::uint32_t>(j);
  }

  twiddles_.resize(n_ / 2);
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n_);
    twiddles_[k] = {std::cos(angle), std::sin(angle)};
  }

  if (n_ >= 4) half_ = GetPlan(n_ / 2);
}

void FftPlan::TransformImpl(std::span<std::complex<double>> data,
                            bool forward) const {
  assert(data.size() == n_);
  if (n_ == 1) return;

  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::complex<double> w =
            forward ? twiddles_[k * stride] : std::conj(twiddles_[k * stride]);
        const std::complex<double> u = data[start + k];
        const std::complex<double> v = data[start + k + half] * w;
        data[start + k] = u + v;
        data[start + k + half] = u - v;
      }
    }
  }

  if (!forward) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (auto& x : data) x *= inv_n;
  }
}

void FftPlan::Forward(std::span<std::complex<double>> data) const {
  TransformImpl(data, /*forward=*/true);
}

void FftPlan::Inverse(std::span<std::complex<double>> data) const {
  TransformImpl(data, /*forward=*/false);
}

void FftPlan::RealForward(std::span<const double> input,
                          std::span<std::complex<double>> spectrum) const {
  assert(n_ >= 2);
  assert(input.size() <= n_);
  assert(spectrum.size() == half_spectrum_size());

  if (n_ == 2) {
    const double x0 = input.size() > 0 ? input[0] : 0.0;
    const double x1 = input.size() > 1 ? input[1] : 0.0;
    spectrum[0] = {x0 + x1, 0.0};
    spectrum[1] = {x0 - x1, 0.0};
    return;
  }

  const std::size_t m = n_ / 2;
  // Pack pairs of reals into the first m complex slots (slot m stays free
  // for the Nyquist bin) and run the half-size complex transform in place.
  auto packed = spectrum.first(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double re = 2 * k < input.size() ? input[2 * k] : 0.0;
    const double im = 2 * k + 1 < input.size() ? input[2 * k + 1] : 0.0;
    packed[k] = {re, im};
  }
  half_->Forward(packed);

  // Split Z into the spectra of the even/odd subsequences and recombine:
  //   E[k] = (Z[k] + conj(Z[m-k])) / 2,  O[k] = (Z[k] - conj(Z[m-k])) / 2i,
  //   X[k] = E[k] + w[k] O[k]            with w[k] = exp(-2*pi*i*k / n).
  const std::complex<double> z0 = spectrum[0];
  spectrum[0] = {z0.real() + z0.imag(), 0.0};
  spectrum[m] = {z0.real() - z0.imag(), 0.0};
  for (std::size_t k = 1; k < m - k; ++k) {
    const std::size_t j = m - k;
    const std::complex<double> zk = spectrum[k];
    const std::complex<double> zj = spectrum[j];
    const std::complex<double> ek = 0.5 * (zk + std::conj(zj));
    const std::complex<double> ok =
        (zk - std::conj(zj)) * std::complex<double>(0.0, -0.5);
    const std::complex<double> ej = 0.5 * (zj + std::conj(zk));
    const std::complex<double> oj =
        (zj - std::conj(zk)) * std::complex<double>(0.0, -0.5);
    spectrum[k] = ek + twiddles_[k] * ok;
    spectrum[j] = ej + twiddles_[j] * oj;
  }
  // k == m/2 pairs with itself: X reduces to conj(Z).
  spectrum[m / 2] = std::conj(spectrum[m / 2]);
}

void FftPlan::RealInverse(std::span<std::complex<double>> spectrum,
                          std::span<double> output) const {
  assert(n_ >= 2);
  assert(spectrum.size() == half_spectrum_size());
  assert(output.size() == n_);

  if (n_ == 2) {
    output[0] = 0.5 * (spectrum[0].real() + spectrum[1].real());
    output[1] = 0.5 * (spectrum[0].real() - spectrum[1].real());
    return;
  }

  const std::size_t m = n_ / 2;
  // Exact inverse of the RealForward recombination: recover the half-size
  // spectrum Z[k] = E[k] + i O[k] from X, with
  //   E[k] = (X[k] + conj(X[m-k])) / 2,
  //   O[k] = conj(w[k]) (X[k] - conj(X[m-k])) / 2.
  const std::complex<double> x0 = spectrum[0];
  const std::complex<double> xm = spectrum[m];
  {
    const std::complex<double> e0 = 0.5 * (x0 + std::conj(xm));
    const std::complex<double> o0 = 0.5 * (x0 - std::conj(xm));
    spectrum[0] = e0 + std::complex<double>(0.0, 1.0) * o0;
  }
  for (std::size_t k = 1; k < m - k; ++k) {
    const std::size_t j = m - k;
    const std::complex<double> xk = spectrum[k];
    const std::complex<double> xj = spectrum[j];
    const std::complex<double> ek = 0.5 * (xk + std::conj(xj));
    const std::complex<double> ok =
        0.5 * (xk - std::conj(xj)) * std::conj(twiddles_[k]);
    const std::complex<double> ej = 0.5 * (xj + std::conj(xk));
    const std::complex<double> oj =
        0.5 * (xj - std::conj(xk)) * std::conj(twiddles_[j]);
    spectrum[k] = ek + std::complex<double>(0.0, 1.0) * ok;
    spectrum[j] = ej + std::complex<double>(0.0, 1.0) * oj;
  }
  spectrum[m / 2] = std::conj(spectrum[m / 2]);

  auto packed = spectrum.first(m);
  half_->Inverse(packed);
  for (std::size_t k = 0; k < m; ++k) {
    output[2 * k] = packed[k].real();
    output[2 * k + 1] = packed[k].imag();
  }
}

std::shared_ptr<const FftPlan> GetPlan(std::size_t n) {
  assert(IsPowerOfTwo(n));
  static std::mutex mutex;
  static std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>>*
      registry =
          new std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>>();
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = registry->find(n);
    if (it != registry->end()) return it->second;
  }
  // Built outside the lock: construction recurses into GetPlan(n/2) for the
  // real-input path, and table construction for large sizes is slow enough
  // that serializing it would stall concurrent callers. A racing duplicate
  // build is harmless; the first insert wins.
  auto plan = std::make_shared<const FftPlan>(n);
  std::lock_guard<std::mutex> lock(mutex);
  return registry->emplace(n, std::move(plan)).first->second;
}

}  // namespace valmod::fft
