#include "fft/plan.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <list>
#include <mutex>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "simd/dispatch.h"

namespace valmod::fft {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  assert(IsPowerOfTwo(n));

  bit_reverse_.resize(n_);
  std::size_t j = 0;
  bit_reverse_[0] = 0;
  for (std::size_t i = 1; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bit_reverse_[i] = static_cast<std::uint32_t>(j);
  }

  twiddles_.resize(n_ / 2);
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n_);
    twiddles_[k] = {std::cos(angle), std::sin(angle)};
  }

  if (n_ >= 4) half_ = GetPlan(n_ / 2);
}

// The butterfly kernels (span-2 pass, fused radix-2^2 DIT/DIF passes — see
// src/simd/kernels_scalar_inl.h for the loop bodies and derivation
// comments) are runtime-dispatched: simd::ActiveKernels() resolves to the
// best vector target the CPU supports, and every target is bit-identical
// to the scalar oracle. The schedule below stays here; only the dense
// inner sweeps moved.

void FftPlan::DitPasses(double* d, bool forward) const {
  const simd::Kernels& kernels = simd::ActiveKernels();
  const double sign = forward ? 1.0 : -1.0;
  const double* tw = reinterpret_cast<const double*>(twiddles_.data());
  std::size_t len = 2;
  std::uint64_t fused = 0;
  if (std::countr_zero(n_) % 2 == 1) {
    kernels.radix2_pass(d, n_);
    simd::NoteKernelCalls(simd::KernelKind::kRadix2Pass, 1);
    len = 4;
  }
  for (; len <= n_ / 2; len <<= 2) {
    kernels.fused_radix4_dit(d, n_, len, tw, sign);
    ++fused;
  }
  simd::NoteKernelCalls(simd::KernelKind::kFusedRadix4Dit, fused);
}

void FftPlan::TransformImpl(std::span<std::complex<double>> data,
                            bool forward) const {
  assert(data.size() == n_);
  if (n_ == 1) return;

  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  // std::complex<double> has array-compatible layout, so the butterfly
  // kernels may view the buffer as interleaved doubles.
  double* d = reinterpret_cast<double*>(data.data());
  DitPasses(d, forward);

  if (!forward) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < 2 * n_; ++i) d[i] *= inv_n;
  }
}

void FftPlan::ForwardBitrev(std::span<std::complex<double>> data) const {
  assert(data.size() == n_);
  if (n_ == 1) return;
  double* d = reinterpret_cast<double*>(data.data());
  // Decimation in frequency: spans shrink from n to 2, output lands in
  // bit-reversed order with no permutation pass. An odd log2(n) leaves the
  // (twiddle-free) span-2 stage for the end.
  const simd::Kernels& kernels = simd::ActiveKernels();
  const double* tw = reinterpret_cast<const double*>(twiddles_.data());
  std::uint64_t fused = 0;
  for (std::size_t len = n_ / 2; len >= 2; len >>= 2) {
    kernels.fused_radix4_dif(d, n_, len, tw, /*sign=*/1.0);
    ++fused;
  }
  simd::NoteKernelCalls(simd::KernelKind::kFusedRadix4Dif, fused);
  if (std::countr_zero(n_) % 2 == 1) {
    kernels.radix2_pass(d, n_);
    simd::NoteKernelCalls(simd::KernelKind::kRadix2Pass, 1);
  }
}

void FftPlan::InverseBitrev(std::span<std::complex<double>> data) const {
  assert(data.size() == n_);
  if (n_ == 1) return;
  double* d = reinterpret_cast<double*>(data.data());
  DitPasses(d, /*forward=*/false);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < 2 * n_; ++i) d[i] *= inv_n;
}

void FftPlan::Forward(std::span<std::complex<double>> data) const {
  TransformImpl(data, /*forward=*/true);
}

void FftPlan::Inverse(std::span<std::complex<double>> data) const {
  TransformImpl(data, /*forward=*/false);
}

void FftPlan::RealForward(std::span<const double> input,
                          std::span<std::complex<double>> spectrum) const {
  assert(n_ >= 2);
  assert(input.size() <= n_);
  assert(spectrum.size() == half_spectrum_size());

  if (n_ == 2) {
    const double x0 = input.size() > 0 ? input[0] : 0.0;
    const double x1 = input.size() > 1 ? input[1] : 0.0;
    spectrum[0] = {x0 + x1, 0.0};
    spectrum[1] = {x0 - x1, 0.0};
    return;
  }

  const std::size_t m = n_ / 2;
  // Pack pairs of reals into the first m complex slots (slot m stays free
  // for the Nyquist bin) and run the half-size complex transform in place.
  auto packed = spectrum.first(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double re = 2 * k < input.size() ? input[2 * k] : 0.0;
    const double im = 2 * k + 1 < input.size() ? input[2 * k + 1] : 0.0;
    packed[k] = {re, im};
  }
  half_->Forward(packed);

  // Split Z into the spectra of the even/odd subsequences and recombine:
  //   E[k] = (Z[k] + conj(Z[m-k])) / 2,  O[k] = (Z[k] - conj(Z[m-k])) / 2i,
  //   X[k] = E[k] + w[k] O[k]            with w[k] = exp(-2*pi*i*k / n).
  const std::complex<double> z0 = spectrum[0];
  spectrum[0] = {z0.real() + z0.imag(), 0.0};
  spectrum[m] = {z0.real() - z0.imag(), 0.0};
  for (std::size_t k = 1; k < m - k; ++k) {
    const std::size_t j = m - k;
    const std::complex<double> zk = spectrum[k];
    const std::complex<double> zj = spectrum[j];
    const std::complex<double> ek = 0.5 * (zk + std::conj(zj));
    const std::complex<double> ok =
        (zk - std::conj(zj)) * std::complex<double>(0.0, -0.5);
    const std::complex<double> ej = 0.5 * (zj + std::conj(zk));
    const std::complex<double> oj =
        (zj - std::conj(zk)) * std::complex<double>(0.0, -0.5);
    spectrum[k] = ek + twiddles_[k] * ok;
    spectrum[j] = ej + twiddles_[j] * oj;
  }
  // k == m/2 pairs with itself: X reduces to conj(Z).
  spectrum[m / 2] = std::conj(spectrum[m / 2]);
}

void FftPlan::RealInverse(std::span<std::complex<double>> spectrum,
                          std::span<double> output) const {
  assert(n_ >= 2);
  assert(spectrum.size() == half_spectrum_size());
  assert(output.size() == n_);

  if (n_ == 2) {
    output[0] = 0.5 * (spectrum[0].real() + spectrum[1].real());
    output[1] = 0.5 * (spectrum[0].real() - spectrum[1].real());
    return;
  }

  const std::size_t m = n_ / 2;
  // Exact inverse of the RealForward recombination: recover the half-size
  // spectrum Z[k] = E[k] + i O[k] from X, with
  //   E[k] = (X[k] + conj(X[m-k])) / 2,
  //   O[k] = conj(w[k]) (X[k] - conj(X[m-k])) / 2.
  const std::complex<double> x0 = spectrum[0];
  const std::complex<double> xm = spectrum[m];
  {
    const std::complex<double> e0 = 0.5 * (x0 + std::conj(xm));
    const std::complex<double> o0 = 0.5 * (x0 - std::conj(xm));
    spectrum[0] = e0 + std::complex<double>(0.0, 1.0) * o0;
  }
  for (std::size_t k = 1; k < m - k; ++k) {
    const std::size_t j = m - k;
    const std::complex<double> xk = spectrum[k];
    const std::complex<double> xj = spectrum[j];
    const std::complex<double> ek = 0.5 * (xk + std::conj(xj));
    const std::complex<double> ok =
        0.5 * (xk - std::conj(xj)) * std::conj(twiddles_[k]);
    const std::complex<double> ej = 0.5 * (xj + std::conj(xk));
    const std::complex<double> oj =
        0.5 * (xj - std::conj(xk)) * std::conj(twiddles_[j]);
    spectrum[k] = ek + std::complex<double>(0.0, 1.0) * ok;
    spectrum[j] = ej + std::complex<double>(0.0, 1.0) * oj;
  }
  spectrum[m / 2] = std::conj(spectrum[m / 2]);

  auto packed = spectrum.first(m);
  half_->Inverse(packed);
  for (std::size_t k = 0; k < m; ++k) {
    output[2 * k] = packed[k].real();
    output[2 * k + 1] = packed[k].imag();
  }
}

void FftPlan::RealForwardPair(std::span<const double> a,
                              std::span<const double> b,
                              std::span<std::complex<double>> spectrum) const {
  assert(a.size() <= n_);
  assert(b.size() <= n_);
  assert(spectrum.size() == n_);

  const std::size_t filled = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < filled; ++i) {
    spectrum[i] = {i < a.size() ? a[i] : 0.0, i < b.size() ? b[i] : 0.0};
  }
  std::fill(spectrum.begin() + filled, spectrum.end(),
            std::complex<double>{0.0, 0.0});
  ForwardBitrev(spectrum);
}

void FftPlan::MultiplyPairByRealSpectrum(
    std::span<const std::complex<double>> real_spectrum,
    std::span<std::complex<double>> pair_spectrum) const {
  assert(real_spectrum.size() == n_);
  assert(pair_spectrum.size() == n_);

  // Both spectra carry the same bit-reversal, so the product is a pure
  // elementwise sweep; conjugate symmetry never needs to be spelled out.
  // std::complex<double> has array-compatible layout, so the dispatched
  // kernel works on the interleaved doubles directly.
  simd::ActiveKernels().complex_multiply(
      reinterpret_cast<const double*>(pair_spectrum.data()),
      reinterpret_cast<const double*>(real_spectrum.data()),
      reinterpret_cast<double*>(pair_spectrum.data()), n_);
  simd::NoteKernelCalls(simd::KernelKind::kComplexMultiply, 1);
}

void FftPlan::MultiplyPairByRealSpectrumInto(
    std::span<const std::complex<double>> real_spectrum,
    std::span<const std::complex<double>> pair_spectrum,
    std::span<std::complex<double>> product) const {
  assert(real_spectrum.size() == n_);
  assert(pair_spectrum.size() == n_);
  assert(product.size() == n_);

  simd::ActiveKernels().complex_multiply(
      reinterpret_cast<const double*>(pair_spectrum.data()),
      reinterpret_cast<const double*>(real_spectrum.data()),
      reinterpret_cast<double*>(product.data()), n_);
  simd::NoteKernelCalls(simd::KernelKind::kComplexMultiply, 1);
}

void FftPlan::RealInversePair(std::span<std::complex<double>> spectrum,
                              std::span<double> a, std::span<double> b) const {
  assert(spectrum.size() == n_);
  assert(a.size() == n_);
  assert(b.size() == n_);

  InverseBitrev(spectrum);
  for (std::size_t i = 0; i < n_; ++i) {
    a[i] = spectrum[i].real();
    b[i] = spectrum[i].imag();
  }
}

namespace {

constexpr std::size_t kDefaultPlanRegistryCapacity = 32;

std::atomic<std::uint64_t> g_plan_hits{0};
std::atomic<std::uint64_t> g_plan_misses{0};
std::atomic<std::uint64_t> g_plan_evictions{0};

struct PlanRegistry {
  std::mutex mutex;
  std::size_t capacity = kDefaultPlanRegistryCapacity;
  /// Most recently used at the front. A std::list keeps hit handling to one
  /// splice and eviction to one pop, with stable iterators for the index.
  std::list<std::pair<std::size_t, std::shared_ptr<const FftPlan>>> lru;
  std::unordered_map<std::size_t, decltype(lru)::iterator> index;

  /// Caller must hold `mutex`.
  void TrimLocked() {
    while (lru.size() > capacity) {
      index.erase(lru.back().first);
      lru.pop_back();
      g_plan_evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

PlanRegistry& Registry() {
  static PlanRegistry* registry = new PlanRegistry();
  return *registry;
}

}  // namespace

std::size_t PlanRegistryCapacity() {
  PlanRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.capacity;
}

std::size_t PlanRegistrySizeForTesting() {
  PlanRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.lru.size();
}

std::size_t SetPlanRegistryCapacityForTesting(std::size_t capacity) {
  assert(capacity >= 1);
  PlanRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const std::size_t previous = registry.capacity;
  registry.capacity = capacity;
  registry.TrimLocked();
  return previous;
}

std::shared_ptr<const FftPlan> GetPlan(std::size_t n) {
  assert(IsPowerOfTwo(n));
  PlanRegistry& registry = Registry();
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.index.find(n);
    if (it != registry.index.end()) {
      registry.lru.splice(registry.lru.begin(), registry.lru, it->second);
      g_plan_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second->second;
    }
  }
  // Built outside the lock: construction recurses into GetPlan(n/2) for the
  // real-input path, and table construction for large sizes is slow enough
  // that serializing it would stall concurrent callers. A racing duplicate
  // build is harmless; the first insert wins.
  auto plan = std::make_shared<const FftPlan>(n);
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.index.find(n);
  if (it != registry.index.end()) {
    registry.lru.splice(registry.lru.begin(), registry.lru, it->second);
    g_plan_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }
  g_plan_misses.fetch_add(1, std::memory_order_relaxed);
  registry.lru.emplace_front(n, std::move(plan));
  registry.index.emplace(n, registry.lru.begin());
  std::shared_ptr<const FftPlan> handle = registry.lru.front().second;
  registry.TrimLocked();
  return handle;
}

PlanRegistryCounters PlanRegistryCountersSnapshot() {
  PlanRegistryCounters out;
  out.hits = g_plan_hits.load(std::memory_order_relaxed);
  out.misses = g_plan_misses.load(std::memory_order_relaxed);
  out.evictions = g_plan_evictions.load(std::memory_order_relaxed);
  return out;
}

}  // namespace valmod::fft
