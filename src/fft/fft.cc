#include "fft/fft.h"

#include <cmath>
#include <numbers>
#include <utility>

namespace valmod::fft {

namespace {

bool IsPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Reorders `data` into bit-reversed index order (the radix-2 input
/// permutation), using the incremental bit-reversal counter technique.
void BitReversePermute(std::span<std::complex<double>> data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

}  // namespace

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Status Transform(std::span<std::complex<double>> data, Direction direction) {
  const std::size_t n = data.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("FFT size must be a power of two, got " +
                                   std::to_string(n));
  }
  if (n == 1) return Status::Ok();

  BitReversePermute(data);

  const double sign = direction == Direction::kForward ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi /
                         static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t start = 0; start < n; start += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[start + k];
        const std::complex<double> v = data[start + k + len / 2] * w;
        data[start + k] = u + v;
        data[start + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (direction == Direction::kInverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
  return Status::Ok();
}

Result<std::vector<double>> Convolve(std::span<const double> a,
                                     std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("Convolve requires non-empty inputs");
  }
  const std::size_t out_size = a.size() + b.size() - 1;
  const std::size_t fft_size = NextPowerOfTwo(out_size);

  std::vector<std::complex<double>> fa(fft_size), fb(fft_size);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];

  VALMOD_RETURN_IF_ERROR(Transform(fa, Direction::kForward));
  VALMOD_RETURN_IF_ERROR(Transform(fb, Direction::kForward));
  for (std::size_t i = 0; i < fft_size; ++i) fa[i] *= fb[i];
  VALMOD_RETURN_IF_ERROR(Transform(fa, Direction::kInverse));

  std::vector<double> out(out_size);
  for (std::size_t i = 0; i < out_size; ++i) out[i] = fa[i].real();
  return out;
}

Result<std::vector<double>> SlidingDotProducts(std::span<const double> series,
                                               std::span<const double> query) {
  const std::size_t n = series.size();
  const std::size_t m = query.size();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument(
        "SlidingDotProducts requires non-empty inputs");
  }
  if (m > n) {
    return Status::InvalidArgument(
        "query length " + std::to_string(m) +
        " exceeds series length " + std::to_string(n));
  }

  // Convolving the series with the reversed query aligns position m-1+i of
  // the convolution with the dot product at offset i.
  std::vector<double> reversed(query.rbegin(), query.rend());
  VALMOD_ASSIGN_OR_RETURN(std::vector<double> conv,
                          Convolve(series, reversed));

  std::vector<double> out(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) out[i] = conv[m - 1 + i];
  return out;
}

}  // namespace valmod::fft
