#include "fft/fft.h"

#include <cmath>
#include <utility>

#include "fft/plan.h"
#include "simd/dispatch.h"

namespace valmod::fft {

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Status Transform(std::span<std::complex<double>> data, Direction direction) {
  const std::size_t n = data.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("FFT size must be a power of two, got " +
                                   std::to_string(n));
  }
  const std::shared_ptr<const FftPlan> plan = GetPlan(n);
  if (direction == Direction::kForward) {
    plan->Forward(data);
  } else {
    plan->Inverse(data);
  }
  return Status::Ok();
}

Result<std::vector<double>> Convolve(std::span<const double> a,
                                     std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("Convolve requires non-empty inputs");
  }
  const std::size_t out_size = a.size() + b.size() - 1;
  const std::size_t fft_size = NextPowerOfTwo(out_size);
  if (fft_size < 2) {
    return std::vector<double>{a[0] * b[0]};
  }

  // Both inputs are real, so the whole convolution runs on half spectra:
  // two packed forward transforms, a pointwise product (the product of two
  // conjugate-symmetric spectra stays conjugate-symmetric), one packed
  // inverse — each a complex transform of size fft_size / 2.
  const std::shared_ptr<const FftPlan> plan = GetPlan(fft_size);
  const std::size_t bins = plan->half_spectrum_size();
  std::vector<std::complex<double>> fa(bins), fb(bins);
  plan->RealForward(a, fa);
  plan->RealForward(b, fb);
  simd::ActiveKernels().complex_multiply(
      reinterpret_cast<const double*>(fa.data()),
      reinterpret_cast<const double*>(fb.data()),
      reinterpret_cast<double*>(fa.data()), bins);
  simd::NoteKernelCalls(simd::KernelKind::kComplexMultiply, 1);

  std::vector<double> padded(fft_size);
  plan->RealInverse(fa, padded);
  padded.resize(out_size);
  return padded;
}

std::size_t OverlapSaveFftSize(std::size_t filter_size) {
  const std::size_t four_m = NextPowerOfTwo(4 * filter_size);
  return four_m < 64 ? 64 : four_m;
}

Result<std::vector<double>> OverlapSaveConvolve(std::span<const double> a,
                                                std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "OverlapSaveConvolve requires non-empty inputs");
  }
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t out_size = n + m - 1;
  const std::size_t chunk_size = OverlapSaveFftSize(m);
  const std::shared_ptr<const FftPlan> plan = GetPlan(chunk_size);
  const std::size_t bins = plan->half_spectrum_size();

  // The filter spectrum is computed once and reused by every chunk.
  std::vector<std::complex<double>> filter(bins);
  plan->RealForward(b, filter);

  // Each chunk reads `chunk_size` samples of the signal as if it were
  // prefixed with m-1 zeros (so the first chunk's alias-free region starts
  // at output 0) and yields `hop` fresh outputs: circular-convolution
  // positions m-1..chunk_size-1 of a chunk starting at padded position t
  // equal linear-convolution outputs t..t+hop-1.
  const std::size_t hop = chunk_size - m + 1;
  std::vector<double> out(out_size);
  std::vector<double> chunk(chunk_size);
  std::vector<std::complex<double>> product(bins);
  std::vector<double> conv(chunk_size);
  for (std::size_t t = 0; t < out_size; t += hop) {
    for (std::size_t i = 0; i < chunk_size; ++i) {
      const std::size_t u = t + i;  // position in the zero-prefixed signal
      chunk[i] = (u >= m - 1 && u - (m - 1) < n) ? a[u - (m - 1)] : 0.0;
    }
    plan->RealForward(chunk, product);
    simd::ActiveKernels().complex_multiply(
        reinterpret_cast<const double*>(product.data()),
        reinterpret_cast<const double*>(filter.data()),
        reinterpret_cast<double*>(product.data()), bins);
    simd::NoteKernelCalls(simd::KernelKind::kComplexMultiply, 1);
    plan->RealInverse(product, conv);
    const std::size_t emit = std::min(hop, out_size - t);
    for (std::size_t i = 0; i < emit; ++i) out[t + i] = conv[m - 1 + i];
  }
  return out;
}

Result<std::vector<double>> SlidingDotProducts(std::span<const double> series,
                                               std::span<const double> query) {
  const std::size_t n = series.size();
  const std::size_t m = query.size();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument(
        "SlidingDotProducts requires non-empty inputs");
  }
  if (m > n) {
    return Status::InvalidArgument(
        "query length " + std::to_string(m) +
        " exceeds series length " + std::to_string(n));
  }

  // Convolving the series with the reversed query aligns position m-1+i of
  // the convolution with the dot product at offset i.
  std::vector<double> reversed(query.rbegin(), query.rend());
  VALMOD_ASSIGN_OR_RETURN(std::vector<double> conv,
                          Convolve(series, reversed));

  std::vector<double> out(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) out[i] = conv[m - 1 + i];
  return out;
}

}  // namespace valmod::fft
