#ifndef VALMOD_FFT_PLAN_H_
#define VALMOD_FFT_PLAN_H_

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace valmod::fft {

inline bool IsPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// A reusable radix-2 FFT plan for one power-of-two size.
///
/// The plan precomputes the bit-reversal permutation and a twiddle-factor
/// table `w[j] = exp(-2*pi*i*j / n)` once, so transforms are pure table
/// lookups: no trigonometry on the hot path and, unlike the incremental
/// `w *= wlen` recurrence, no error accumulation across a butterfly pass
/// (every twiddle is exact to one rounding of sin/cos).
///
/// Plans also expose a real-input path (`RealForward` / `RealInverse`) built
/// on the pack-two-reals trick: a real transform of size n runs as one
/// complex transform of size n/2 plus an O(n) recombination, roughly halving
/// the cost of real convolutions. The half-spectrum convention is the usual
/// one for real data: `n/2 + 1` bins, the remaining bins implied by
/// conjugate symmetry.
///
/// Instances are immutable after construction and safe to share across
/// threads. Obtain them through `GetPlan`, which caches one plan per size.
class FftPlan {
 public:
  /// Builds tables for size `n`; `n` must be a power of two >= 1.
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// Number of bins written by RealForward / read by RealInverse.
  std::size_t half_spectrum_size() const { return n_ / 2 + 1; }

  /// In-place complex transform. `data.size()` must equal `size()`. The
  /// inverse includes the 1/n scaling, so Forward followed by Inverse
  /// reproduces the input up to rounding.
  void Forward(std::span<std::complex<double>> data) const;
  void Inverse(std::span<std::complex<double>> data) const;

  /// Forward transform of a real signal, zero-padded to `size()` on the
  /// right. Requires `size() >= 2`, `input.size() <= size()`, and
  /// `spectrum.size() == half_spectrum_size()`. Writes bins 0..n/2 of the
  /// length-n DFT of the padded input (bins n/2+1..n-1 are the conjugate
  /// mirror). Costs one complex transform of size n/2.
  void RealForward(std::span<const double> input,
                   std::span<std::complex<double>> spectrum) const;

  /// Inverse of RealForward, including the 1/n scaling: reconstructs the n
  /// real samples whose half spectrum is `spectrum`. Requires
  /// `size() >= 2`, `spectrum.size() == half_spectrum_size()`, and
  /// `output.size() == size()`. `spectrum` is consumed as scratch, so the
  /// transform allocates nothing.
  void RealInverse(std::span<std::complex<double>> spectrum,
                   std::span<double> output) const;

  /// Forward transform in decimation-in-frequency order: natural-order
  /// input, *bit-reversed* output (`data[i]` holds bin `rev(i)`). Skips the
  /// permutation pass entirely, so a convolution pipeline that only ever
  /// multiplies spectra pointwise — a permutation-invariant operation — and
  /// comes back through InverseBitrev never pays for reordering.
  /// `data.size()` must equal `size()`.
  void ForwardBitrev(std::span<std::complex<double>> data) const;

  /// Inverse (with 1/n scaling) consuming a bit-reversed spectrum as
  /// produced by ForwardBitrev, returning natural-order samples:
  /// decimation-in-time butterflies with the permutation pass elided.
  void InverseBitrev(std::span<std::complex<double>> data) const;

  /// Pair-packed forward transform: two real signals per complex FFT.
  /// Packs `a + i*b` (each zero-padded to `size()` on the right; requires
  /// `a.size() <= size()` and `b.size() <= size()`) and runs one full-size
  /// ForwardBitrev, so `spectrum` holds `A + i B` mixed by conjugate
  /// symmetry, in bit-reversed bin order. `spectrum.size()` must equal
  /// `size()`. The packed spectrum never needs to be split (and its bin
  /// order never needs to be undone): any linear pointwise operation — in
  /// particular multiplying by the spectrum of a shared real signal, see
  /// MultiplyPairByRealSpectrum — commutes with the packing and is
  /// permutation-invariant, and RealInversePair separates the two real
  /// results for free.
  void RealForwardPair(std::span<const double> a, std::span<const double> b,
                       std::span<std::complex<double>> spectrum) const;

  /// Multiplies a pair-packed spectrum pointwise by the spectrum of a real
  /// signal in the same (bit-reversed, full `size()` bins) layout —
  /// obtained from RealForwardPair with an empty second signal. Because the
  /// multiplier is the spectrum of a *real* signal, the product is still
  /// the packed spectrum of `(conv_a) + i*(conv_b)`; because both operands
  /// share one permutation, the product is a straight elementwise sweep
  /// with no conjugate-mirror index arithmetic.
  void MultiplyPairByRealSpectrum(
      std::span<const std::complex<double>> real_spectrum,
      std::span<std::complex<double>> pair_spectrum) const;

  /// Non-destructive form of MultiplyPairByRealSpectrum: writes the
  /// elementwise product into `product`, leaving `pair_spectrum` untouched.
  /// The overlap-save convolution path multiplies one filter spectrum
  /// against many cached chunk spectra in turn, so the filter transform must
  /// survive every product. All three spans must have `size()` bins in the
  /// shared bit-reversed layout.
  void MultiplyPairByRealSpectrumInto(
      std::span<const std::complex<double>> real_spectrum,
      std::span<const std::complex<double>> pair_spectrum,
      std::span<std::complex<double>> product) const;

  /// Inverse of RealForwardPair, including the 1/n scaling: one
  /// InverseBitrev recovers both real sequences (`a[i]` from the real
  /// parts, `b[i]` from the imaginary parts). Requires
  /// `spectrum.size() == size()` and `a.size() == b.size() == size()`.
  /// `spectrum` is consumed as scratch, so the transform allocates nothing.
  void RealInversePair(std::span<std::complex<double>> spectrum,
                       std::span<double> a, std::span<double> b) const;

 private:
  void TransformImpl(std::span<std::complex<double>> data,
                     bool forward) const;
  /// Decimation-in-time butterfly schedule over bit-reversed data (the body
  /// of TransformImpl after the permutation), without the 1/n scaling. The
  /// butterfly kernels themselves (span-2 and fused radix-2^2 passes) come
  /// from simd::ActiveKernels(), dispatched once per schedule.
  void DitPasses(double* d, bool forward) const;

  std::size_t n_;
  /// Input permutation: element i swaps into bit_reverse_[i].
  std::vector<std::uint32_t> bit_reverse_;
  /// twiddles_[j] = exp(-2*pi*i*j / n), j in [0, n/2). A butterfly pass of
  /// span `len` reads every (n/len)-th entry, so one table serves every
  /// stage; the real-input recombination reads it directly.
  std::vector<std::complex<double>> twiddles_;
  /// Complex plan of size n/2 backing the real-input path (null for n < 4;
  /// the n == 2 real path is handled directly).
  std::shared_ptr<const FftPlan> half_;
};

/// Process-wide plan registry: returns the cached plan for `n` (a power of
/// two), building it on first use. Thread-safe; the handle keeps the plan
/// alive independently of the registry.
///
/// The registry is a small LRU bounded at `PlanRegistryCapacity()` entries:
/// pan-profile workloads that sweep many FFT sizes no longer grow it without
/// bound. Eviction only drops the registry's reference — live handles (and
/// parent plans, which hold their half-size child via shared_ptr) keep
/// evicted plans fully usable.
std::shared_ptr<const FftPlan> GetPlan(std::size_t n);

/// Maximum number of plans the registry retains. Comfortably above the
/// deepest half-plan chain a single large plan creates (one entry per
/// power of two), so building one plan cannot evict another's chain.
std::size_t PlanRegistryCapacity();

/// Current number of plans held by the registry (for tests).
std::size_t PlanRegistrySizeForTesting();

/// Overrides the registry capacity (trimming immediately) and returns the
/// previous value. Exists because exercising eviction at the production
/// capacity would require plans of ~2^33 points; tests shrink the cap,
/// observe eviction, and restore.
std::size_t SetPlanRegistryCapacityForTesting(std::size_t capacity);

/// Cumulative process-wide registry traffic, maintained with relaxed
/// atomics (no extra cost on the GetPlan fast path beyond one fetch_add).
/// A `hit` is a GetPlan call served from the LRU (including the
/// built-elsewhere-while-we-built race); a `miss` built a new plan; an
/// `eviction` dropped the registry's reference to a plan.
struct PlanRegistryCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};
PlanRegistryCounters PlanRegistryCountersSnapshot();

}  // namespace valmod::fft

#endif  // VALMOD_FFT_PLAN_H_
