#ifndef VALMOD_FFT_PLAN_H_
#define VALMOD_FFT_PLAN_H_

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace valmod::fft {

inline bool IsPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// A reusable radix-2 FFT plan for one power-of-two size.
///
/// The plan precomputes the bit-reversal permutation and a twiddle-factor
/// table `w[j] = exp(-2*pi*i*j / n)` once, so transforms are pure table
/// lookups: no trigonometry on the hot path and, unlike the incremental
/// `w *= wlen` recurrence, no error accumulation across a butterfly pass
/// (every twiddle is exact to one rounding of sin/cos).
///
/// Plans also expose a real-input path (`RealForward` / `RealInverse`) built
/// on the pack-two-reals trick: a real transform of size n runs as one
/// complex transform of size n/2 plus an O(n) recombination, roughly halving
/// the cost of real convolutions. The half-spectrum convention is the usual
/// one for real data: `n/2 + 1` bins, the remaining bins implied by
/// conjugate symmetry.
///
/// Instances are immutable after construction and safe to share across
/// threads. Obtain them through `GetPlan`, which caches one plan per size.
class FftPlan {
 public:
  /// Builds tables for size `n`; `n` must be a power of two >= 1.
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// Number of bins written by RealForward / read by RealInverse.
  std::size_t half_spectrum_size() const { return n_ / 2 + 1; }

  /// In-place complex transform. `data.size()` must equal `size()`. The
  /// inverse includes the 1/n scaling, so Forward followed by Inverse
  /// reproduces the input up to rounding.
  void Forward(std::span<std::complex<double>> data) const;
  void Inverse(std::span<std::complex<double>> data) const;

  /// Forward transform of a real signal, zero-padded to `size()` on the
  /// right. Requires `size() >= 2`, `input.size() <= size()`, and
  /// `spectrum.size() == half_spectrum_size()`. Writes bins 0..n/2 of the
  /// length-n DFT of the padded input (bins n/2+1..n-1 are the conjugate
  /// mirror). Costs one complex transform of size n/2.
  void RealForward(std::span<const double> input,
                   std::span<std::complex<double>> spectrum) const;

  /// Inverse of RealForward, including the 1/n scaling: reconstructs the n
  /// real samples whose half spectrum is `spectrum`. Requires
  /// `size() >= 2`, `spectrum.size() == half_spectrum_size()`, and
  /// `output.size() == size()`. `spectrum` is consumed as scratch, so the
  /// transform allocates nothing.
  void RealInverse(std::span<std::complex<double>> spectrum,
                   std::span<double> output) const;

 private:
  void TransformImpl(std::span<std::complex<double>> data,
                     bool forward) const;

  std::size_t n_;
  /// Input permutation: element i swaps into bit_reverse_[i].
  std::vector<std::uint32_t> bit_reverse_;
  /// twiddles_[j] = exp(-2*pi*i*j / n), j in [0, n/2). A butterfly pass of
  /// span `len` reads every (n/len)-th entry, so one table serves every
  /// stage; the real-input recombination reads it directly.
  std::vector<std::complex<double>> twiddles_;
  /// Complex plan of size n/2 backing the real-input path (null for n < 4;
  /// the n == 2 real path is handled directly).
  std::shared_ptr<const FftPlan> half_;
};

/// Process-wide plan registry: returns the cached plan for `n` (a power of
/// two), building it on first use. Thread-safe; the handle keeps the plan
/// alive independently of the registry.
std::shared_ptr<const FftPlan> GetPlan(std::size_t n);

}  // namespace valmod::fft

#endif  // VALMOD_FFT_PLAN_H_
