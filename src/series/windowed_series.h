#ifndef VALMOD_SERIES_WINDOWED_SERIES_H_
#define VALMOD_SERIES_WINDOWED_SERIES_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "series/data_series.h"

namespace valmod::series {

/// Contiguous sliding buffer: a ring buffer that trades a bounded amount of
/// slack memory for a *contiguous* live region, which is what every kernel
/// in this library wants (SIMD dot products, FFT chunking, and DataSeries
/// materialization all take flat spans — a two-segment ring would force a
/// copy per use).
///
/// PopFront advances a head offset instead of moving elements; when the dead
/// prefix grows as large as the live region the buffer compacts with one
/// memmove, so the amortized cost per point is O(1) and the footprint never
/// exceeds ~2x the live size (plus vector growth slack).
template <typename T>
class SlidingBuffer {
 public:
  std::size_t size() const { return buffer_.size() - head_; }

  /// Live-relative access: index 0 is the oldest retained element.
  T& operator[](std::size_t i) { return buffer_[head_ + i]; }
  const T& operator[](std::size_t i) const { return buffer_[head_ + i]; }

  T& back() { return buffer_.back(); }
  const T& back() const { return buffer_.back(); }

  /// Contiguous live region.
  std::span<const T> Span() const {
    return std::span<const T>(buffer_.data() + head_, size());
  }
  std::span<T> MutableSpan() {
    return std::span<T>(buffer_.data() + head_, size());
  }
  const T* Data() const { return buffer_.data() + head_; }
  T* Data() { return buffer_.data() + head_; }

  void PushBack(T value) { buffer_.push_back(std::move(value)); }

  /// Drops the `count` oldest elements. Compacts (one erase/memmove) once
  /// the dead prefix reaches the live size, keeping memory bounded by ~2x
  /// the live region without paying a move per pop.
  void PopFront(std::size_t count = 1) {
    head_ += count;
    if (head_ >= buffer_.size() - head_) Compact();
  }

  /// Reserves room for `additional` pushes beyond the current size.
  void Reserve(std::size_t additional) {
    buffer_.reserve(buffer_.size() + additional);
  }

  void Clear() {
    buffer_.clear();
    head_ = 0;
  }

  /// Number of compactions so far (deterministic for a given push/pop
  /// sequence; exposed for tests asserting the amortization actually runs).
  std::size_t compactions() const { return compactions_; }

  std::size_t MemoryBytes() const { return buffer_.capacity() * sizeof(T); }

 private:
  void Compact() {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
    ++compactions_;
  }

  std::vector<T> buffer_;
  std::size_t head_ = 0;
  std::size_t compactions_ = 0;
};

/// A windowed (bounded-history) series for streaming ingestion: appends at
/// the tail, evicts aged-out points at the head once `max_points` is
/// reached, and keeps the retained window contiguous in memory. This is the
/// storage layer under `mp::StreamingProfile`'s windowed mode and the
/// registry's streaming snapshots.
///
/// Indexing: retained point `i` corresponds to global stream position
/// `start_index() + i`; `start_index()` equals the total number of points
/// evicted so far, so callers can map window-relative results back to
/// stream positions.
class WindowedSeries {
 public:
  /// `max_points == 0` means unbounded (never evicts).
  explicit WindowedSeries(std::size_t max_points = 0)
      : max_points_(max_points) {}

  /// Appends one point; returns the number of points evicted to stay within
  /// `max_points` (0 or 1). The caller validates finiteness if it cares —
  /// the buffer itself is value-agnostic.
  std::size_t Append(double value);

  /// Reserves room for `additional` appends.
  void Reserve(std::size_t additional) { buffer_.Reserve(additional); }

  /// The retained window, oldest first, contiguous.
  std::span<const double> values() const { return buffer_.Span(); }
  /// Mutable view of the retained window (used by re-anchoring, which
  /// subtracts a constant from every retained value in place).
  std::span<double> mutable_values() { return buffer_.MutableSpan(); }

  double operator[](std::size_t i) const { return buffer_[i]; }

  std::size_t size() const { return buffer_.size(); }
  std::size_t max_points() const { return max_points_; }
  /// Global stream position of the first retained point == total evicted.
  std::size_t start_index() const { return evicted_; }
  std::size_t total_appended() const { return evicted_ + buffer_.size(); }
  std::size_t compactions() const { return buffer_.compactions(); }

  std::size_t MemoryBytes() const { return buffer_.MemoryBytes(); }

  /// Materializes the retained window as an immutable DataSeries whose
  /// stats are centered at `center` (see MovingStats::CreateWithCenter;
  /// streaming callers pass 0.0 so the centered representation is
  /// bit-stable across appends, which is what lets engine caches carry
  /// over). Fails on an empty window or non-finite values.
  Result<DataSeries> ToDataSeries(double center) const;

 private:
  SlidingBuffer<double> buffer_;
  std::size_t max_points_ = 0;
  std::size_t evicted_ = 0;
};

}  // namespace valmod::series

#endif  // VALMOD_SERIES_WINDOWED_SERIES_H_
