#include "series/data_series.h"

#include <string>
#include <utility>

namespace valmod::series {

Result<DataSeries> DataSeries::Create(std::vector<double> values) {
  VALMOD_ASSIGN_OR_RETURN(stats::MovingStats stats,
                          stats::MovingStats::Create(values));
  return DataSeries(std::move(values), std::move(stats));
}

Result<DataSeries> DataSeries::CreateWithCenter(std::vector<double> values,
                                                double center) {
  VALMOD_ASSIGN_OR_RETURN(stats::MovingStats stats,
                          stats::MovingStats::CreateWithCenter(values, center));
  return DataSeries(std::move(values), std::move(stats));
}

DataSeries DataSeries::Clone() const {
  std::vector<double> copy(values_);
  Result<DataSeries> cloned = Create(std::move(copy));
  // The source series already passed validation, so re-validation of the
  // same data cannot fail.
  return std::move(cloned).value();
}

Result<DataSeries> DataSeries::Prefix(std::size_t count) const {
  if (count == 0 || count > values_.size()) {
    return Status::OutOfRange("prefix of " + std::to_string(count) +
                              " points from a series of " +
                              std::to_string(values_.size()));
  }
  std::vector<double> head(values_.begin(),
                           values_.begin() + static_cast<long>(count));
  return Create(std::move(head));
}

Result<std::vector<double>> DataSeries::Subsequence(
    std::size_t offset, std::size_t length) const {
  if (length == 0 || offset + length > values_.size()) {
    return Status::OutOfRange(
        "subsequence (offset=" + std::to_string(offset) +
        ", length=" + std::to_string(length) + ") outside series of size " +
        std::to_string(values_.size()));
  }
  return std::vector<double>(
      values_.begin() + static_cast<long>(offset),
      values_.begin() + static_cast<long>(offset + length));
}

}  // namespace valmod::series
