#ifndef VALMOD_SERIES_ZNORM_H_
#define VALMOD_SERIES_ZNORM_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "series/data_series.h"
#include "simd/dispatch.h"
#include "stats/moving_stats.h"

namespace valmod::series {

/// -- Distance conventions (DESIGN.md §3.1) ---------------------------------
///
/// The z-normalized Euclidean distance between two windows of length `l` is
/// `d = sqrt(2 l (1 - rho))` with `rho` their Pearson correlation. Constant
/// windows z-normalize to the all-zeros vector, so:
///   * both windows constant      -> d = 0
///   * exactly one window constant-> d = sqrt(l)
/// These inline helpers are the single implementation of that math; MASS,
/// STOMP, the VALMOD update loop, and the baselines all call them so the
/// conventions cannot drift apart.

/// Dot product with the engine's canonical four-accumulator reduction,
/// runtime-dispatched to the best SIMD target (src/simd/dispatch.h). Every
/// target — scalar included — preserves the exact same partial-sum
/// grouping (lane j accumulates elements j, j+4, ...; tail into lane 0;
/// final sum (acc0 + acc1) + (acc2 + acc3)), so results are bit-identical
/// across targets. This is the kernel behind every direct distance
/// computation: STOMP diagonals, AB-joins, streaming updates, lower
/// bounds, and the direct sliding-dot backend.
inline double DotProduct(const double* a, const double* b, std::size_t n) {
  return simd::ActiveKernels().dot_product(a, b, n);
}

/// Pearson correlation from a *centered* dot product and *centered* window
/// means (see stats::MovingStats::centered()). Clamped to [-1, 1]. Both
/// standard deviations must be positive.
inline double CorrelationFromDot(double dot, double mean_a, double mean_b,
                                 double std_a, double std_b,
                                 std::size_t length) {
  const double l = static_cast<double>(length);
  const double cov = dot / l - mean_a * mean_b;
  const double rho = cov / (std_a * std_b);
  return std::clamp(rho, -1.0, 1.0);
}

/// z-normalized Euclidean distance from a correlation value.
inline double DistanceFromCorrelation(double rho, std::size_t length) {
  const double sq = 2.0 * static_cast<double>(length) * (1.0 - rho);
  return sq > 0.0 ? std::sqrt(sq) : 0.0;
}

/// Full pair distance with constant-window conventions applied.
/// `const_a` / `const_b` flag (numerically) constant windows, typically from
/// `std <= MovingStats::constant_std_threshold()`.
inline double PairDistanceFromDot(double dot, double mean_a, double mean_b,
                                  double std_a, double std_b,
                                  std::size_t length, bool const_a,
                                  bool const_b) {
  if (const_a || const_b) {
    if (const_a && const_b) return 0.0;
    return std::sqrt(static_cast<double>(length));
  }
  return DistanceFromCorrelation(
      CorrelationFromDot(dot, mean_a, mean_b, std_a, std_b, length), length);
}

/// The length-normalized distance used to rank motifs of different lengths
/// (paper §2, "Rank Motif Pairs of Variable Lengths"): `d * sqrt(1 / l)`.
inline double LengthNormalizedDistance(double distance, std::size_t length) {
  return distance * std::sqrt(1.0 / static_cast<double>(length));
}

/// -- Reference implementations (O(l), used by tests and small paths) -------

/// z-normalized copy of `window` under the library conventions (constant
/// windows map to all zeros). Fails on an empty window.
Result<std::vector<double>> ZNormalize(std::span<const double> window);

/// z-normalized Euclidean distance between two equal-length windows,
/// computed directly from definitions. Fails on empty or mismatched inputs.
Result<double> ZNormalizedDistance(std::span<const double> a,
                                   std::span<const double> b);

/// Reference pair distance between the windows of `series` starting at
/// `offset_a` / `offset_b` with `length` points. O(l); used as ground truth
/// in tests and for one-off evaluations (e.g. seeding baselines).
Result<double> SubsequenceDistance(const DataSeries& series,
                                   std::size_t offset_a, std::size_t offset_b,
                                   std::size_t length);

}  // namespace valmod::series

#endif  // VALMOD_SERIES_ZNORM_H_
