#ifndef VALMOD_SERIES_IO_H_
#define VALMOD_SERIES_IO_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "series/data_series.h"

namespace valmod::series {

/// Reads a series from a delimited text file (CSV/TSV/whitespace).
///
/// `column` selects the 0-based field to parse on each line. Blank lines are
/// skipped; a single non-numeric header line is tolerated and skipped.
/// Delimiters `,`, `;`, tab and space are all accepted.
Result<DataSeries> ReadDelimited(const std::string& path,
                                 std::size_t column = 0);

/// Writes one value per line.
Status WriteDelimited(const DataSeries& series, const std::string& path);

/// Reads a series stored as raw little-endian IEEE-754 doubles.
Result<DataSeries> ReadBinary(const std::string& path);

/// Writes a series as raw little-endian IEEE-754 doubles.
Status WriteBinary(const DataSeries& series, const std::string& path);

/// A named column for artifact emission.
struct Column {
  std::string name;
  std::vector<double> values;
};

/// Writes columns side by side as CSV with a header row; shorter columns are
/// padded with empty cells. Used by the bench harnesses to emit the data
/// behind each reproduced figure.
Status WriteColumnsCsv(const std::vector<Column>& columns,
                       const std::string& path);

}  // namespace valmod::series

#endif  // VALMOD_SERIES_IO_H_
