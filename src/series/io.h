#ifndef VALMOD_SERIES_IO_H_
#define VALMOD_SERIES_IO_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "series/data_series.h"

namespace valmod::series {

/// Options shared by the series readers.
struct ReadOptions {
  /// How to treat non-finite samples (`nan`/`inf` parse as valid doubles,
  /// and binary files can carry any bit pattern). Default false: loading
  /// fails with kInvalidArgument naming the file and line/index — a NaN
  /// would otherwise poison every z-normalized statistic downstream, and
  /// the engine layer rejects it anyway, just with no file context. True
  /// (the CLI's --allow-nonfinite escape hatch): non-finite samples are
  /// treated as missing readings and dropped, so the surviving values form
  /// a shorter but analyzable series.
  bool allow_nonfinite = false;
};

/// Reads a series from a delimited text file (CSV/TSV/whitespace).
///
/// `column` selects the 0-based field to parse on each line. Blank lines are
/// skipped; a single non-numeric header line is tolerated and skipped.
/// Delimiters `,`, `;`, tab and space are all accepted.
Result<DataSeries> ReadDelimited(const std::string& path,
                                 std::size_t column = 0,
                                 const ReadOptions& options = {});

/// Writes one value per line.
Status WriteDelimited(const DataSeries& series, const std::string& path);

/// Reads a series stored as raw little-endian IEEE-754 doubles.
Result<DataSeries> ReadBinary(const std::string& path,
                              const ReadOptions& options = {});

/// Writes a series as raw little-endian IEEE-754 doubles.
Status WriteBinary(const DataSeries& series, const std::string& path);

/// A named column for artifact emission.
struct Column {
  std::string name;
  std::vector<double> values;
};

/// Writes columns side by side as CSV with a header row; shorter columns are
/// padded with empty cells. Used by the bench harnesses to emit the data
/// behind each reproduced figure.
Status WriteColumnsCsv(const std::vector<Column>& columns,
                       const std::string& path);

}  // namespace valmod::series

#endif  // VALMOD_SERIES_IO_H_
