#include "series/io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace valmod::series {

namespace {

/// Splits a line on any of the accepted delimiters.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    // Consecutive delimiters (e.g. aligned whitespace) collapse.
    if (c == ',' || c == ';' || c == '\t' || c == ' ') {
      if (!current.empty()) {
        fields.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) fields.push_back(current);
  return fields;
}

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || end == nullptr) return false;
  // Allow trailing '\r' from CRLF files.
  while (*end == '\r' || *end == ' ') ++end;
  if (*end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

Result<DataSeries> ReadDelimited(const std::string& path, std::size_t column,
                                 const ReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");

  std::vector<double> values;
  std::string line;
  std::size_t line_number = 0;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;
    const std::vector<std::string> fields = SplitFields(line);
    if (fields.size() <= column) {
      return Status::IoError("line " + std::to_string(line_number) + " of '" +
                             path + "' has " + std::to_string(fields.size()) +
                             " fields, need column " + std::to_string(column));
    }
    double value = 0.0;
    if (!ParseDouble(fields[column], &value)) {
      if (!header_skipped && values.empty()) {
        header_skipped = true;  // tolerate one header line
        continue;
      }
      return Status::IoError("non-numeric value '" + fields[column] +
                             "' at line " + std::to_string(line_number) +
                             " of '" + path + "'");
    }
    // strtod happily parses "nan"/"inf"; rejected here, at the boundary,
    // where the error can name the offending line (see ReadOptions).
    if (!std::isfinite(value)) {
      if (options.allow_nonfinite) continue;
      return Status::InvalidArgument(
          "non-finite value '" + fields[column] + "' at line " +
          std::to_string(line_number) + " of '" + path +
          "' (pass --allow-nonfinite to drop such samples)");
    }
    values.push_back(value);
  }
  if (values.empty()) {
    return Status::IoError("no numeric data found in '" + path + "'");
  }
  return DataSeries::Create(std::move(values));
}

Status WriteDelimited(const DataSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.precision(17);
  for (double v : series.values()) out << v << '\n';
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Result<DataSeries> ReadBinary(const std::string& path,
                              const ReadOptions& options) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  const std::streamsize bytes = in.tellg();
  if (bytes < 0 || bytes % static_cast<std::streamsize>(sizeof(double)) != 0) {
    return Status::IoError("'" + path +
                           "' size is not a multiple of sizeof(double)");
  }
  in.seekg(0);
  std::vector<double> values(static_cast<std::size_t>(bytes) /
                             sizeof(double));
  if (!values.empty() &&
      !in.read(reinterpret_cast<char*>(values.data()), bytes)) {
    return Status::IoError("short read from '" + path + "'");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::isfinite(values[i])) continue;
    if (options.allow_nonfinite) {
      values.erase(std::remove_if(values.begin() +
                                      static_cast<std::ptrdiff_t>(i),
                                  values.end(),
                                  [](double v) { return !std::isfinite(v); }),
                   values.end());
      break;
    }
    return Status::InvalidArgument(
        "non-finite value at index " + std::to_string(i) + " of '" + path +
        "' (pass --allow-nonfinite to drop such samples)");
  }
  if (values.empty()) {
    return Status::IoError("no data in '" + path + "'");
  }
  return DataSeries::Create(std::move(values));
}

Status WriteBinary(const DataSeries& series, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const auto values = series.values();
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Status WriteColumnsCsv(const std::vector<Column>& columns,
                       const std::string& path) {
  if (columns.empty()) {
    return Status::InvalidArgument("WriteColumnsCsv needs at least 1 column");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.precision(17);

  std::size_t rows = 0;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out << ',';
    out << columns[c].name;
    rows = std::max(rows, columns[c].values.size());
  }
  out << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) out << ',';
      if (r < columns[c].values.size()) out << columns[c].values[r];
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

}  // namespace valmod::series
