#ifndef VALMOD_SERIES_GENERATORS_H_
#define VALMOD_SERIES_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "series/data_series.h"

/// Synthetic workload generators.
///
/// The paper evaluates on real recordings (UCR ECG, ASTRO light curves,
/// entomology EPG, seismographs) that are not shipped with this repository;
/// each generator below is the documented substitute (DESIGN.md §4). All
/// generators are deterministic in their seed.
namespace valmod::synth {

/// Gaussian random walk: the standard null workload for matrix-profile
/// methods (no planted structure, motifs arise by chance).
struct RandomWalkOptions {
  std::size_t length = 10000;
  uint64_t seed = 1;
  double step_stddev = 1.0;
};
Result<series::DataSeries> RandomWalk(const RandomWalkOptions& options);

/// Noisy sinusoid: the simplest periodic workload; every period is a motif
/// occurrence.
struct SineOptions {
  std::size_t length = 10000;
  uint64_t seed = 1;
  double period = 100.0;
  double amplitude = 1.0;
  double noise_stddev = 0.05;
  double phase = 0.0;
};
Result<series::DataSeries> Sine(const SineOptions& options);

/// Synthetic electrocardiogram: each beat is a P-QRS-T complex built from
/// five Gaussian bumps, with beat-to-beat jitter in duration and amplitude,
/// baseline wander, and measurement noise. Reproduces the two event scales
/// of the paper's Figure 1: the ventricular contraction (a fraction of the
/// beat) and the full beat.
struct EcgOptions {
  std::size_t length = 10000;
  uint64_t seed = 1;
  /// Mean beat duration in samples (paper Fig. 1 snippet: ~400).
  double samples_per_beat = 400.0;
  /// Relative standard deviation of beat duration (heart-rate variability).
  double beat_jitter = 0.04;
  /// Relative standard deviation of per-beat amplitude.
  double amplitude_jitter = 0.08;
  double noise_stddev = 0.02;
  double baseline_wander_amplitude = 0.1;
  double baseline_wander_period = 3000.0;
};
Result<series::DataSeries> Ecg(const EcgOptions& options);

/// Synthetic variable-star light curve ("ASTRO"): an asymmetric pulse shape
/// (three harmonics) with slowly drifting period and amplitude plus
/// photometric noise.
struct AstroOptions {
  std::size_t length = 10000;
  uint64_t seed = 1;
  double base_period = 180.0;
  /// Relative period modulation depth over `drift_period` samples.
  double period_drift = 0.06;
  double drift_period = 20000.0;
  double amplitude = 1.0;
  double noise_stddev = 0.05;
};
Result<series::DataSeries> Astro(const AstroOptions& options);

/// Synthetic seismograph: AR(1) background microseism with repeated
/// earthquake-like events (damped oscillations) of varying magnitude and
/// duration inserted at Poisson arrival times.
struct SeismicOptions {
  std::size_t length = 20000;
  uint64_t seed = 1;
  /// Expected number of events over the whole series.
  double expected_events = 8.0;
  /// Mean event duration in samples.
  double event_duration = 500.0;
  /// Oscillation period of the event waveform, in samples.
  double event_period = 40.0;
  double event_amplitude = 6.0;
  /// Relative jitter applied to duration/amplitude/period per event.
  double event_jitter = 0.15;
  double background_stddev = 1.0;
  /// AR(1) coefficient of the background noise.
  double background_ar = 0.6;
};

/// Seismic series plus the ground-truth onsets of the inserted events, used
/// by the seismic example to score detections.
struct SeismicSeries {
  series::DataSeries series;
  std::vector<std::size_t> event_onsets;
};
Result<SeismicSeries> Seismic(const SeismicOptions& options);

/// Synthetic insect EPG (electrical penetration graph) series: slow baseline
/// with repeated stylet-probing bursts — sawtooth spike trains whose
/// *duration varies per occurrence*, the variable-length pattern case that
/// motivates VALMOD.
struct EntomologyOptions {
  std::size_t length = 20000;
  uint64_t seed = 1;
  double expected_bursts = 10.0;
  /// Burst durations are drawn uniformly from this range (samples).
  double min_burst_duration = 200.0;
  double max_burst_duration = 700.0;
  /// Sawtooth spike period inside a burst, in samples.
  double spike_period = 25.0;
  double spike_amplitude = 2.0;
  double noise_stddev = 0.1;
};
Result<series::DataSeries> Entomology(const EntomologyOptions& options);

/// Random-walk background with `occurrences` copies of one smoothed random
/// pattern planted at well-separated offsets (with per-occurrence scaling
/// and noise). The ground truth offsets make exactness and recall checks
/// possible in tests and examples.
struct PlantedMotifOptions {
  std::size_t length = 10000;
  uint64_t seed = 1;
  std::size_t motif_length = 200;
  std::size_t occurrences = 3;
  /// Standard deviation of the noise added to each planted copy, relative to
  /// the unit-scale pattern.
  double occurrence_noise = 0.05;
  /// Relative amplitude jitter between copies.
  double scale_jitter = 0.1;
  /// Smoothing half-window applied to the background walk, in samples.
  std::size_t background_smoothing = 4;
};

struct PlantedMotifSeries {
  series::DataSeries series;
  std::vector<std::size_t> motif_offsets;  // sorted, well separated
};
Result<PlantedMotifSeries> PlantedMotif(const PlantedMotifOptions& options);

/// Convenience dispatcher used by benches/examples: "random_walk", "sine",
/// "ecg", "astro", "seismic", "entomology" with default shape parameters.
Result<series::DataSeries> ByName(const std::string& name, std::size_t length,
                                  uint64_t seed);

}  // namespace valmod::synth

#endif  // VALMOD_SERIES_GENERATORS_H_
