#include "series/znorm.h"

#include <string>

namespace valmod::series {

Result<std::vector<double>> ZNormalize(std::span<const double> window) {
  if (window.empty()) {
    return Status::InvalidArgument("cannot z-normalize an empty window");
  }
  VALMOD_ASSIGN_OR_RETURN(stats::MovingStats stats,
                          stats::MovingStats::Create(window));
  std::vector<double> out(window.size(), 0.0);
  if (stats.IsConstant(0, window.size())) return out;  // all-zeros convention

  const double mean = stats.Mean(0, window.size());
  const double inv_std = 1.0 / stats.StdDev(0, window.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    out[i] = (window[i] - mean) * inv_std;
  }
  return out;
}

Result<double> ZNormalizedDistance(std::span<const double> a,
                                   std::span<const double> b) {
  if (a.empty() || a.size() != b.size()) {
    return Status::InvalidArgument(
        "windows must be non-empty and equal length (got " +
        std::to_string(a.size()) + " and " + std::to_string(b.size()) + ")");
  }
  VALMOD_ASSIGN_OR_RETURN(std::vector<double> za, ZNormalize(a));
  VALMOD_ASSIGN_OR_RETURN(std::vector<double> zb, ZNormalize(b));
  double sq = 0.0;
  for (std::size_t i = 0; i < za.size(); ++i) {
    const double diff = za[i] - zb[i];
    sq += diff * diff;
  }
  return std::sqrt(sq);
}

Result<double> SubsequenceDistance(const DataSeries& series,
                                   std::size_t offset_a, std::size_t offset_b,
                                   std::size_t length) {
  VALMOD_ASSIGN_OR_RETURN(std::vector<double> a,
                          series.Subsequence(offset_a, length));
  VALMOD_ASSIGN_OR_RETURN(std::vector<double> b,
                          series.Subsequence(offset_b, length));
  return ZNormalizedDistance(a, b);
}

}  // namespace valmod::series
