#include "series/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/status.h"

namespace valmod::synth {

namespace {

using series::DataSeries;

constexpr double kTwoPi = 2.0 * std::numbers::pi;

Status ValidateLength(std::size_t length) {
  if (length == 0) {
    return Status::InvalidArgument("generator length must be positive");
  }
  return Status::Ok();
}

/// One P-QRS-T complex evaluated at beat phase `u` in [0, 1): five Gaussian
/// bumps at textbook phase positions (unit R amplitude).
double EcgBeatShape(double u) {
  struct Bump {
    double center, width, amplitude;
  };
  static constexpr Bump kBumps[] = {
      {0.18, 0.040, 0.15},   // P wave (atrial contraction)
      {0.35, 0.012, -0.10},  // Q
      {0.38, 0.016, 1.00},   // R
      {0.41, 0.012, -0.20},  // S
      {0.60, 0.055, 0.30},   // T wave (ventricular repolarization)
  };
  double value = 0.0;
  for (const Bump& b : kBumps) {
    const double z = (u - b.center) / b.width;
    value += b.amplitude * std::exp(-0.5 * z * z);
  }
  return value;
}

/// Asymmetric pulse used by the ASTRO generator (RR-Lyrae-like fast rise /
/// slow decay built from three harmonics).
double AstroPulseShape(double phase) {
  return std::sin(phase) + 0.35 * std::sin(2.0 * phase + 0.8) +
         0.18 * std::sin(3.0 * phase + 1.7);
}

/// Moving-average smoothing with half-window `half` (no-op when half == 0).
std::vector<double> Smooth(const std::vector<double>& in, std::size_t half) {
  if (half == 0) return in;
  std::vector<double> out(in.size());
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(n - 1, i + half);
    double sum = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) sum += in[j];
    out[i] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace

Result<DataSeries> RandomWalk(const RandomWalkOptions& options) {
  VALMOD_RETURN_IF_ERROR(ValidateLength(options.length));
  if (options.step_stddev <= 0.0) {
    return Status::InvalidArgument("step_stddev must be positive");
  }
  Rng rng(options.seed);
  std::vector<double> values(options.length);
  double level = 0.0;
  for (std::size_t i = 0; i < options.length; ++i) {
    level += rng.Gaussian(0.0, options.step_stddev);
    values[i] = level;
  }
  return DataSeries::Create(std::move(values));
}

Result<DataSeries> Sine(const SineOptions& options) {
  VALMOD_RETURN_IF_ERROR(ValidateLength(options.length));
  if (options.period <= 0.0) {
    return Status::InvalidArgument("period must be positive");
  }
  Rng rng(options.seed);
  std::vector<double> values(options.length);
  for (std::size_t i = 0; i < options.length; ++i) {
    const double t = static_cast<double>(i);
    values[i] = options.amplitude *
                    std::sin(kTwoPi * t / options.period + options.phase) +
                rng.Gaussian(0.0, options.noise_stddev);
  }
  return DataSeries::Create(std::move(values));
}

Result<DataSeries> Ecg(const EcgOptions& options) {
  VALMOD_RETURN_IF_ERROR(ValidateLength(options.length));
  if (options.samples_per_beat < 8.0) {
    return Status::InvalidArgument("samples_per_beat must be at least 8");
  }
  Rng rng(options.seed);
  std::vector<double> values(options.length, 0.0);

  // Lay beats down one after another; each beat owns its jittered duration
  // and amplitude so consecutive heartbeats are near-copies, not exact ones.
  std::size_t beat_start = 0;
  while (beat_start < options.length) {
    const double duration =
        std::max(8.0, options.samples_per_beat *
                          (1.0 + rng.Gaussian(0.0, options.beat_jitter)));
    const double amplitude =
        1.0 + rng.Gaussian(0.0, options.amplitude_jitter);
    const std::size_t beat_len = static_cast<std::size_t>(duration);
    for (std::size_t t = 0; t < beat_len && beat_start + t < options.length;
         ++t) {
      const double u = static_cast<double>(t) / duration;
      values[beat_start + t] = amplitude * EcgBeatShape(u);
    }
    beat_start += beat_len;
  }

  // Baseline wander (respiration-scale drift) plus measurement noise.
  for (std::size_t i = 0; i < options.length; ++i) {
    const double t = static_cast<double>(i);
    values[i] += options.baseline_wander_amplitude *
                     std::sin(kTwoPi * t / options.baseline_wander_period) +
                 rng.Gaussian(0.0, options.noise_stddev);
  }
  return DataSeries::Create(std::move(values));
}

Result<DataSeries> Astro(const AstroOptions& options) {
  VALMOD_RETURN_IF_ERROR(ValidateLength(options.length));
  if (options.base_period <= 1.0) {
    return Status::InvalidArgument("base_period must exceed 1 sample");
  }
  Rng rng(options.seed);
  std::vector<double> values(options.length);
  // Integrate instantaneous frequency so the period drifts smoothly without
  // phase jumps.
  double phase = rng.Uniform(0.0, kTwoPi);
  for (std::size_t i = 0; i < options.length; ++i) {
    const double t = static_cast<double>(i);
    const double period =
        options.base_period *
        (1.0 + options.period_drift *
                   std::sin(kTwoPi * t / options.drift_period));
    phase += kTwoPi / period;
    const double envelope =
        1.0 + 0.12 * std::sin(kTwoPi * t / (3.1 * options.drift_period));
    values[i] = options.amplitude * envelope * AstroPulseShape(phase) +
                rng.Gaussian(0.0, options.noise_stddev);
  }
  return DataSeries::Create(std::move(values));
}

Result<SeismicSeries> Seismic(const SeismicOptions& options) {
  VALMOD_RETURN_IF_ERROR(ValidateLength(options.length));
  if (options.background_ar < 0.0 || options.background_ar >= 1.0) {
    return Status::InvalidArgument("background_ar must lie in [0, 1)");
  }
  Rng rng(options.seed);

  // AR(1) microseism background.
  std::vector<double> values(options.length);
  double prev = 0.0;
  const double innovation =
      options.background_stddev *
      std::sqrt(1.0 - options.background_ar * options.background_ar);
  for (std::size_t i = 0; i < options.length; ++i) {
    prev = options.background_ar * prev + rng.Gaussian(0.0, innovation);
    values[i] = prev;
  }

  // Poisson event arrivals; each event is a damped oscillation whose
  // envelope/period/amplitude jitter around the template.
  std::vector<std::size_t> onsets;
  const double rate = options.expected_events /
                      std::max<double>(1.0, static_cast<double>(options.length));
  double t = rng.Exponential(rate);
  while (t < static_cast<double>(options.length)) {
    const std::size_t onset = static_cast<std::size_t>(t);
    const double jitter = 1.0 + rng.Gaussian(0.0, options.event_jitter);
    const double duration = std::max(16.0, options.event_duration * jitter);
    const double amplitude =
        options.event_amplitude *
        (1.0 + rng.Gaussian(0.0, options.event_jitter));
    const double period =
        std::max(4.0, options.event_period *
                          (1.0 + rng.Gaussian(0.0, options.event_jitter)));
    const double decay = 3.0 / duration;  // ~95% decayed at the nominal end
    for (std::size_t s = 0; s < static_cast<std::size_t>(duration); ++s) {
      const std::size_t idx = onset + s;
      if (idx >= options.length) break;
      const double ts = static_cast<double>(s);
      values[idx] += amplitude * std::exp(-decay * ts) *
                     std::sin(kTwoPi * ts / period);
    }
    onsets.push_back(onset);
    t += rng.Exponential(rate);
  }

  VALMOD_ASSIGN_OR_RETURN(DataSeries series,
                          DataSeries::Create(std::move(values)));
  return SeismicSeries{std::move(series), std::move(onsets)};
}

Result<DataSeries> Entomology(const EntomologyOptions& options) {
  VALMOD_RETURN_IF_ERROR(ValidateLength(options.length));
  if (options.min_burst_duration > options.max_burst_duration) {
    return Status::InvalidArgument(
        "min_burst_duration exceeds max_burst_duration");
  }
  Rng rng(options.seed);

  // Slow baseline drift: sum of two long incommensurate sinusoids.
  std::vector<double> values(options.length);
  for (std::size_t i = 0; i < options.length; ++i) {
    const double t = static_cast<double>(i);
    values[i] = 0.4 * std::sin(kTwoPi * t / 7919.0) +
                0.25 * std::sin(kTwoPi * t / 3163.0) +
                rng.Gaussian(0.0, options.noise_stddev);
  }

  // Probing bursts: sawtooth spike trains with per-burst duration drawn from
  // [min, max] — the same waveform appearing at different temporal extents.
  const double rate =
      options.expected_bursts /
      std::max<double>(1.0, static_cast<double>(options.length));
  double t = rng.Exponential(rate);
  while (t < static_cast<double>(options.length)) {
    const std::size_t onset = static_cast<std::size_t>(t);
    const double duration =
        rng.Uniform(options.min_burst_duration, options.max_burst_duration);
    for (std::size_t s = 0; s < static_cast<std::size_t>(duration); ++s) {
      const std::size_t idx = onset + s;
      if (idx >= options.length) break;
      const double u = std::fmod(static_cast<double>(s),
                                 options.spike_period) /
                       options.spike_period;
      // Rising ramp with sharp fall — the classic EPG probing waveform.
      values[idx] += options.spike_amplitude * (u < 0.85 ? u / 0.85
                                                         : (1.0 - u) / 0.15);
    }
    t += duration + rng.Exponential(rate);
  }
  return DataSeries::Create(std::move(values));
}

Result<PlantedMotifSeries> PlantedMotif(const PlantedMotifOptions& options) {
  VALMOD_RETURN_IF_ERROR(ValidateLength(options.length));
  if (options.motif_length == 0 || options.occurrences < 2) {
    return Status::InvalidArgument(
        "need motif_length >= 1 and at least 2 occurrences");
  }
  // Occurrences must fit with a separation gap of one motif length around
  // each so copies never trivially overlap.
  const std::size_t slot = 2 * options.motif_length;
  if (slot * options.occurrences + options.motif_length > options.length) {
    return Status::InvalidArgument(
        "series too short for " + std::to_string(options.occurrences) +
        " separated occurrences of length " +
        std::to_string(options.motif_length));
  }
  Rng rng(options.seed);

  // Smoothed random-walk background.
  std::vector<double> background(options.length);
  double level = 0.0;
  for (std::size_t i = 0; i < options.length; ++i) {
    level += rng.Gaussian(0.0, 0.25);
    background[i] = level;
  }
  std::vector<double> values = Smooth(background, options.background_smoothing);

  // Unit-scale smoothed random pattern.
  std::vector<double> pattern(options.motif_length);
  double p = 0.0;
  for (std::size_t i = 0; i < options.motif_length; ++i) {
    p += rng.Gaussian(0.0, 1.0);
    pattern[i] = p;
  }
  pattern = Smooth(pattern, std::max<std::size_t>(2, options.motif_length / 32));
  // Normalize the pattern to zero mean / unit std so planted amplitudes are
  // meaningful relative to the background.
  double mean = 0.0;
  for (double v : pattern) mean += v;
  mean /= static_cast<double>(pattern.size());
  double var = 0.0;
  for (double v : pattern) var += (v - mean) * (v - mean);
  var /= static_cast<double>(pattern.size());
  const double inv_std = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
  for (double& v : pattern) v = (v - mean) * inv_std;

  // Place copies in disjoint slots with random in-slot shifts.
  std::vector<std::size_t> offsets;
  const std::size_t usable_slots = options.length / slot;
  const std::size_t stride = usable_slots / options.occurrences;
  for (std::size_t o = 0; o < options.occurrences; ++o) {
    const std::size_t slot_index = o * stride;
    const std::size_t slot_start = slot_index * slot;
    const std::size_t max_shift = slot - options.motif_length;
    const std::size_t shift = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(max_shift)));
    const std::size_t offset = slot_start + shift;
    const double scale =
        3.0 * (1.0 + rng.Gaussian(0.0, options.scale_jitter));
    for (std::size_t i = 0; i < options.motif_length; ++i) {
      values[offset + i] = scale * pattern[i] +
                           rng.Gaussian(0.0, options.occurrence_noise);
    }
    offsets.push_back(offset);
  }

  VALMOD_ASSIGN_OR_RETURN(DataSeries series,
                          DataSeries::Create(std::move(values)));
  return PlantedMotifSeries{std::move(series), std::move(offsets)};
}

Result<DataSeries> ByName(const std::string& name, std::size_t length,
                          uint64_t seed) {
  if (name == "random_walk") {
    return RandomWalk({.length = length, .seed = seed});
  }
  if (name == "sine") {
    return Sine({.length = length, .seed = seed});
  }
  if (name == "ecg") {
    return Ecg({.length = length, .seed = seed});
  }
  if (name == "astro") {
    return Astro({.length = length, .seed = seed});
  }
  if (name == "seismic") {
    VALMOD_ASSIGN_OR_RETURN(SeismicSeries s,
                            Seismic({.length = length, .seed = seed}));
    return std::move(s.series);
  }
  if (name == "entomology") {
    return Entomology({.length = length, .seed = seed});
  }
  return Status::InvalidArgument("unknown generator '" + name +
                                 "' (expected random_walk|sine|ecg|astro|"
                                 "seismic|entomology)");
}

}  // namespace valmod::synth
