#ifndef VALMOD_SERIES_DATA_SERIES_H_
#define VALMOD_SERIES_DATA_SERIES_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "stats/moving_stats.h"

namespace valmod::series {

/// Immutable data series (time series / sequence) with precomputed window
/// statistics.
///
/// Every algorithm in the library takes a `const DataSeries&`: the container
/// owns the raw values and a MovingStats instance so that means / standard
/// deviations of arbitrary windows are O(1) everywhere. Instances are
/// move-only (the stats arrays make copies expensive enough that they should
/// be explicit — use `Clone()`).
class DataSeries {
 public:
  /// Validates and wraps `values`. Fails on an empty vector or non-finite
  /// entries. Cost: O(n) to build prefix statistics.
  static Result<DataSeries> Create(std::vector<double> values);

  /// Like Create, but centers the stats at `center` instead of the series'
  /// global mean (see stats::MovingStats::CreateWithCenter). Streaming
  /// snapshots pass 0.0 over anchor-shifted values so `centered()` — and
  /// with it every cached spectrum — is bit-stable while the window grows.
  static Result<DataSeries> CreateWithCenter(std::vector<double> values,
                                             double center);

  DataSeries(DataSeries&&) = default;
  DataSeries& operator=(DataSeries&&) = default;
  DataSeries(const DataSeries&) = delete;
  DataSeries& operator=(const DataSeries&) = delete;

  /// Explicit deep copy.
  DataSeries Clone() const;

  /// A new series holding the first `count` points (a "prefix snippet", the
  /// workload unit of the paper's scalability experiment, Figure 3 bottom).
  Result<DataSeries> Prefix(std::size_t count) const;

  std::size_t size() const { return values_.size(); }

  /// Raw values as provided at construction.
  std::span<const double> values() const { return values_; }

  /// Globally mean-centered values; the representation every distance kernel
  /// in this library operates on (z-normalized distances are invariant under
  /// the global shift, and centering conditions the prefix sums).
  std::span<const double> centered() const { return stats_.centered(); }

  /// O(1) window statistics.
  const stats::MovingStats& stats() const { return stats_; }

  /// Number of subsequences of `length`: `size() - length + 1`, or 0 when
  /// `length` is 0 or exceeds the series.
  std::size_t NumSubsequences(std::size_t length) const {
    if (length == 0 || length > values_.size()) return 0;
    return values_.size() - length + 1;
  }

  /// Copy of the raw subsequence starting at `offset` with `length` points.
  /// Fails when the window falls outside the series.
  Result<std::vector<double>> Subsequence(std::size_t offset,
                                          std::size_t length) const;

  /// Heap footprint: the raw values plus the stats arrays.
  std::size_t MemoryBytes() const {
    return values_.capacity() * sizeof(double) + stats_.MemoryBytes();
  }

 private:
  DataSeries(std::vector<double> values, stats::MovingStats stats)
      : values_(std::move(values)), stats_(std::move(stats)) {}

  std::vector<double> values_;
  stats::MovingStats stats_;
};

}  // namespace valmod::series

#endif  // VALMOD_SERIES_DATA_SERIES_H_
