#include "series/windowed_series.h"

namespace valmod::series {

std::size_t WindowedSeries::Append(double value) {
  buffer_.PushBack(value);
  if (max_points_ == 0 || buffer_.size() <= max_points_) return 0;
  buffer_.PopFront();
  ++evicted_;
  return 1;
}

Result<DataSeries> WindowedSeries::ToDataSeries(double center) const {
  const auto window = values();
  return DataSeries::CreateWithCenter({window.begin(), window.end()}, center);
}

}  // namespace valmod::series
