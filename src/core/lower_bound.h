#ifndef VALMOD_CORE_LOWER_BOUND_H_
#define VALMOD_CORE_LOWER_BOUND_H_

#include <cmath>
#include <cstddef>

#include "common/result.h"
#include "series/data_series.h"

namespace valmod::core {

/// VALMOD's cross-length lower bound (DESIGN.md §3.4).
///
/// For subsequences of a series starting at offsets i and j, with Pearson
/// correlation `rho` at base length `l`, the z-normalized distance at any
/// longer length `L = l + k` satisfies
///
///   d_{i,j}(L) >= (sigma_i(l) / sigma_i(L)) * base,
///   base = sqrt(l * (1 - rho^2))  when rho > 0,
///          sqrt(l)                otherwise.
///
/// Derivation sketch: drop the trailing L - l terms of the squared distance,
/// then minimize the retained head over *all* affine renormalizations of
/// window j (the continuation of j is unknown); the minimum is the residual
/// of regressing the head of the L-normalized window i on the z-normalized
/// window j and a constant, which evaluates to the expression above.
///
/// Two properties drive the VALMOD algorithm and are property-tested:
///  * admissibility: LB <= true distance, always;
///  * rank invariance: the sigma ratio is shared by every j in row i, so
///    ordering candidates by `base` is preserved across all target lengths.

/// The length-independent factor of the bound ("base LB"). `rho` must be in
/// [-1, 1]; base_length >= 1.
inline double BaseLowerBound(double rho, std::size_t base_length) {
  const double l = static_cast<double>(base_length);
  if (rho <= 0.0) return std::sqrt(l);
  const double residual = l * (1.0 - rho * rho);
  return residual > 0.0 ? std::sqrt(residual) : 0.0;
}

/// Scales a base LB to a target length via the row subsequence's standard
/// deviations at base and target lengths.
///
/// Safety fallbacks (both keep the bound admissible):
///  * sigma_base <= 0 — the row window was constant at the base length, the
///    regression residual is 0, so the only valid bound is 0;
///  * sigma_target <= 0 — the row window is constant at the target length;
///    true distances collapse to 0 or sqrt(L), so again return 0.
inline double ScaledLowerBound(double base_lb, double sigma_base,
                               double sigma_target) {
  if (sigma_base <= 0.0 || sigma_target <= 0.0) return 0.0;
  return base_lb * (sigma_base / sigma_target);
}

/// Reference implementation for tests: the full lower bound for the pair of
/// subsequences of `series` at `offset_a` (the "row", whose sigmas appear in
/// the bound) and `offset_b`, from `base_length` to `target_length`.
/// Requires base_length <= target_length and both windows in range at the
/// target length.
Result<double> PairLowerBound(const series::DataSeries& series,
                              std::size_t offset_a, std::size_t offset_b,
                              std::size_t base_length,
                              std::size_t target_length);

}  // namespace valmod::core

#endif  // VALMOD_CORE_LOWER_BOUND_H_
