#ifndef VALMOD_CORE_PARTIAL_PROFILE_H_
#define VALMOD_CORE_PARTIAL_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace valmod::core {

/// One stored candidate of a partial distance profile (paper Figure 2): the
/// match offset, its running dot product (kept current so the true distance
/// at each next length costs one fused multiply-add), and its base LB, the
/// length-independent factor of the lower bound.
struct Entry {
  int64_t match = -1;
  double dot = 0.0;
  double base_lb = 0.0;
  double distance = std::numeric_limits<double>::infinity();
};

/// The p best-LB candidates of every subsequence ("partial distance
/// profiles", the data structure at the heart of VALMOD).
///
/// Storage is one flat array with stride p for cache-friendly per-length
/// sweeps. Each row records:
///  * its entries (the p candidates with smallest base LB seen at seed time,
///    maintained as a max-heap during seeding, compacted as candidates die);
///  * `max_base_lb`: the p-th smallest base LB at seed time — a lower bound
///    factor for every *non-stored* candidate. Frozen at seeding: +infinity
///    while the row holds fewer than p candidates (then the stored set is
///    exhaustive and nothing is unexplored);
///  * `base_length`: the length whose statistics anchor the row's LB; rows
///    re-seeded after an exact recompute move their base forward.
class PartialProfileSet {
 public:
  /// `rows` subsequences, `p >= 1` entries per row, all rows anchored at
  /// `base_length` until re-seeded.
  PartialProfileSet(std::size_t rows, std::size_t p, std::size_t base_length);

  std::size_t rows() const { return row_size_.size(); }
  std::size_t capacity_per_row() const { return p_; }

  /// Offers a candidate during (re-)seeding; keeps the p smallest base LBs.
  void Offer(std::size_t row, int64_t match, double dot, double base_lb);

  /// Freezes `max_base_lb` after seeding finished for `row` (call once per
  /// row per seeding pass) and orders its entries by ascending base LB.
  void FinishSeeding(std::size_t row);

  /// Clears a row and re-anchors it at `base_length` before re-seeding.
  void Reset(std::size_t row, std::size_t base_length);

  /// Live entries of a row (mutable: the per-length sweep updates dot /
  /// distance in place).
  std::span<Entry> MutableRow(std::size_t row) {
    return {&entries_[row * p_], row_size_[row]};
  }
  std::span<const Entry> Row(std::size_t row) const {
    return {&entries_[row * p_], row_size_[row]};
  }

  /// Drops entries for which `dead(entry)` is true, preserving order.
  /// Dead candidates (overlapping the grown exclusion zone or past the
  /// shrunken subsequence count) never come back, so this is permanent.
  template <typename Predicate>
  void CompactRow(std::size_t row, Predicate dead) {
    Entry* base = &entries_[row * p_];
    std::size_t kept = 0;
    for (std::size_t e = 0; e < row_size_[row]; ++e) {
      if (!dead(base[e])) {
        if (kept != e) base[kept] = base[e];
        ++kept;
      }
    }
    row_size_[row] = kept;
  }

  /// The frozen bound factor for unexplored candidates of the row.
  double max_base_lb(std::size_t row) const { return max_base_lb_[row]; }

  /// The length whose statistics anchor the row's lower bound.
  std::size_t base_length(std::size_t row) const { return base_length_[row]; }

 private:
  std::size_t p_;
  std::vector<Entry> entries_;          // rows * p, heap/sorted per row
  std::vector<std::size_t> row_size_;   // live entries per row
  std::vector<double> max_base_lb_;     // frozen at FinishSeeding
  std::vector<std::size_t> base_length_;
};

}  // namespace valmod::core

#endif  // VALMOD_CORE_PARTIAL_PROFILE_H_
