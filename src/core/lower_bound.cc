#include "core/lower_bound.h"

#include <string>

#include "common/status.h"
#include "series/znorm.h"
#include "stats/moving_stats.h"

namespace valmod::core {

Result<double> PairLowerBound(const series::DataSeries& series,
                              std::size_t offset_a, std::size_t offset_b,
                              std::size_t base_length,
                              std::size_t target_length) {
  if (base_length == 0 || base_length > target_length) {
    return Status::InvalidArgument(
        "need 1 <= base_length <= target_length, got base=" +
        std::to_string(base_length) +
        " target=" + std::to_string(target_length));
  }
  if (offset_a + target_length > series.size() ||
      offset_b + target_length > series.size()) {
    return Status::OutOfRange("windows exceed the series at target length");
  }

  const stats::MovingStats& stats = series.stats();
  if (stats.IsConstant(offset_a, base_length) ||
      stats.IsConstant(offset_b, base_length)) {
    // Constant row window: residual is 0 (see header). Constant candidate
    // window: the candidate z-normalizes to zeros at the base length, the
    // regression degenerates to the rho <= 0 case.
    if (stats.IsConstant(offset_a, base_length)) return 0.0;
    return ScaledLowerBound(
        BaseLowerBound(0.0, base_length), stats.StdDev(offset_a, base_length),
        stats.StdDev(offset_a, target_length));
  }

  // Correlation at the base length from the centered representation.
  const auto c = series.centered();
  const double dot = series::DotProduct(c.data() + offset_a,
                                        c.data() + offset_b, base_length);
  const double rho = series::CorrelationFromDot(
      dot, stats.CenteredMean(offset_a, base_length),
      stats.CenteredMean(offset_b, base_length),
      stats.StdDev(offset_a, base_length),
      stats.StdDev(offset_b, base_length), base_length);

  return ScaledLowerBound(BaseLowerBound(rho, base_length),
                          stats.StdDev(offset_a, base_length),
                          stats.StdDev(offset_a, target_length));
}

}  // namespace valmod::core
