#include "core/valmod.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/lower_bound.h"
#include "core/partial_profile.h"
#include "mass/engine.h"
#include "mass/mass.h"
#include "series/znorm.h"
#include "stats/moving_stats.h"

namespace valmod::core {

namespace {

using mp::kInfinity;

/// Per-row state refreshed at every length of the variable-length phase.
struct RowState {
  double min_dist = kInfinity;
  int64_t best_match = -1;
  double max_lb = 0.0;
  bool valid = false;
  bool constant = false;
};

/// Correlation recovered from a distance at a length (inverse of
/// DistanceFromCorrelation); used to derive base LBs from distances that a
/// profile row already provides.
double CorrelationFromDistance(double distance, std::size_t length) {
  const double l = static_cast<double>(length);
  return 1.0 - (distance * distance) / (2.0 * l);
}

class ValmodRunner {
 public:
  ValmodRunner(mass::MassEngine& engine, const ValmodOptions& options)
      : series_(engine.series()),
        options_(options),
        stats_(series_.stats()),
        centered_(series_.centered()),
        engine_(engine) {}

  Result<ValmodResult> Run();

 private:
  Status Validate() const;
  Status InitialScan();
  Status ProcessLength(std::size_t length);
  Status RecomputeRows(std::span<const std::size_t> rows, std::size_t length,
                       std::size_t exclusion);
  void ApplyRecomputedRow(std::size_t row, std::size_t length,
                          std::size_t exclusion, mass::RowProfile* profile);
  Result<std::vector<mp::MotifPair>> SelectTopK(std::size_t length,
                                                std::size_t exclusion) const;
  void RefreshWindowProfile(std::size_t length);
  void ConstantRowMinimum(std::size_t row, std::size_t length,
                          std::size_t exclusion, RowState* state) const;
  void EmitLength(std::size_t length, std::vector<mp::MotifPair> motifs);

  const series::DataSeries& series_;
  const ValmodOptions& options_;
  const stats::MovingStats& stats_;
  std::span<const double> centered_;
  /// Shared MASS engine: the certification loop recomputes thousands of
  /// rows per run through the batched entry point, and the engine amortizes
  /// the series/chunk spectra and FFT plans across all of them while
  /// pairing batch rows to share transforms. Borrowed, not owned: the
  /// serving layer passes a registry-held engine so the spectra also
  /// amortize across *runs* (the one-shot overload constructs a local one).
  mass::MassEngine& engine_;

  // Phase-1 products.
  std::unique_ptr<PartialProfileSet> partial_;
  std::vector<char> seeded_;  // row has a usable partial profile

  // Per-length working arrays (reused across lengths).
  std::vector<double> means_;
  std::vector<double> stds_;
  std::vector<char> is_const_;
  std::vector<std::size_t> const_offsets_;
  std::vector<std::size_t> non_const_offsets_;
  std::vector<RowState> states_;

  ValmodResult result_;
};

Status ValmodRunner::Validate() const {
  const std::size_t n = series_.size();
  if (options_.min_length < 2) {
    return Status::InvalidArgument("min_length must be >= 2");
  }
  if (options_.min_length > options_.max_length) {
    return Status::InvalidArgument("min_length exceeds max_length");
  }
  if (options_.max_length + 1 > n) {
    return Status::InvalidArgument(
        "max_length " + std::to_string(options_.max_length) +
        " leaves fewer than 2 subsequences in a " + std::to_string(n) +
        "-point series");
  }
  if (options_.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options_.p == 0) return Status::InvalidArgument("p must be >= 1");
  if (options_.exclusion_fraction < 0.0 ||
      options_.exclusion_fraction > 1.0) {
    return Status::InvalidArgument("exclusion_fraction must be in [0, 1]");
  }
  if (!mass::IsValidResultsVersion(options_.results_version)) {
    return Status::InvalidArgument(
        "results_version must be " +
        std::to_string(mass::kLegacyResultsVersion) + " or " +
        std::to_string(mass::kResultsVersion));
  }
  return Status::Ok();
}

void ValmodRunner::RefreshWindowProfile(std::size_t length) {
  const std::size_t count = series_.NumSubsequences(length);
  means_.resize(count);
  stds_.resize(count);
  is_const_.assign(count, 0);
  const_offsets_.clear();
  non_const_offsets_.clear();
  const double threshold = stats_.constant_std_threshold();
  for (std::size_t i = 0; i < count; ++i) {
    means_[i] = stats_.CenteredMean(i, length);
    stds_[i] = stats_.StdDev(i, length);
    if (stds_[i] <= threshold) {
      is_const_[i] = 1;
      const_offsets_.push_back(i);
    } else {
      non_const_offsets_.push_back(i);
    }
  }
}

/// Nearest offset in `sorted` at least `exclusion` away from `row`, or -1.
int64_t NearestOutsideExclusion(const std::vector<std::size_t>& sorted,
                                std::size_t row, std::size_t exclusion) {
  int64_t best = -1;
  int64_t best_gap = std::numeric_limits<int64_t>::max();
  // Left side: largest offset <= row - exclusion.
  if (row >= exclusion) {
    auto it = std::upper_bound(sorted.begin(), sorted.end(),
                               row - exclusion);
    if (it != sorted.begin()) {
      const int64_t offset = static_cast<int64_t>(*std::prev(it));
      best = offset;
      best_gap = static_cast<int64_t>(row) - offset;
    }
  }
  // Right side: smallest offset >= row + exclusion.
  auto it = std::lower_bound(sorted.begin(), sorted.end(), row + exclusion);
  if (it != sorted.end()) {
    const int64_t offset = static_cast<int64_t>(*it);
    const int64_t gap = offset - static_cast<int64_t>(row);
    if (gap < best_gap) best = offset;
  }
  return best;
}

void ValmodRunner::ConstantRowMinimum(std::size_t row, std::size_t length,
                                      std::size_t exclusion,
                                      RowState* state) const {
  // A constant window is at distance 0 from every other constant window and
  // sqrt(l) from every non-constant one (znorm.h conventions), so its exact
  // row minimum needs only the offset lists.
  const int64_t const_match =
      NearestOutsideExclusion(const_offsets_, row, exclusion);
  if (const_match >= 0) {
    state->min_dist = 0.0;
    state->best_match = const_match;
    state->valid = true;
    return;
  }
  const int64_t any_match =
      NearestOutsideExclusion(non_const_offsets_, row, exclusion);
  if (any_match >= 0) {
    state->min_dist = std::sqrt(static_cast<double>(length));
    state->best_match = any_match;
    state->valid = true;
    return;
  }
  state->min_dist = kInfinity;
  state->best_match = -1;
  state->valid = true;  // exact: no eligible match exists
}

Status ValmodRunner::InitialScan() {
  const std::size_t length = options_.min_length;
  const std::size_t count = series_.NumSubsequences(length);
  const std::size_t exclusion =
      mp::ExclusionZoneFor(length, options_.exclusion_fraction);

  RefreshWindowProfile(length);
  partial_ = std::make_unique<PartialProfileSet>(count, options_.p, length);
  seeded_.assign(count, 0);
  for (std::size_t i = 0; i < count; ++i) seeded_[i] = is_const_[i] ? 0 : 1;

  mp::MatrixProfile& profile = result_.min_length_profile;
  profile.subsequence_length = length;
  profile.exclusion_zone = exclusion;
  profile.distances.assign(count, kInfinity);
  profile.indices.assign(count, -1);

  // Fused STOMP sweep: each computed pair updates the row minima of both
  // endpoints and is offered to both partial profiles. With multiple
  // threads, diagonals are assigned round-robin and every thread fills its
  // own profile/partial set; since every pair is handled by exactly one
  // thread, merging local sets with Offer() preserves "p smallest base LBs".
  const int threads = std::max(1, options_.num_threads);
  std::vector<std::vector<double>> local_dist(
      threads, std::vector<double>(count, kInfinity));
  std::vector<std::vector<int64_t>> local_idx(
      threads, std::vector<int64_t>(count, -1));
  std::vector<std::unique_ptr<PartialProfileSet>> local_partial;
  local_partial.reserve(threads);
  local_partial.emplace_back(std::move(partial_));
  for (int t = 1; t < threads; ++t) {
    local_partial.emplace_back(
        std::make_unique<PartialProfileSet>(count, options_.p, length));
  }

  std::atomic<bool> expired{false};
  auto walk = [&](int thread_index) {
    std::vector<double>& dist = local_dist[thread_index];
    std::vector<int64_t>& idx = local_idx[thread_index];
    PartialProfileSet& partial = *local_partial[thread_index];
    std::size_t steps = 0;
    for (std::size_t diag = exclusion + static_cast<std::size_t>(thread_index);
         diag < count; diag += static_cast<std::size_t>(threads)) {
      if ((++steps & 127) == 0 && (expired.load(std::memory_order_relaxed) ||
                                   options_.deadline.Expired())) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      double qt = series::DotProduct(centered_.data(),
                                     centered_.data() + diag, length);
      for (std::size_t i = 0; i + diag < count; ++i) {
        const std::size_t j = i + diag;
        if (i > 0) {
          qt += centered_[i + length - 1] * centered_[j + length - 1] -
                centered_[i - 1] * centered_[j - 1];
        }
        double rho = 0.0;
        double d;
        if (!is_const_[i] && !is_const_[j]) {
          rho = series::CorrelationFromDot(qt, means_[i], means_[j],
                                           stds_[i], stds_[j], length);
          d = series::DistanceFromCorrelation(rho, length);
        } else if (is_const_[i] && is_const_[j]) {
          d = 0.0;
        } else {
          d = std::sqrt(static_cast<double>(length));
        }
        if (d < dist[i]) {
          dist[i] = d;
          idx[i] = static_cast<int64_t>(j);
        }
        if (d < dist[j]) {
          dist[j] = d;
          idx[j] = static_cast<int64_t>(i);
        }
        const double base_lb = BaseLowerBound(rho, length);
        if (seeded_[i]) partial.Offer(i, static_cast<int64_t>(j), qt, base_lb);
        if (seeded_[j]) partial.Offer(j, static_cast<int64_t>(i), qt, base_lb);
      }
    }
  };

  // One chunk per logical worker on the persistent pool (the round-robin
  // diagonal split is the load balancer; the pool only supplies threads).
  ParallelFor(0, static_cast<std::size_t>(threads), threads,
              [&](std::size_t t) { walk(static_cast<int>(t)); });
  if (expired.load()) {
    return Status::DeadlineExceeded("VALMOD initial scan timed out");
  }

  // Merge thread-local results.
  partial_ = std::move(local_partial[0]);
  for (int t = 0; t < threads; ++t) {
    for (std::size_t i = 0; i < count; ++i) {
      if (local_dist[t][i] < profile.distances[i]) {
        profile.distances[i] = local_dist[t][i];
        profile.indices[i] = local_idx[t][i];
      }
    }
    if (t == 0) continue;
    for (std::size_t i = 0; i < count; ++i) {
      if (!seeded_[i]) continue;
      for (const Entry& e : local_partial[t]->Row(i)) {
        partial_->Offer(i, e.match, e.dot, e.base_lb);
      }
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (seeded_[i]) partial_->FinishSeeding(i);
  }

  // Constant rows the sweep already profiled are exact as-is: the scan's
  // convention distances (0 to a constant partner, sqrt(l) to anything
  // else) are the only values a constant row can take, so the offset-list
  // minimum can never improve on an observed pair. Only rows the sweep
  // never reached (no eligible partner recorded) need the explicit pass.
  for (std::size_t row : const_offsets_) {
    if (profile.indices[row] >= 0) continue;
    RowState state;
    ConstantRowMinimum(row, length, exclusion, &state);
    if (state.min_dist < profile.distances[row]) {
      profile.distances[row] = state.min_dist;
      profile.indices[row] = state.best_match;
    }
  }

  VALMOD_ASSIGN_OR_RETURN(
      std::vector<mp::MotifPair> motifs,
      mp::SelectTopKFromRowMinima(profile.distances, profile.indices, length,
                                  exclusion, options_.k, options_.selection));
  if (options_.build_valmap) {
    VALMOD_ASSIGN_OR_RETURN(result_.valmap, Valmap::FromProfile(profile));
    result_.valmap.Checkpoint(length);
  }
  EmitLength(length, std::move(motifs));
  return Status::Ok();
}

Status ValmodRunner::RecomputeRows(std::span<const std::size_t> rows,
                                   std::size_t length,
                                   std::size_t exclusion) {
  // One batched engine call: adjacent rows share a pair-packed (or
  // overlap-save) transform, the pairing depending only on the row order —
  // never on the thread count, which only controls how pairs fan out. The
  // results_version selects the kAuto policy: the calibrated cost model by
  // default, the frozen v1 boundary for bit-compat runs.
  VALMOD_ASSIGN_OR_RETURN(
      std::vector<mass::RowProfile> profiles,
      engine_.ComputeRowProfiles(
          rows, length, options_.num_threads,
          mass::EffectiveBackend(mass::ConvolutionBackend::kAuto,
                                 options_.results_version)));
  // Applying a profile touches only its own row's partial-profile slice and
  // state, so the application sweep partitions cleanly too.
  ParallelFor(0, rows.size(), options_.num_threads, [&](std::size_t b) {
    ApplyRecomputedRow(rows[b], length, exclusion, &profiles[b]);
  });
  return Status::Ok();
}

void ValmodRunner::ApplyRecomputedRow(std::size_t row, std::size_t length,
                                      std::size_t exclusion,
                                      mass::RowProfile* profile) {
  mass::ApplyExclusionZone(&profile->distances, row, exclusion);

  partial_->Reset(row, length);
  const std::size_t count = series_.NumSubsequences(length);
  RowState& state = states_[row];
  state.min_dist = kInfinity;
  state.best_match = -1;
  for (std::size_t j = 0; j < count; ++j) {
    const double d = profile->distances[j];
    if (d == kInfinity) continue;  // excluded
    if (d < state.min_dist) {
      state.min_dist = d;
      state.best_match = static_cast<int64_t>(j);
    }
    double rho = 0.0;
    if (!is_const_[row] && !is_const_[j]) {
      rho = CorrelationFromDistance(d, length);
    }
    partial_->Offer(row, static_cast<int64_t>(j), profile->dots[j],
                    BaseLowerBound(rho, length));
  }
  partial_->FinishSeeding(row);
  seeded_[row] = is_const_[row] ? 0 : 1;
  state.valid = true;
  state.max_lb = kInfinity;  // exact now; nothing unexplored this length
}

Result<std::vector<mp::MotifPair>> ValmodRunner::SelectTopK(
    std::size_t length, std::size_t exclusion) const {
  // Candidate pruning: only the O(k) smallest certified minima can appear in
  // the answer, so pre-filter with nth_element before the full selection
  // scan. Falls back to all candidates when the pruned set under-delivers
  // (heavy overlap can consume many candidates).
  std::vector<mp::RowCandidate> candidates;
  candidates.reserve(states_.size());
  for (std::size_t row = 0; row < states_.size(); ++row) {
    const RowState& s = states_[row];
    if (!s.valid || s.best_match < 0 || s.min_dist == kInfinity) continue;
    candidates.push_back(
        mp::RowCandidate{s.min_dist, static_cast<int64_t>(row),
                         s.best_match});
  }
  const auto by_distance = [](const mp::RowCandidate& a,
                              const mp::RowCandidate& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.row < b.row;
  };

  const std::size_t pruned_size = 4 * options_.k + 32;
  if (candidates.size() > pruned_size) {
    std::vector<mp::RowCandidate> pruned(candidates);
    std::nth_element(pruned.begin(), pruned.begin() + pruned_size,
                     pruned.end(), by_distance);
    pruned.resize(pruned_size);
    std::sort(pruned.begin(), pruned.end(), by_distance);
    std::vector<mp::MotifPair> motifs = mp::SelectFromSortedCandidates(
        pruned, length, exclusion, options_.k, options_.selection);
    if (motifs.size() >= options_.k) return motifs;
  }
  std::sort(candidates.begin(), candidates.end(), by_distance);
  return mp::SelectFromSortedCandidates(candidates, length, exclusion,
                                        options_.k, options_.selection);
}

Status ValmodRunner::ProcessLength(std::size_t length) {
  const std::size_t count = series_.NumSubsequences(length);
  const std::size_t exclusion =
      mp::ExclusionZoneFor(length, options_.exclusion_fraction);
  LengthStats stats;
  stats.length = length;

  RefreshWindowProfile(length);
  states_.assign(count, RowState{});

  // Sweep 1: advance every seeded row's entries by one point and evaluate
  // validity from the stored candidates. Rows are independent (each touches
  // only its own partial-profile slice and state), so the sweep partitions
  // cleanly across threads.
  ParallelFor(0, count, options_.num_threads, [&](std::size_t i) {
    RowState& state = states_[i];
    state.constant = is_const_[i] != 0;

    if (seeded_[i]) {
      // Candidates past the shrunken subsequence range or inside the grown
      // exclusion zone are dead for every future length too.
      partial_->CompactRow(i, [&](const Entry& e) {
        const std::size_t j = static_cast<std::size_t>(e.match);
        const std::size_t gap = j > i ? j - i : i - j;
        return j >= count || gap < exclusion;
      });
      const std::size_t tail = length - 1;
      const double ci = centered_[i + tail];
      for (Entry& e : partial_->MutableRow(i)) {
        const std::size_t j = static_cast<std::size_t>(e.match);
        e.dot += ci * centered_[j + tail];
        e.distance = series::PairDistanceFromDot(
            e.dot, means_[i], means_[j], stds_[i], stds_[j], length,
            state.constant, is_const_[j] != 0);
        if (e.distance < state.min_dist) {
          state.min_dist = e.distance;
          state.best_match = e.match;
        }
      }
    }

    if (state.constant) {
      // Exact via the constant-window conventions; the partial profile's dot
      // products were still advanced above so the row resumes LB pruning if
      // it becomes non-constant at a later length.
      ConstantRowMinimum(i, length, exclusion, &state);
      return;
    }

    if (seeded_[i]) {
      const std::size_t base = partial_->base_length(i);
      state.max_lb = ScaledLowerBound(partial_->max_base_lb(i),
                                      stats_.StdDev(i, base), stds_[i]);
      state.valid = state.min_dist <= state.max_lb;
    } else {
      // Row had no usable partial profile (constant at its base length):
      // only an exact recompute can certify it.
      state.max_lb = 0.0;
      state.valid = false;
    }
  });

  for (const RowState& s : states_) {
    if (s.constant) {
      ++stats.constant_rows;
    } else if (s.valid) {
      ++stats.valid_rows;
    } else {
      ++stats.invalid_rows;
    }
  }

  // Certification loop: select from certified rows, then exactly recompute
  // every uncertified row whose bound allows it to beat the current k-th
  // best. Rows are processed in ascending bound order and, for k = 1, the
  // threshold tightens as each exact row minimum arrives — a fresh exact
  // minimum can disqualify most of the remaining batch before it is paid
  // for. (Skipping aggressively is safe: the outer loop re-selects and
  // re-derives the batch until no uncertified row can matter.) Terminates
  // because every pass certifies at least one row.
  std::vector<mp::MotifPair> motifs;
  while (true) {
    ++stats.passes;
    VALMOD_ASSIGN_OR_RETURN(motifs, SelectTopK(length, exclusion));
    double threshold =
        motifs.size() >= options_.k ? motifs.back().distance : kInfinity;
    std::vector<std::size_t> to_recompute;
    for (std::size_t i = 0; i < count; ++i) {
      if (!states_[i].valid && states_[i].max_lb < threshold) {
        to_recompute.push_back(i);
      }
    }
    if (to_recompute.empty()) break;
    std::sort(to_recompute.begin(), to_recompute.end(),
              [&](std::size_t a, std::size_t b) {
                return states_[a].max_lb < states_[b].max_lb;
              });
    // Recomputations run through the engine's batched entry point: rows in
    // a batch pair up to share transforms, and the k = 1 threshold tightens
    // between batches (smaller batches would tighten faster but batch
    // worse). The floor of 16 keeps the batch composition — and therefore
    // the row pairing — identical across the typical 1..4 thread counts,
    // so results don't depend on num_threads.
    const std::size_t batch_size = std::max<std::size_t>(
        16, 4 * static_cast<std::size_t>(std::max(1, options_.num_threads)));
    std::vector<std::size_t> batch;
    std::size_t cursor = 0;
    while (cursor < to_recompute.size()) {
      if (states_[to_recompute[cursor]].max_lb >= threshold) {
        break;  // sorted by bound: every remaining row skips too
      }
      // A long recompute phase must not overshoot the deadline: STAMP
      // checks between chunks, and this loop checks between batches.
      if (options_.deadline.Expired()) {
        return Status::DeadlineExceeded(
            "VALMOD recompute timed out at length " + std::to_string(length));
      }
      std::size_t batch_end = cursor;
      while (batch_end < to_recompute.size() &&
             batch_end - cursor < batch_size &&
             states_[to_recompute[batch_end]].max_lb < threshold) {
        ++batch_end;
      }
      batch.assign(to_recompute.begin() + static_cast<std::ptrdiff_t>(cursor),
                   to_recompute.begin() +
                       static_cast<std::ptrdiff_t>(batch_end));
      VALMOD_RETURN_IF_ERROR(RecomputeRows(batch, length, exclusion));
      stats.recomputed_rows += batch_end - cursor;
      if (options_.k == 1) {
        for (std::size_t b = cursor; b < batch_end; ++b) {
          threshold =
              std::min(threshold, states_[to_recompute[b]].min_dist);
        }
      }
      cursor = batch_end;
    }
  }

  if (options_.build_valmap) {
    for (const mp::MotifPair& pair : motifs) result_.valmap.Apply(pair);
    result_.valmap.Checkpoint(length);
  }
  EmitLength(length, std::move(motifs));
  result_.stats.push_back(stats);
  return Status::Ok();
}

void ValmodRunner::EmitLength(std::size_t length,
                              std::vector<mp::MotifPair> motifs) {
  LengthMotifs entry;
  entry.length = length;
  entry.motifs = std::move(motifs);
  result_.per_length.push_back(std::move(entry));
}

Result<ValmodResult> ValmodRunner::Run() {
  VALMOD_RETURN_IF_ERROR(Validate());

  WallTimer timer;
  VALMOD_RETURN_IF_ERROR(InitialScan());
  result_.init_seconds = timer.ElapsedSeconds();

  timer.Restart();
  // Under allow_partial a deadline after the initial scan degrades to a
  // partial result: the lengths completed so far (each exact — ProcessLength
  // emits a length only after its certification loop finishes, so an
  // interrupted length leaves no trace) instead of a bare error.
  for (std::size_t length = options_.min_length + 1;
       length <= options_.max_length; ++length) {
    if (options_.deadline.Expired()) {
      if (options_.allow_partial && !result_.per_length.empty()) {
        result_.partial = true;
        break;
      }
      return Status::DeadlineExceeded("VALMOD timed out at length " +
                                      std::to_string(length));
    }
    const std::size_t count = series_.NumSubsequences(length);
    const std::size_t exclusion =
        mp::ExclusionZoneFor(length, options_.exclusion_fraction);
    if (count <= exclusion) {
      // No non-trivial pair can exist at this or any longer length. Each
      // skipped length still gets a (zeroed) stats entry so result_.stats
      // stays aligned with result_.per_length for consumers that zip them.
      for (std::size_t l = length; l <= options_.max_length; ++l) {
        EmitLength(l, {});
        LengthStats skipped;
        skipped.length = l;
        result_.stats.push_back(skipped);
        if (options_.build_valmap) result_.valmap.Checkpoint(l);
      }
      break;
    }
    if (Status status = ProcessLength(length); !status.ok()) {
      if (status.code() == StatusCode::kDeadlineExceeded &&
          options_.allow_partial && !result_.per_length.empty()) {
        result_.partial = true;
        break;
      }
      return status;
    }
  }
  result_.update_seconds = timer.ElapsedSeconds();

  std::vector<mp::MotifPair> all;
  for (const LengthMotifs& lm : result_.per_length) {
    all.insert(all.end(), lm.motifs.begin(), lm.motifs.end());
  }
  result_.ranked = RankByNormalizedDistance(std::move(all));
  return std::move(result_);
}

}  // namespace

Result<ValmodResult> RunValmod(const series::DataSeries& series,
                               const ValmodOptions& options) {
  mass::MassEngine engine(series);
  return RunValmod(engine, options);
}

Result<ValmodResult> RunValmod(mass::MassEngine& engine,
                               const ValmodOptions& options) {
  const trace::TraceSpan span("valmod_run");
  ValmodRunner runner(engine, options);
  return runner.Run();
}

std::vector<mp::MotifPair> RankByNormalizedDistance(
    std::vector<mp::MotifPair> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const mp::MotifPair& a, const mp::MotifPair& b) {
              if (a.normalized_distance != b.normalized_distance) {
                return a.normalized_distance < b.normalized_distance;
              }
              if (a.length != b.length) return a.length < b.length;
              if (a.offset_a != b.offset_a) return a.offset_a < b.offset_a;
              return a.offset_b < b.offset_b;
            });
  return pairs;
}

}  // namespace valmod::core
