#ifndef VALMOD_CORE_MOTIF_SET_ENUMERATION_H_
#define VALMOD_CORE_MOTIF_SET_ENUMERATION_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "core/motif_set.h"
#include "core/valmod.h"
#include "series/data_series.h"

namespace valmod::core {

/// Options for variable-length motif-set enumeration (research paper [4]
/// §5: after finding the top motif pairs of each length, expand them into
/// motif sets and rank the sets across lengths).
struct MotifSetEnumerationOptions {
  /// The underlying VALMOD run configuration (range, k, p, ...). Each of
  /// the per-length top-k pairs seeds one candidate motif set.
  ValmodOptions valmod;
  /// Expansion radius as a multiple of each seed pair's distance.
  double radius_factor = 2.0;
  /// Sets whose seed pairs overlap (within the exclusion zone at the
  /// *longer* seed's length) are deduplicated, keeping the better-ranked
  /// one, so the output lists distinct events rather than one event at
  /// every length.
  bool deduplicate_across_lengths = true;
};

/// A motif set with its cross-length ranking score: sets are ordered by
/// descending cardinality, then ascending length-normalized seed distance —
/// "the pattern that repeats most, at its best-matching scale".
struct RankedMotifSet {
  MotifSet set;
  std::size_t cardinality = 0;
  double normalized_seed_distance = 0.0;
};

struct MotifSetEnumerationResult {
  /// Ranked motif sets across all lengths in the range.
  std::vector<RankedMotifSet> sets;
  /// The underlying VALMOD output (profiles, VALMAP, stats), exposed so
  /// callers do not pay for the range scan twice.
  ValmodResult valmod;
};

/// Runs VALMOD over the configured range, expands every reported motif pair
/// into its motif set, optionally deduplicates near-identical sets found at
/// multiple lengths, and ranks the survivors. This is the workflow behind
/// the demo's "expand a selected motif pair to the relative Motif Set"
/// interaction, automated over the whole range.
Result<MotifSetEnumerationResult> EnumerateMotifSets(
    const series::DataSeries& series,
    const MotifSetEnumerationOptions& options);

}  // namespace valmod::core

#endif  // VALMOD_CORE_MOTIF_SET_ENUMERATION_H_
