#ifndef VALMOD_CORE_VARIABLE_DISCORDS_H_
#define VALMOD_CORE_VARIABLE_DISCORDS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "mp/discord.h"
#include "series/data_series.h"

namespace valmod::core {

/// Options for variable-length discord discovery.
struct VariableDiscordOptions {
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  /// Discords reported per length.
  std::size_t k = 1;
  double exclusion_fraction = 0.5;
  /// Threads for the per-length STOMP scans.
  int num_threads = 1;
  Deadline deadline;
};

/// A discord annotated with its length-normalized score, so discords of
/// different lengths are comparable (larger normalized distance = more
/// anomalous at its scale).
struct RankedDiscord {
  mp::Discord discord;
  double normalized_distance = 0.0;
};

/// Top-k discords for one length.
struct LengthDiscords {
  std::size_t length = 0;
  std::vector<mp::Discord> discords;
};

struct VariableDiscordResult {
  /// Per length, ascending.
  std::vector<LengthDiscords> per_length;
  /// Every reported discord across lengths, ranked by descending
  /// length-normalized distance.
  std::vector<RankedDiscord> ranked;
};

/// Variable-length discord discovery: the anomaly-side counterpart of
/// VALMOD, following the journal extension of the paper ("Matrix Profile
/// Goes MAD": motif *and* discord discovery over a length range, ranked by
/// the same length-normalized distance).
///
/// Discords need exact row *maxima* of the nearest-neighbor distance, which
/// the VALMOD lower bound cannot certify (it prunes from below), so this
/// implementation computes one exact matrix profile per length —
/// O((lmax - lmin + 1) * n^2), parallelizable via `num_threads`. It is
/// exact and intended for moderate ranges.
Result<VariableDiscordResult> FindVariableLengthDiscords(
    const series::DataSeries& series, const VariableDiscordOptions& options);

}  // namespace valmod::core

#endif  // VALMOD_CORE_VARIABLE_DISCORDS_H_
