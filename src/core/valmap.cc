#include "core/valmap.h"

#include <algorithm>

#include "common/status.h"
#include "series/znorm.h"

namespace valmod::core {

Result<Valmap> Valmap::FromProfile(const mp::MatrixProfile& profile) {
  if (profile.size() == 0) {
    return Status::InvalidArgument("cannot build VALMAP from empty profile");
  }
  Valmap valmap;
  valmap.min_length_ = profile.subsequence_length;
  valmap.mpn_.resize(profile.size());
  valmap.ip_ = profile.indices;
  valmap.lp_.assign(profile.size(), profile.subsequence_length);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    valmap.mpn_[i] = series::LengthNormalizedDistance(
        profile.distances[i], profile.subsequence_length);
  }
  return valmap;
}

void Valmap::Apply(const mp::MotifPair& pair) {
  const auto update_side = [&](int64_t offset, int64_t match) {
    if (offset < 0 || static_cast<std::size_t>(offset) >= mpn_.size()) return;
    const std::size_t i = static_cast<std::size_t>(offset);
    if (pair.normalized_distance < mpn_[i]) {
      mpn_[i] = pair.normalized_distance;
      ip_[i] = match;
      lp_[i] = pair.length;
      updates_.push_back(ValmapUpdate{i, match, pair.length,
                                      pair.normalized_distance});
    }
  };
  update_side(pair.offset_a, pair.offset_b);
  update_side(pair.offset_b, pair.offset_a);
}

void Valmap::Checkpoint(std::size_t length) {
  for (std::size_t u = unstamped_begin_; u < updates_.size(); ++u) {
    updates_[u].length = length;
  }
  unstamped_begin_ = updates_.size();
}

std::vector<ValmapUpdate> Valmap::UpdatesForLength(std::size_t length) const {
  std::vector<ValmapUpdate> out;
  for (const ValmapUpdate& u : updates_) {
    if (u.length == length) out.push_back(u);
  }
  return out;
}

Result<std::size_t> Valmap::BestOffset() const {
  if (mpn_.empty()) {
    return Status::FailedPrecondition("VALMAP is empty");
  }
  return static_cast<std::size_t>(
      std::min_element(mpn_.begin(), mpn_.end()) - mpn_.begin());
}

}  // namespace valmod::core
