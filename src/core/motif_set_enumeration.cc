#include "core/motif_set_enumeration.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/status.h"
#include "mass/engine.h"
#include "mp/matrix_profile.h"

namespace valmod::core {

namespace {

/// Two seed pairs describe the same event if both members coincide within
/// the exclusion zone of the longer seed.
bool SeedsOverlap(const mp::MotifPair& a, const mp::MotifPair& b,
                  double exclusion_fraction) {
  const std::size_t zone = mp::ExclusionZoneFor(
      std::max(a.length, b.length), exclusion_fraction);
  const auto close = [&](int64_t x, int64_t y) {
    return std::llabs(x - y) < static_cast<int64_t>(zone);
  };
  return (close(a.offset_a, b.offset_a) && close(a.offset_b, b.offset_b)) ||
         (close(a.offset_a, b.offset_b) && close(a.offset_b, b.offset_a));
}

}  // namespace

Result<MotifSetEnumerationResult> EnumerateMotifSets(
    const series::DataSeries& series,
    const MotifSetEnumerationOptions& options) {
  if (options.radius_factor < 0.0) {
    return Status::InvalidArgument("radius_factor must be >= 0");
  }
  VALMOD_ASSIGN_OR_RETURN(ValmodResult valmod_result,
                          RunValmod(series, options.valmod));

  // One engine for all expansions: every ranked pair needs two MASS row
  // profiles, and the cached series spectrum serves the whole enumeration.
  mass::MassEngine engine(series);

  MotifSetEnumerationResult result;
  for (const mp::MotifPair& pair : valmod_result.ranked) {
    MotifSetOptions set_options;
    set_options.radius_factor = options.radius_factor;
    set_options.exclusion_fraction = options.valmod.exclusion_fraction;
    VALMOD_ASSIGN_OR_RETURN(MotifSet set,
                            ExpandMotifSet(engine, pair, set_options));
    RankedMotifSet ranked;
    ranked.cardinality = set.members.size();
    ranked.normalized_seed_distance = pair.normalized_distance;
    ranked.set = std::move(set);
    result.sets.push_back(std::move(ranked));
  }

  if (options.deduplicate_across_lengths) {
    // `valmod_result.ranked` is ordered by normalized distance, so the
    // first set seen for an event is its best-scale representative.
    std::vector<RankedMotifSet> deduplicated;
    for (RankedMotifSet& candidate : result.sets) {
      bool duplicate = false;
      for (const RankedMotifSet& kept : deduplicated) {
        if (SeedsOverlap(candidate.set.seed, kept.set.seed,
                         options.valmod.exclusion_fraction)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) deduplicated.push_back(std::move(candidate));
    }
    result.sets = std::move(deduplicated);
  }

  std::sort(result.sets.begin(), result.sets.end(),
            [](const RankedMotifSet& a, const RankedMotifSet& b) {
              if (a.cardinality != b.cardinality) {
                return a.cardinality > b.cardinality;
              }
              if (a.normalized_seed_distance != b.normalized_seed_distance) {
                return a.normalized_seed_distance <
                       b.normalized_seed_distance;
              }
              return a.set.seed.length < b.set.seed.length;
            });
  result.valmod = std::move(valmod_result);
  return result;
}

}  // namespace valmod::core
