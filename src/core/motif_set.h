#ifndef VALMOD_CORE_MOTIF_SET_H_
#define VALMOD_CORE_MOTIF_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "mass/engine.h"
#include "mp/motif.h"
#include "series/data_series.h"

namespace valmod::core {

/// Options for expanding a motif pair into its motif set (demo §3: "expand a
/// selected motif pair to the relative Motif Set, containing all the similar
/// subsequences of the pair in the data").
struct MotifSetOptions {
  /// Membership radius as a multiple of the pair's distance. Ignored when
  /// `radius` is set.
  double radius_factor = 2.0;
  /// Absolute membership radius; NaN (default) means use `radius_factor`.
  double radius = std::numeric_limits<double>::quiet_NaN();
  /// Members must be mutually separated by this fraction of the length.
  double exclusion_fraction = 0.5;
};

/// One member of a motif set.
struct MotifSetMember {
  int64_t offset = -1;
  /// z-normalized distance to the nearer of the two seed subsequences.
  double distance = 0.0;
};

/// A motif pair expanded to all of its occurrences.
struct MotifSet {
  mp::MotifPair seed;
  double radius = 0.0;
  /// Members ascending by distance; the two seed subsequences come first
  /// (distance 0 by definition). Mutually non-overlapping.
  std::vector<MotifSetMember> members;
};

/// Exact motif-set expansion: MASS distance profiles from both seed members,
/// point-wise minimum, threshold at the radius, then greedy non-overlapping
/// admission in ascending distance order. O(n log n).
Result<MotifSet> ExpandMotifSet(const series::DataSeries& series,
                                const mp::MotifPair& pair,
                                const MotifSetOptions& options = {});

/// Engine form: expands against `engine.series()`, reusing the engine's
/// cached series spectrum across the two seed profiles — and across calls,
/// which is how EnumerateMotifSets expands every ranked pair for the cost
/// of one series transform. The series-taking overload wraps this one.
Result<MotifSet> ExpandMotifSet(mass::MassEngine& engine,
                                const mp::MotifPair& pair,
                                const MotifSetOptions& options = {});

}  // namespace valmod::core

#endif  // VALMOD_CORE_MOTIF_SET_H_
