#include "core/motif_set.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/status.h"
#include "mass/mass.h"
#include "mp/matrix_profile.h"

namespace valmod::core {

Result<MotifSet> ExpandMotifSet(const series::DataSeries& series,
                                const mp::MotifPair& pair,
                                const MotifSetOptions& options) {
  mass::MassEngine engine(series);
  return ExpandMotifSet(engine, pair, options);
}

Result<MotifSet> ExpandMotifSet(mass::MassEngine& engine,
                                const mp::MotifPair& pair,
                                const MotifSetOptions& options) {
  const series::DataSeries& series = engine.series();
  if (pair.offset_a < 0 || pair.offset_b < 0 || pair.length == 0) {
    return Status::InvalidArgument("motif pair is not populated");
  }
  const std::size_t length = pair.length;
  const std::size_t count = series.NumSubsequences(length);
  if (count == 0 ||
      static_cast<std::size_t>(pair.offset_a) + length > series.size() ||
      static_cast<std::size_t>(pair.offset_b) + length > series.size()) {
    return Status::OutOfRange("motif pair does not fit the series");
  }

  double radius = options.radius;
  if (std::isnan(radius)) {
    if (options.radius_factor < 0.0) {
      return Status::InvalidArgument("radius_factor must be >= 0");
    }
    radius = options.radius_factor * pair.distance;
  }
  if (radius < 0.0) return Status::InvalidArgument("radius must be >= 0");

  const std::size_t exclusion =
      mp::ExclusionZoneFor(length, options.exclusion_fraction);

  // Distance to the nearer seed member, for every subsequence.
  VALMOD_ASSIGN_OR_RETURN(
      mass::RowProfile from_a,
      engine.ComputeRowProfile(static_cast<std::size_t>(pair.offset_a),
                               length));
  VALMOD_ASSIGN_OR_RETURN(
      mass::RowProfile from_b,
      engine.ComputeRowProfile(static_cast<std::size_t>(pair.offset_b),
                               length));

  struct Candidate {
    double distance;
    int64_t offset;
  };
  // The seed subsequences are members by definition (distance 0 to
  // themselves); adding them explicitly keeps them in the set even when FFT
  // rounding puts their self-distance a hair above a zero radius.
  std::vector<Candidate> candidates = {{0.0, pair.offset_a},
                                       {0.0, pair.offset_b}};
  for (std::size_t j = 0; j < count; ++j) {
    if (static_cast<int64_t>(j) == pair.offset_a ||
        static_cast<int64_t>(j) == pair.offset_b) {
      continue;
    }
    const double d = std::min(from_a.distances[j], from_b.distances[j]);
    if (d <= radius) {
      candidates.push_back(Candidate{d, static_cast<int64_t>(j)});
    }
  }
  // Seeds lead the ordering below; ties resolve by offset for determinism.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.distance != y.distance) return x.distance < y.distance;
              return x.offset < y.offset;
            });

  MotifSet set;
  set.seed = pair;
  set.radius = radius;
  for (const Candidate& candidate : candidates) {
    bool overlapping = false;
    for (const MotifSetMember& member : set.members) {
      if (std::llabs(member.offset - candidate.offset) <
          static_cast<int64_t>(exclusion)) {
        overlapping = true;
        break;
      }
    }
    if (!overlapping) {
      set.members.push_back(MotifSetMember{candidate.offset,
                                           candidate.distance});
    }
  }
  return set;
}

}  // namespace valmod::core
