#ifndef VALMOD_CORE_VALMOD_H_
#define VALMOD_CORE_VALMOD_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "core/valmap.h"
#include "mass/engine.h"
#include "mp/matrix_profile.h"
#include "mp/motif.h"
#include "series/data_series.h"

namespace valmod::core {

/// Configuration of a VALMOD run.
struct ValmodOptions {
  /// Subsequence length range [min_length, max_length], inclusive. Required:
  /// 2 <= min_length <= max_length < series size.
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  /// Motif pairs reported per length.
  std::size_t k = 1;
  /// Candidates kept per partial distance profile (paper's p). Larger p
  /// certifies more rows without recomputation at the cost of O(n p) memory
  /// and per-length work; the paper finds small values (5-10) sufficient.
  std::size_t p = 10;
  /// Trivial-match exclusion as a fraction of the subsequence length.
  double exclusion_fraction = 0.5;
  /// Worker threads: parallelizes the initial fixed-length scan (the O(n^2)
  /// part), the per-length update sweeps, and exact-recompute batches.
  /// Results are identical to the serial run.
  int num_threads = 1;
  /// Whether to maintain the VALMAP meta-data (paper §2). Disabling skips
  /// the structure for callers that only want per-length motifs.
  bool build_valmap = true;
  /// How top-k pairs are selected from row minima.
  mp::MotifSelection selection = mp::MotifSelection::kNonOverlapping;
  /// Which backend-selection policy the recompute engine runs under (see
  /// mass::kResultsVersion). The default (2) picks the genuinely cheapest
  /// backend via the calibrated cost model; 1 pins the frozen v1 policy so
  /// motif output stays bit-identical to the v1 goldens (tests/goldens/).
  /// Both versions are exact — they differ only in result ulps, because
  /// the backends evaluate the same sums in different orders.
  int results_version = mass::kResultsVersion;
  /// Cooperative timeout; checked per length iteration.
  Deadline deadline;
  /// Graceful degradation: when the deadline fires (or the run is
  /// cancelled) after the initial scan completed, return the lengths
  /// finished so far with ValmodResult::partial set instead of a bare
  /// kDeadlineExceeded. Every returned length is still exact — the cut
  /// happens only at length granularity, mirroring the anytime contract of
  /// the MAD follow-up paper. A deadline during the initial scan still
  /// errors: there is no exact prefix to return yet.
  bool allow_partial = false;
};

/// Per-length certification statistics — the observable behaviour of the
/// pruning machinery of paper Figure 2 (valid vs non-valid partial profiles,
/// rows recomputed from scratch).
struct LengthStats {
  std::size_t length = 0;
  /// Rows whose partial profile certified its row minimum (minDist <= maxLB).
  std::size_t valid_rows = 0;
  /// Rows whose stored entries could not certify (maxLB < minDist).
  std::size_t invalid_rows = 0;
  /// Rows recomputed exactly with MASS (and re-seeded) at this length.
  std::size_t recomputed_rows = 0;
  /// Rows handled by the constant-window fast path.
  std::size_t constant_rows = 0;
  /// Certification passes (selection/recompute rounds) until exact.
  std::size_t passes = 0;
};

/// Exact top-k motif pairs of one length.
struct LengthMotifs {
  std::size_t length = 0;
  std::vector<mp::MotifPair> motifs;  // ascending distance; may hold < k
};

/// Complete output of a VALMOD run.
struct ValmodResult {
  /// Exact top-k motif pairs for every length in the range, ascending length.
  std::vector<LengthMotifs> per_length;
  /// Every reported pair across all lengths, ranked by length-normalized
  /// distance — the cross-length motif ranking of paper §2.
  std::vector<mp::MotifPair> ranked;
  /// VALMAP meta-data (empty when options.build_valmap is false).
  Valmap valmap;
  /// The full matrix profile computed at min_length during initialization
  /// (paper Fig. 1b-c); free to expose since phase 1 materializes it.
  mp::MatrixProfile min_length_profile;
  /// Pruning statistics per length > min_length, aligned one-to-one with
  /// per_length[1..] (lengths whose window count cannot fit a non-trivial
  /// pair are skipped by the sweep and carry all-zero counters).
  std::vector<LengthStats> stats;
  /// Wall-clock split: initial scan vs the variable-length phase.
  double init_seconds = 0.0;
  double update_seconds = 0.0;
  /// True when the run was cut short by its deadline under
  /// ValmodOptions::allow_partial: per_length/stats/valmap cover only the
  /// completed prefix of the length range (each completed length exact).
  bool partial = false;
};

/// Runs VALMOD: exact top-k motif pairs for every subsequence length in
/// [options.min_length, options.max_length] plus VALMAP, in
/// O(n^2 + (lmax - lmin) * n * p) expected time (worst case degrades toward
/// one MASS recompute per uncertified row).
Result<ValmodResult> RunValmod(const series::DataSeries& series,
                               const ValmodOptions& options);

/// Engine form: runs against `engine.series()` reusing the engine's cached
/// series/chunk spectra and FFT plans, so a stream of VALMOD runs against
/// one loaded series (the serving workload) pays those builds once in
/// total. The series-taking overload above constructs a throwaway engine
/// and delegates here; results are identical between the two.
Result<ValmodResult> RunValmod(mass::MassEngine& engine,
                               const ValmodOptions& options);

/// Ranks motif pairs from multiple lengths by length-normalized distance
/// (ties: shorter distance first, then offsets). Exposed separately so
/// callers can re-rank filtered subsets.
std::vector<mp::MotifPair> RankByNormalizedDistance(
    std::vector<mp::MotifPair> pairs);

}  // namespace valmod::core

#endif  // VALMOD_CORE_VALMOD_H_
