#include "core/variable_discords.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/trace.h"
#include "mp/stomp.h"
#include "series/znorm.h"

namespace valmod::core {

Result<VariableDiscordResult> FindVariableLengthDiscords(
    const series::DataSeries& series, const VariableDiscordOptions& options) {
  const trace::TraceSpan span("variable_discords");
  if (options.min_length < 2 || options.min_length > options.max_length) {
    return Status::InvalidArgument("need 2 <= min_length <= max_length");
  }
  if (options.max_length + 1 > series.size()) {
    return Status::InvalidArgument("max_length leaves fewer than 2 windows");
  }
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");

  VariableDiscordResult result;
  for (std::size_t length = options.min_length; length <= options.max_length;
       ++length) {
    if (options.deadline.Expired()) {
      return Status::DeadlineExceeded(
          "variable-length discords timed out at length " +
          std::to_string(length));
    }
    mp::ProfileOptions profile_options;
    profile_options.exclusion_fraction = options.exclusion_fraction;
    profile_options.num_threads = options.num_threads;
    profile_options.deadline = options.deadline;
    VALMOD_ASSIGN_OR_RETURN(mp::MatrixProfile profile,
                            mp::ComputeStomp(series, length, profile_options));
    VALMOD_ASSIGN_OR_RETURN(std::vector<mp::Discord> discords,
                            mp::ExtractTopKDiscords(profile, options.k));
    for (const mp::Discord& d : discords) {
      result.ranked.push_back(RankedDiscord{
          d, series::LengthNormalizedDistance(d.distance, length)});
    }
    result.per_length.push_back(LengthDiscords{length, std::move(discords)});
  }

  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const RankedDiscord& a, const RankedDiscord& b) {
              if (a.normalized_distance != b.normalized_distance) {
                return a.normalized_distance > b.normalized_distance;
              }
              if (a.discord.length != b.discord.length) {
                return a.discord.length < b.discord.length;
              }
              return a.discord.offset < b.discord.offset;
            });
  return result;
}

}  // namespace valmod::core
