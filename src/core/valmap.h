#ifndef VALMOD_CORE_VALMAP_H_
#define VALMOD_CORE_VALMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "mp/matrix_profile.h"
#include "mp/motif.h"

namespace valmod::core {

/// One VALMAP update event: at `length`, the best match of `offset` improved
/// (in length-normalized distance) to `match`. The sequence of updates per
/// length is what the demo GUI's slider replays ("VALMAP checkpoints").
struct ValmapUpdate {
  std::size_t offset = 0;
  int64_t match = -1;
  std::size_t length = 0;
  double normalized_distance = 0.0;
};

/// Variable-Length Matrix Profile (paper §2, "VALMAP"): the triple
/// <MPn, IP, LP> over the n - lmin + 1 subsequence offsets, where MPn holds
/// *length-normalized* distances (d * sqrt(1/l)), IP the best-match offsets
/// and LP the lengths at which those best matches were found.
///
/// Initialized from the full matrix profile at lmin (flat length profile),
/// then updated with the top-k motif pairs of every longer length: an entry
/// moves only when a longer pattern is a better (normalized) match, which is
/// exactly the signal the paper uses to reveal events lasting longer.
class Valmap {
 public:
  /// Empty VALMAP (size 0); placeholder when the caller disabled VALMAP
  /// maintenance.
  Valmap() = default;

  /// Initializes from the matrix profile at the minimum length.
  static Result<Valmap> FromProfile(const mp::MatrixProfile& profile);

  /// Applies one motif pair (both members), recording update events.
  /// Offsets outside the VALMAP (none in correct usage) are ignored.
  void Apply(const mp::MotifPair& pair);

  /// Marks the boundary of a length iteration: update events recorded since
  /// the previous checkpoint are stamped as belonging to `length`.
  void Checkpoint(std::size_t length);

  std::size_t size() const { return mpn_.size(); }
  std::size_t min_length() const { return min_length_; }

  /// Length-normalized matrix profile (paper Fig. 1e).
  const std::vector<double>& normalized_profile() const { return mpn_; }
  /// Best-match offsets (paper Fig. 1c analogue).
  const std::vector<int64_t>& index_profile() const { return ip_; }
  /// Lengths of the best matches (paper Fig. 1f).
  const std::vector<std::size_t>& length_profile() const { return lp_; }

  /// All recorded update events in application order, stamped with their
  /// length by Checkpoint().
  const std::vector<ValmapUpdate>& updates() const { return updates_; }

  /// Update events belonging to one length (empty when none).
  std::vector<ValmapUpdate> UpdatesForLength(std::size_t length) const;

  /// Offset of the global best (smallest MPn) entry; size() must be > 0.
  Result<std::size_t> BestOffset() const;

 private:
  std::size_t min_length_ = 0;
  std::vector<double> mpn_;
  std::vector<int64_t> ip_;
  std::vector<std::size_t> lp_;
  std::vector<ValmapUpdate> updates_;
  std::size_t unstamped_begin_ = 0;  // first update not yet checkpointed
};

}  // namespace valmod::core

#endif  // VALMOD_CORE_VALMAP_H_
