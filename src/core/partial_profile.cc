#include "core/partial_profile.h"

#include <algorithm>

namespace valmod::core {

namespace {

/// Max-heap order on base LB: the root is the worst stored candidate, the
/// one evicted first.
bool HeapLess(const Entry& a, const Entry& b) { return a.base_lb < b.base_lb; }

}  // namespace

PartialProfileSet::PartialProfileSet(std::size_t rows, std::size_t p,
                                     std::size_t base_length)
    : p_(p),
      entries_(rows * p),
      row_size_(rows, 0),
      max_base_lb_(rows, std::numeric_limits<double>::infinity()),
      base_length_(rows, base_length) {}

void PartialProfileSet::Offer(std::size_t row, int64_t match, double dot,
                              double base_lb) {
  Entry* base = &entries_[row * p_];
  std::size_t& size = row_size_[row];
  if (size < p_) {
    base[size] = Entry{match, dot, base_lb, 0.0};
    ++size;
    std::push_heap(base, base + size, HeapLess);
    return;
  }
  if (base_lb >= base[0].base_lb) return;  // worse than the worst stored
  std::pop_heap(base, base + size, HeapLess);
  base[size - 1] = Entry{match, dot, base_lb, 0.0};
  std::push_heap(base, base + size, HeapLess);
}

void PartialProfileSet::FinishSeeding(std::size_t row) {
  Entry* base = &entries_[row * p_];
  const std::size_t size = row_size_[row];
  std::sort(base, base + size, HeapLess);
  max_base_lb_[row] = size == p_
                          ? base[size - 1].base_lb
                          : std::numeric_limits<double>::infinity();
}

void PartialProfileSet::Reset(std::size_t row, std::size_t base_length) {
  row_size_[row] = 0;
  max_base_lb_[row] = std::numeric_limits<double>::infinity();
  base_length_[row] = base_length;
}

}  // namespace valmod::core
