// Tests for the AB-join (cross-series) matrix profile.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "mp/ab_join.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "series/znorm.h"

namespace valmod::mp {
namespace {

/// Naive reference join built on the definitional distance.
MatrixProfile BruteJoin(const series::DataSeries& a,
                        const series::DataSeries& b, std::size_t length) {
  MatrixProfile profile;
  profile.subsequence_length = length;
  profile.exclusion_zone = 0;
  const std::size_t count_a = a.NumSubsequences(length);
  const std::size_t count_b = b.NumSubsequences(length);
  profile.distances.assign(count_a, kInfinity);
  profile.indices.assign(count_a, -1);
  for (std::size_t i = 0; i < count_a; ++i) {
    auto wa = a.Subsequence(i, length);
    for (std::size_t j = 0; j < count_b; ++j) {
      auto wb = b.Subsequence(j, length);
      auto d = series::ZNormalizedDistance(*wa, *wb);
      if (*d < profile.distances[i]) {
        profile.distances[i] = *d;
        profile.indices[i] = static_cast<int64_t>(j);
      }
    }
  }
  return profile;
}

struct JoinCase {
  std::string gen_a;
  std::string gen_b;
  std::size_t n_a;
  std::size_t n_b;
  std::size_t length;
};

class AbJoinTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(AbJoinTest, MatchesBruteForce) {
  const JoinCase& c = GetParam();
  auto a = synth::ByName(c.gen_a, c.n_a, 51);
  auto b = synth::ByName(c.gen_b, c.n_b, 52);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto join = ComputeAbJoin(*a, *b, c.length, {});
  ASSERT_TRUE(join.ok());
  const MatrixProfile expected = BruteJoin(*a, *b, c.length);
  ASSERT_EQ(join->size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(join->distances[i], expected.distances[i], 2e-6) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AbJoinTest,
    ::testing::Values(JoinCase{"random_walk", "random_walk", 200, 150, 16},
                      JoinCase{"sine", "sine", 180, 260, 25},
                      JoinCase{"ecg", "random_walk", 220, 220, 30},
                      JoinCase{"random_walk", "ecg", 120, 300, 20}));

TEST(AbJoinTest, SharedSubsequenceFoundAtZero) {
  // Plant the same pattern in both series; the join must find it at ~0.
  auto base = synth::ByName("random_walk", 400, 53);
  ASSERT_TRUE(base.ok());
  std::vector<double> va(base->values().begin(), base->values().end());
  auto other = synth::ByName("random_walk", 300, 54);
  ASSERT_TRUE(other.ok());
  std::vector<double> vb(other->values().begin(), other->values().end());
  for (std::size_t t = 0; t < 40; ++t) {
    const double v = std::sin(static_cast<double>(t) * 0.37) * 3.0;
    va[100 + t] = v;
    vb[200 + t] = 2.0 * v + 5.0;  // affine copy: distance 0 after z-norm
  }
  auto a = series::DataSeries::Create(std::move(va));
  auto b = series::DataSeries::Create(std::move(vb));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto join = ComputeAbJoin(*a, *b, 40, {});
  ASSERT_TRUE(join.ok());
  EXPECT_NEAR(join->distances[100], 0.0, 1e-6);
  EXPECT_EQ(join->indices[100], 200);
}

TEST(AbJoinTest, DirectionalityMatters) {
  auto a = synth::ByName("sine", 150, 55);
  auto b = synth::ByName("random_walk", 400, 56);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto ab = ComputeAbJoin(*a, *b, 20, {});
  auto ba = ComputeAbJoin(*b, *a, 20, {});
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(ab->size(), a->NumSubsequences(20));
  EXPECT_EQ(ba->size(), b->NumSubsequences(20));
}

TEST(AbJoinTest, NoExclusionZone) {
  auto a = synth::ByName("sine", 100, 57);
  ASSERT_TRUE(a.ok());
  auto join = ComputeAbJoin(*a, *a, 20, {});
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->exclusion_zone, 0u);
  // Joining a series with itself: every window matches itself at ~0 (the
  // running dot-product recurrence accumulates ~1e-7 of rounding).
  for (std::size_t i = 0; i < join->size(); ++i) {
    EXPECT_NEAR(join->distances[i], 0.0, 1e-5);
    EXPECT_EQ(join->indices[i], static_cast<int64_t>(i));
  }
}

TEST(AbJoinTest, ValidatesArguments) {
  auto a = synth::ByName("random_walk", 50, 58);
  auto b = synth::ByName("random_walk", 30, 59);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(ComputeAbJoin(*a, *b, 0, {}).ok());
  EXPECT_FALSE(ComputeAbJoin(*a, *b, 31, {}).ok());  // longer than b
  EXPECT_TRUE(ComputeAbJoin(*a, *b, 30, {}).ok());
}

TEST(AbJoinTest, HonorsDeadline) {
  auto a = synth::ByName("random_walk", 3000, 60);
  auto b = synth::ByName("random_walk", 3000, 61);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ProfileOptions options;
  options.deadline = Deadline::After(-1.0);
  EXPECT_EQ(ComputeAbJoin(*a, *b, 100, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace valmod::mp
