// Randomized exactness sweep: VALMOD vs the naive per-length baseline on
// randomly drawn workloads, shapes, ranges, and parameters. Each seed
// derives one full configuration; any divergence of the per-length top-k
// distances fails the property.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/stomp_range.h"
#include "common/rng.h"
#include "core/valmod.h"
#include "series/generators.h"

namespace valmod::core {
namespace {

const char* const kGenerators[] = {"random_walk", "sine",       "ecg",
                                   "astro",       "entomology", "seismic"};

class ValmodFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValmodFuzzTest, RandomConfigurationStaysExact) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);

  const std::string generator =
      kGenerators[rng.UniformInt(0, 5)];
  const std::size_t n = static_cast<std::size_t>(rng.UniformInt(300, 700));
  const std::size_t lmin = static_cast<std::size_t>(rng.UniformInt(8, 40));
  const std::size_t lmax =
      lmin + static_cast<std::size_t>(rng.UniformInt(5, 40));
  const std::size_t k = static_cast<std::size_t>(rng.UniformInt(1, 3));
  const std::size_t p = static_cast<std::size_t>(rng.UniformInt(1, 12));
  const double exclusion = rng.Flip(0.5) ? 0.5 : 0.25;
  const auto selection = rng.Flip(0.5) ? mp::MotifSelection::kNonOverlapping
                                       : mp::MotifSelection::kAllRowMinima;
  SCOPED_TRACE("generator=" + generator + " n=" + std::to_string(n) +
               " lmin=" + std::to_string(lmin) +
               " lmax=" + std::to_string(lmax) + " k=" + std::to_string(k) +
               " p=" + std::to_string(p) +
               " excl=" + std::to_string(exclusion));

  auto series = synth::ByName(generator, n, seed);
  ASSERT_TRUE(series.ok());

  ValmodOptions options;
  options.min_length = lmin;
  options.max_length = lmax;
  options.k = k;
  options.p = p;
  options.exclusion_fraction = exclusion;
  options.selection = selection;
  auto result = RunValmod(*series, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  baselines::StompRangeOptions baseline_options;
  baseline_options.min_length = lmin;
  baseline_options.max_length = lmax;
  baseline_options.k = k;
  baseline_options.exclusion_fraction = exclusion;
  baseline_options.selection = selection;
  auto baseline = baselines::RunStompRange(*series, baseline_options);
  ASSERT_TRUE(baseline.ok());

  ASSERT_EQ(result->per_length.size(), baseline->size());
  for (std::size_t i = 0; i < baseline->size(); ++i) {
    ASSERT_EQ(result->per_length[i].motifs.size(),
              (*baseline)[i].motifs.size())
        << "length " << (*baseline)[i].length;
    for (std::size_t m = 0; m < (*baseline)[i].motifs.size(); ++m) {
      EXPECT_NEAR(result->per_length[i].motifs[m].distance,
                  (*baseline)[i].motifs[m].distance, 3e-5)
          << "length " << (*baseline)[i].length << " rank " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValmodFuzzTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace valmod::core
