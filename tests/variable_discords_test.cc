// Tests for variable-length discord discovery (the journal extension of
// VALMOD to anomalies).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "core/variable_discords.h"
#include "mp/discord.h"
#include "mp/stomp.h"
#include "series/data_series.h"
#include "series/generators.h"
#include "series/znorm.h"

namespace valmod::core {
namespace {

TEST(VariableDiscordsTest, MatchesPerLengthStompDiscords) {
  auto series = synth::ByName("ecg", 500, 7);
  ASSERT_TRUE(series.ok());
  VariableDiscordOptions options;
  options.min_length = 25;
  options.max_length = 40;
  options.k = 2;
  auto result = FindVariableLengthDiscords(*series, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_length.size(), 16u);

  for (std::size_t i = 0; i < result->per_length.size(); ++i) {
    const std::size_t length = 25 + i;
    auto profile = mp::ComputeStomp(*series, length, {});
    ASSERT_TRUE(profile.ok());
    auto expected = mp::ExtractTopKDiscords(*profile, 2);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(result->per_length[i].discords.size(), expected->size());
    for (std::size_t d = 0; d < expected->size(); ++d) {
      EXPECT_EQ(result->per_length[i].discords[d].offset,
                (*expected)[d].offset)
          << "length " << length << " rank " << d;
      EXPECT_NEAR(result->per_length[i].discords[d].distance,
                  (*expected)[d].distance, 1e-9);
    }
  }
}

TEST(VariableDiscordsTest, RankedIsSortedDescendingAndComplete) {
  auto series = synth::ByName("random_walk", 400, 9);
  ASSERT_TRUE(series.ok());
  VariableDiscordOptions options;
  options.min_length = 20;
  options.max_length = 35;
  options.k = 3;
  auto result = FindVariableLengthDiscords(*series, options);
  ASSERT_TRUE(result.ok());

  std::size_t total = 0;
  for (const auto& lm : result->per_length) total += lm.discords.size();
  EXPECT_EQ(result->ranked.size(), total);
  for (std::size_t i = 1; i < result->ranked.size(); ++i) {
    EXPECT_GE(result->ranked[i - 1].normalized_distance,
              result->ranked[i].normalized_distance - 1e-12);
  }
  for (const auto& rd : result->ranked) {
    EXPECT_NEAR(rd.normalized_distance,
                series::LengthNormalizedDistance(rd.discord.distance,
                                                 rd.discord.length),
                1e-12);
  }
}

TEST(VariableDiscordsTest, FindsInjectedAnomalyAcrossLengths) {
  // Corrupt one stretch of a periodic signal; the top-ranked discord across
  // all lengths should land on the corruption.
  auto series = synth::Sine({.length = 1500,
                             .seed = 3,
                             .period = 75.0,
                             .amplitude = 1.0,
                             .noise_stddev = 0.02});
  ASSERT_TRUE(series.ok());
  std::vector<double> data(series->values().begin(), series->values().end());
  for (std::size_t i = 700; i < 790; ++i) {
    data[i] += ((i % 11) < 5 ? 1.6 : -1.2);
  }
  auto corrupted = series::DataSeries::Create(std::move(data));
  ASSERT_TRUE(corrupted.ok());

  VariableDiscordOptions options;
  options.min_length = 40;
  options.max_length = 90;
  options.num_threads = 4;
  auto result = FindVariableLengthDiscords(*corrupted, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->ranked.empty());
  EXPECT_NEAR(static_cast<double>(result->ranked[0].discord.offset), 745.0,
              120.0);
}

TEST(VariableDiscordsTest, ValidatesOptions) {
  auto series = synth::ByName("random_walk", 100, 11);
  ASSERT_TRUE(series.ok());
  VariableDiscordOptions options;
  options.min_length = 1;
  options.max_length = 10;
  EXPECT_FALSE(FindVariableLengthDiscords(*series, options).ok());
  options.min_length = 20;
  options.max_length = 10;
  EXPECT_FALSE(FindVariableLengthDiscords(*series, options).ok());
  options.min_length = 10;
  options.max_length = 100;
  EXPECT_FALSE(FindVariableLengthDiscords(*series, options).ok());
  options.max_length = 20;
  options.k = 0;
  EXPECT_FALSE(FindVariableLengthDiscords(*series, options).ok());
}

TEST(VariableDiscordsTest, HonorsDeadline) {
  auto series = synth::ByName("random_walk", 2000, 13);
  ASSERT_TRUE(series.ok());
  VariableDiscordOptions options;
  options.min_length = 50;
  options.max_length = 100;
  options.deadline = Deadline::After(-1.0);
  EXPECT_EQ(FindVariableLengthDiscords(*series, options).status().code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace valmod::core
