// Server protocol tests: request/response round trips through Service
// (in-process), error paths that must never kill the process, result-cache
// and generation semantics observable through the protocol, a 4-client
// concurrency run (TSan'd in CI), and an end-to-end smoke of the real
// valmod_server binary in --stdio mode.

#include "service/server.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"

namespace valmod::service {
namespace {

using json::Value;

/// Sends one request line and parses the response (which must always be
/// valid JSON — that is itself part of the protocol contract).
Value Roundtrip(Service& service, const std::string& line) {
  const std::string response = service.HandleRequestLine(line);
  auto parsed = json::Parse(response);
  EXPECT_TRUE(parsed.ok()) << "unparseable response: " << response;
  return parsed.ok() ? *parsed : Value();
}

bool Ok(const Value& response) { return response.GetBool("ok", false); }

std::string ErrorCode(const Value& response) {
  const Value* error = response.Find("error");
  return error == nullptr ? "" : error->GetString("code", "");
}

TEST(ServiceProtocolTest, LoadQueryCacheStatsUnloadSession) {
  Service service;
  // load
  Value load = Roundtrip(service,
      R"({"id":1,"verb":"load","dataset":"ecg",)"
      R"("params":{"generator":"ecg","n":4096,"seed":1}})");
  ASSERT_TRUE(Ok(load)) << load.Serialize();
  EXPECT_DOUBLE_EQ(load.Find("id")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(load.Find("result")->GetNumber("points", 0), 4096.0);

  // motifs (miss, computed)
  const std::string motifs_request =
      R"({"id":2,"verb":"motifs","dataset":"ecg",)"
      R"("params":{"lmin":100,"lmax":103,"k":2}})";
  Value first = Roundtrip(service, motifs_request);
  ASSERT_TRUE(Ok(first)) << first.Serialize();
  EXPECT_FALSE(first.GetBool("cached", true));
  const Value* per_length = first.Find("result")->Find("per_length");
  ASSERT_NE(per_length, nullptr);
  EXPECT_EQ(per_length->AsArray().size(), 4u);  // lengths 100..103

  // identical motifs (hit) — byte-identical result, cached flag set
  Value second = Roundtrip(service, motifs_request);
  ASSERT_TRUE(Ok(second));
  EXPECT_TRUE(second.GetBool("cached", false));
  EXPECT_EQ(second.Find("result")->Serialize(),
            first.Find("result")->Serialize());

  // different threads param must HIT too (results are thread-count
  // independent, so `threads` is not part of the cache key)
  Value threaded = Roundtrip(service,
      R"({"id":3,"verb":"motifs","dataset":"ecg",)"
      R"("params":{"lmin":100,"lmax":103,"k":2,"threads":4}})");
  ASSERT_TRUE(Ok(threaded));
  EXPECT_TRUE(threaded.GetBool("cached", false));

  // stats reflects the hits
  Value stats = Roundtrip(service, R"({"id":4,"verb":"stats"})");
  ASSERT_TRUE(Ok(stats));
  const Value* cache = stats.Find("result")->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_DOUBLE_EQ(cache->GetNumber("hits", -1), 2.0);
  EXPECT_DOUBLE_EQ(cache->GetNumber("misses", -1), 1.0);
  const Value* scheduler = stats.Find("result")->Find("scheduler");
  ASSERT_NE(scheduler, nullptr);
  EXPECT_DOUBLE_EQ(scheduler->GetNumber("completed", -1), 1.0);
  const Value* datasets = stats.Find("result")->Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_EQ(datasets->AsArray().size(), 1u);
  EXPECT_EQ(datasets->AsArray()[0].GetString("name", ""), "ecg");

  // unload, then querying is NotFound
  Value unload =
      Roundtrip(service, R"({"id":5,"verb":"unload","dataset":"ecg"})");
  ASSERT_TRUE(Ok(unload));
  Value gone = Roundtrip(service, motifs_request);
  EXPECT_FALSE(Ok(gone));
  EXPECT_EQ(ErrorCode(gone), "NotFound");
}

TEST(ServiceProtocolTest, ReloadingANameNeverServesTheOldDatasetsCache) {
  Service service;
  const std::string request =
      R"({"verb":"query","dataset":"d",)"
      R"("params":{"values":[0,1,0,-1,0,1,0,-1],"k":1}})";
  // Same name, two different underlying series across an unload/reload.
  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"load","dataset":"d",)"
      R"("params":{"generator":"sine","n":512,"seed":1}})")));
  Value first = Roundtrip(service, request);
  ASSERT_TRUE(Ok(first));
  ASSERT_TRUE(Ok(Roundtrip(service, R"({"verb":"unload","dataset":"d"})")));
  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"load","dataset":"d",)"
      R"("params":{"generator":"random_walk","n":512,"seed":9}})")));
  Value second = Roundtrip(service, request);
  ASSERT_TRUE(Ok(second));
  // Must be a fresh computation against the new data, not a cache hit
  // from the old series that happened to share name and generation.
  EXPECT_FALSE(second.GetBool("cached", true));
  EXPECT_NE(second.Find("result")->Serialize(),
            first.Find("result")->Serialize());
}

TEST(ServiceProtocolTest, OutOfRangeNumericParamsAreStructuredErrors) {
  Service service;
  Roundtrip(service,
            R"({"verb":"load","dataset":"d",)"
            R"("params":{"generator":"sine","n":256}})");
  // Values beyond any representable size must come back as errors, not
  // wrap, crash, or trip UBSan.
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"motifs","dataset":"d",)"
                R"("params":{"lmin":16,"lmax":20,"k":1e300}})")),
            "InvalidArgument");
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"motifs","dataset":"d",)"
                R"("params":{"lmin":16,"lmax":20,"threads":1e9}})")),
            "InvalidArgument");
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"load","dataset":"big",)"
                R"("params":{"generator":"sine","n":1e11}})")),
            "InvalidArgument");
  // Envelope numerics are clamped rather than rejected; the request still
  // executes.
  Value clamped = Roundtrip(service,
      R"({"verb":"motifs","dataset":"d",)"
      R"("params":{"lmin":16,"lmax":17},)"
      R"("priority":1e300,"timeout_ms":1e300})");
  EXPECT_TRUE(Ok(clamped)) << clamped.Serialize();
}

TEST(ServiceProtocolTest, MalformedRequestsReturnStructuredErrors) {
  Service service;
  // Not JSON at all.
  Value bad = Roundtrip(service, "this is not json");
  EXPECT_FALSE(Ok(bad));
  EXPECT_EQ(ErrorCode(bad), "InvalidArgument");
  EXPECT_TRUE(bad.Find("id")->is_null());

  // JSON but not an object.
  EXPECT_EQ(ErrorCode(Roundtrip(service, "[1,2,3]")), "InvalidArgument");

  // Missing verb.
  EXPECT_EQ(ErrorCode(Roundtrip(service, R"({"id":9})")), "InvalidArgument");

  // Unknown verb echoes the id.
  Value unknown = Roundtrip(service, R"({"id":9,"verb":"frobnicate"})");
  EXPECT_EQ(ErrorCode(unknown), "InvalidArgument");
  EXPECT_DOUBLE_EQ(unknown.Find("id")->AsDouble(), 9.0);

  // Bad params types.
  Roundtrip(service,
            R"({"verb":"load","dataset":"d",)"
            R"("params":{"generator":"ecg","n":512}})");
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"motifs","dataset":"d",)"
                R"("params":{"lmin":-5,"lmax":100}})")),
            "InvalidArgument");
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"motifs","dataset":"d",)"
                R"("params":{"lmin":100,"lmax":120,)"
                R"("results_version":99}})")),
            "InvalidArgument");
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"query","dataset":"d",)"
                R"("params":{"values":"not an array"}})")),
            "InvalidArgument");

  // Typo'd param keys fail loudly instead of silently running under
  // defaults — the protocol mirror of the CLI's closed flag tables.
  Value typo = Roundtrip(service,
      R"({"verb":"motifs","dataset":"d",)"
      R"("params":{"lmin":16,"lmxa":20,"results_versoin":1}})");
  EXPECT_EQ(ErrorCode(typo), "InvalidArgument");
  EXPECT_NE(typo.Find("error")->GetString("message", "").find("lmxa"),
            std::string::npos);

  // Wrong-typed envelope fields are rejected too.
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"motifs","dataset":"d",)"
                R"("params":{"lmin":16,"lmax":18},"timeout_ms":"5000"}})")),
            "InvalidArgument");

  // The service survives all of the above: a well-formed request works.
  Value good = Roundtrip(service,
      R"({"verb":"query","dataset":"d",)"
      R"("params":{"values":[1,2,3,4,5,4,3,2],"k":1}})");
  EXPECT_TRUE(Ok(good)) << good.Serialize();
}

TEST(ServiceProtocolTest, OverDeadlineRequestsFailStructurally) {
  Service service;
  Roundtrip(service,
            R"({"verb":"load","dataset":"d",)"
            R"("params":{"generator":"random_walk","n":4096}})");
  // timeout_ms=0: the deadline is already expired at admission.
  Value late = Roundtrip(service,
      R"({"id":7,"verb":"motifs","dataset":"d",)"
      R"("params":{"lmin":100,"lmax":140},"timeout_ms":0})");
  EXPECT_FALSE(Ok(late));
  EXPECT_EQ(ErrorCode(late), "DeadlineExceeded");
  // The failure was not cached; the process is fine.
  Value stats = Roundtrip(service, R"({"id":8,"verb":"stats"})");
  ASSERT_TRUE(Ok(stats));
  EXPECT_DOUBLE_EQ(
      stats.Find("result")->Find("cache")->GetNumber("entries", -1), 0.0);
}

TEST(ServiceProtocolTest, StreamingAppendFlowsThroughGenerations) {
  Service service;
  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"load","dataset":"s","params":{"streaming_length":8}})")));

  // Querying an empty streaming dataset is a structured error.
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"motifs","dataset":"s",)"
                R"("params":{"lmin":4,"lmax":5}})")),
            "FailedPrecondition");

  Value append = Roundtrip(service,
      R"({"verb":"append","dataset":"s",)"
      R"("params":{"values":[1,2,3,1,2,3,1,2,3,1,2,3,1,2,3,1,2,3]}})");
  ASSERT_TRUE(Ok(append)) << append.Serialize();
  EXPECT_DOUBLE_EQ(append.Find("result")->GetNumber("points", 0), 18.0);
  EXPECT_DOUBLE_EQ(append.Find("result")->GetNumber("generation", 0), 2.0);

  // The incrementally maintained profile is served (and cached).
  const std::string profile_request =
      R"({"verb":"profile","dataset":"s"})";
  Value profile = Roundtrip(service, profile_request);
  ASSERT_TRUE(Ok(profile)) << profile.Serialize();
  EXPECT_TRUE(profile.Find("result")->GetBool("streaming", false));
  EXPECT_DOUBLE_EQ(profile.Find("result")->GetNumber("generation", 0), 2.0);
  const std::size_t rows_before =
      profile.Find("result")->Find("distances")->AsArray().size();
  EXPECT_EQ(rows_before, 11u);  // 18 - 8 + 1
  EXPECT_TRUE(Roundtrip(service, profile_request).GetBool("cached", false));

  // Batch verbs work against the materialized snapshot.
  Value motifs = Roundtrip(service,
      R"({"verb":"motifs","dataset":"s","params":{"lmin":4,"lmax":5}})");
  ASSERT_TRUE(Ok(motifs)) << motifs.Serialize();

  // Append again: generation bumps, cached profile is NOT reused.
  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"append","dataset":"s","params":{"values":[9,8,7]}})")));
  Value after = Roundtrip(service, profile_request);
  ASSERT_TRUE(Ok(after));
  EXPECT_FALSE(after.GetBool("cached", true));
  EXPECT_DOUBLE_EQ(after.Find("result")->GetNumber("generation", 0), 3.0);
  EXPECT_EQ(after.Find("result")->Find("distances")->AsArray().size(),
            rows_before + 3);

  // A mismatched explicit length is rejected, not silently recomputed.
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"profile","dataset":"s","params":{"l":16}})")),
            "InvalidArgument");

  // Appending to a static dataset fails.
  Roundtrip(service,
            R"({"verb":"load","dataset":"fixed",)"
            R"("params":{"generator":"sine","n":256}})");
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"append","dataset":"fixed",)"
                R"("params":{"values":[1]}})")),
            "FailedPrecondition");
}

TEST(ServiceProtocolTest, WindowedStreamingIngestionAndMaintainedTopK) {
  Service service;
  // `window` is an alias for `max_points`; disagreeing values are an error.
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"load","dataset":"bad",)"
                R"("params":{"streaming_length":8,"max_points":32,)"
                R"("window":64}})")),
            "InvalidArgument");

  Value load = Roundtrip(service,
      R"({"verb":"load","dataset":"w",)"
      R"("params":{"streaming_length":8,"window":32}})");
  ASSERT_TRUE(Ok(load)) << load.Serialize();
  EXPECT_DOUBLE_EQ(load.Find("result")->GetNumber("max_points", 0), 32.0);

  // Stream 80 points in batches of 16: the window retains the last 32.
  std::string batch = "[";
  for (int i = 0; i < 16; ++i) {
    batch += (i ? "," : "") + std::to_string((i * 37) % 19) + ".5";
  }
  batch += "]";
  Value append;
  for (int b = 0; b < 5; ++b) {
    append = Roundtrip(service,
        R"({"verb":"append","dataset":"w","params":{"values":)" + batch +
        "}}");
    ASSERT_TRUE(Ok(append)) << append.Serialize();
  }
  const Value* result = append.Find("result");
  EXPECT_DOUBLE_EQ(result->GetNumber("points", 0), 32.0);
  EXPECT_DOUBLE_EQ(result->GetNumber("total_appended", 0), 80.0);
  EXPECT_DOUBLE_EQ(result->GetNumber("evicted", 0), 48.0);
  EXPECT_DOUBLE_EQ(result->GetNumber("window_start", 0), 48.0);

  // Maintained profile reports the retained window and its stream offset.
  Value profile = Roundtrip(service, R"({"verb":"profile","dataset":"w"})");
  ASSERT_TRUE(Ok(profile)) << profile.Serialize();
  EXPECT_DOUBLE_EQ(profile.Find("result")->GetNumber("window_start", 0),
                   48.0);
  EXPECT_EQ(profile.Find("result")->Find("distances")->AsArray().size(),
            25u);  // 32 - 8 + 1

  // Motifs at the maintained length are served from the incremental state,
  // not recomputed: the response is marked maintained and caches per
  // generation.
  const std::string motifs_request =
      R"({"verb":"motifs","dataset":"w","params":{"k":3}})";
  Value motifs = Roundtrip(service, motifs_request);
  ASSERT_TRUE(Ok(motifs)) << motifs.Serialize();
  EXPECT_TRUE(motifs.Find("result")->GetBool("maintained", false));
  EXPECT_TRUE(motifs.Find("result")->GetBool("streaming", false));
  EXPECT_DOUBLE_EQ(motifs.Find("result")->GetNumber("window_start", 0), 48.0);
  ASSERT_NE(motifs.Find("result")->Find("ranked"), nullptr);
  EXPECT_TRUE(Roundtrip(service, motifs_request).GetBool("cached", false));

  // Same for discords; an explicit matching length also qualifies.
  Value discords = Roundtrip(service,
      R"({"verb":"discords","dataset":"w",)"
      R"("params":{"lmin":8,"lmax":8,"k":2}})");
  ASSERT_TRUE(Ok(discords)) << discords.Serialize();
  EXPECT_TRUE(discords.Find("result")->GetBool("maintained", false));

  // A different length range falls back to batch compute on the snapshot.
  Value batch_motifs = Roundtrip(service,
      R"({"verb":"motifs","dataset":"w","params":{"lmin":4,"lmax":6}})");
  ASSERT_TRUE(Ok(batch_motifs)) << batch_motifs.Serialize();
  EXPECT_FALSE(batch_motifs.Find("result")->GetBool("maintained", false));

  // stats surfaces occupancy and footprint per dataset.
  Value stats = Roundtrip(service, R"({"verb":"stats"})");
  ASSERT_TRUE(Ok(stats)) << stats.Serialize();
  const Value* datasets = stats.Find("result")->Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_EQ(datasets->AsArray().size(), 1u);
  const Value& info = datasets->AsArray()[0];
  EXPECT_DOUBLE_EQ(info.GetNumber("max_points", 0), 32.0);
  EXPECT_DOUBLE_EQ(info.GetNumber("evicted", 0), 48.0);
  EXPECT_DOUBLE_EQ(info.GetNumber("total_appended", 0), 80.0);
  EXPECT_DOUBLE_EQ(info.GetNumber("window_occupancy", 0), 1.0);
  EXPECT_GT(info.GetNumber("memory_bytes", 0), 0.0);
}

// HandleRequest (the paged entry point the TCP transports and --stdio
// share) splits a large result into bounded chunk lines whose fragments
// concatenate back to the exact unpaged payload.
TEST(ServiceProtocolTest, HandleRequestPagesLargeResults) {
  ServiceOptions options;
  options.page_bytes = 512;
  Service service(options);
  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"load","dataset":"d",)"
      R"("params":{"generator":"sine","n":2048,"seed":5}})")));

  const std::string request =
      R"({"id":7,"verb":"profile","dataset":"d","params":{"l":64}})";
  const std::string wire = service.HandleRequest(request);
  ASSERT_FALSE(wire.empty());
  ASSERT_EQ(wire.back(), '\n');

  // Parse every line; reassemble the chunk fragments in seq order.
  std::vector<Value> pages;
  std::string payload;
  std::size_t start = 0;
  while (start < wire.size()) {
    const std::size_t end = wire.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    auto page = json::Parse(wire.substr(start, end - start));
    ASSERT_TRUE(page.ok());
    pages.push_back(*page);
    start = end + 1;
  }
  ASSERT_GT(pages.size(), 1u) << "a ~2000-row profile must page at 512 B";
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const Value& page = pages[i];
    EXPECT_TRUE(page.GetBool("ok", false));
    EXPECT_DOUBLE_EQ(page.GetNumber("id", -1), 7.0);
    EXPECT_EQ(page.GetString("verb", ""), "profile");
    EXPECT_DOUBLE_EQ(page.GetNumber("seq", -1),
                     static_cast<double>(i));
    const bool last = i + 1 == pages.size();
    EXPECT_EQ(page.GetBool("partial", last), !last);
    if (last) {
      EXPECT_DOUBLE_EQ(page.GetNumber("pages", 0),
                       static_cast<double>(pages.size()));
    }
    const Value* chunk = page.Find("chunk");
    ASSERT_NE(chunk, nullptr);
    ASSERT_TRUE(chunk->is_string());
    EXPECT_LE(chunk->AsString().size(), 512u);
    payload += chunk->AsString();
  }
  // The reassembled payload is the legacy single-line response's result.
  auto unpaged = json::Parse(service.HandleRequestLine(request));
  ASSERT_TRUE(unpaged.ok());
  EXPECT_TRUE(unpaged->GetBool("cached", false));
  auto result = json::Parse(payload);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Serialize(), unpaged->Find("result")->Serialize());

  // Errors are never paged: one line, no chunk field.
  const std::string error_wire = service.HandleRequest(
      R"({"verb":"profile","dataset":"absent","params":{"l":64}})");
  EXPECT_EQ(error_wire.find('\n'), error_wire.size() - 1);
  auto error = json::Parse(error_wire);
  ASSERT_TRUE(error.ok());
  EXPECT_FALSE(error->GetBool("ok", true));
  EXPECT_EQ(error->Find("chunk"), nullptr);
}

// The profile verb's algo param: "stamp" computes through the snapshot's
// shared MassEngine, agrees with the default STOMP result numerically,
// and caches under its own key (the two algorithms never alias).
TEST(ServiceProtocolTest, ProfileAlgoStampMatchesStomp) {
  Service service;
  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"load","dataset":"d",)"
      R"("params":{"generator":"ecg","n":1024,"seed":11}})")));

  Value stomp = Roundtrip(service,
      R"({"verb":"profile","dataset":"d","params":{"l":64}})");
  ASSERT_TRUE(Ok(stomp)) << stomp.Serialize();
  Value stamp = Roundtrip(service,
      R"({"verb":"profile","dataset":"d",)"
      R"("params":{"l":64,"algo":"stamp"}})");
  ASSERT_TRUE(Ok(stamp)) << stamp.Serialize();
  // Distinct cache keys: the stamp request is a miss, not a hit on the
  // stomp entry.
  EXPECT_FALSE(stamp.GetBool("cached", true));
  EXPECT_EQ(stamp.Find("result")->GetString("algo", ""), "stamp");

  const auto& stomp_distances =
      stomp.Find("result")->Find("distances")->AsArray();
  const auto& stamp_distances =
      stamp.Find("result")->Find("distances")->AsArray();
  ASSERT_EQ(stomp_distances.size(), stamp_distances.size());
  for (std::size_t i = 0; i < stomp_distances.size(); ++i) {
    EXPECT_NEAR(stamp_distances[i].AsDouble(), stomp_distances[i].AsDouble(),
                2e-6)
        << i;
  }

  // Repeating the stamp request hits its own cache entry.
  Value again = Roundtrip(service,
      R"({"verb":"profile","dataset":"d",)"
      R"("params":{"l":64,"algo":"stamp"}})");
  ASSERT_TRUE(Ok(again));
  EXPECT_TRUE(again.GetBool("cached", false));

  // An explicit default is accepted and shares the stomp entry.
  Value explicit_stomp = Roundtrip(service,
      R"({"verb":"profile","dataset":"d",)"
      R"("params":{"l":64,"algo":"stomp"}})");
  ASSERT_TRUE(Ok(explicit_stomp));
  EXPECT_TRUE(explicit_stomp.GetBool("cached", false));

  // Unknown algos are structured errors.
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"profile","dataset":"d",)"
                R"("params":{"l":64,"algo":"brute"}})")),
            "InvalidArgument");

  // algo does not apply to streaming datasets (their profile is
  // maintained incrementally, not recomputed).
  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"load","dataset":"s","params":{"streaming_length":8}})")));
  EXPECT_EQ(ErrorCode(Roundtrip(service,
                R"({"verb":"profile","dataset":"s",)"
                R"("params":{"algo":"stamp"}})")),
            "InvalidArgument");
}

TEST(ServiceProtocolTest, AdmissionQueueFullIsAStructuredError) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.cache_capacity = 0;  // force every request to compute
  Service service(options);
  Roundtrip(service,
            R"({"verb":"load","dataset":"d",)"
            R"("params":{"generator":"random_walk","n":4096}})");
  // Saturate the single worker + single queue slot from multiple clients;
  // the requests are heavy enough (hundreds of ms) that all six overlap,
  // so at least one must be bounced with ResourceExhausted (all requests
  // share the default priority, so nothing is shed) — and none may crash
  // or hang.
  std::vector<std::thread> clients;
  std::vector<std::string> codes(6);
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&service, &codes, c] {
      const std::string request =
          R"({"verb":"motifs","dataset":"d","params":{"lmin":)" +
          std::to_string(64 + c) + R"(,"lmax":)" + std::to_string(120 + c) +
          R"(}})";
      Value response = Roundtrip(service, request);
      codes[static_cast<std::size_t>(c)] =
          Ok(response) ? "ok" : ErrorCode(response);
    });
  }
  for (std::thread& t : clients) t.join();
  std::size_t ok_count = 0;
  std::size_t bounced = 0;
  for (const std::string& code : codes) {
    if (code == "ok") ++ok_count;
    if (code == "ResourceExhausted") ++bounced;
  }
  EXPECT_EQ(ok_count + bounced, 6u) << "unexpected outcome in mix";
  EXPECT_GE(ok_count, 1u);
  EXPECT_GE(bounced, 1u);
  const SchedulerStats stats = service.scheduler().stats();
  EXPECT_EQ(stats.rejected, bounced);
}

// The acceptance-bar concurrency run: 4 clients hammering one service with
// a mixed verb stream (loads, queries, appends, stats). Under TSan in CI.
TEST(ServiceProtocolTest, FourConcurrentClientsMixedWorkload) {
  Service service;
  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"load","dataset":"shared",)"
      R"("params":{"generator":"ecg","n":2048,"seed":2}})")));
  ASSERT_TRUE(Ok(Roundtrip(service,
      R"({"verb":"load","dataset":"stream","params":{"streaming_length":16}})")));

  std::vector<std::thread> clients;
  std::vector<int> failures(4, 0);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service, &failures, c] {
      for (int i = 0; i < 6; ++i) {
        std::vector<std::string> requests = {
            R"({"verb":"motifs","dataset":"shared","params":{"lmin":)" +
                std::to_string(40 + 4 * c) + R"(,"lmax":)" +
                std::to_string(42 + 4 * c) + R"(}})",
            R"({"verb":"query","dataset":"shared",)"
            R"("params":{"values":[1,2,1,0,1,2,1,0,1,2,1,0],"k":2}})",
            R"({"verb":"append","dataset":"stream","params":{"values":[)" +
                std::to_string(c) + "," + std::to_string(i) + R"(,1,2,3]}})",
            R"({"verb":"stats"})",
        };
        const std::string& request =
            requests[static_cast<std::size_t>(i) % requests.size()];
        const std::string response = service.HandleRequestLine(request);
        auto parsed = json::Parse(response);
        if (!parsed.ok() || !parsed->GetBool("ok", false)) {
          ++failures[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
  }
  // The service is still coherent after the storm (both datasets listed;
  // each client's append landed).
  Value stats = Roundtrip(service, R"({"verb":"stats"})");
  ASSERT_TRUE(Ok(stats));
  ASSERT_EQ(stats.Find("result")->Find("datasets")->AsArray().size(), 2u);
}

#ifdef VALMOD_SERVER_BINARY
// End-to-end --stdio smoke: pipe a scripted session through the real
// binary (full main() path: flag validation, stdio loop, shutdown verb)
// and check the response stream line by line.
TEST(ServerBinaryTest, StdioSessionEndToEnd) {
  const std::string script =
      R"({"id":1,"verb":"load","dataset":"d","params":{"generator":"ecg","n":1024}})" "\n"
      R"({"id":2,"verb":"motifs","dataset":"d","params":{"lmin":32,"lmax":34}})" "\n"
      R"({"id":3,"verb":"motifs","dataset":"d","params":{"lmin":32,"lmax":34}})" "\n"
      "not json\n"
      R"({"id":4,"verb":"stats"})" "\n"
      R"({"id":5,"verb":"unload","dataset":"d"})" "\n"
      R"({"id":6,"verb":"shutdown"})" "\n";
  const std::string command = std::string("printf '%s' '") + script +
                              "' | " + VALMOD_SERVER_BINARY +
                              " --stdio 2>/dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[4096];
  std::size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int exit_code = pclose(pipe);
  EXPECT_EQ(exit_code, 0);

  std::vector<std::string> lines;
  std::size_t start = 0, newline;
  while ((newline = output.find('\n', start)) != std::string::npos) {
    lines.push_back(output.substr(start, newline - start));
    start = newline + 1;
  }
  ASSERT_EQ(lines.size(), 7u) << output;
  auto parse = [](const std::string& line) {
    auto v = json::Parse(line);
    EXPECT_TRUE(v.ok()) << line;
    return v.ok() ? *v : Value();
  };
  EXPECT_TRUE(parse(lines[0]).GetBool("ok", false));         // load
  Value motifs = parse(lines[1]);
  EXPECT_TRUE(motifs.GetBool("ok", false));
  EXPECT_FALSE(motifs.GetBool("cached", true));
  Value cached = parse(lines[2]);
  EXPECT_TRUE(cached.GetBool("ok", false));
  EXPECT_TRUE(cached.GetBool("cached", false));              // cache hit
  EXPECT_FALSE(parse(lines[3]).GetBool("ok", true));         // bad JSON
  Value stats = parse(lines[4]);
  EXPECT_TRUE(stats.GetBool("ok", false));
  EXPECT_DOUBLE_EQ(
      stats.Find("result")->Find("cache")->GetNumber("hits", -1), 1.0);
  EXPECT_TRUE(parse(lines[5]).GetBool("ok", false));         // unload
  EXPECT_TRUE(parse(lines[6]).GetBool("ok", false));         // shutdown
}

TEST(ServerBinaryTest, UnknownFlagIsAUsageError) {
  const std::string command = std::string(VALMOD_SERVER_BINARY) +
                              " --stdio --thread=4 2>&1 </dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[1024];
  std::size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = pclose(pipe);
  EXPECT_NE(status, 0);
  EXPECT_NE(output.find("--thread"), std::string::npos) << output;
}
#endif  // VALMOD_SERVER_BINARY

}  // namespace
}  // namespace valmod::service
