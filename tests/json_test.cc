// Tests for the minimal JSON parser/serializer behind the serving protocol.

#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace valmod::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("42")->AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(Parse("-2.5e3")->AsDouble(), -2500.0);
  EXPECT_EQ(Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, NestedDocument) {
  auto doc = Parse(R"({"verb":"motifs","params":{"lmin":100,"k":3},)"
                   R"("values":[1,2.5,-3],"flag":true})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("verb", ""), "motifs");
  const Value* params = doc->Find("params");
  ASSERT_NE(params, nullptr);
  EXPECT_DOUBLE_EQ(params->GetNumber("lmin", 0), 100.0);
  EXPECT_DOUBLE_EQ(params->GetNumber("absent", -1), -1.0);
  const Value* values = doc->Find("values");
  ASSERT_NE(values, nullptr);
  ASSERT_EQ(values->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(values->AsArray()[1].AsDouble(), 2.5);
  EXPECT_TRUE(doc->GetBool("flag", false));
}

TEST(JsonParseTest, StringEscapes) {
  auto doc = Parse(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "a\"b\\c\n\tA");
}

TEST(JsonParseTest, ErrorsAreStatusesNotCrashes) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("{\"a\":}").ok());
  EXPECT_FALSE(Parse("[1,2").ok());
  EXPECT_FALSE(Parse("nope").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("1 2").ok());        // trailing content
  EXPECT_FALSE(Parse("{\"a\":1}x").ok());  // trailing content
  EXPECT_FALSE(Parse("1e999").ok());       // non-finite
}

TEST(JsonParseTest, DeepNestingIsBounded) {
  std::string evil(10000, '[');
  EXPECT_FALSE(Parse(evil).ok());  // must not overflow the stack
}

TEST(JsonSerializeTest, CanonicalForm) {
  Value::Object o;
  o.emplace("b", Value(2));
  o.emplace("a", Value(1));
  o.emplace("s", Value("x\"y"));
  o.emplace("arr", Value(Value::Array{Value(1), Value(nullptr), Value(true)}));
  // Keys serialize in sorted order (std::map), which is what makes the
  // serialized form usable as cache-key material.
  EXPECT_EQ(Value(std::move(o)).Serialize(),
            R"({"a":1,"arr":[1,null,true],"b":2,"s":"x\"y"})");
}

TEST(JsonSerializeTest, NumbersRoundTrip) {
  // Integral doubles print as integers; non-integral at full precision.
  EXPECT_EQ(Value(3.0).Serialize(), "3");
  EXPECT_EQ(Value(-17).Serialize(), "-17");
  const double pi = 3.141592653589793;
  auto reparsed = Parse(Value(pi).Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->AsDouble(), pi);  // bit-exact round trip
}

TEST(JsonSerializeTest, ParseSerializeFixpoint) {
  const std::string canonical =
      R"({"id":7,"params":{"k":3,"lmin":100},"verb":"motifs"})";
  auto doc = Parse(canonical);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Serialize(), canonical);
}

}  // namespace
}  // namespace valmod::json
